"""The Section 1.3.4 adversarial separation, benchmarked.

The paper's motivating pathology: a stream on which RBMC performs a
Θ(k) decrement pass on essentially every update while SMED amortizes.
Writes ``benchmarks/out/adversarial.txt``.
"""

import pytest

from repro.baselines.factory import make_algorithm
from repro.bench.figures import adversarial_table
from repro.bench.harness import feed_stream
from repro.streams.adversarial import rbmc_killer_stream


@pytest.mark.parametrize("algorithm", ["RBMC", "SMED"])
def test_adversarial_throughput(benchmark, config, algorithm):
    k = config.k_values[len(config.k_values) // 2]
    stream = list(rbmc_killer_stream(k, 1e6, max(10 * k, 4_000)))
    benchmark.group = f"adversarial stream (Section 1.3.4), k={k}"

    def run():
        instance = make_algorithm(algorithm, k, seed=config.seed)
        feed_stream(instance, stream)
        return instance

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.stats.updates == len(stream)


def test_adversarial_report(benchmark, config, write_report):
    benchmark.group = "adversarial full table"

    def run():
        return adversarial_table(config)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("adversarial", table)

    for k in config.k_values:
        rbmc_rate = table.cell(
            {"k": k, "algorithm": "RBMC"}, "decrements_per_update"
        )
        smed_rate = table.cell(
            {"k": k, "algorithm": "SMED"}, "decrements_per_update"
        )
        # RBMC decrements on ~every unit update of the tail; SMED's
        # cadence is bounded by Theorem 3.
        assert rbmc_rate > 0.8
        assert smed_rate <= 3.0 / k + 0.01
        assert table.cell({"k": k, "algorithm": "RBMC"}, "seconds") > \
            table.cell({"k": k, "algorithm": "SMED"}, "seconds")
