"""The Section 4.3 in-text numeric claims, regenerated as ratio ranges.

Writes ``benchmarks/out/claims.txt`` with measured-vs-paper ranges and
asserts the *qualitative* orderings that survive the Java-to-Python
move.  Known, documented platform effects at quick scale:

* SMIN/RBMC ordering flips when k <= ell (both then compute the exact
  minimum; RBMC's ``min()`` is one C call) — the paper's 2x gap needs
  k >> 1024 so that sampling 1024 beats scanning k.
* MHE's heap is Python code while dicts are C, so the 5.5-8.7x becomes
  ~2-3x here.
"""

from repro.bench.figures import claims_table


def test_claims_report(benchmark, config, write_report):
    benchmark.group = "section 4.3 claims"

    def run():
        return claims_table(config)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("claims", table)

    measured = {row["claim"]: row for row in table.rows}

    # The table itself is the deliverable (measured vs paper ranges);
    # what is *asserted* here are the deterministic claims — the error
    # ratios, which depend only on the seeds, not on wall-clock noise.
    # Wall-clock speed dominance is enforced where it is robust: the
    # adversarial benchmark (guaranteed-separated regime) and the
    # decrement/heap op counts in bench_fig1_runtime.
    for row in table.rows:
        assert row["measured_min"] == row["measured_min"]  # not NaN
        assert row["measured_min"] > 0

    # Error orderings: SMED gives up accuracy vs SMIN, within the 2.5x
    # envelope the paper reports (slack for quick-scale noise).
    smed_vs_smin = measured["SMED err / SMIN err"]
    assert 1.0 <= smed_vs_smin["measured_min"]
    assert smed_vs_smin["measured_max"] <= 3.0

    # At equal space MHE affords ~half the counters, so its error
    # exceeds SMIN's (the paper's 1.6-1.8x).
    assert measured["MHE err / SMIN err"]["measured_min"] > 1.0
