"""Theorem-bound verification across workload shapes, as a bench table.

Complements the property tests: measures how much slack the Theorem 4
bound leaves on each workload (observed error vs N^res(j)/(k/3 - j)) and
writes ``benchmarks/out/bounds.txt``.
"""

from repro.bench.figures import bounds_table


def test_bounds_report(benchmark, config, write_report):
    benchmark.group = "theorem bounds"

    def run():
        return bounds_table(config)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("bounds", table)

    assert all(table.column("holds"))
    for row in table.rows:
        assert row["observed"] <= row["bound_j0"] + 1e-9
