"""The space-accounting table (Sections 2.3.3, 4.3, 4.5).

Pure model evaluation (no stream needed): verifies the paper's 24-bytes-
per-counter figure at aligned k, the MHE/MED/SSL overheads, and the
zero-vs-2.5x merge scratch.  Written to ``benchmarks/out/space.txt``.
"""

from repro.bench.figures import space_table
from repro.metrics.space import merge_scratch_bytes, space_model_bytes


def test_space_report(benchmark, write_report):
    benchmark.group = "space accounting"

    table = benchmark.pedantic(space_table, rounds=1, iterations=1)
    write_report("space", table)

    # Aligned k (4k/3 a power of two): exactly 24 bytes per counter.
    for k in (3072, 12288, 49152):
        per_counter = table.cell({"k": k}, "bytes_per_counter_ours")
        assert abs(per_counter - 24.0) < 0.1

    for row in table.rows:
        k = row["k"]
        assert row["mhe"] > row["smed_smin_rbmc"]
        assert row["med"] == row["smed_smin_rbmc"] + 8 * k
        assert row["merge_scratch_ours"] == 0
        assert row["merge_scratch_prior"] > 2 * row["smed_smin_rbmc"]


def test_space_model_evaluation_speed(benchmark):
    """The models themselves are cheap enough for tight sweep loops."""
    benchmark.group = "space accounting"

    def run():
        total = 0
        for k in range(64, 8192, 64):
            total += space_model_bytes("smed", k)
            total += space_model_bytes("mhe", k)
            total += merge_scratch_bytes("ach13", k)
        return total

    assert benchmark(run) > 0
