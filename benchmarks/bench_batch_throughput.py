"""Batched ingestion engine: scalar vs batch updates/sec per backend.

Per-backend pytest-benchmark timings for the two ingestion paths, plus a
report benchmark that regenerates the full scalar-vs-batch table and
writes it to ``benchmarks/out/batch.txt``.

Expected shape: the columnar backend is the slowest store to drive one
update at a time (every scalar touch pays NumPy scalar-indexing tax) and
by far the fastest to drive in batches (grouping + bulk array ops), with
the batch path beating its own scalar loop by well over the 5x the
batch engine promises, and the per-backend ``batch_speedup`` column
ranking columnar > probing/robinhood > dict (the CPython dict is so fast
per probe that packaging matters least there).
"""

import pytest

from repro.bench.figures import batch_throughput_table
from repro.bench.harness import (
    feed_batches,
    feed_stream,
    num_batched_updates,
    zipf_weighted_batches,
    zipf_weighted_stream,
)
from repro.core.frequent_items import FrequentItemsSketch

BACKENDS = ("dict", "probing", "robinhood", "columnar")


def _workload(config):
    batches = zipf_weighted_batches(
        config.num_updates, config.unique_sources, 1.05, config.seed
    )
    stream = zipf_weighted_stream(
        config.num_updates, config.unique_sources, 1.05, config.seed
    )
    return batches, stream, config.k_values[-1]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_ingest_throughput(benchmark, config, backend, mode):
    batches, stream, k = _workload(config)
    benchmark.group = f"batch ingestion, k={k}"
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["updates"] = num_batched_updates(batches)

    def run():
        sketch = FrequentItemsSketch(k, backend=backend, seed=config.seed)
        if mode == "scalar":
            feed_stream(sketch, stream)
        else:
            feed_batches(sketch, batches)
        return sketch

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.stats.updates == len(stream)


def test_batch_report(benchmark, config, write_report):
    benchmark.group = "batch full table"

    def run():
        return batch_throughput_table(config)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("batch", table)

    # The acceptance bar of the batched ingestion engine: on the Zipf
    # workload, update_batch on the columnar backend sustains at least
    # 5x the updates/sec of the scalar update loop.  (Measured ~12x;
    # probing/robinhood batch wins are reported in the table but not
    # asserted — their ~1.3-1.7x margins are within shared-runner
    # timing noise for a single round.)
    speedup = table.cell({"backend": "columnar"}, "batch_speedup")
    assert speedup >= 5.0, (
        f"columnar update_batch only {speedup:.2f}x its scalar loop"
    )
