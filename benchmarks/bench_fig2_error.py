"""Figure 2: maximum point-query error of the four algorithms.

Error is not a timing quantity, so the benchmark wraps the full-figure
computation once and the assertions carry the reproduction: at equal k,
RBMC / SMIN / MHE are indistinguishable (the isomorphism), SMED trades
up to ~2.5x error for its speed, and doubling SMED's counters overcomes
the gap.  The report lands in ``benchmarks/out/fig2.txt``.
"""

from repro.bench.figures import FOUR_ALGORITHMS, fig2_error


def test_fig2_report(benchmark, config, write_report):
    benchmark.group = "fig2 full figure"

    def run():
        return fig2_error(config)

    equal_space, equal_counters = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("fig2", equal_space, equal_counters)

    for k in config.k_values:
        # Equal counters: the isomorphic trio within a whisker of each other.
        rbmc = equal_counters.cell({"algorithm": "RBMC", "k": k}, "max_error")
        smin = equal_counters.cell({"algorithm": "SMIN", "k": k}, "max_error")
        mhe = equal_counters.cell({"algorithm": "MHE", "k": k}, "max_error")
        smed = equal_counters.cell({"algorithm": "SMED", "k": k}, "max_error")
        scale = max(rbmc, smin, mhe, 1.0)
        assert abs(rbmc - smin) / scale < 0.15
        assert abs(rbmc - mhe) / scale < 0.15
        # SMED pays a bounded accuracy premium for its speed (the paper
        # measures <= 2.5x vs RBMC/SMIN; allow headroom at small scale).
        assert smed <= 3.5 * smin

    # Overcoming the gap by doubling k (paper Section 4.3): SMED with 2k
    # counters beats SMIN with k.
    ks = config.k_values
    for small, big in zip(ks, ks[1:]):
        if big == 2 * small:
            smed_big = equal_counters.cell(
                {"algorithm": "SMED", "k": big}, "max_error"
            )
            smin_small = equal_counters.cell(
                {"algorithm": "SMIN", "k": small}, "max_error"
            )
            assert smed_big <= smin_small

    # Convergence in k (Section 4.2): every algorithm's error decreases.
    for table in (equal_space, equal_counters):
        for algorithm in FOUR_ALGORITHMS:
            errors = [
                table.cell({"algorithm": algorithm, "k": k}, "max_error")
                for k in config.k_values
            ]
            assert errors[-1] <= errors[0]
