"""Smoke gate for the fuzzbench-style report harness.

Runs the quick experiment matrix into a throwaway runs directory,
renders the HTML + markdown report over it, and asserts the acceptance
bars of the report PR:

* the persisted run document carries full provenance (git hash, UTC
  timestamp, host, native runtime metadata) and **round-trips through
  the results loader** — ``validate_provenance`` must come back empty
  on the reloaded document, not just the in-memory one;
* the rendered report contains the accuracy-vs-space frontier and a
  throughput trajectory that includes the seed ``BENCH_ingest.json`` /
  ``BENCH_serve.json`` points when those documents exist at the root.

The tmp runs directory keeps the gate hermetic: the repo's committed
``bench_runs/`` history is read-only to CI.
"""

import json
import pathlib

from repro.bench.matrix import QUICK_MATRIX, RUN_SCHEMA, run_matrix
from repro.bench.render import render_report
from repro.bench.results import ExperimentResults

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_report_quick_matrix_round_trips(benchmark, config, tmp_path):
    benchmark.group = "report harness"
    runs_dir = tmp_path / "bench_runs"

    def run():
        return run_matrix(
            config, QUICK_MATRIX, scale="quick", runs_dir=str(runs_dir)
        )

    document, path = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(document["cells"]) == QUICK_MATRIX.num_cells(config)

    # Provenance round-trip: the document *reloaded through the results
    # layer* must still carry every stamped field.
    results = ExperimentResults(runs_dir=str(runs_dir), repo_root=str(REPO_ROOT))
    assert len(results.run_documents) == 1
    reloaded = results.run_documents[0]
    assert results.validate_provenance(reloaded) == [], reloaded.keys()
    assert reloaded["schema"] == RUN_SCHEMA
    assert reloaded["run_id"] == document["run_id"]
    assert reloaded["git_hash"] == document["git_hash"]
    on_disk = json.loads(pathlib.Path(path).read_text())
    assert on_disk == json.loads(json.dumps(document))

    # Rendered artifacts: frontier + trajectory, seeded with the
    # committed BENCH_* documents at the repo root.
    paths = render_report(results, str(tmp_path / "report"))
    html_doc = pathlib.Path(paths["html"]).read_text()
    markdown = pathlib.Path(paths["markdown"]).read_text()
    assert "Accuracy vs space frontier" in html_doc
    assert "Throughput trajectory" in html_doc
    assert html_doc.count("<svg") == 2
    assert "## Accuracy vs space frontier" in markdown
    if (REPO_ROOT / "BENCH_ingest.json").exists():
        assert "seed:ingest" in markdown
    if (REPO_ROOT / "BENCH_serve.json").exists():
        assert "seed:serve" in markdown

    # Every matrix cell measured something and stayed sane.
    for cell in reloaded["cells"]:
        assert cell["updates_per_sec"] > 0, cell
        assert len(cell["seconds_samples"]) == QUICK_MATRIX.repeats, cell
        assert 0 <= cell["rel_error"] < 1, cell
