"""Ablations: decrement policy, sample size ℓ, and storage backend.

Three design choices DESIGN.md calls out, each isolated:

* policy — sampled median (Alg. 4) vs exact k/2-th (Alg. 3) vs global
  min vs random-admission takeover;
* ℓ — the paper fixes 1024 (Section 2.3.2); the sweep shows the error
  plateau that justifies it;
* backend — the Section 2.3.3 probing layout vs CPython's builtin dict.

Reports land in ``benchmarks/out/ablation_*.txt``.
"""

import pytest

from repro.bench.figures import (
    ablation_backend,
    ablation_policies,
    ablation_sample_size,
)
from repro.bench.harness import feed_stream, packet_stream
from repro.baselines.factory import make_smed


@pytest.mark.parametrize("backend", ["dict", "probing"])
def test_backend_throughput(benchmark, config, backend):
    stream = packet_stream(config)
    k = config.k_values[-1]
    benchmark.group = f"ablation: backend, k={k}"

    def run():
        sketch = make_smed(k, seed=config.seed, backend=backend)
        feed_stream(sketch, stream)
        return sketch

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.stats.updates == len(stream)


def test_policy_ablation_report(benchmark, config, write_report):
    benchmark.group = "ablation: decrement policy"

    def run():
        return ablation_policies(config)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("ablation_policies", table)

    rows = {row["policy"]: row for row in table.rows}
    smed = next(row for name, row in rows.items() if name.startswith("SMED"))
    gmin = next(row for name, row in rows.items() if name.startswith("GMIN"))
    rap = next(row for name, row in rows.items() if name.startswith("RAP"))
    # The global-min policy decrements far more often than the median.
    assert gmin["decrements"] > 4 * smed["decrements"]
    # RAP never runs a decrement pass but pays in accuracy.
    assert rap["decrements"] == 0
    assert rap["max_error"] > smed["max_error"]


def test_sample_size_ablation_report(benchmark, config, write_report):
    benchmark.group = "ablation: sample size"

    def run():
        return ablation_sample_size(config)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("ablation_sample_size", table)
    errors = table.column("max_error")
    # Larger samples can only help (and plateau by ell = 1024).
    assert errors[-1] <= errors[0] * 1.1


def test_backend_ablation_report(benchmark, config, write_report):
    benchmark.group = "ablation: backend"

    def run():
        return ablation_backend(config)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("ablation_backend", table)

    # Both backends compute identical summaries (error columns match).
    for k in set(table.column("k")):
        probing = table.cell({"backend": "probing", "k": k}, "max_error")
        dictionary = table.cell({"backend": "dict", "k": k}, "max_error")
        assert probing == pytest.approx(dictionary)
        # The probing table's access cost stays a small constant per
        # update (the Section 2.3.3 claim, measured in probes).
        probes = table.cell({"backend": "probing", "k": k}, "probes_per_update")
        assert probes < 8
