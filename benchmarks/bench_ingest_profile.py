"""Ingest profile: backend × batch size × skew, with the 4x hash-table gate.

This is the perf trajectory seeded by the zero-sort/vectorized-backend
PR: it regenerates the canonical ``BENCH_ingest.json`` at the repo root
and enforces the acceptance bars —

* probing and robinhood ``update_batch`` >= 4x their own scalar loops on
  the canonical Zipf α = 1.05 weighted workload (their batch ops are
  vectorized gather/scatter probe walks now, not per-key fallbacks);
* columnar ``update_batch`` >= 5x its scalar loop (the PR 1 bar — the
  zero-sort grouper must not regress the already-fast backend; the
  absolute throughput lands in the JSON so later PRs can diff against
  this one within noise).

Run directly via pytest, or regenerate the JSON without gates through
``python -m repro.bench ingest-profile --quick``.
"""

import json
import pathlib

import pytest

from repro.bench.figures import ingest_profile_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_ingest.json"


def test_ingest_profile(benchmark, config, write_report):
    benchmark.group = "ingest profile"

    def run():
        return ingest_profile_table(config, json_path=str(JSON_PATH))

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("ingest_profile", table)

    document = json.loads(JSON_PATH.read_text())
    gates = document["gates"]
    # The acceptance bars.  Measured on one core of a shared CI runner:
    # with the NumPy paths probing/robinhood land ~8-15x and columnar
    # ~10x, so 4x/5x leave generous noise margin.  With the compiled
    # kernels active the hash backends land ~30-50x; gate them at 10x
    # (the native-PR acceptance bar) so a silently broken dispatch —
    # falling back to NumPy while claiming native — fails loudly.
    from repro import native

    hash_backend_bar = 10.0 if native.enabled() else 4.0
    assert document["metadata"]["ingest_path"] == (
        "native" if native.enabled() else "numpy"
    ), document["metadata"]
    assert gates["probing_batch_speedup_alpha1.05"] >= hash_backend_bar, gates
    assert gates["robinhood_batch_speedup_alpha1.05"] >= hash_backend_bar, gates
    assert gates["columnar_batch_speedup_alpha1.05"] >= 5.0, gates
    # The dict backend is scalar-bound (its point ops are already C-coded
    # dict probes), so batching can't approach the array backends' ratios
    # — but the inlined batch loop must clearly beat per-update dispatch.
    assert gates["dict_batch_speedup_alpha1.05"] >= 1.75, gates
    # Adaptive growth may trail fixed (it pays rehashes early, and its
    # staged prefix runs the NumPy path until the table reaches final
    # length — only then does dispatch flip to the compiled kernels, so
    # the native bar is looser) but must stay in the same league.
    adaptive_bar = 0.35 if native.enabled() else 0.5
    for row in document["rows"]:
        if row["alpha"] == 1.05 and row["batch"] == max(
            r["batch"] for r in document["rows"]
        ):
            assert (
                row["adaptive_per_sec"] >= adaptive_bar * row["batch_per_sec"]
            ), row


@pytest.mark.parametrize("backend", ["probing", "robinhood"])
def test_hash_backend_batch_beats_scalar(benchmark, config, backend):
    """Per-backend pytest-benchmark timing rows (no extra gate here; the
    table test above asserts the ratios from one coherent run)."""
    from repro.bench.harness import (
        feed_batches,
        zipf_weighted_batches,
        zipf_weighted_stream,
    )
    from repro.core.frequent_items import FrequentItemsSketch

    batches = zipf_weighted_batches(
        config.num_updates, config.unique_sources, 1.05, config.seed
    )
    stream = zipf_weighted_stream(
        config.num_updates, config.unique_sources, 1.05, config.seed
    )
    k = config.k_values[-1]
    benchmark.group = f"hash-backend batch ingest, k={k}"
    benchmark.extra_info["backend"] = backend

    def run():
        sketch = FrequentItemsSketch(k, backend=backend, seed=config.seed)
        feed_batches(sketch, batches)
        return sketch

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.stats.updates == len(stream)
