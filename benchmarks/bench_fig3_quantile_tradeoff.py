"""Figure 3: runtime and error as a function of the decrement quantile.

Per-quantile throughput benchmarks plus the full sweep report
(``benchmarks/out/fig3.txt``).  Expected shape (paper Section 4.4):
runtime falls steeply from the 0th quantile (SMIN) to the median and
then flattens ("diminishing returns"); error stays near-flat through
mid quantiles and shoots up at the high end.
"""

import pytest

from repro.baselines.factory import make_quantile_variant
from repro.bench.figures import fig3_quantile_tradeoff
from repro.bench.harness import feed_stream, packet_stream


@pytest.mark.parametrize("quantile_pct", [0, 10, 50, 90])
def test_quantile_throughput(benchmark, config, quantile_pct):
    stream = packet_stream(config)
    k = config.k_values[-1]
    benchmark.group = f"fig3 throughput by quantile, k={k}"
    benchmark.extra_info["quantile_pct"] = quantile_pct

    def run():
        sketch = make_quantile_variant(
            k, quantile_pct / 100.0, seed=config.seed
        )
        feed_stream(sketch, stream)
        return sketch

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.stats.updates == len(stream)


def test_fig3_report(benchmark, config, write_report):
    benchmark.group = "fig3 full figure"

    def run():
        return fig3_quantile_tradeoff(config)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("fig3", table)

    for k in set(table.column("k")):
        rows = {
            row["quantile_pct"]: row for row in table.rows if row["k"] == k
        }
        quantiles = sorted(rows)
        # Decrement passes decrease monotonically with the quantile.
        decrements = [rows[q]["decrements"] for q in quantiles]
        assert all(a >= b for a, b in zip(decrements, decrements[1:]))
        # Error at the top of the sweep dwarfs error at the bottom.
        assert rows[quantiles[-1]]["max_error"] >= rows[quantiles[0]]["max_error"]
        # SMIN (q=0) is the slowest configuration of the family.
        slowest = max(rows[q]["seconds"] for q in quantiles)
        assert rows[0]["seconds"] >= 0.5 * slowest
