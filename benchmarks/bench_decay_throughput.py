"""Engine consumers: kernel-batched vs scalar ingest for windowed/decayed.

Per-consumer pytest-benchmark timings for the two ingestion paths of the
re-based extensions, plus a report benchmark that regenerates the full
consumer table and writes it to ``benchmarks/out/decay.txt``.

This is the acceptance gate of the engine extraction's "inherit batching
for free" claim: the sliding-window and time-fading sketches hand-roll
no update loop anymore — they compose a
:class:`~repro.engine.kernel.SketchKernel` — and on the columnar backend
their ``update_batch`` must sustain at least 3x the updates/sec of their
own scalar loop (measured ~10-15x), with final kernel state identical in
both modes (the table builder asserts it).
"""

import pytest

from repro.bench.figures import decay_throughput_table
from repro.bench.harness import num_batched_updates, zipf_weighted_batches
from repro.extensions.decayed import DecayedFrequentItemsSketch
from repro.extensions.windowed import SlidingWindowHeavyHitters

CONSUMERS = ("windowed", "decayed")
MODES = ("scalar", "batch")


def _make(consumer: str, k: int, seed: int):
    if consumer == "windowed":
        return SlidingWindowHeavyHitters(k, 4, backend="columnar", seed=seed)
    return DecayedFrequentItemsSketch(k, half_life=1.0, backend="columnar", seed=seed)


def _boundary(sketch) -> None:
    if isinstance(sketch, SlidingWindowHeavyHitters):
        sketch.advance()
    else:
        sketch.tick()


@pytest.mark.parametrize("consumer", CONSUMERS)
@pytest.mark.parametrize("mode", MODES)
def test_consumer_ingest_throughput(benchmark, config, consumer, mode):
    batches = zipf_weighted_batches(
        config.num_updates, config.unique_sources, 1.05, config.seed
    )
    # Pre-materialized Python pairs for the scalar loop, matching the
    # batch benchmark's feed_stream methodology.
    scalar_slices = [
        list(zip(items.tolist(), weights.tolist())) for items, weights in batches
    ]
    k = config.k_values[-1]
    benchmark.group = f"engine-consumer ingestion, k={k}"
    benchmark.extra_info["consumer"] = consumer
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["updates"] = num_batched_updates(batches)

    def run():
        sketch = _make(consumer, k, config.seed)
        if mode == "scalar":
            for slice_updates in scalar_slices:
                update = sketch.update
                for item, weight in slice_updates:
                    update(item, weight)
                _boundary(sketch)
        else:
            for items, weights in batches:
                sketch.update_batch(items, weights)
                _boundary(sketch)
        return sketch

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    if consumer == "windowed":
        assert result.window_weight > 0.0
    else:
        assert result.kernel.stats.updates == num_batched_updates(batches)


def test_decay_report(benchmark, config, write_report):
    benchmark.group = "engine-consumer full table"

    def run():
        return decay_throughput_table(config)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("decay", table)

    # The acceptance bar of the engine extraction: both re-based
    # consumers ingest through the kernel's segmented batch path at
    # >= 3x their own scalar loop on the columnar backend (measured
    # ~10-15x; the dict-backend rows are reported but not asserted —
    # grouping alone carries them, at smaller margins).
    for consumer in ("windowed", "decayed"):
        speedup = table.cell(
            {"consumer": consumer, "backend": "columnar"}, "batch_speedup"
        )
        assert speedup >= 3.0, (
            f"{consumer} update_batch only {speedup:.2f}x its scalar loop"
        )
