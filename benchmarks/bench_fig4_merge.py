"""Figure 4: merge throughput — Algorithm 5 vs ACH+13 vs Hoa61.

Per-procedure benchmarks time merging a prepared set of sketch pairs
(Zipf α = 1.05 identifiers, weights uniform on [1, 10000], Section 4.5);
the report benchmark regenerates the figure into
``benchmarks/out/fig4.txt``.

Expected shape: our in-place merge allocates nothing (scratch = 0 vs the
prior procedures' 2.5x) and its advantage grows with k.  Note one
documented platform effect: ACH+13's sort is a single C call under
CPython, so the paper's 8-10x gap compresses here; the ordering at
realistic k is preserved.
"""

import pytest

from repro.baselines.factory import make_smed
from repro.baselines.merge_prior import ach13_merge, hoa61_merge
from repro.bench.figures import fig4_merge
from repro.bench.harness import feed_stream, zipf_weighted_stream


@pytest.fixture(scope="module")
def sketch_pairs(config):
    k = config.k_values[-1]
    pairs = []
    for pair_index in range(config.merge_pairs):
        sketches = []
        for side in range(2):
            seed = config.seed + 100 * pair_index + side
            sketch = make_smed(k, seed=seed)
            feed_stream(
                sketch,
                zipf_weighted_stream(
                    config.merge_updates_per_sketch_factor * k,
                    universe=50 * k,
                    alpha=1.05,
                    seed=seed,
                ),
            )
            sketches.append(sketch)
        pairs.append(tuple(sketches))
    return k, pairs


def test_merge_ours(benchmark, sketch_pairs):
    k, pairs = sketch_pairs
    benchmark.group = f"fig4 merge procedures, k={k}"

    def run():
        operands = [(a.copy(), b) for a, b in pairs]
        return [a.merge(b) for a, b in operands]

    merged = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(m.num_active <= k for m in merged)


def test_merge_hoa61(benchmark, sketch_pairs):
    k, pairs = sketch_pairs
    benchmark.group = f"fig4 merge procedures, k={k}"

    def run():
        return [hoa61_merge(a, b) for a, b in pairs]

    merged = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(m.num_active <= k for m in merged)


def test_merge_ach13(benchmark, sketch_pairs):
    k, pairs = sketch_pairs
    benchmark.group = f"fig4 merge procedures, k={k}"

    def run():
        return [ach13_merge(a, b) for a, b in pairs]

    merged = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(m.num_active <= k for m in merged)


def test_fig4_report(benchmark, config, write_report):
    benchmark.group = "fig4 full figure"

    def run():
        return fig4_merge(config)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("fig4", table)

    largest_k = config.k_values[-1]
    ours = table.cell({"k": largest_k, "procedure": "ours(Alg5)"}, "seconds")
    prior = table.cell({"k": largest_k, "procedure": "ACH+13"}, "seconds")
    # At the largest k our merge is at least competitive with the prior
    # procedure (the paper reports 8.6-10x; CPython's C-coded sort
    # compresses the gap — see the module docstring).
    assert ours <= prior * 1.3

    # Error parity (paper: within 2.5%; allow slack at quick scale).
    for k in config.k_values:
        ours_err = table.cell({"k": k, "procedure": "ours(Alg5)"}, "mean_max_error")
        prior_err = table.cell({"k": k, "procedure": "ACH+13"}, "mean_max_error")
        assert ours_err <= prior_err * 1.6
