"""Streaming ingest service: sustained throughput under concurrency.

pytest-benchmark timings for the asyncio :class:`~repro.service.
pipeline.IngestPipeline` under 1 and 4 concurrent producers, a report
benchmark regenerating the full service table
(``benchmarks/out/serve.txt``), and the subsystem's acceptance gates:

* **throughput** — the pipeline must sustain at least 1M applied
  updates/sec from 4 concurrent producers on the quick Zipf workload
  (the ISSUE-5 acceptance figure; measured ~2.5M/s on one CI core).
* **fidelity** — the served sketch must be bit-identical to a direct
  ``update_batch`` feed of the same stream: the service repackages the
  stream, it must not change it.
* **durability overhead** — with WAL + snapshots enabled the pipeline
  must keep at least half its no-durability throughput (the log is an
  append + CRC per micro-batch, not a per-update cost).
* **replication overhead** — with one live TCP follower attached (the
  clock stopping only when the *replica* has applied the last
  micro-batch) the pipeline must sustain at least half the single-node
  4-producer gate, and the follower's serialized blob must be
  byte-identical to the leader's.
* **replication fan-out** — a leader with **two** live followers must
  keep at least 0.4x the single-node gate with both followers
  byte-identical (each subscriber adds one frame encode + socket write
  per micro-batch, not a second ingest).
* **cluster scale-out** — the multi-process tenant cluster
  (:mod:`repro.service.cluster`) with 4 workers must reach >= 2.5x its
  own 1-worker throughput on a >= 4-core runner; on smaller runners the
  ratio is recorded (``extra_info``/BENCH_serve.json) but not enforced,
  since four workers cannot run in parallel on one core.  The published
  BENCH_serve.json must carry the ``cluster`` metadata block either way.
* **failover MTTR** — a kill-leader failover on a three-node replica
  set must restore write availability (as the client observes it)
  within 5x the configured heartbeat miss window, with *exactly one*
  idempotent frame resubmit and no lost or duplicated updates (exact
  oracle).  The published BENCH_serve.json must carry the ``failover``
  block with the measured detection latency and MTTR.
"""

import asyncio
import json
import os
from pathlib import Path

import pytest

from repro.bench.figures import (
    serve_pipeline_config,
    serve_throughput_table,
    serve_workload,
)
from repro.core.frequent_items import FrequentItemsSketch
from repro.service.pipeline import IngestPipeline
from repro.service.snapshot import SnapshotManager

GATE_UPDATES_PER_SEC = 1_000_000

#: The gate measures exactly the configuration the published figure
#: (BENCH_serve.json) reports — both come from repro.bench.figures.
_workload = serve_workload
_pipe_config = serve_pipeline_config


async def _run(sketch, slices, num_producers, snapshots=None):
    pipeline = IngestPipeline(sketch, config=_pipe_config(), snapshots=snapshots)
    async with pipeline:
        async def producer():
            for items, weights in slices:
                await pipeline.submit(items, weights)

        await asyncio.gather(*(producer() for _ in range(num_producers)))
        await pipeline.drain()
    return pipeline


@pytest.mark.parametrize("num_producers", (1, 4))
def test_pipeline_throughput(benchmark, config, num_producers):
    slices, per_producer = _workload(config)
    k = config.k_values[-1]
    benchmark.group = f"ingest service, k={k}"
    benchmark.extra_info["producers"] = num_producers
    total = num_producers * per_producer
    benchmark.extra_info["updates"] = total

    # Warm-up outside the timed region.
    warm = FrequentItemsSketch(k, backend="columnar", seed=0)
    asyncio.run(_run(warm, slices[:2], 1))

    def run():
        sketch = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
        asyncio.run(_run(sketch, slices, num_producers))
        return sketch

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.stream_weight > 0
    seconds = benchmark.stats.stats.mean
    updates_per_sec = total / seconds
    benchmark.extra_info["updates_per_sec"] = updates_per_sec
    if num_producers == 4:
        # The ISSUE-5 acceptance gate.
        assert updates_per_sec >= GATE_UPDATES_PER_SEC, (
            f"4-producer service throughput {updates_per_sec:,.0f}/s "
            f"below the {GATE_UPDATES_PER_SEC:,}/s gate"
        )


def test_service_feed_bit_identical(config):
    slices, _per_producer = _workload(config)
    k = config.k_values[-1]
    sketch = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
    asyncio.run(_run(sketch, slices, 1))
    reference = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
    for items, weights in slices:
        reference.update_batch(items, weights)
    assert sketch.to_bytes() == reference.to_bytes()


def test_durability_overhead_bounded(benchmark, config, tmp_path):
    slices, per_producer = _workload(config)
    k = config.k_values[-1]
    benchmark.group = f"ingest service, k={k}"

    import time

    warm = FrequentItemsSketch(k, backend="columnar", seed=0)
    asyncio.run(_run(warm, slices[:2], 1))

    plain = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
    start = time.perf_counter()
    asyncio.run(_run(plain, slices, 4))
    plain_seconds = time.perf_counter() - start

    def run():
        sketch = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
        manager = SnapshotManager(str(tmp_path / "wal"))
        asyncio.run(_run(sketch, slices, 4, snapshots=manager))
        return sketch

    benchmark.pedantic(run, rounds=1, iterations=1)
    wal_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["overhead"] = wal_seconds / plain_seconds
    assert wal_seconds <= 2.0 * plain_seconds, (
        f"durability costs {wal_seconds / plain_seconds:.2f}x "
        "(gate: <= 2x the in-memory pipeline)"
    )


def test_replicated_throughput_gate(benchmark, config):
    """One follower attached over TCP: >= 0.5x the 4-producer gate,
    byte-identical replica at the end."""
    from repro.service.replication import FollowerService, ReplicationManager
    from repro.service.server import StreamServer

    slices, per_producer = _workload(config)
    k = config.k_values[-1]
    benchmark.group = f"ingest service, k={k}"
    total = 4 * per_producer
    benchmark.extra_info["updates"] = total

    warm = FrequentItemsSketch(k, backend="columnar", seed=0)
    asyncio.run(_run(warm, slices[:2], 1))

    async def replicated_run():
        leader = IngestPipeline(
            FrequentItemsSketch(k, backend="columnar", seed=config.seed),
            config=_pipe_config(),
            replication=ReplicationManager(),
        )
        async with leader:
            server = StreamServer(leader)
            async with server:
                follower_pipe = IngestPipeline(
                    FrequentItemsSketch(
                        k, backend="columnar", seed=config.seed
                    ),
                    config=_pipe_config(),
                    replica=True,
                )
                async with follower_pipe:
                    follower = FollowerService(
                        follower_pipe, "127.0.0.1", server.port
                    )
                    await follower.start()

                    async def producer():
                        for items, weights in slices:
                            await leader.submit(items, weights)

                    await asyncio.gather(*(producer() for _ in range(4)))
                    await leader.drain()
                    await follower.wait_for_seq(
                        leader.applied_seq, timeout=120.0
                    )
                    blobs = (
                        leader.sketch.to_bytes(),
                        follower_pipe.sketch.to_bytes(),
                    )
                    await follower.stop()
        return blobs

    leader_blob, follower_blob = benchmark.pedantic(
        lambda: asyncio.run(replicated_run()), rounds=1, iterations=1
    )
    assert follower_blob == leader_blob, (
        "the caught-up follower must be byte-identical to the leader"
    )
    seconds = benchmark.stats.stats.mean
    updates_per_sec = total / seconds
    benchmark.extra_info["updates_per_sec"] = updates_per_sec
    assert updates_per_sec >= 0.5 * GATE_UPDATES_PER_SEC, (
        f"replicated throughput {updates_per_sec:,.0f}/s below half the "
        f"{GATE_UPDATES_PER_SEC:,}/s single-node gate"
    )


def test_multi_follower_fanout_gate(benchmark, config):
    """Leader + 2 followers: >= 0.4x the single-node gate, both replicas
    byte-identical when caught up."""
    from repro.service.replication import FollowerService, ReplicationManager
    from repro.service.server import StreamServer

    slices, per_producer = _workload(config)
    k = config.k_values[-1]
    benchmark.group = f"ingest service, k={k}"
    total = 4 * per_producer
    benchmark.extra_info["updates"] = total
    benchmark.extra_info["followers"] = 2

    warm = FrequentItemsSketch(k, backend="columnar", seed=0)
    asyncio.run(_run(warm, slices[:2], 1))

    async def fanout_run():
        from contextlib import AsyncExitStack

        leader = IngestPipeline(
            FrequentItemsSketch(k, backend="columnar", seed=config.seed),
            config=_pipe_config(),
            replication=ReplicationManager(),
        )
        async with AsyncExitStack() as stack:
            await stack.enter_async_context(leader)
            server = await stack.enter_async_context(StreamServer(leader))
            followers = []
            for _ in range(2):
                pipe = IngestPipeline(
                    FrequentItemsSketch(
                        k, backend="columnar", seed=config.seed
                    ),
                    config=_pipe_config(),
                    replica=True,
                )
                await stack.enter_async_context(pipe)
                follower = FollowerService(pipe, "127.0.0.1", server.port)
                await follower.start()
                followers.append((pipe, follower))

            async def producer():
                for items, weights in slices:
                    await leader.submit(items, weights)

            await asyncio.gather(*(producer() for _ in range(4)))
            await leader.drain()
            for _pipe, follower in followers:
                await follower.wait_for_seq(leader.applied_seq, timeout=120.0)
            blobs = (
                leader.sketch.to_bytes(),
                [pipe.sketch.to_bytes() for pipe, _f in followers],
            )
            for _pipe, follower in followers:
                await follower.stop()
        return blobs

    leader_blob, follower_blobs = benchmark.pedantic(
        lambda: asyncio.run(fanout_run()), rounds=1, iterations=1
    )
    assert all(blob == leader_blob for blob in follower_blobs), (
        "every caught-up follower must be byte-identical to the leader"
    )
    seconds = benchmark.stats.stats.mean
    updates_per_sec = total / seconds
    benchmark.extra_info["updates_per_sec"] = updates_per_sec
    assert updates_per_sec >= 0.4 * GATE_UPDATES_PER_SEC, (
        f"2-follower fan-out throughput {updates_per_sec:,.0f}/s below "
        f"0.4x the {GATE_UPDATES_PER_SEC:,}/s single-node gate"
    )


#: 4 workers must beat 1 worker by this factor — on machines where the
#: workers actually get their own cores.
CLUSTER_SCALING_GATE = 2.5


async def _run_cluster(config, slices, per_producer, num_workers):
    from repro.service.cluster import ClusterConfig, WorkerPool

    import time

    k = config.k_values[-1]
    cluster_config = ClusterConfig(
        num_workers=num_workers, default_k=k, default_seed=config.seed
    )
    tenants = [f"bench-t{i}" for i in range(4)]
    async with WorkerPool(cluster_config) as pool:
        for name in tenants:
            await pool.create_tenant(name)

        async def producer(name):
            for items, weights in slices:
                await pool.submit(name, items, weights)

        start = time.perf_counter()
        await asyncio.gather(*(producer(name) for name in tenants))
        await pool.drain()
        seconds = time.perf_counter() - start
    return seconds, len(tenants) * per_producer


def test_cluster_scaling_gate(benchmark, config):
    """4-worker cluster >= 2.5x its 1-worker figure (>= 4 cores only;
    recorded but not enforced on smaller runners)."""
    slices, per_producer = _workload(config)
    k = config.k_values[-1]
    benchmark.group = f"ingest service, k={k}"
    cores = os.cpu_count() or 1
    benchmark.extra_info["cpu_count"] = cores

    # Warm-up: one tiny pool exercise (fork + shm setup out of timing).
    asyncio.run(_run_cluster(config, slices[:1], per_producer, 1))

    one_seconds, total = asyncio.run(
        _run_cluster(config, slices, per_producer, 1)
    )

    def run():
        return asyncio.run(_run_cluster(config, slices, per_producer, 4))

    four_seconds, _total = benchmark.pedantic(run, rounds=1, iterations=1)
    scaling = one_seconds / four_seconds
    benchmark.extra_info["updates"] = total
    benchmark.extra_info["workers_1_updates_per_sec"] = total / one_seconds
    benchmark.extra_info["workers_4_updates_per_sec"] = total / four_seconds
    benchmark.extra_info["scaling_vs_1w"] = scaling
    benchmark.extra_info["gate_enforced"] = cores >= 4
    if cores >= 4:
        assert scaling >= CLUSTER_SCALING_GATE, (
            f"4-worker cluster scaled only {scaling:.2f}x over 1 worker "
            f"on a {cores}-core machine (gate: {CLUSTER_SCALING_GATE}x)"
        )


def test_failover_mttr_gate(benchmark, config):
    """Kill-leader failover: write availability back within 5x the
    heartbeat miss window, exactly one idempotent resubmit, exact
    counts preserved across the leadership change."""
    from repro.bench.figures import FAILOVER_MISS_WINDOW, failover_mttr_metrics

    k = config.k_values[-1]
    benchmark.group = f"ingest service, k={k}"
    metrics = benchmark.pedantic(
        lambda: failover_mttr_metrics(config.seed), rounds=1, iterations=1
    )
    for key, value in metrics.items():
        benchmark.extra_info[key] = value
    gate = 5.0 * FAILOVER_MISS_WINDOW
    assert metrics["mttr_seconds"] <= gate, (
        f"failover MTTR {metrics['mttr_seconds']:.2f}s exceeds the "
        f"{gate:.2f}s gate (5x the {FAILOVER_MISS_WINDOW}s miss window)"
    )
    assert metrics["detection_seconds"] <= metrics["mttr_seconds"]
    assert metrics["epoch"] >= 1, "promotion must advance the epoch"
    # Exactly-once across the failover: the one in-flight frame the
    # crash ate is resubmitted once, and nothing is lost or double
    # counted (the workload is an exact-count oracle).
    assert metrics["client_resubmits"] == 1
    assert metrics["exactly_once"] is True
    assert metrics["survivor_byte_identical"] is True


def test_bench_serve_json_failover_block():
    """The published BENCH_serve.json must carry the failover MTTR
    block, and its recorded MTTR must pass its own recorded gate."""
    path = Path(__file__).parent.parent / "BENCH_serve.json"
    document = json.loads(path.read_text())
    failover = document["failover"]
    for key in (
        "nodes",
        "heartbeat_miss_window",
        "detection_seconds",
        "election_seconds",
        "mttr_seconds",
        "client_resubmits",
        "exactly_once",
        "survivor_byte_identical",
        "gate_mttr_max_seconds",
    ):
        assert key in failover, f"failover block missing {key!r}"
    assert failover["mttr_seconds"] <= failover["gate_mttr_max_seconds"]
    assert failover["client_resubmits"] == 1
    assert failover["exactly_once"] is True
    assert failover["survivor_byte_identical"] is True
    assert document["gates"]["failover_mttr_seconds"] == pytest.approx(
        failover["mttr_seconds"]
    )


def test_bench_serve_json_cluster_block():
    """The published BENCH_serve.json must carry the cluster metadata
    block and the cluster + fan-out rows the ISSUE-8 gates name."""
    path = Path(__file__).parent.parent / "BENCH_serve.json"
    document = json.loads(path.read_text())
    modes = {row["mode"] for row in document["rows"]}
    assert {"cluster-1w", "cluster-4w", "pipeline-4p-repl2"} <= modes
    cluster = document["cluster"]
    for key in (
        "routing",
        "vnodes",
        "frame_transport",
        "tenants",
        "cpu_count",
        "workers_1_updates_per_sec",
        "workers_4_updates_per_sec",
        "per_worker_updates_per_sec",
        "scaling_vs_1w",
        "gate_enforced",
    ):
        assert key in cluster, f"cluster block missing {key!r}"
    assert cluster["routing"] == "ketama"
    assert cluster["scaling_vs_1w"] > 0
    assert document["gates"]["cluster_scaling_vs_1w"] == pytest.approx(
        cluster["scaling_vs_1w"]
    )
    assert document["gates"]["pipeline_4p_repl2_updates_per_sec"] > 0
    fanout = document["replication_fanout"]
    assert fanout["followers"] == 2
    assert fanout["byte_identical"] is True


def test_report_table(benchmark, config, write_report):
    table = benchmark.pedantic(
        lambda: serve_throughput_table(config), rounds=1, iterations=1
    )
    write_report("serve", table)
    gate = table.cell({"mode": "pipeline-4p"}, "updates_per_sec")
    assert gate >= GATE_UPDATES_PER_SEC
