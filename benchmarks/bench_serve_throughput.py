"""Streaming ingest service: sustained throughput under concurrency.

pytest-benchmark timings for the asyncio :class:`~repro.service.
pipeline.IngestPipeline` under 1 and 4 concurrent producers, a report
benchmark regenerating the full service table
(``benchmarks/out/serve.txt``), and the subsystem's acceptance gates:

* **throughput** — the pipeline must sustain at least 1M applied
  updates/sec from 4 concurrent producers on the quick Zipf workload
  (the ISSUE-5 acceptance figure; measured ~2.5M/s on one CI core).
* **fidelity** — the served sketch must be bit-identical to a direct
  ``update_batch`` feed of the same stream: the service repackages the
  stream, it must not change it.
* **durability overhead** — with WAL + snapshots enabled the pipeline
  must keep at least half its no-durability throughput (the log is an
  append + CRC per micro-batch, not a per-update cost).
* **replication overhead** — with one live TCP follower attached (the
  clock stopping only when the *replica* has applied the last
  micro-batch) the pipeline must sustain at least half the single-node
  4-producer gate, and the follower's serialized blob must be
  byte-identical to the leader's.
"""

import asyncio

import pytest

from repro.bench.figures import (
    serve_pipeline_config,
    serve_throughput_table,
    serve_workload,
)
from repro.core.frequent_items import FrequentItemsSketch
from repro.service.pipeline import IngestPipeline
from repro.service.snapshot import SnapshotManager

GATE_UPDATES_PER_SEC = 1_000_000

#: The gate measures exactly the configuration the published figure
#: (BENCH_serve.json) reports — both come from repro.bench.figures.
_workload = serve_workload
_pipe_config = serve_pipeline_config


async def _run(sketch, slices, num_producers, snapshots=None):
    pipeline = IngestPipeline(sketch, config=_pipe_config(), snapshots=snapshots)
    async with pipeline:
        async def producer():
            for items, weights in slices:
                await pipeline.submit(items, weights)

        await asyncio.gather(*(producer() for _ in range(num_producers)))
        await pipeline.drain()
    return pipeline


@pytest.mark.parametrize("num_producers", (1, 4))
def test_pipeline_throughput(benchmark, config, num_producers):
    slices, per_producer = _workload(config)
    k = config.k_values[-1]
    benchmark.group = f"ingest service, k={k}"
    benchmark.extra_info["producers"] = num_producers
    total = num_producers * per_producer
    benchmark.extra_info["updates"] = total

    # Warm-up outside the timed region.
    warm = FrequentItemsSketch(k, backend="columnar", seed=0)
    asyncio.run(_run(warm, slices[:2], 1))

    def run():
        sketch = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
        asyncio.run(_run(sketch, slices, num_producers))
        return sketch

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.stream_weight > 0
    seconds = benchmark.stats.stats.mean
    updates_per_sec = total / seconds
    benchmark.extra_info["updates_per_sec"] = updates_per_sec
    if num_producers == 4:
        # The ISSUE-5 acceptance gate.
        assert updates_per_sec >= GATE_UPDATES_PER_SEC, (
            f"4-producer service throughput {updates_per_sec:,.0f}/s "
            f"below the {GATE_UPDATES_PER_SEC:,}/s gate"
        )


def test_service_feed_bit_identical(config):
    slices, _per_producer = _workload(config)
    k = config.k_values[-1]
    sketch = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
    asyncio.run(_run(sketch, slices, 1))
    reference = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
    for items, weights in slices:
        reference.update_batch(items, weights)
    assert sketch.to_bytes() == reference.to_bytes()


def test_durability_overhead_bounded(benchmark, config, tmp_path):
    slices, per_producer = _workload(config)
    k = config.k_values[-1]
    benchmark.group = f"ingest service, k={k}"

    import time

    warm = FrequentItemsSketch(k, backend="columnar", seed=0)
    asyncio.run(_run(warm, slices[:2], 1))

    plain = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
    start = time.perf_counter()
    asyncio.run(_run(plain, slices, 4))
    plain_seconds = time.perf_counter() - start

    def run():
        sketch = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
        manager = SnapshotManager(str(tmp_path / "wal"))
        asyncio.run(_run(sketch, slices, 4, snapshots=manager))
        return sketch

    benchmark.pedantic(run, rounds=1, iterations=1)
    wal_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["overhead"] = wal_seconds / plain_seconds
    assert wal_seconds <= 2.0 * plain_seconds, (
        f"durability costs {wal_seconds / plain_seconds:.2f}x "
        "(gate: <= 2x the in-memory pipeline)"
    )


def test_replicated_throughput_gate(benchmark, config):
    """One follower attached over TCP: >= 0.5x the 4-producer gate,
    byte-identical replica at the end."""
    from repro.service.replication import FollowerService, ReplicationManager
    from repro.service.server import StreamServer

    slices, per_producer = _workload(config)
    k = config.k_values[-1]
    benchmark.group = f"ingest service, k={k}"
    total = 4 * per_producer
    benchmark.extra_info["updates"] = total

    warm = FrequentItemsSketch(k, backend="columnar", seed=0)
    asyncio.run(_run(warm, slices[:2], 1))

    async def replicated_run():
        leader = IngestPipeline(
            FrequentItemsSketch(k, backend="columnar", seed=config.seed),
            config=_pipe_config(),
            replication=ReplicationManager(),
        )
        async with leader:
            server = StreamServer(leader)
            async with server:
                follower_pipe = IngestPipeline(
                    FrequentItemsSketch(
                        k, backend="columnar", seed=config.seed
                    ),
                    config=_pipe_config(),
                    replica=True,
                )
                async with follower_pipe:
                    follower = FollowerService(
                        follower_pipe, "127.0.0.1", server.port
                    )
                    await follower.start()

                    async def producer():
                        for items, weights in slices:
                            await leader.submit(items, weights)

                    await asyncio.gather(*(producer() for _ in range(4)))
                    await leader.drain()
                    await follower.wait_for_seq(
                        leader.applied_seq, timeout=120.0
                    )
                    blobs = (
                        leader.sketch.to_bytes(),
                        follower_pipe.sketch.to_bytes(),
                    )
                    await follower.stop()
        return blobs

    leader_blob, follower_blob = benchmark.pedantic(
        lambda: asyncio.run(replicated_run()), rounds=1, iterations=1
    )
    assert follower_blob == leader_blob, (
        "the caught-up follower must be byte-identical to the leader"
    )
    seconds = benchmark.stats.stats.mean
    updates_per_sec = total / seconds
    benchmark.extra_info["updates_per_sec"] = updates_per_sec
    assert updates_per_sec >= 0.5 * GATE_UPDATES_PER_SEC, (
        f"replicated throughput {updates_per_sec:,.0f}/s below half the "
        f"{GATE_UPDATES_PER_SEC:,}/s single-node gate"
    )


def test_report_table(benchmark, config, write_report):
    table = benchmark.pedantic(
        lambda: serve_throughput_table(config), rounds=1, iterations=1
    )
    write_report("serve", table)
    gate = table.cell({"mode": "pipeline-4p"}, "updates_per_sec")
    assert gate >= GATE_UPDATES_PER_SEC
