"""Sharded ingestion engine: parallel shard ingest vs flat columnar.

Per-shard-count pytest-benchmark timings for the partition-and-ingest
path, a report benchmark regenerating the full shards table
(``benchmarks/out/shard.txt``), and the acceptance gates of the sharded
subsystem:

* **throughput** — 4-shard parallel batch ingest at least 2x the flat
  columnar batch ingest on the quick Zipf workload.  The mechanism is
  algorithmic, so it holds even on a single core: the table is sized so
  a flat sketch overflows (decrement passes segment every batch) while
  each shard's key subset fits its own ``k`` counters, and on multi-core
  hosts the shard ingests additionally overlap.
* **quality** — the sharded sketch's ``heavy_hitters`` must cover every
  true heavy hitter (recall 1.0) with every reported estimate inside
  the summed per-shard error bound, on the same stream a flat sketch is
  held to.
"""

import pytest

from repro.bench.figures import sharded_throughput_table
from repro.bench.harness import (
    feed_batches,
    num_batched_updates,
    zipf_weighted_batches,
    zipf_weighted_stream,
)
from repro.core.frequent_items import FrequentItemsSketch
from repro.core.row import ErrorType
from repro.sharded.sketch import ShardedFrequentItemsSketch
from repro.streams.exact import ExactCounter

SHARD_COUNTS = (1, 2, 4, 8)
PHI = 0.01


def _k(config) -> int:
    # Deployment sizing, as in the figures table: k within a small
    # factor of the distinct-key count.
    return 4 * config.k_values[-1]


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_sharded_ingest_throughput(benchmark, config, num_shards):
    batches = zipf_weighted_batches(
        config.num_updates, config.unique_sources, 1.05, config.seed
    )
    k = _k(config)
    benchmark.group = f"sharded ingestion, k={k}"
    benchmark.extra_info["num_shards"] = num_shards
    benchmark.extra_info["updates"] = num_batched_updates(batches)

    def run():
        sketch = ShardedFrequentItemsSketch(k, num_shards=num_shards, seed=config.seed)
        feed_batches(sketch, batches)
        return sketch

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.stats.updates == num_batched_updates(batches)
    result.close()


def test_sharded_report(benchmark, config, write_report):
    benchmark.group = "sharded full table"

    def run():
        return sharded_throughput_table(config)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("shard", table)

    # The acceptance bar of the sharded ingestion engine: on the Zipf
    # workload, 4-shard parallel batch ingest beats the single-sketch
    # columnar batch path.  The bar was 2x when the flat path paid
    # np.unique sorts and per-victim purge walks; the zero-sort grouper
    # and survivor-rebuild purge roughly doubled flat throughput, which
    # shrinks the *relative* sharded win (its main single-core edge is
    # rarer decrement passes on the 4x-larger aggregate table) even
    # though absolute sharded throughput went up.  Measured ~1.8-2.3x
    # on one core, more with real parallelism; best-of-3 per cell.
    speedup = table.cell({"mode": "sharded", "shards": 4}, "speedup_vs_flat")
    assert speedup >= 1.4, (
        f"4-shard ingest only {speedup:.2f}x the flat columnar batch path"
    )


def test_sharded_heavy_hitters_match_flat_guarantees(config):
    """Sharded answers carry the flat sketch's guarantees on one stream."""
    batches = zipf_weighted_batches(
        config.num_updates, config.unique_sources, 1.05, config.seed
    )
    k = _k(config)
    exact = ExactCounter()
    exact.update_all(
        zipf_weighted_stream(
            config.num_updates, config.unique_sources, 1.05, config.seed
        )
    )
    sharded = ShardedFrequentItemsSketch(k, num_shards=4, seed=config.seed)
    feed_batches(sharded, batches)
    flat = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
    feed_batches(flat, batches)

    assert sharded.stream_weight == exact.total_weight == flat.stream_weight

    true_hh = exact.heavy_hitters(PHI)
    assert true_hh, "workload must produce at least one true heavy hitter"
    reported = sharded.heavy_hitters(PHI, ErrorType.NO_FALSE_NEGATIVES)
    reported_items = {row.item for row in reported}
    # Recall of true heavy hitters must be exactly 1.0.
    recall = len(reported_items & set(true_hh)) / len(true_hh)
    assert recall == 1.0, f"missed true heavy hitters: recall {recall:.3f}"

    # Every reported estimate obeys the summed per-shard error bound,
    # and the bounds bracket the true frequency.
    bound = sharded.maximum_error
    for row in reported:
        truth = exact.frequency(row.item)
        assert row.lower_bound <= truth <= row.upper_bound
        assert abs(row.estimate - truth) <= bound + 1e-9
    sharded.close()
