"""Figure 1: update-throughput comparison of SMED, SMIN, RBMC, MHE.

Per-algorithm benchmarks at the two extreme k values of the sweep give
pytest-benchmark timings; the report benchmark regenerates the full
figure (both equal-space and equal-counters panels) and writes it to
``benchmarks/out/fig1.txt``.

Expected shape (paper Section 4.3): SMED fastest by a wide margin; RBMC
and SMIN pay frequent Θ(k) decrement passes; MHE pays O(log k) heap
maintenance on every update.
"""

import pytest

from repro.baselines.factory import make_algorithm
from repro.bench.figures import FOUR_ALGORITHMS, fig1_runtime
from repro.bench.harness import feed_stream, packet_stream


@pytest.mark.parametrize("algorithm", FOUR_ALGORITHMS)
@pytest.mark.parametrize("k_index", [0, -1], ids=["smallest_k", "largest_k"])
def test_update_throughput(benchmark, config, algorithm, k_index):
    stream = packet_stream(config)
    k = config.k_values[k_index]
    benchmark.group = f"fig1 update throughput, k={k}"
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["k"] = k
    benchmark.extra_info["updates"] = len(stream)

    def run():
        instance = make_algorithm(algorithm, k, seed=config.seed, backend="dict")
        feed_stream(instance, stream)
        return instance

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.stats.updates == len(stream)


def test_fig1_report(benchmark, config, write_report):
    benchmark.group = "fig1 full figure"

    def run():
        return fig1_runtime(config)

    equal_space, equal_counters = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("fig1", equal_space, equal_counters)

    # Shape assertions.  The deterministic face of the paper's speed
    # argument is the per-update work: SMED scans fewer counters per
    # update than SMIN/RBMC at every k (its decrement passes free ~half
    # the table, theirs free only the minima), and it does no heap work
    # while MHE sifts on every update.  Wall-clock ordering is asserted
    # only where the rival's work volume actually separates the
    # algorithms — at large k the quick trace barely overflows the table
    # (the Section 4.2 convergence regime) and 20ms timings are noise;
    # the adversarial benchmark enforces the wall-clock gap robustly.
    for table in (equal_space, equal_counters):
        for k in config.k_values:
            smed_seconds = table.cell({"algorithm": "SMED", "k": k}, "seconds")
            smed_scan = table.cell(
                {"algorithm": "SMED", "k": k}, "scan_per_update"
            )
            assert table.cell({"algorithm": "SMED", "k": k}, "heap_sifts") == 0
            for rival in ("SMIN", "RBMC"):
                rival_scan = table.cell(
                    {"algorithm": rival, "k": k}, "scan_per_update"
                )
                assert smed_scan <= rival_scan + 1e-12, (
                    f"SMED scans more than {rival} at k={k}"
                )
                rival_decrements = table.cell(
                    {"algorithm": rival, "k": k}, "decrements"
                )
                if rival_decrements >= 1_000:  # genuinely separated regime
                    rival_seconds = table.cell(
                        {"algorithm": rival, "k": k}, "seconds"
                    )
                    assert smed_seconds < rival_seconds, (
                        f"SMED not faster than {rival} at k={k} despite "
                        f"{rival_decrements} decrement passes"
                    )
            assert table.cell({"algorithm": "MHE", "k": k}, "heap_sifts") > 0
