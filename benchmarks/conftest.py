"""Shared benchmark fixtures.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``quick`` (default),
``medium``, or ``paper``.  Every figure's full table is also written to
``benchmarks/out/<name>.txt`` as the benchmarks run, so a
``pytest benchmarks/bench_*.py`` run leaves the paper-shaped reports
on disk alongside pytest-benchmark's timing table.  (The files are
named ``bench_*.py``, outside pytest's default collection pattern, so
they must be named explicitly.)
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.harness import SCALES

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def config():
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if scale not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}")
    return SCALES[scale]


@pytest.fixture(scope="session")
def write_report():
    OUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, *tables) -> None:
        text = "\n\n".join(table.to_text() for table in tables)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _write
