"""The Section 1.3 premise: counter-based beats sketch/quantile classes.

Cormode and Hadjieleftheriou's finding — which the paper verifies and
builds on — is that counter-based algorithms dominate linear sketches
and quantile-style algorithms in speed, space, and accuracy on insertion
streams.  This benchmark reproduces the comparison at a shared byte
budget and writes ``benchmarks/out/context.txt``.
"""

import pytest

from repro.baselines.count_min import CountMinSketch
from repro.baselines.factory import make_smed
from repro.bench.figures import context_table
from repro.bench.harness import feed_stream, packet_stream
from repro.metrics.space import space_model_bytes


@pytest.mark.parametrize("family", ["counter", "sketch"])
def test_class_throughput(benchmark, config, family):
    stream = packet_stream(config)
    k = config.k_values[len(config.k_values) // 2]
    benchmark.group = "context: algorithm classes"
    benchmark.extra_info["family"] = family

    def run():
        if family == "counter":
            instance = make_smed(k, seed=config.seed)
        else:
            budget = space_model_bytes("smed", k)
            width = 1
            while 8 * 5 * (width * 2) <= budget:
                width *= 2
            instance = CountMinSketch(5, width, seed=config.seed)
        feed_stream(instance, stream)
        return instance

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.stats.updates == len(stream)


def test_context_report(benchmark, config, write_report):
    benchmark.group = "context: algorithm classes"

    def run():
        return context_table(config)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("context", table)

    by_name = {row["algorithm"]: row for row in table.rows}
    smed = by_name["SMED (counter)"]
    # Counter-based wins on speed against every sketch entry...
    for name, row in by_name.items():
        if "sketch" in name:
            assert smed["seconds"] < row["seconds"], name
    # ...and on accuracy against the plain CountMin at equal budget.
    assert smed["max_error"] <= by_name["CountMin (sketch)"]["max_error"]
