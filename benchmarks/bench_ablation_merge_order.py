"""Ablation: the Section 3.2 merge-order note, plus adversarial inputs.

Merging two summaries that share a hash function by iterating the
source table front-to-back risks clustering the destination's probes;
random order (what Algorithm 5 specifies) avoids it.  Also benchmarks
our merge on the RBMC-killer stream — merge uses the update path, so its
worst-case behaviour matters.  Report: ``benchmarks/out/merge_order.txt``.
"""

from repro.baselines.factory import make_smed
from repro.bench.figures import ablation_merge_order
from repro.bench.harness import feed_stream
from repro.streams.adversarial import rbmc_killer_stream


def test_merge_order_report(benchmark, config, write_report):
    benchmark.group = "ablation: merge iteration order"

    def run():
        return ablation_merge_order(config)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("merge_order", table)
    # Both orders complete with sane probe counts; the in-order variant
    # is the one that *may* cluster (reported, not asserted — the effect
    # is distribution-dependent).
    assert all(probes > 0 for probes in table.column("probes"))


def test_merge_under_adversarial_fill(benchmark, config):
    """Merge throughput when the destination sits at the decrement edge."""
    k = config.k_values[-1]
    benchmark.group = "ablation: merge under adversarial fill"

    destination = make_smed(k, seed=1)
    feed_stream(destination, rbmc_killer_stream(k, 10_000.0, 4 * k))
    source = make_smed(k, seed=2)
    feed_stream(source, rbmc_killer_stream(k, 5_000.0, 4 * k, id_offset=10**9))

    def run():
        return destination.copy().merge(source)

    merged = benchmark.pedantic(run, rounds=1, iterations=1)
    assert merged.num_active <= k
