"""Setup shim.

Metadata lives in pyproject.toml; this file exists so the package can be
installed editable (``pip install -e .``) in offline environments whose
setuptools/pip combination lacks the ``wheel`` package required by the
PEP 517 editable path.
"""

from setuptools import setup

setup()
