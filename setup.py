"""Build script — including the optional native kernels.

The package is pure Python + NumPy and needs no build step to run
(``PYTHONPATH=src`` suffices).  When a C compiler is available, the
optional extension ``repro._native._kernels`` — compiled hot paths for
batch ingest, bit-identical to the NumPy fallback — is built in place
with::

    python setup.py build_ext --inplace

A failed or skipped build leaves the package fully functional on the
NumPy paths (``repro.native`` dispatches on the extension's presence).
"""

import os
import sys

import numpy
from setuptools import Extension, setup

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "src"))

from repro._native import EXTRA_COMPILE_ARGS  # noqa: E402

setup(
    name="repro-frequent-items",
    package_dir={"": "src"},
    ext_modules=[
        Extension(
            "repro._native._kernels",
            sources=["src/repro/_native/_kernels.c"],
            include_dirs=[numpy.get_include()],
            extra_compile_args=EXTRA_COMPILE_ARGS,
        )
    ],
)
