"""Shared test utilities: exact oracles, golden hashes, canned workloads.

These were previously duplicated (with drift) across
``test_core_batch_equivalence.py``, ``test_extensions_rebase.py``,
``test_sharded_sketch.py``, and ``test_sharded_merge.py``; the service
and differential-fuzz suites use them too.  Import as a plain module
(``from helpers import ...``) — pytest puts each test's directory on
``sys.path``.
"""

from __future__ import annotations

import asyncio
import hashlib

import numpy as np

from repro.core.frequent_items import FrequentItemsSketch
from repro.streams.exact import ExactCounter
from repro.streams.zipf import ZipfianStream


def sha256_hex(blob: bytes) -> str:
    """Hex digest used for golden-state pinning."""
    return hashlib.sha256(blob).hexdigest()


def zipf_batch(n=20_000, universe=4_000, seed=5, alpha=1.05,
               weight_low=1, weight_high=100):
    """One ``(items, weights)`` array pair of a canned Zipf workload."""
    stream = ZipfianStream(
        n, universe=universe, alpha=alpha, seed=seed,
        weight_low=weight_low, weight_high=weight_high,
    )
    batches = list(stream.batches(batch_size=n))
    assert len(batches) == 1
    return batches[0]


def exact_of(*batches) -> ExactCounter:
    """An :class:`ExactCounter` oracle over ``(items, weights)`` pairs."""
    exact = ExactCounter()
    for items, weights in batches:
        for item, weight in zip(items.tolist(), weights.tolist()):
            exact.update(item, weight)
    return exact


def exact_of_updates(updates) -> ExactCounter:
    """An oracle over an iterable of ``(item, weight)`` updates."""
    exact = ExactCounter()
    for item, weight in updates:
        exact.update(item, weight)
    return exact


def scalar_feed(k, backend, seed, updates, **kwargs) -> FrequentItemsSketch:
    """A sketch fed through the scalar ``update`` loop."""
    sketch = FrequentItemsSketch(k, backend=backend, seed=seed, **kwargs)
    for item, weight in updates:
        sketch.update(item, weight)
    return sketch


def batch_feed(k, backend, seed, updates, chunk, **kwargs) -> FrequentItemsSketch:
    """The same workload fed through ``update_batch`` in ``chunk``-sized slices."""
    sketch = FrequentItemsSketch(k, backend=backend, seed=seed, **kwargs)
    for start in range(0, len(updates), chunk):
        part = updates[start : start + chunk]
        items = np.array([item for item, _weight in part], dtype=np.uint64)
        weights = np.array([weight for _item, weight in part], dtype=np.float64)
        sketch.update_batch(items, weights)
    return sketch


async def await_until(predicate, *, timeout=5.0, interval=0.002,
                      message="condition"):
    """Await ``predicate()`` turning truthy, with a hard deadline.

    The async suites' replacement for bare ``asyncio.sleep(guess)``
    waits: a correct run passes as soon as the condition holds (usually
    one poll), a broken one fails *at the deadline* with a diagnostic —
    never flakily in between because a fixed guess was too short for a
    loaded CI worker.
    """
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while True:
        result = predicate()
        if result:
            return result
        if loop.time() >= deadline:
            raise AssertionError(
                f"timed out after {timeout}s waiting for {message}"
            )
        await asyncio.sleep(interval)


async def await_applied_seq(pipeline, seq, *, timeout=5.0):
    """Await ``pipeline.applied_seq`` reaching ``seq`` (deadline-based)."""
    return await await_until(
        lambda: pipeline.applied_seq >= seq, timeout=timeout,
        message=f"applied_seq >= {seq} (at {pipeline.applied_seq})",
    )


def assert_bounds_valid(sketch, exact, tolerance=1e-9) -> None:
    """Every deterministic guarantee of Section 2.3.1, against an oracle:
    ``lower <= f <= upper``, ``|estimate - f| <= maximum_error``, and the
    stream weights agree."""
    assert abs(sketch.stream_weight - exact.total_weight) <= max(
        tolerance, tolerance * abs(exact.total_weight)
    )
    for item, frequency in exact.items():
        assert sketch.lower_bound(item) <= frequency + tolerance
        assert sketch.upper_bound(item) >= frequency - tolerance
        assert abs(sketch.estimate(item) - frequency) <= (
            sketch.maximum_error + tolerance
        )
