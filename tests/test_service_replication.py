"""Leader/follower replication: sync, bootstrap, promotion, staleness.

The functional half of the replication story (the fault-injection matrix
lives in ``test_replication_faults.py``): a follower tracking a live
leader holds *byte-identical* state — serialized blob and PRNG words —
because it replays the identical micro-batches through the identical
engine; bootstrap and seq-gap catch-up arrive as shipped snapshots;
promotion flips a read replica into a writable leader; and the
read-replica query surface stamps every answer with the sequence it was
read at.
"""

import asyncio

import numpy as np
import pytest

from repro import (
    FrequentItemsSketch,
    IngestPipeline,
    PipelineConfig,
    ReadOnlyReplicaError,
    ReplicationError,
    SnapshotManager,
    StreamServer,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.replication import (
    FollowerService,
    ReplicationConfig,
    ReplicationManager,
)

from replication_harness import CLUSTER_CFG, FAST_REPL, ReplicaCluster
from test_service_recovery import SKETCH_MAKERS, make_feed, rng_states

pytestmark = [pytest.mark.service, pytest.mark.replication]


def run(coroutine):
    return asyncio.run(coroutine)


def make_leader(make_sketch, **kwargs):
    return IngestPipeline(
        make_sketch(), config=CLUSTER_CFG,
        replication=ReplicationManager(kwargs.pop("repl", FAST_REPL)),
        **kwargs,
    )


def make_follower_pipe(make_sketch):
    return IngestPipeline(make_sketch(), config=CLUSTER_CFG, replica=True)


@pytest.mark.parametrize("kind", sorted(SKETCH_MAKERS))
def test_follower_tracks_leader_byte_identically(kind):
    """The core property, per sketch kind: after syncing, leader and
    follower serialize to the same bytes with the same PRNG words."""
    make_sketch = SKETCH_MAKERS[kind]
    feed = make_feed(num_batches=12, batch_size=300)

    async def main():
        leader = make_leader(make_sketch)
        follower_pipe = make_follower_pipe(make_sketch)
        async with leader:
            async with StreamServer(leader) as server:
                follower = FollowerService(
                    follower_pipe, "127.0.0.1", server.port, config=FAST_REPL
                )
                async with follower_pipe, follower:
                    for items, weights in feed:
                        await leader.submit(items, weights, wait_applied=True)
                    await follower.wait_for_seq(leader.applied_seq)
                    assert follower_pipe.applied_seq == leader.applied_seq
                    assert (
                        follower_pipe.sketch.to_bytes()
                        == leader.sketch.to_bytes()
                    )
                    assert rng_states(follower_pipe.sketch) == rng_states(
                        leader.sketch
                    )

    run(main())


def test_bootstrap_replaces_mismatched_fresh_sketch():
    """A fresh follower's own sketch (any seed/k) is irrelevant: the
    bootstrap snapshot installs the leader's canonical state."""

    async def main():
        leader = make_leader(SKETCH_MAKERS["flat-probing"])
        # Deliberately different k, seed, and backend.
        follower_pipe = IngestPipeline(
            FrequentItemsSketch(96, backend="dict", seed=999),
            config=CLUSTER_CFG, replica=True,
        )
        feed = make_feed(num_batches=8, batch_size=200)
        async with leader:
            for items, weights in feed[:5]:
                await leader.submit(items, weights, wait_applied=True)
            async with StreamServer(leader) as server:
                follower = FollowerService(
                    follower_pipe, "127.0.0.1", server.port, config=FAST_REPL
                )
                async with follower_pipe, follower:
                    await follower.wait_for_seq(leader.applied_seq)
                    assert follower.snapshots_installed >= 1
                    # ... and live frames keep flowing after the install.
                    for items, weights in feed[5:]:
                        await leader.submit(items, weights, wait_applied=True)
                    await follower.wait_for_seq(leader.applied_seq)
                    assert (
                        follower_pipe.sketch.to_bytes()
                        == leader.sketch.to_bytes()
                    )

    run(main())


def test_ring_overflow_triggers_snapshot_catchup():
    """A follower that reconnects after the leader's replay ring has
    wrapped is caught up by a shipped snapshot, not a replay gap."""

    async def main():
        repl = ReplicationConfig(
            ring_frames=4, retry_initial=0.01, retry_max=0.05,
            max_retries=200, heartbeat_interval=0.1,
        )
        leader = make_leader(SKETCH_MAKERS["flat-probing"], repl=repl)
        follower_pipe = make_follower_pipe(SKETCH_MAKERS["flat-probing"])
        feed = make_feed(num_batches=16, batch_size=150)
        async with leader:
            async with StreamServer(leader) as server:
                follower = FollowerService(
                    follower_pipe, "127.0.0.1", server.port, config=repl
                )
                async with follower_pipe:
                    async with follower:
                        for items, weights in feed[:3]:
                            await leader.submit(
                                items, weights, wait_applied=True
                            )
                        await follower.wait_for_seq(leader.applied_seq)
                    # Follower offline; leader advances far past ring=4.
                    for items, weights in feed[3:]:
                        await leader.submit(items, weights, wait_applied=True)
                    async with follower:
                        await follower.wait_for_seq(leader.applied_seq)
                        assert follower.snapshots_installed >= 1
                        assert (
                            follower_pipe.sketch.to_bytes()
                            == leader.sketch.to_bytes()
                        )

    run(main())


def test_duplicate_frames_are_skipped_not_reapplied():
    """apply_replica_frame is exactly-once-apply: duplicates return
    False and change nothing; gaps refuse loudly."""
    sketch = FrequentItemsSketch(64, seed=3)
    pipeline = IngestPipeline(sketch, replica=True)
    items = np.array([5, 6], dtype=np.uint64)
    weights = np.array([2.0, 3.0])
    assert pipeline.apply_replica_frame(1, items, weights) is True
    before = pipeline.sketch.to_bytes()
    assert pipeline.apply_replica_frame(1, items, weights) is False
    assert pipeline.sketch.to_bytes() == before
    with pytest.raises(ReplicationError, match="gap"):
        pipeline.apply_replica_frame(3, items, weights)
    assert pipeline.applied_seq == 1


def test_replica_rejects_writes_until_promoted():
    async def main():
        pipeline = make_follower_pipe(SKETCH_MAKERS["flat-probing"])
        async with pipeline:
            with pytest.raises(ReadOnlyReplicaError):
                await pipeline.update(1)
            assert pipeline.role == "follower"
            assert pipeline.promote() == 0
            assert pipeline.role == "leader"
            await pipeline.update(1)
            await pipeline.drain()
            assert pipeline.estimate(1) == 1.0

    run(main())


def test_install_snapshot_refuses_rewind():
    pipeline = IngestPipeline(FrequentItemsSketch(64, seed=3), replica=True)
    items = np.array([5], dtype=np.uint64)
    for seq in (1, 2, 3):
        pipeline.apply_replica_frame(seq, items, np.array([1.0]))
    with pytest.raises(ReplicationError, match="rewind|below"):
        pipeline.install_snapshot(FrequentItemsSketch(64, seed=3), 2)


def test_promotion_stops_stream_before_lifting_readonly(tmp_path):
    """REPL PROMOTE through the wire: the old follower answers writes,
    and its state at promotion equals the leader's."""

    async def main():
        cluster = ReplicaCluster(
            SKETCH_MAKERS["flat-columnar-adaptive"], tmp_path
        )
        try:
            await cluster.start_leader()
            await cluster.start_follower()
            feed = make_feed(num_batches=10, batch_size=200)
            await cluster.feed(feed)
            await cluster.sync()

            follower_server = StreamServer(
                cluster.follower_pipe, follower=cluster.follower
            )
            async with follower_server:
                async with await ServiceClient.connect(
                    "127.0.0.1", follower_server.port
                ) as client:
                    status = await client.repl_status()
                    assert status["role"] == "follower"
                    assert status["follower"]["connected"] is True
                    with pytest.raises(ServiceError):
                        await client.update(1)
                    seq = await client.promote()
                    assert seq == cluster.leader.applied_seq
                    assert cluster.leader_state() == cluster.follower_state()
                    await client.update(1)  # now writable
                    status = await client.repl_status()
                    assert status["role"] == "leader"
                    # Promote-of-current-leader is an idempotent no-op
                    # reporting the applied sequence — a retried operator
                    # script must not fail because its first try landed.
                    await cluster.follower_pipe.drain()
                    assert (
                        await client.promote()
                        == cluster.follower_pipe.applied_seq
                    )
        finally:
            await cluster.close()

    run(main())


def test_repl_status_reports_follower_registry():
    async def main():
        leader = make_leader(SKETCH_MAKERS["flat-probing"])
        follower_pipe = make_follower_pipe(SKETCH_MAKERS["flat-probing"])
        async with leader:
            async with StreamServer(leader) as server:
                follower = FollowerService(
                    follower_pipe, "127.0.0.1", server.port, config=FAST_REPL
                )
                async with follower_pipe, follower:
                    await leader.submit(
                        np.arange(10, dtype=np.uint64), wait_applied=True
                    )
                    await follower.wait_for_seq(1)
                    async with await ServiceClient.connect(
                        "127.0.0.1", server.port
                    ) as client:
                        status = await client.repl_status()
                        assert status["role"] == "leader"
                        rows = status["replication"]["followers"]
                        assert len(rows) == 1
                        assert rows[0]["acked_seq"] == 1
                        stats = await client.stats()
                        assert stats["role"] == "leader"

    run(main())


def test_replica_queries_carry_staleness_seq():
    """QEST/QBOUNDS/QHH answer from the replica with the exact applied
    sequence the answer was read at."""

    async def main():
        leader = make_leader(SKETCH_MAKERS["flat-probing"])
        follower_pipe = make_follower_pipe(SKETCH_MAKERS["flat-probing"])
        async with leader:
            async with StreamServer(leader) as server:
                follower = FollowerService(
                    follower_pipe, "127.0.0.1", server.port, config=FAST_REPL
                )
                async with follower_pipe, follower:
                    replica_server = StreamServer(follower_pipe)
                    async with replica_server:
                        for _ in range(3):
                            await leader.submit(
                                np.array([7, 7, 8], dtype=np.uint64),
                                wait_applied=True,
                            )
                        await follower.wait_for_seq(leader.applied_seq)
                        async with await ServiceClient.connect(
                            "127.0.0.1", replica_server.port
                        ) as client:
                            seq, estimate = await client.qest(7)
                            assert seq == 3
                            assert estimate == 6.0
                            seq, low, est, high = await client.qbounds(7)
                            assert seq == 3 and low <= 6.0 <= high
                            seq, pairs = await client.qhh(0.4)
                            assert seq == 3
                            assert pairs and pairs[0][0] == 7

    run(main())


def test_follower_retry_budget_exhausts_cleanly():
    """No leader at all: the follower's bounded backoff runs out, the
    service reports exhausted, and reads still work."""

    async def main():
        follower_pipe = make_follower_pipe(SKETCH_MAKERS["flat-probing"])
        config = ReplicationConfig(
            retry_initial=0.005, retry_max=0.01, max_retries=3
        )
        async with follower_pipe:
            # Port 1 is reserved and closed everywhere this runs.
            follower = FollowerService(
                follower_pipe, "127.0.0.1", 1, config=config
            )
            async with follower:
                from helpers import await_until

                await await_until(
                    lambda: follower.exhausted, timeout=5.0,
                    message="retry budget exhaustion",
                )
                assert follower.last_error is not None
                assert follower_pipe.estimate(1) == 0.0

    run(main())


def test_cli_parses_follow_and_promote():
    from repro.service.__main__ import build_parser, parse_addr

    parser = build_parser()
    args = parser.parse_args(["--follow", "10.0.0.2:9471"])
    assert args.follow == ("10.0.0.2", 9471)
    assert parser.parse_args([]).follow is None
    assert parser.parse_args(["--promote"]).promote is True
    with pytest.raises(SystemExit):
        parser.parse_args(["--follow", "nonsense"])
    with pytest.raises(SystemExit):
        parser.parse_args(["--follow", "host:notaport"])
    assert parse_addr("[::1]:9471") == ("[::1]", 9471)


def test_hello_rejected_without_replication_manager():
    async def main():
        pipeline = IngestPipeline(FrequentItemsSketch(32, seed=1))
        async with pipeline:
            async with StreamServer(pipeline) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"REPL HELLO 0\n")
                await writer.drain()
                line = await reader.readline()
                assert line.startswith(b"ERR")
                writer.close()

    run(main())
