"""ISSUE-8 differential gate: worker count must not change a single bit.

The same tenant-keyed op sequence goes through a 1-worker and a 4-worker
cluster; per-tenant RSNP blobs (sketch wire payload **and** xoroshiro
PRNG state words) must be byte-identical, and the merged global
heavy-hitter rows must match exactly — under both the native C ingest
path and the NumPy fallback, over both frame transports.

Determinism holds by construction (the acceptor chunks at a fixed slot
capacity *before* routing, every frame is one micro-batch, sharded
tenants split with the seeded library partition), and this suite is the
construction's audit.
"""

import asyncio

import pytest

from helpers import sha256_hex, zipf_batch
from repro import native
from repro.service.cluster import ClusterConfig, WorkerPool
from repro.service.snapshot import decode_snapshot

pytestmark = [pytest.mark.cluster, pytest.mark.service]

SLOT_CAPACITY = 2048

#: Three tenants of different shapes, one interleaved op sequence.
TENANTS = {
    "flat-a": dict(k=128, seed=11, shards=0),
    "flat-b": dict(k=64, seed=5, shards=0),
    "shardy": dict(k=96, seed=23, shards=3),
}


def op_sequence():
    """A fixed tenant-keyed op sequence (round-robin over the tenants,
    odd batch sizes so frames straddle chunk boundaries)."""
    ops = []
    for round_index in range(4):
        for tenant_index, tenant in enumerate(TENANTS):
            items, weights = zipf_batch(
                n=5_000 + 123 * tenant_index + 17 * round_index,
                universe=400,
                seed=100 * round_index + tenant_index,
            )
            ops.append((tenant, items, weights))
    return ops


async def run_cluster(num_workers, transport, use_native):
    config = ClusterConfig(
        num_workers=num_workers,
        frame_transport=transport,
        slot_capacity=SLOT_CAPACITY,
        native=use_native,
    )
    async with WorkerPool(config) as pool:
        for tenant, params in TENANTS.items():
            await pool.create_tenant(tenant, **params)
        for tenant, items, weights in op_sequence():
            await pool.submit(tenant, items, weights)
        blobs = {}
        for tenant in TENANTS:
            blobs[tenant] = await pool.tenant_blobs(tenant)
        hh = {
            tenant: await pool.heavy_hitters(tenant, 0.01)
            for tenant in TENANTS
        }
        global_hh = await pool.global_heavy_hitters(0.005)
    return blobs, hh, global_hh


def native_params():
    params = [False]
    if native.available():
        params.append(True)
    return params


@pytest.mark.parametrize("use_native", native_params())
@pytest.mark.parametrize("transport", ["shm", "pipe"])
def test_worker_count_is_invisible(use_native, transport):
    one = asyncio.run(run_cluster(1, transport, use_native))
    four = asyncio.run(run_cluster(4, transport, use_native))

    one_blobs, one_hh, one_global = one
    four_blobs, four_hh, four_global = four

    for tenant in TENANTS:
        assert one_blobs[tenant].keys() == four_blobs[tenant].keys()
        for substream, blob in one_blobs[tenant].items():
            # Byte-identical RSNP blob: wire payload, applied seq, and
            # the xoroshiro PRNG state words all travel inside it.
            assert sha256_hex(blob) == sha256_hex(
                four_blobs[tenant][substream]
            ), f"{substream} diverged between 1w and 4w"
        # The PRNG words specifically, decoded and compared on their own
        # (a blob mismatch would already fail above; this names the
        # culprit when it is the decrement randomness).
        for substream in one_blobs[tenant]:
            one_sketch, one_seq = decode_snapshot(one_blobs[tenant][substream])
            four_sketch, four_seq = decode_snapshot(
                four_blobs[tenant][substream]
            )
            assert one_seq == four_seq
            assert (
                one_sketch.kernel.rng.getstate()
                == four_sketch.kernel.rng.getstate()
            ), f"{substream} PRNG state diverged"
        assert one_hh[tenant] == four_hh[tenant]

    assert one_global == four_global
    _seq, rows = one_global
    assert rows, "the global view should surface heavy hitters"


@pytest.mark.parametrize("use_native", native_params())
def test_native_and_fallback_agree(use_native):
    """The 4-worker cluster's state is also transport-independent: the
    shm and pipe paths ship identical frames."""
    shm = asyncio.run(run_cluster(4, "shm", use_native))
    pipe = asyncio.run(run_cluster(4, "pipe", use_native))
    assert shm[0] == pipe[0]
    assert shm[2] == pipe[2]
