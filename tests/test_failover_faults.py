"""Chaos matrix for automatic failover (ISSUE 9 acceptance).

Every scenario drives a real three-node replica set (quorum 2) through
a fault injected by :mod:`repro.service.faults` and then asserts the
strongest property the deterministic-replication design affords:
**promoted-leader state is byte-identical — serialized sketch bytes and
xoroshiro PRNG state words — to an uninterrupted single-node run** over
the surviving timeline.  The scenarios:

- *kill-leader-auto-promote* — crash the leader; followers detect the
  heartbeat silence, elect the most-caught-up replica, and the cluster
  keeps ingesting with no operator involved.
- *partitioned-minority-cannot-elect* — isolate one node; it stands for
  election but can never reach quorum, so **no split brain**: the
  majority side keeps the one true leader and the healed minority
  rejoins without ever having accepted a write.
- *fenced-ex-leader-rejoin* — partition the leader, let it keep
  accepting writes in its bubble (a *diverged* suffix), elect a new
  leader on the majority side; on heal the ex-leader is fenced by the
  higher epoch, self-demotes, rejects further writes, and truncates its
  diverged WAL suffix on disk while converging byte-identically.
- *disk-full-during-checkpoint* — ENOSPC on the leader's snapshot
  write: the acknowledged batch (replication precedes the checkpoint
  attempt) survives the failover even though the leader's own disk
  could no longer hold it.

The standalone disk-fault tests at the bottom pin the durability
contract under injected write/fsync failures (*no torn-but-accepted
record*) and the corrupt-snapshot quarantine path.

The full matrix is ``slow`` (CI runs it under ``REPRO_NATIVE=1`` and
``=0``); a small cross-section stays in tier 1.
"""

from __future__ import annotations

import asyncio
import contextlib
import errno
import logging
import os

import pytest

from repro import IngestPipeline, SnapshotManager
from repro.errors import (
    ReadOnlyReplicaError,
    SerializationError,
    ServiceClosedError,
)
from repro.service import protocol
from repro.service.faults import PERSISTENT, DiskFaultPlane

from failover_harness import (
    CLUSTER_CFG,
    FAST_FAILOVER,
    FailoverCluster,
    SKETCH_MAKERS,
    make_feed,
    reference_state,
    rng_states,
)

pytestmark = [pytest.mark.service, pytest.mark.replication]


def run(coroutine):
    return asyncio.run(coroutine)


# --------------------------------------------------------------------------
# Scenario drivers


async def kill_leader_scenario(make_sketch, feed, tmp_path, *, rejoin):
    """Crash the leader mid-feed; the cluster elects and continues."""
    reference = reference_state(make_sketch, feed)
    half = len(feed) // 2
    cluster = FailoverCluster(make_sketch, tmp_path)
    try:
        await cluster.start()
        await cluster.feed(feed[:half])
        await cluster.sync()
        await cluster.kill("n0")

        new_leader = await cluster.wait_for_leader(exclude={"n0"})
        coordinator = cluster.nodes[new_leader].coordinator
        assert coordinator.elections_won >= 1
        assert coordinator.epoch >= 1
        assert cluster.leader_ids() == [new_leader]

        await cluster.feed(feed[half:], node_id=new_leader)
        await cluster.sync()
        survivor = next(
            node_id for node_id in cluster.node_ids
            if node_id not in ("n0", new_leader)
        )
        assert cluster.state(new_leader) == reference
        assert cluster.state(survivor) == reference

        if rejoin:
            # The crashed ex-leader recovers from its own directory and
            # rejoins as a follower of the new epoch's leader.
            await cluster.restart("n0")
            await cluster.wait_state_equal("n0", reference)
            assert cluster.nodes["n0"].pipeline.is_replica
            assert cluster.leader_ids() == [new_leader]
    finally:
        await cluster.close()


async def partition_minority_scenario(make_sketch, feed, tmp_path):
    """An isolated minority of one can never elect itself."""
    third = len(feed) // 3
    cluster = FailoverCluster(make_sketch, tmp_path)
    try:
        await cluster.start()
        await cluster.feed(feed[:third])
        await cluster.sync()

        cluster.isolate("n2")
        # The majority side keeps serving writes throughout.
        await cluster.feed(feed[third:2 * third])
        await cluster.sync(["n1"])

        # Sample for four miss windows: the minority detects the
        # "dead" leader and stands, but must never win — quorum is 2
        # and it can reach only itself.
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 4 * FAST_FAILOVER.heartbeat_miss_window
        while loop.time() < deadline:
            assert cluster.leader_ids() == ["n0"], "split brain"
            await asyncio.sleep(0.05)
        minority = cluster.nodes["n2"].coordinator
        assert minority.elections_started >= 1
        assert minority.elections_won == 0
        assert cluster.nodes["n2"].pipeline.is_replica

        cluster.heal("n2")
        await cluster.feed(feed[2 * third:])
        await cluster.sync()
        # The healthy majority refused disruption: same leader, and the
        # established epoch never moved (the minority's failed stands
        # burned only its *own* persisted epoch counter).
        assert cluster.leader_ids() == ["n0"]
        assert cluster.nodes["n0"].pipeline.epoch == 0
        reference = reference_state(make_sketch, feed)
        for node_id in cluster.node_ids:
            assert cluster.state(node_id) == reference, node_id
    finally:
        await cluster.close()


async def fenced_rejoin_scenario(make_sketch, feed, tmp_path):
    """A deposed leader's diverged suffix is fenced and truncated."""
    third = len(feed) // 3
    cluster = FailoverCluster(make_sketch, tmp_path)
    try:
        await cluster.start()
        await cluster.feed(feed[:third])
        await cluster.sync()

        cluster.isolate("n0")
        new_leader = await cluster.wait_for_leader(exclude={"n0"})
        # The bubbled ex-leader keeps accepting writes — a *longer*
        # diverged suffix than the new timeline, so rejoin must rewind
        # (snapshot adoption + timeline reset), not replay forward.
        await cluster.feed(feed[third:], node_id="n0")
        await cluster.feed(feed[third:2 * third], node_id=new_leader)
        assert sorted(cluster.leader_ids()) == sorted(["n0", new_leader])

        cluster.heal("n0")
        # The ex-leader's own peer poll discovers the higher epoch and
        # fences it, even though every announcement was lost to the
        # partition.
        node0 = cluster.nodes["n0"]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 15.0
        while not node0.pipeline.is_replica:
            assert loop.time() < deadline, "ex-leader was never fenced"
            await asyncio.sleep(0.02)
        assert node0.coordinator.demotions >= 1
        items, weights = feed[0]
        with pytest.raises(ReadOnlyReplicaError):
            await node0.pipeline.submit(items, weights)

        # Byte-identity restored to the *new* timeline: the diverged
        # suffix is discarded wholesale.
        reference = reference_state(make_sketch, feed[:2 * third])
        await cluster.wait_state_equal("n0", reference)

        # ... and gone from disk too: offline recovery of the ex-leader's
        # directory lands on the adopted timeline, not the diverged one.
        await cluster.kill("n0")
        recovered = SnapshotManager(node0.directory).recover()
        assert recovered is not None
        sketch, _seq = recovered
        assert (sketch.to_bytes(), rng_states(sketch)) == reference

        await cluster.feed(feed[2 * third:], node_id=new_leader)
        await cluster.sync()
        final = reference_state(make_sketch, feed)
        assert cluster.state(new_leader) == final
    finally:
        await cluster.close()


async def disk_full_checkpoint_scenario(make_sketch, feed, tmp_path):
    """ENOSPC on the leader's checkpoint: acked data survives failover."""
    cluster = FailoverCluster(make_sketch, tmp_path)
    try:
        await cluster.start()
        await cluster.feed(feed[:4])
        await cluster.sync()
        node0 = cluster.nodes["n0"]
        node0.disk.inject(
            "write", path_contains=".rsnap", count=PERSISTENT
        )
        # Batch 5 is WAL-appended, applied, *replicated and acked*
        # before its snapshot trigger (snapshot_every=5) hits the full
        # disk — exactly the ordering that makes the ack durable on the
        # replica set even though the leader's own checkpoint failed.
        await cluster.feed(feed[4:5])
        assert node0.disk.fired >= 1
        items, weights = feed[5]
        with pytest.raises(ServiceClosedError):
            await node0.pipeline.submit(items, weights, wait_applied=True)
        assert isinstance(node0.pipeline.fault, OSError)
        assert node0.pipeline.fault.errno == errno.ENOSPC

        # Replication heartbeats outlive the wounded drain loop, so
        # silence-based detection never fires; the orchestrator (here:
        # the test) puts the node down, as a supervisor would.
        await cluster.sync(["n1", "n2"], seq=5)
        await cluster.kill("n0")
        new_leader = await cluster.wait_for_leader(exclude={"n0"})
        await cluster.sync()
        assert cluster.state(new_leader) == reference_state(
            make_sketch, feed[:5]
        )

        await cluster.feed(feed[5:], node_id=new_leader)
        await cluster.sync()
        reference = reference_state(make_sketch, feed)
        survivor = next(
            node_id for node_id in cluster.node_ids
            if node_id not in ("n0", new_leader)
        )
        assert cluster.state(new_leader) == reference
        assert cluster.state(survivor) == reference
    finally:
        await cluster.close()


# --------------------------------------------------------------------------
# The slow matrix (CI runs it under REPRO_NATIVE=1 and =0)


@pytest.mark.slow
@pytest.mark.parametrize("kind", sorted(SKETCH_MAKERS))
def test_kill_leader_auto_promotes_bit_identically(kind, tmp_path):
    run(kill_leader_scenario(
        SKETCH_MAKERS[kind], make_feed(), tmp_path, rejoin=True
    ))


@pytest.mark.slow
@pytest.mark.parametrize("kind", ["flat-probing", "sharded"])
def test_partitioned_minority_cannot_elect(kind, tmp_path):
    run(partition_minority_scenario(
        SKETCH_MAKERS[kind], make_feed(), tmp_path
    ))


@pytest.mark.slow
@pytest.mark.parametrize("kind", sorted(SKETCH_MAKERS))
def test_fenced_ex_leader_rejoins_truncated(kind, tmp_path):
    run(fenced_rejoin_scenario(SKETCH_MAKERS[kind], make_feed(), tmp_path))


@pytest.mark.slow
@pytest.mark.parametrize("kind", ["flat-probing", "sharded"])
def test_disk_full_during_checkpoint_fails_over(kind, tmp_path):
    run(disk_full_checkpoint_scenario(
        SKETCH_MAKERS[kind], make_feed(), tmp_path
    ))


# --------------------------------------------------------------------------
# Tier-1 cross-section: one fast pass through the tentpole path


def test_kill_leader_cross_section(tmp_path):
    run(kill_leader_scenario(
        SKETCH_MAKERS["flat-probing"],
        make_feed(num_batches=10, batch_size=120),
        tmp_path,
        rejoin=False,
    ))


# --------------------------------------------------------------------------
# Promotion idempotence and announcement fencing


def test_force_promote_is_idempotent(tmp_path):
    """Double-promote is a no-op: same seq, same epoch, one leader."""
    make_sketch = SKETCH_MAKERS["flat-probing"]
    feed = make_feed(num_batches=6, batch_size=120)

    async def scenario():
        cluster = FailoverCluster(make_sketch, tmp_path)
        try:
            await cluster.start()
            await cluster.feed(feed)
            await cluster.sync()
            coordinator = cluster.nodes["n1"].coordinator
            first = await coordinator.force_promote()
            epoch_after_first = coordinator.epoch
            assert not cluster.nodes["n1"].pipeline.is_replica
            # Promote-of-current-leader: answers, changes nothing.
            second = await coordinator.force_promote()
            assert second == first
            assert coordinator.epoch == epoch_after_first
            # The announcement fences the old leader.
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 10.0
            while not cluster.nodes["n0"].pipeline.is_replica:
                assert loop.time() < deadline
                await asyncio.sleep(0.02)
            assert cluster.leader_ids() == ["n1"]
        finally:
            await cluster.close()

    run(scenario())


def test_stale_leader_announcement_is_fenced(tmp_path):
    """A ``REPL LEADER`` at a non-advancing epoch gets an ``ERR`` that
    carries the fencing epoch back to the announcer."""
    make_sketch = SKETCH_MAKERS["flat-probing"]

    async def scenario():
        cluster = FailoverCluster(make_sketch, tmp_path)
        try:
            await cluster.start()
            node0 = cluster.nodes["n0"]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", node0.port
            )
            try:
                writer.write(
                    protocol.encode_leader_line(0, "zz", "127.0.0.1:1")
                )
                await writer.drain()
                reply = (await reader.readline()).decode("ascii")
            finally:
                writer.close()
            assert reply.startswith("ERR")
            assert "epoch" in reply
            assert node0.coordinator.announcements_rejected >= 1
            # The node it tried to depose still leads, unperturbed.
            assert cluster.leader_ids() == ["n0"]
        finally:
            await cluster.close()

    run(scenario())


# --------------------------------------------------------------------------
# Standalone disk-fault contracts (no cluster needed)


def _feed_through(pipeline_feed):
    async def _inner(pipeline):
        for items, weights in pipeline_feed:
            await pipeline.submit(items, weights, wait_applied=True)
    return _inner


def test_torn_wal_append_is_never_accepted(tmp_path):
    """A torn WAL write fails the submit, poisons the segment, and
    recovery replays exactly the acknowledged prefix."""
    make_sketch = SKETCH_MAKERS["flat-probing"]
    feed = make_feed(num_batches=8, batch_size=120)
    plane = DiskFaultPlane()

    async def scenario():
        manager = SnapshotManager(str(tmp_path), faults=plane)
        pipeline = IngestPipeline(
            make_sketch(), config=CLUSTER_CFG, snapshots=manager
        )
        await pipeline.start()
        try:
            await _feed_through(feed[:6])(pipeline)
            plane.inject("write", path_contains=".rwal", torn_bytes=7)
            with pytest.raises(ServiceClosedError):
                await pipeline.submit(
                    feed[6][0], feed[6][1], wait_applied=True
                )
            assert isinstance(pipeline.fault, OSError)
            assert pipeline.fault.errno == errno.ENOSPC
            # The poisoned segment refuses any further append rather
            # than risk a record after a torn region.
            with pytest.raises(SerializationError):
                manager.append_wal(8, feed[7][0], feed[7][1])
        finally:
            # stop() re-raises the surfaced fault; already asserted.
            with contextlib.suppress(OSError):
                await pipeline.stop(final_snapshot=False)

    run(scenario())
    recovered = SnapshotManager(str(tmp_path)).recover()
    assert recovered is not None
    sketch, seq = recovered
    assert seq == 6
    assert (
        sketch.to_bytes(), rng_states(sketch)
    ) == reference_state(make_sketch, feed[:6])


def test_fsync_failure_fails_submit_cleanly(tmp_path):
    """A reported-failed fsync is a failed write: the submit raises and
    the pipeline faults instead of acking unsynced data."""
    make_sketch = SKETCH_MAKERS["flat-probing"]
    feed = make_feed(num_batches=7, batch_size=120)
    plane = DiskFaultPlane()

    async def scenario():
        manager = SnapshotManager(
            str(tmp_path), fsync=True, faults=plane
        )
        pipeline = IngestPipeline(
            make_sketch(), config=CLUSTER_CFG, snapshots=manager
        )
        await pipeline.start()
        try:
            await _feed_through(feed[:5])(pipeline)
            plane.inject("fsync", path_contains=".rwal")
            with pytest.raises(ServiceClosedError):
                await pipeline.submit(
                    feed[5][0], feed[5][1], wait_applied=True
                )
            assert isinstance(pipeline.fault, OSError)
        finally:
            with contextlib.suppress(OSError):
                await pipeline.stop(final_snapshot=False)

    run(scenario())
    recovered = SnapshotManager(str(tmp_path)).recover()
    assert recovered is not None
    sketch, seq = recovered
    # The record may have fully landed before the fsync verdict — the
    # usual crash ambiguity for an *unacknowledged* write — but whatever
    # replays must be a consistent acknowledged-style prefix.
    assert seq in (5, 6)
    assert (
        sketch.to_bytes(), rng_states(sketch)
    ) == reference_state(make_sketch, feed[:seq])


def test_corrupt_snapshot_quarantined_with_fallback(tmp_path, caplog):
    """A corrupt newest snapshot is renamed ``.corrupt`` with a logged
    warning; recovery falls back to the previous checkpoint and the WAL
    replay still lands bit-identically."""
    make_sketch = SKETCH_MAKERS["flat-probing"]
    feed = make_feed(num_batches=10, batch_size=120)

    async def scenario():
        manager = SnapshotManager(str(tmp_path))
        pipeline = IngestPipeline(
            make_sketch(), config=CLUSTER_CFG, snapshots=manager
        )
        await pipeline.start()
        try:
            await _feed_through(feed)(pipeline)
        finally:
            await pipeline.stop(final_snapshot=False)

    run(scenario())
    snapshots = sorted(
        name for name in os.listdir(tmp_path) if name.endswith(".rsnap")
    )
    assert len(snapshots) == 2  # keep_snapshots=2: seqs 5 and 10
    newest = os.path.join(str(tmp_path), snapshots[-1])
    with open(newest, "rb") as fh:
        blob = fh.read()
    with open(newest, "wb") as fh:
        fh.write(blob[: len(blob) // 2])  # truncated: CRC cannot pass

    manager = SnapshotManager(str(tmp_path))
    with caplog.at_level(logging.WARNING, logger="repro.service.snapshot"):
        recovered = manager.recover()
    assert recovered is not None
    sketch, seq = recovered
    assert seq == 10
    assert (
        sketch.to_bytes(), rng_states(sketch)
    ) == reference_state(make_sketch, feed)
    assert "quarantined corrupt snapshot" in caplog.text
    quarantined = [
        name for name in os.listdir(tmp_path) if name.endswith(".corrupt")
    ]
    assert len(quarantined) == 1
    # The quarantined file no longer counts as a snapshot.
    assert manager.snapshot_seqs() == [5]
