"""Every ``python`` code block in the Markdown docs must execute.

The documentation suite (``docs/*.md`` and the README) embeds runnable
snippets; this test extracts each fenced ``python`` block and executes
it in a fresh namespace, so the docs cannot drift from the library.
Blocks in other languages (``bash``, plain fences used for diagrams or
output transcripts) are ignored.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent
DOC_FILES = sorted(
    list((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]
)

_FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def python_blocks(path: Path) -> list[tuple[int, str]]:
    text = path.read_text()
    blocks = []
    for match in _FENCE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        blocks.append((line, match.group(1)))
    return blocks


def test_docs_exist_and_carry_python_examples():
    names = {path.name for path in DOC_FILES}
    assert {"architecture.md", "serialization.md", "README.md"} <= names
    total = sum(len(python_blocks(path)) for path in DOC_FILES)
    assert total >= 5, "the documentation suite lost its runnable examples"


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_python_code_blocks_execute(path):
    blocks = python_blocks(path)
    for line, source in blocks:
        namespace: dict = {"__name__": f"docblock_{path.stem}"}
        try:
            exec(compile(source, f"{path.name}:{line}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{path.name} code block at line {line} failed: {exc!r}"
            )
