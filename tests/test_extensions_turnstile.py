"""TwoSidedSketch: the Section 1.3 deletion construction."""

import pytest

from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.extensions import TwoSidedSketch
from repro.prng import Xoroshiro128PlusPlus


def test_zero_weight_rejected():
    sketch = TwoSidedSketch(16)
    with pytest.raises(InvalidUpdateError):
        sketch.update(1, 0.0)


def test_insert_then_delete_exact_when_small():
    sketch = TwoSidedSketch(32, seed=1)
    sketch.update(1, 10.0)
    sketch.update(1, -4.0)
    sketch.update(2, 7.0)
    assert sketch.estimate(1) == 6.0
    assert sketch.estimate(2) == 7.0
    assert sketch.net_weight == 13.0
    assert sketch.gross_weight == 21.0


def test_estimate_clamped_at_zero():
    sketch = TwoSidedSketch(32, seed=2)
    sketch.update(1, 3.0)
    sketch.update(1, -3.0)
    sketch.update(2, 5.0)
    assert sketch.estimate(1) == 0.0
    assert sketch.lower_bound(1) == 0.0


def test_bounds_bracket_truth_under_churn():
    rng = Xoroshiro128PlusPlus(3)
    sketch = TwoSidedSketch(64, seed=3)
    truth: dict[int, float] = {}
    inserted: dict[int, float] = {}
    for _ in range(20_000):
        item = rng.randrange(200)
        if rng.random() < 0.75 or inserted.get(item, 0.0) < 1.0:
            weight = float(rng.randint(1, 20))
            sketch.update(item, weight)
            truth[item] = truth.get(item, 0.0) + weight
            inserted[item] = inserted.get(item, 0.0) + weight
        else:
            # Strict turnstile: never delete below zero.
            available = truth.get(item, 0.0)
            if available >= 1.0:
                weight = min(available, float(rng.randint(1, 5)))
                sketch.update(item, -weight)
                truth[item] = truth.get(item, 0.0) - weight
    for item, frequency in truth.items():
        assert sketch.lower_bound(item) <= frequency + 1e-6
        assert sketch.upper_bound(item) >= frequency - 1e-6


def test_heavy_hitters_no_false_negatives():
    sketch = TwoSidedSketch(64, seed=4)
    truth: dict[int, float] = {}
    for index in range(5_000):
        item = index % 50
        weight = 50.0 if item == 0 else 1.0
        sketch.update(item, weight)
        truth[item] = truth.get(item, 0.0) + weight
    for index in range(500):
        sketch.update(1 + index % 10, -1.0)
        truth[1 + index % 10] -= 1.0
    phi = 0.2
    reported = {row.item for row in sketch.heavy_hitters(phi)}
    net = sum(truth.values())
    for item, frequency in truth.items():
        if frequency >= phi * net:
            assert item in reported
    with pytest.raises(InvalidParameterError):
        sketch.heavy_hitters(0.0)


def test_merge_sides_independently():
    a = TwoSidedSketch(32, seed=5)
    b = TwoSidedSketch(32, seed=6)
    a.update(1, 10.0)
    a.update(1, -2.0)
    b.update(1, 5.0)
    b.update(2, -0.5)
    b.update(2, 3.0)
    a.merge(b)
    assert a.estimate(1) == pytest.approx(13.0)
    assert a.estimate(2) == pytest.approx(2.5)
    assert a.net_weight == pytest.approx(15.5)


def test_exposes_sides_and_space():
    sketch = TwoSidedSketch(16, seed=7)
    sketch.update(1, 2.0)
    sketch.update(1, -1.0)
    assert sketch.positive.stream_weight == 2.0
    assert sketch.negative.stream_weight == 1.0
    assert sketch.space_bytes() == \
        sketch.positive.space_bytes() + sketch.negative.space_bytes()
