"""Zipf samplers: distribution shape, determinism, both sampler classes."""

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.prng import Xoroshiro128PlusPlus
from repro.streams.zipf import (
    RejectionInversionZipf,
    ZipfTableSampler,
    ZipfianStream,
)


def test_table_sampler_validation():
    with pytest.raises(InvalidParameterError):
        ZipfTableSampler(0, 1.0)
    with pytest.raises(InvalidParameterError):
        ZipfTableSampler(10, -1.0)


def test_table_sampler_probabilities_sum_to_one():
    sampler = ZipfTableSampler(100, 1.2, seed=1)
    total = sum(sampler.probability(rank) for rank in range(1, 101))
    assert total == pytest.approx(1.0)
    assert sampler.probability(0) == 0.0
    assert sampler.probability(101) == 0.0


def test_table_sampler_rank_frequencies_match_law():
    universe = 50
    alpha = 1.0
    sampler = ZipfTableSampler(universe, alpha, seed=2)
    draws = sampler.sample(100_000)
    counts = np.bincount(draws, minlength=universe + 1)
    # Rank 1 should appear ~ 1/1 vs rank 10 ~ 1/10 (alpha=1).
    assert counts[1] / counts[10] == pytest.approx(10.0, rel=0.25)
    assert draws.min() >= 1
    assert draws.max() <= universe


def test_table_sampler_alpha_zero_is_uniform():
    sampler = ZipfTableSampler(20, 0.0, seed=3)
    draws = sampler.sample(40_000)
    counts = np.bincount(draws, minlength=21)[1:]
    assert counts.min() > 0.8 * 2_000
    assert counts.max() < 1.2 * 2_000


def test_rejection_inversion_validation():
    rng = Xoroshiro128PlusPlus(1)
    with pytest.raises(InvalidParameterError):
        RejectionInversionZipf(0, 1.0, rng)
    with pytest.raises(InvalidParameterError):
        RejectionInversionZipf(10, 0.0, rng)


def test_rejection_inversion_in_range_huge_universe():
    rng = Xoroshiro128PlusPlus(4)
    sampler = RejectionInversionZipf(1 << 40, 1.2, rng)
    draws = sampler.sample(2_000)
    assert all(1 <= draw <= 1 << 40 for draw in draws)
    assert min(draws) == 1  # rank 1 dominates; certain to appear in 2000 draws


def test_rejection_inversion_matches_table_sampler_distribution():
    """Both samplers target the same law; compare rank-1 mass."""
    universe = 1_000
    alpha = 1.1
    expected_p1 = ZipfTableSampler(universe, alpha).probability(1)
    rng = Xoroshiro128PlusPlus(5)
    sampler = RejectionInversionZipf(universe, alpha, rng)
    draws = sampler.sample(30_000)
    observed = sum(1 for draw in draws if draw == 1) / len(draws)
    assert observed == pytest.approx(expected_p1, rel=0.1)


def test_rejection_inversion_alpha_one_exactly():
    rng = Xoroshiro128PlusPlus(6)
    sampler = RejectionInversionZipf(100, 1.0, rng)
    draws = sampler.sample(5_000)
    assert all(1 <= draw <= 100 for draw in draws)


def test_stream_length_and_weights():
    stream = ZipfianStream(1_000, universe=100, alpha=1.2, seed=7)
    updates = list(stream)
    assert len(updates) == 1_000
    assert len(stream) == 1_000
    assert all(weight == 1.0 for _item, weight in updates)


def test_stream_weight_range():
    stream = ZipfianStream(
        2_000, universe=100, alpha=1.2, seed=8, weight_low=1, weight_high=10_000
    )
    weights = [weight for _item, weight in stream]
    assert min(weights) >= 1.0
    assert max(weights) <= 10_000.0
    assert len(set(weights)) > 100  # genuinely varied


def test_stream_validation():
    with pytest.raises(InvalidParameterError):
        ZipfianStream(-1, 10, 1.0)
    with pytest.raises(InvalidParameterError):
        ZipfianStream(10, 10, 1.0, weight_low=5.0)  # high missing
    with pytest.raises(InvalidParameterError):
        ZipfianStream(10, 10, 1.0, weight_low=10.0, weight_high=5.0)


def test_stream_deterministic():
    a = list(ZipfianStream(500, universe=50, alpha=1.3, seed=9))
    b = list(ZipfianStream(500, universe=50, alpha=1.3, seed=9))
    c = list(ZipfianStream(500, universe=50, alpha=1.3, seed=10))
    assert a == b
    assert a != c


def test_scrambled_ids_are_not_sequential():
    scrambled = list(ZipfianStream(200, universe=50, alpha=1.0, seed=11))
    plain = list(
        ZipfianStream(200, universe=50, alpha=1.0, seed=11, scramble_ids=False)
    )
    assert {item for item, _weight in plain} <= set(range(51))
    assert any(item > 1_000 for item, _weight in scrambled)
    # Scrambling is a bijection: distinct counts match.
    assert len({i for i, _w in scrambled}) == len({i for i, _w in plain})


def test_batches_concatenate_to_iteration():
    stream = ZipfianStream(1_000, universe=64, alpha=1.1, seed=12, batch_size=128)
    from_batches = []
    for items, weights in stream.batches():
        from_batches.extend(
            (int(item), float(weight)) for item, weight in zip(items, weights)
        )
    assert from_batches == [(item, weight) for item, weight in stream]
