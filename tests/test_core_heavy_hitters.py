"""Heavy-hitter queries: the two error directions and the (φ, ε) contract."""

import pytest

from repro import ErrorType, FrequentItemsSketch, InvalidParameterError
from repro.metrics.heavy_hitters import check_phi_epsilon, hh_precision_recall
from repro.streams.exact import ExactCounter
from repro.streams.zipf import ZipfianStream


@pytest.fixture(scope="module")
def sketch_and_exact():
    sketch = FrequentItemsSketch(128, backend="dict", seed=3)
    exact = ExactCounter()
    for item, weight in ZipfianStream(
        30_000, universe=8_000, alpha=1.3, seed=4, weight_low=1, weight_high=50
    ):
        sketch.update(item, weight)
        exact.update(item, weight)
    return sketch, exact


def test_nfp_reports_only_true_heavy_hitters(sketch_and_exact):
    sketch, exact = sketch_and_exact
    phi = 0.01
    threshold = phi * exact.total_weight
    for row in sketch.heavy_hitters(phi, ErrorType.NO_FALSE_POSITIVES):
        assert exact.frequency(row.item) >= threshold - 1e-6


def test_nfn_reports_all_true_heavy_hitters(sketch_and_exact):
    sketch, exact = sketch_and_exact
    phi = 0.01
    reported = {
        row.item for row in sketch.heavy_hitters(phi, ErrorType.NO_FALSE_NEGATIVES)
    }
    for item, frequency in exact.heavy_hitters(phi).items():
        assert item in reported, (item, frequency)


def test_nfn_false_positives_are_borderline(sketch_and_exact):
    """False positives may only come from the epsilon band below phi*N."""
    sketch, exact = sketch_and_exact
    phi = 0.01
    floor = phi * exact.total_weight - sketch.maximum_error
    for row in sketch.heavy_hitters(phi, ErrorType.NO_FALSE_NEGATIVES):
        assert exact.frequency(row.item) >= floor - 1e-6


def test_phi_epsilon_contract(sketch_and_exact):
    sketch, exact = sketch_and_exact
    phi = 0.01
    epsilon = sketch.maximum_error / exact.total_weight
    reported = [
        row.item for row in sketch.heavy_hitters(phi, ErrorType.NO_FALSE_NEGATIVES)
    ]
    assert check_phi_epsilon(reported, exact, phi, min(epsilon, phi))


def test_precision_recall_directions(sketch_and_exact):
    sketch, exact = sketch_and_exact
    phi = 0.01
    nfp = hh_precision_recall(
        (r.item for r in sketch.heavy_hitters(phi, ErrorType.NO_FALSE_POSITIVES)),
        exact,
        phi,
    )
    nfn = hh_precision_recall(
        (r.item for r in sketch.heavy_hitters(phi, ErrorType.NO_FALSE_NEGATIVES)),
        exact,
        phi,
    )
    assert nfp.precision == 1.0
    assert nfn.recall == 1.0
    assert 0.0 <= nfp.f1 <= 1.0


def test_frequent_items_default_threshold_is_offset(sketch_and_exact):
    sketch, _ = sketch_and_exact
    rows = sketch.frequent_items()
    assert all(row.lower_bound >= sketch.maximum_error for row in rows)


def test_rows_sorted_by_estimate(sketch_and_exact):
    sketch, _ = sketch_and_exact
    rows = sketch.frequent_items(ErrorType.NO_FALSE_NEGATIVES, 0.0)
    estimates = [row.estimate for row in rows]
    assert estimates == sorted(estimates, reverse=True)


def test_parameter_validation(sketch_and_exact):
    sketch, _ = sketch_and_exact
    with pytest.raises(InvalidParameterError):
        sketch.heavy_hitters(0.0)
    with pytest.raises(InvalidParameterError):
        sketch.heavy_hitters(1.5)
    with pytest.raises(InvalidParameterError):
        sketch.frequent_items(threshold=-1.0)


def test_empty_sketch_reports_nothing():
    sketch = FrequentItemsSketch(8)
    assert sketch.frequent_items() == []
    assert sketch.heavy_hitters(0.5) == []
