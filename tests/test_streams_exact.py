"""ExactCounter: the ground-truth oracle itself needs to be right."""

import math

import pytest

from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.streams.exact import ExactCounter, exact_counts


def test_basic_counting():
    exact = ExactCounter()
    exact.update(1, 5.0)
    exact.update(2)
    exact.update(1, 3.0)
    assert exact.frequency(1) == 8.0
    assert exact.frequency(2) == 1.0
    assert exact.frequency(3) == 0.0
    assert exact.total_weight == 9.0
    assert exact.num_updates == 3
    assert exact.num_items == 2
    assert len(exact) == 2
    assert 1 in exact
    assert 3 not in exact


def test_rejects_nonpositive():
    exact = ExactCounter()
    with pytest.raises(InvalidUpdateError):
        exact.update(1, 0.0)
    with pytest.raises(InvalidUpdateError):
        exact.update_all([(1, -2.0)])


def test_update_all_and_helper():
    exact = exact_counts([(1, 2.0), (2, 3.0), (1, 1.0)])
    assert exact.frequency(1) == 3.0
    assert exact.total_weight == 6.0


def test_top_k_ordering_and_ties():
    exact = exact_counts([(3, 5.0), (1, 5.0), (2, 9.0)])
    assert exact.top_k(3) == [(2, 9.0), (1, 5.0), (3, 5.0)]  # ties by id
    assert exact.top_k(1) == [(2, 9.0)]
    assert exact.top_k(0) == []
    with pytest.raises(InvalidParameterError):
        exact.top_k(-1)


def test_residual_weight():
    exact = exact_counts([(1, 10.0), (2, 5.0), (3, 1.0)])
    assert exact.residual_weight(0) == 16.0
    assert exact.residual_weight(1) == 6.0
    assert exact.residual_weight(2) == 1.0
    assert exact.residual_weight(3) == 0.0
    assert exact.residual_weight(10) == 0.0
    with pytest.raises(InvalidParameterError):
        exact.residual_weight(-1)


def test_heavy_hitters():
    exact = exact_counts([(1, 50.0), (2, 30.0), (3, 20.0)])
    assert set(exact.heavy_hitters(0.3)) == {1, 2}
    assert set(exact.heavy_hitters(0.5)) == {1}
    assert exact.heavy_hitters(1.0) == {}
    with pytest.raises(InvalidParameterError):
        exact.heavy_hitters(0.0)


def test_entropy_uniform_and_point_mass():
    uniform = exact_counts([(item, 1.0) for item in range(64)])
    assert uniform.entropy() == pytest.approx(6.0)
    point = exact_counts([(1, 100.0)])
    assert point.entropy() == 0.0
    assert ExactCounter().entropy() == 0.0


def test_entropy_two_point():
    exact = exact_counts([(1, 3.0), (2, 1.0)])
    expected = -(0.75 * math.log2(0.75) + 0.25 * math.log2(0.25))
    assert exact.entropy() == pytest.approx(expected)


def test_merge():
    a = exact_counts([(1, 5.0), (2, 2.0)])
    b = exact_counts([(2, 3.0), (3, 4.0)])
    a.merge(b)
    assert a.frequency(1) == 5.0
    assert a.frequency(2) == 5.0
    assert a.frequency(3) == 4.0
    assert a.total_weight == 14.0
    assert a.num_updates == 4


def test_sorted_cache_invalidation():
    exact = exact_counts([(1, 5.0), (2, 9.0)])
    assert exact.top_k(1) == [(2, 9.0)]
    exact.update(1, 10.0)
    assert exact.top_k(1) == [(1, 15.0)]  # cache must refresh
