"""Misra-Gries (Algorithm 1): Lemma 1/2 guarantees and mechanics."""

import pytest

from repro.baselines import MisraGries
from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.streams.exact import ExactCounter


def test_unit_updates_only():
    mg = MisraGries(4)
    with pytest.raises(InvalidUpdateError):
        mg.update(1, 2.0)
    with pytest.raises(InvalidUpdateError):
        mg.update(1, 0.5)


def test_rejects_bad_k():
    with pytest.raises(InvalidParameterError):
        MisraGries(0)


def test_exact_when_under_capacity():
    mg = MisraGries(8)
    for item in [1, 2, 1, 3, 1, 2]:
        mg.update(item)
    assert mg.estimate(1) == 3.0
    assert mg.estimate(2) == 2.0
    assert mg.estimate(3) == 1.0
    assert mg.estimate(4) == 0.0
    assert mg.num_active == 3


def test_decrement_on_overflow():
    mg = MisraGries(2)
    mg.update(1)
    mg.update(2)
    mg.update(3)  # full table miss: everyone decremented, 3 dropped
    assert mg.num_active == 0
    assert mg.estimate(1) == 0.0
    assert mg.stats.decrements == 1


def test_lemma1_bound(zipf_unit_stream, zipf_unit_exact):
    k = 48
    mg = MisraGries(k)
    for item, _weight in zipf_unit_stream:
        mg.update(item)
    n = zipf_unit_exact.total_weight
    for item, frequency in zipf_unit_exact.items():
        error = frequency - mg.estimate(item)
        assert -1e-9 <= error <= n / (k + 1) + 1e-9


def test_lemma2_tail_bound(zipf_unit_stream, zipf_unit_exact):
    k = 48
    mg = MisraGries(k)
    for item, _weight in zipf_unit_stream:
        mg.update(item)
    for j in (4, 16, 32):
        bound = zipf_unit_exact.residual_weight(j) / (k + 1 - j)
        for item, frequency in zipf_unit_exact.items():
            assert frequency - mg.estimate(item) <= bound + 1e-9


def test_never_overestimates(zipf_unit_stream, zipf_unit_exact):
    mg = MisraGries(32)
    for item, _weight in zipf_unit_stream:
        mg.update(item)
    for item, counter in mg.items():
        assert counter <= zipf_unit_exact.frequency(item) + 1e-9
        assert mg.lower_bound(item) == mg.estimate(item)
        assert mg.upper_bound(item) >= zipf_unit_exact.frequency(item) - 1e-9


def test_decrement_cadence_amortized():
    """Decrement passes need k insertions between them (amortized O(1))."""
    k = 32
    mg = MisraGries(k)
    for item in range(10_000):
        mg.update(item % 500)
    assert mg.stats.decrements <= mg.stats.updates / k + 1


def test_space_model():
    assert MisraGries(1024).space_bytes() > 0


def test_len_and_items():
    mg = MisraGries(4)
    for item in [5, 5, 6]:
        mg.update(item)
    assert len(mg) == 2
    assert dict(mg.items()) == {5: 2.0, 6: 1.0}
