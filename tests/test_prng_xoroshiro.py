"""xoroshiro128++: determinism, ranges, and derived-draw correctness."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidParameterError
from repro.prng import Xoroshiro128PlusPlus


def test_deterministic_for_seed():
    a = Xoroshiro128PlusPlus(7)
    b = Xoroshiro128PlusPlus(7)
    assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]


def test_seeds_diverge():
    a = Xoroshiro128PlusPlus(7)
    b = Xoroshiro128PlusPlus(8)
    assert [a.next_u64() for _ in range(8)] != [b.next_u64() for _ in range(8)]


def test_random_in_unit_interval():
    rng = Xoroshiro128PlusPlus(3)
    values = [rng.random() for _ in range(5000)]
    assert all(0.0 <= v < 1.0 for v in values)
    assert abs(sum(values) / len(values) - 0.5) < 0.02


@given(st.integers(min_value=1, max_value=10_000), st.integers(min_value=0, max_value=2**32))
def test_randrange_in_bounds(n, seed):
    rng = Xoroshiro128PlusPlus(seed)
    for _ in range(5):
        assert 0 <= rng.randrange(n) < n


def test_randrange_rejects_nonpositive():
    rng = Xoroshiro128PlusPlus(0)
    with pytest.raises(InvalidParameterError):
        rng.randrange(0)
    with pytest.raises(InvalidParameterError):
        rng.randrange(-3)


def test_randrange_uniformity():
    rng = Xoroshiro128PlusPlus(11)
    n = 10
    draws = 20_000
    counts = [0] * n
    for _ in range(draws):
        counts[rng.randrange(n)] += 1
    expected = draws / n
    for count in counts:
        assert abs(count - expected) < 5 * math.sqrt(expected)


def test_randint_inclusive():
    rng = Xoroshiro128PlusPlus(5)
    values = {rng.randint(3, 5) for _ in range(200)}
    assert values == {3, 4, 5}
    with pytest.raises(InvalidParameterError):
        rng.randint(5, 3)


def test_uniform_range():
    rng = Xoroshiro128PlusPlus(9)
    for _ in range(100):
        value = rng.uniform(10.0, 20.0)
        assert 10.0 <= value < 20.0


def test_geometric_mean_close_to_inverse_p():
    rng = Xoroshiro128PlusPlus(13)
    p = 0.05
    draws = [rng.geometric(p) for _ in range(5000)]
    assert all(d >= 1 for d in draws)
    mean = sum(draws) / len(draws)
    assert abs(mean - 1 / p) < 2.0


def test_geometric_p_one():
    rng = Xoroshiro128PlusPlus(1)
    assert all(rng.geometric(1.0) == 1 for _ in range(10))


def test_geometric_rejects_bad_p():
    rng = Xoroshiro128PlusPlus(1)
    for bad in (0.0, -0.1, 1.5):
        with pytest.raises(InvalidParameterError):
            rng.geometric(bad)


def test_shuffle_is_permutation():
    rng = Xoroshiro128PlusPlus(21)
    items = list(range(100))
    shuffled = rng.shuffled(items)
    assert shuffled != items  # astronomically unlikely to match
    assert sorted(shuffled) == items


def test_sample_indices_distinct_and_in_range():
    rng = Xoroshiro128PlusPlus(17)
    for _ in range(50):
        sample = rng.sample_indices(50, 20)
        assert len(sample) == 20
        assert len(set(sample)) == 20
        assert all(0 <= index < 50 for index in sample)


def test_sample_indices_full_population():
    rng = Xoroshiro128PlusPlus(17)
    assert sorted(rng.sample_indices(10, 10)) == list(range(10))


def test_sample_indices_rejects_oversample():
    rng = Xoroshiro128PlusPlus(17)
    with pytest.raises(InvalidParameterError):
        rng.sample_indices(5, 6)


def test_choices_with_replacement():
    rng = Xoroshiro128PlusPlus(23)
    picked = rng.choices([1, 2, 3], 100)
    assert len(picked) == 100
    assert set(picked) <= {1, 2, 3}
    with pytest.raises(InvalidParameterError):
        rng.choices([], 1)


def test_state_roundtrip():
    rng = Xoroshiro128PlusPlus(31)
    rng.next_u64()
    state = rng.getstate()
    expected = [rng.next_u64() for _ in range(5)]
    rng.setstate(state)
    assert [rng.next_u64() for _ in range(5)] == expected


def test_setstate_rejects_zero_state():
    rng = Xoroshiro128PlusPlus(31)
    with pytest.raises(InvalidParameterError):
        rng.setstate((0, 0))
