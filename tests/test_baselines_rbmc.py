"""RBMC specifics beyond the isomorphism: rules, bounds, stats."""

import pytest

from repro.baselines import ReduceByMinCounter
from repro.errors import InvalidParameterError, InvalidUpdateError


def test_rejects_bad_parameters():
    with pytest.raises(InvalidParameterError):
        ReduceByMinCounter(0)
    rbmc = ReduceByMinCounter(4)
    with pytest.raises(InvalidUpdateError):
        rbmc.update(1, 0.0)


def test_small_delta_rule():
    """delta <= c_min: all counters shrink by delta, item not inserted."""
    rbmc = ReduceByMinCounter(2)
    rbmc.update(1, 10.0)
    rbmc.update(2, 4.0)
    rbmc.update(3, 3.0)  # 3 <= c_min=4: both shrink by 3
    assert rbmc.estimate(1) == 7.0
    assert rbmc.estimate(2) == 1.0
    assert rbmc.estimate(3) == 0.0
    assert 3 not in dict(rbmc.items())


def test_large_delta_rule():
    """delta > c_min: shrink by c_min, item enters with delta - c_min."""
    rbmc = ReduceByMinCounter(2)
    rbmc.update(1, 10.0)
    rbmc.update(2, 4.0)
    rbmc.update(3, 9.0)  # c_min=4: 1 -> 6, 2 freed, 3 -> 5
    assert rbmc.estimate(1) == 6.0
    assert rbmc.estimate(2) == 0.0
    assert rbmc.estimate(3) == 5.0


def test_exact_equality_at_cmin_frees_counter():
    rbmc = ReduceByMinCounter(2)
    rbmc.update(1, 5.0)
    rbmc.update(2, 5.0)
    rbmc.update(3, 5.0)  # delta == c_min: everything hits zero
    assert rbmc.num_active == 0


def test_real_valued_weights():
    rbmc = ReduceByMinCounter(3)
    rbmc.update(1, 0.75)
    rbmc.update(2, 1.5)
    rbmc.update(1, 0.25)
    assert rbmc.estimate(1) == pytest.approx(1.0)
    assert rbmc.stream_weight == pytest.approx(2.5)


def test_lemma1_weighted(zipf_weighted_stream, zipf_weighted_exact):
    k = 48
    rbmc = ReduceByMinCounter(k)
    for item, weight in zipf_weighted_stream:
        rbmc.update(item, weight)
    n = zipf_weighted_exact.total_weight
    for item, frequency in zipf_weighted_exact.items():
        error = frequency - rbmc.estimate(item)
        assert -1e-6 <= error <= n / (k + 1) + 1e-6
        assert rbmc.upper_bound(item) >= frequency - 1e-6
        assert rbmc.lower_bound(item) <= frequency + 1e-6


def test_counters_scanned_tracks_passes():
    rbmc = ReduceByMinCounter(8)
    for item in range(200):
        rbmc.update(item, 1.0)
    assert rbmc.stats.decrements > 0
    assert rbmc.stats.counters_scanned >= rbmc.stats.decrements * 8


def test_space_matches_our_sketch():
    from repro.metrics.space import space_model_bytes

    assert ReduceByMinCounter(512).space_bytes() == space_model_bytes("smed", 512)
