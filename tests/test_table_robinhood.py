"""RobinHoodTable: displacement invariant, parity with the other stores."""

import random

import pytest

from repro.core.frequent_items import FrequentItemsSketch
from repro.errors import InvalidParameterError, TableFullError
from repro.prng import Xoroshiro128PlusPlus
from repro.table import DictCounterStore, RobinHoodTable, make_store


def test_make_store_dispatch():
    assert isinstance(make_store("robinhood", 8), RobinHoodTable)


def test_basic_roundtrip():
    table = RobinHoodTable(8, hash_seed=1)
    table.insert(5, 2.0)
    assert table.get(5) == 2.0
    assert table.get(6) is None
    assert table.add_to(5, 1.0) is True
    assert table.add_to(6, 1.0) is False
    assert table.get(5) == 3.0
    assert len(table) == 1
    assert table.check_invariant()


def test_duplicate_and_full():
    table = RobinHoodTable(2)
    table.insert(1, 1.0)
    with pytest.raises(InvalidParameterError):
        table.insert(1, 2.0)
    table.insert(2, 1.0)
    with pytest.raises(TableFullError):
        table.insert(3, 1.0)


def test_put_overwrites_and_inserts():
    table = RobinHoodTable(4, hash_seed=2)
    table.put(9, 1.0)
    table.put(9, 7.0)
    assert table.get(9) == 7.0
    assert len(table) == 1
    table.put(10, 2.0)
    assert len(table) == 2


def test_displacement_keeps_invariant_under_fill():
    table = RobinHoodTable(48, hash_seed=3)  # length 64, load 0.75
    for key in range(48):
        table.insert(key, float(key))
        assert table.check_invariant()
    for key in range(48):
        assert table.get(key) == float(key)


def test_decrement_purge_and_invariant():
    table = RobinHoodTable(24, hash_seed=4)
    for key in range(24):
        table.insert(key, float(key % 5 + 1))
    freed = table.decrement_and_purge(2.0)
    expected_freed = sum(1 for key in range(24) if key % 5 + 1 <= 2.0)
    assert freed == expected_freed == 10
    assert table.check_invariant()
    for key in range(24):
        expected = key % 5 + 1 - 2.0
        assert table.get(key) == (expected if expected > 0 else None)


def test_model_fuzz_against_dict():
    random.seed(77)
    for trial in range(120):
        capacity = random.randint(1, 40)
        table = RobinHoodTable(capacity, hash_seed=trial)
        model: dict[int, float] = {}
        for _ in range(250):
            action = random.random()
            if action < 0.5 and len(model) < capacity:
                key = random.randrange(80)
                if key in model:
                    table.add_to(key, 1.0)
                    model[key] += 1.0
                else:
                    table.insert(key, 2.0)
                    model[key] = 2.0
            elif action < 0.75 and model:
                amount = random.uniform(0.2, 2.5)
                table.adjust_all(-amount)
                table.purge_nonpositive()
                model = {
                    key: value - amount
                    for key, value in model.items()
                    if value - amount > 0
                }
            else:
                key = random.randrange(80)
                got = table.get(key)
                expected = model.get(key)
                assert (got is None) == (expected is None), (trial, key)
                if expected is not None:
                    assert got == pytest.approx(expected)
        assert len(table) == len(model)
        assert table.check_invariant()
        contents = dict(table.items())
        assert set(contents) == set(model)


def test_sketch_logical_parity_across_all_backends():
    """The same stream through dict, probing, and robinhood backends must
    produce identical summaries (ell >= k, so no sampling divergence)."""
    stream = [(index % 53, float(index % 7 + 1)) for index in range(4_000)]
    sketches = {
        backend: FrequentItemsSketch(24, backend=backend, seed=11)
        for backend in ("dict", "probing", "robinhood")
    }
    for item, weight in stream:
        for sketch in sketches.values():
            sketch.update(item, weight)
    reference = sketches["dict"]
    for backend, sketch in sketches.items():
        assert sketch.maximum_error == reference.maximum_error, backend
        for item in range(53):
            assert sketch.estimate(item) == reference.estimate(item), (backend, item)


def test_serialization_of_robinhood_backend():
    sketch = FrequentItemsSketch(16, backend="robinhood", seed=5)
    for index in range(300):
        sketch.update(index % 30, float(index % 4 + 1))
    restored = FrequentItemsSketch.from_bytes(sketch.to_bytes())
    assert restored.backend == "robinhood"
    assert sorted(restored.to_rows()) == sorted(sketch.to_rows())


def test_early_exit_lookup_counts_fewer_probes_on_misses():
    """Robin Hood's miss lookups terminate early; plain probing scans to
    the end of the run.  At equal contents, RH miss probes <= LP's."""
    from repro.table import LinearProbingTable

    rh = RobinHoodTable(96, hash_seed=9)
    lp = LinearProbingTable(96, hash_seed=9)
    for key in range(96):
        rh.insert(key, 1.0)
        lp.insert(key, 1.0)
    rh.probe_count = 0
    lp.probe_count = 0
    for key in range(1_000, 2_000):  # all misses
        rh.get(key)
        lp.get(key)
    assert rh.probe_count <= lp.probe_count


def test_vectorized_ops_match_scalar_robinhood():
    import numpy as np

    rng = np.random.default_rng(23)
    for trial in range(25):
        capacity = int(rng.integers(2, 64))
        keys = rng.choice(500, size=capacity, replace=False).astype(np.uint64)
        values = rng.uniform(1.0, 9.0, size=capacity)
        vectorized = RobinHoodTable(capacity, hash_seed=trial)
        scalar = RobinHoodTable(capacity, hash_seed=trial)
        vectorized.insert_many(keys, values)
        for key, value in zip(keys.tolist(), values.tolist()):
            scalar.insert(key, value)
        # Displacement layouts must agree slot for slot.
        assert vectorized._keys.tolist() == scalar._keys.tolist()
        assert vectorized._states.tolist() == scalar._states.tolist()
        assert vectorized._values.tolist() == scalar._values.tolist()
        assert vectorized.check_invariant()

        queries = rng.integers(0, 600, size=80).astype(np.uint64)
        before_vec = vectorized.probe_count
        got = vectorized.get_many(queries)
        probes_vec = vectorized.probe_count - before_vec
        before_ref = scalar.probe_count
        for index, key in enumerate(queries.tolist()):
            expected = scalar.get(key)
            if expected is None:
                assert got[index] != got[index]  # NaN
            else:
                assert got[index] == expected
        # The early-exit lookup inspects the same slots batched or not.
        assert probes_vec == scalar.probe_count - before_ref

        present = keys[: min(8, capacity)]
        deltas = rng.uniform(0.5, 2.0, size=len(present))
        vectorized.add_many(present, deltas)
        for key, delta in zip(present.tolist(), deltas.tolist()):
            assert scalar.add_to(key, delta)
        assert vectorized._values.tolist() == scalar._values.tolist()

        amount = float(np.median(values))
        assert vectorized.decrement_and_purge(amount) == scalar.decrement_and_purge(
            amount
        )
        assert vectorized._keys.tolist() == scalar._keys.tolist()
        assert vectorized._states.tolist() == scalar._states.tolist()
        assert vectorized.check_invariant()


def test_insert_many_duplicate_detected():
    import numpy as np

    table = RobinHoodTable(8, hash_seed=2)
    table.insert(5, 1.0)
    with pytest.raises(InvalidParameterError):
        table.insert_many(np.array([7, 5], dtype=np.uint64), np.ones(2))
