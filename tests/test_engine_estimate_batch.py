"""``estimate_batch`` matches scalar ``estimate`` element-wise, everywhere.

Property tests drive random weighted streams into every store backend
(and the sharded sketch) and assert the vectorized batch estimate equals
the scalar method exactly — including for absent and repeated query
keys, and after enough overflow that the offset is nonzero.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frequent_items import FrequentItemsSketch
from repro.errors import InvalidUpdateError
from repro.extensions.decayed import DecayedFrequentItemsSketch
from repro.extensions.windowed import SlidingWindowHeavyHitters
from repro.sharded.sketch import ShardedFrequentItemsSketch
from repro.streams.zipf import ZipfianStream

BACKENDS = ("dict", "probing", "robinhood", "columnar")

updates_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40),
              st.integers(min_value=1, max_value=50)),
    min_size=1,
    max_size=300,
)
queries_strategy = st.lists(
    st.integers(min_value=0, max_value=60), min_size=1, max_size=50
)


@pytest.mark.parametrize("backend", BACKENDS)
@given(updates=updates_strategy, queries=queries_strategy)
@settings(max_examples=25, deadline=None)
def test_estimate_batch_matches_scalar(backend, updates, queries):
    # k=8 so streams routinely overflow and the offset becomes nonzero.
    sketch = FrequentItemsSketch(8, backend=backend, seed=13)
    for item, weight in updates:
        sketch.update(item, float(weight))
    batch = sketch.estimate_batch(np.array(queries, dtype=np.uint64))
    scalar = np.array([sketch.estimate(item) for item in queries])
    assert batch.dtype == np.float64
    np.testing.assert_array_equal(batch, scalar)


@given(updates=updates_strategy, queries=queries_strategy)
@settings(max_examples=15, deadline=None)
def test_estimate_batch_matches_scalar_sharded(updates, queries):
    sketch = ShardedFrequentItemsSketch(8, num_shards=3, seed=17)
    try:
        for item, weight in updates:
            sketch.update(item, float(weight))
        batch = sketch.estimate_batch(queries)
        scalar = np.array([sketch.estimate(item) for item in queries])
        np.testing.assert_array_equal(batch, scalar)
    finally:
        sketch.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_estimate_batch_on_a_real_workload(backend):
    stream = list(
        ZipfianStream(10_000, universe=1_500, alpha=1.1, seed=29,
                      weight_low=1, weight_high=100)
    )
    sketch = FrequentItemsSketch(64, backend=backend, seed=31)
    for item, weight in stream:
        sketch.update(item, weight)
    queries = np.arange(2_000, dtype=np.uint64)  # universe + absent tail
    batch = sketch.estimate_batch(queries)
    scalar = np.array([sketch.estimate(int(item)) for item in queries])
    np.testing.assert_array_equal(batch, scalar)


def test_estimate_batch_edge_cases():
    sketch = FrequentItemsSketch(16, seed=1)
    sketch.update(5, 2.0)
    # Empty query arrays are fine.
    assert sketch.estimate_batch([]).shape == (0,)
    # Repeated keys each get the same answer.
    np.testing.assert_array_equal(
        sketch.estimate_batch([5, 5, 5]), np.array([2.0, 2.0, 2.0])
    )
    # Shape validation mirrors the ingest paths.
    with pytest.raises(InvalidUpdateError):
        sketch.estimate_batch(np.zeros((2, 2), dtype=np.uint64))


def test_estimate_batch_windowed_and_decayed_consumers():
    """The engine consumers expose the same vectorized query surface."""
    window = SlidingWindowHeavyHitters(32, 2, seed=3)
    decayed = DecayedFrequentItemsSketch(32, half_life=2.0, seed=3)
    for item in range(20):
        window.update(item, float(item + 1))
        decayed.update(item, float(item + 1))
    decayed.tick(2.0)
    queries = list(range(25))
    np.testing.assert_array_equal(
        window.estimate_batch(queries),
        np.array([window.estimate(item) for item in queries]),
    )
    np.testing.assert_array_equal(
        decayed.estimate_batch(queries),
        np.array([decayed.estimate(item) for item in queries]),
    )


def test_dict_estimate_batch_routes_through_get_many(monkeypatch):
    """The dict backend's batch estimates must take the store's bulk
    ``get_many`` probe (one C-level dict hit per key straight into the
    output array), not a per-item Python estimate loop."""
    sketch = FrequentItemsSketch(16, backend="dict", seed=4)
    sketch.update_all([(1, 5.0), (2, 3.0), (3, 1.0)])
    store = sketch._store
    calls = []
    original = store.get_many

    def counting(keys):
        calls.append(len(keys))
        return original(keys)

    monkeypatch.setattr(store, "get_many", counting)
    queries = np.array([1, 2, 99, 1, 3], dtype=np.uint64)
    batch = sketch.estimate_batch(queries)
    assert calls == [5]  # exactly one bulk probe
    expected = np.array([sketch.estimate(int(q)) for q in queries.tolist()])
    np.testing.assert_array_equal(batch, expected)


def test_dict_get_many_fills_array_directly():
    """get_many on the dict store returns float64 with NaN for misses and
    no intermediate Python list (np.fromiter contract: exact count)."""
    sketch = FrequentItemsSketch(16, backend="dict", seed=4)
    sketch.update_all([(7, 2.0), (8, 4.0)])
    out = sketch._store.get_many(np.array([7, 9, 8], dtype=np.uint64))
    assert out.dtype == np.float64
    assert out[0] == 2.0 and np.isnan(out[1]) and out[2] == 4.0
