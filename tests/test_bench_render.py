"""The report renderer: SVG charts, tables, HTML/markdown assembly."""

import xml.etree.ElementTree as ET

from repro.bench.io import atomic_write_json
from repro.bench.matrix import RUN_SCHEMA
from repro.bench.render import (
    format_number,
    frontier_chart,
    html_table,
    markdown_table,
    render_html,
    render_markdown,
    render_report,
    svg_line_chart,
    trajectory_chart,
)
from repro.bench.results import ExperimentResults, Frame


def _results(tmp_path):
    runs_dir = tmp_path / "bench_runs"
    runs_dir.mkdir(exist_ok=True)
    cells = [
        {
            "policy": "smed", "backend": backend, "alpha": 1.05, "k": k,
            "growth": "fixed", "updates_per_sec": rate, "max_error": error,
            "rel_error": error / 1e4, "space_bytes": 16 * k,
            "seconds_median": 0.01, "decrements": 3,
        }
        for backend, k, rate, error in [
            ("columnar", 64, 2e6, 50.0),
            ("columnar", 128, 1.8e6, 20.0),
            ("probing", 64, 1e6, 55.0),
        ]
    ]
    atomic_write_json(
        runs_dir / "run-r1.json",
        {
            "schema": RUN_SCHEMA, "bench": "matrix", "run_id": "r1",
            "scale": "tiny", "git_hash": "b" * 40, "git_dirty": False,
            "timestamp_utc": "2026-01-01T00:00:00Z",
            "host": {"hostname": "h", "cpu_count": 1},
            "metadata": {"ingest_path": "native"}, "matrix": {},
            "cells": cells,
        },
    )
    atomic_write_json(
        tmp_path / "BENCH_ingest.json",
        {
            "bench": "ingest-profile", "metadata": {"ingest_path": "native"},
            "gates": {"columnar_batch_per_sec_alpha1.05": 3.5e6},
            "rows": [{
                "backend": "columnar", "alpha": 1.05, "batch_speedup": 11.0,
                "batch_per_sec": 3.5e6, "scalar_per_sec": 3.2e5,
            }],
        },
    )
    return ExperimentResults(runs_dir=str(runs_dir), repo_root=str(tmp_path))


def _assert_well_formed(svg: str) -> ET.Element:
    return ET.fromstring(svg)


# -- svg_line_chart ----------------------------------------------------------


def test_chart_with_data_is_well_formed_svg():
    svg = svg_line_chart(
        {"a": [(1.0, 10.0), (2.0, 20.0)], "b": [(1.0, 5.0)]},
        title="t", x_label="x", y_label="y",
    )
    _assert_well_formed(svg)
    assert svg.count("<polyline") == 1  # single-point series gets no line
    assert svg.count("<circle") == 3
    assert "a</text>" in svg and "b</text>" in svg  # legend entries


def test_chart_empty_series_says_no_data():
    svg = svg_line_chart({}, title="t", x_label="x", y_label="y")
    _assert_well_formed(svg)
    assert "no data" in svg


def test_chart_drops_nonfinite_and_nonpositive_log_points():
    svg = svg_line_chart(
        {
            "s": [(1.0, 10.0), (2.0, float("nan")), (3.0, float("inf"))],
            "gone": [(0.0, 5.0), (-1.0, 5.0)],  # filtered on log-x
        },
        title="t", x_label="x", y_label="y", log_x=True, log_y=True,
    )
    _assert_well_formed(svg)
    assert svg.count("<circle") == 1  # only (1.0, 10.0) survives
    assert "gone" not in svg  # fully-filtered series leaves the legend too


def test_chart_category_axis_labels():
    svg = svg_line_chart(
        {"m": [(0.0, 1.0), (1.0, 2.0)]},
        title="t", x_label="run", y_label="y",
        x_categories=["seed:ingest", "r1"],
    )
    _assert_well_formed(svg)
    assert "seed:ingest" in svg and "rotate(-35" in svg


# -- tables ------------------------------------------------------------------


def test_markdown_table_and_empty():
    frame = Frame([{"a": 1, "b": 2.5}, {"a": 3}])
    text = markdown_table(frame)
    assert text.splitlines()[0] == "| a | b |"
    assert "| 3 |  |" in text
    assert markdown_table(Frame([])) == "_(no data)_"


def test_html_table_escapes_and_empty():
    frame = Frame([{"a": "<script>"}])
    text = html_table(frame)
    assert "&lt;script&gt;" in text and "<script>" not in text
    assert "no data" in html_table(Frame([]))


def test_format_number():
    assert format_number(None) == ""
    assert format_number(0.0) == "0"
    assert format_number(float("nan")) == "nan"
    assert format_number(float("-inf")) == "-inf"
    assert format_number(3.5e6) == "3.5e+06"
    assert format_number(303.03) == "303.0"
    assert format_number("columnar") == "columnar"


# -- report assembly ---------------------------------------------------------


def test_render_markdown_contains_sections(tmp_path):
    text = render_markdown(_results(tmp_path))
    assert "# Bench report — r1" in text
    assert "## Throughput trajectory" in text
    assert "## Accuracy vs space frontier" in text
    assert "seed:ingest" in text  # the BENCH_ingest.json seed point
    assert "smed/columnar/fixed@a1.05" in text


def test_render_html_self_contained(tmp_path):
    document = render_html(_results(tmp_path))
    assert document.startswith("<!DOCTYPE html>")
    assert "<style>" in document  # embedded CSS, no external refs
    assert "http" not in document.split("</style>")[1].split("<svg")[0]
    assert document.count("<svg") == 2  # trajectory + frontier
    assert "Accuracy vs space frontier" in document


def test_charts_from_results_are_well_formed(tmp_path):
    results = _results(tmp_path)
    _assert_well_formed(frontier_chart(results))
    _assert_well_formed(trajectory_chart(results))


def test_render_report_writes_both_artifacts(tmp_path):
    results = _results(tmp_path)
    out_dir = tmp_path / "report"
    paths = render_report(results, str(out_dir))
    assert sorted(paths) == ["html", "markdown"]
    assert (out_dir / "report.html").read_text().count("<svg") == 2
    assert "# Bench report" in (out_dir / "report.md").read_text()


def test_render_report_with_empty_history(tmp_path):
    results = ExperimentResults(
        runs_dir=str(tmp_path / "none"), repo_root=str(tmp_path / "none")
    )
    paths = render_report(results, str(tmp_path / "report"))
    html_doc = open(paths["html"]).read()
    assert "no data" in html_doc  # charts and tables degrade, never crash
    assert "# Bench report — bench" in open(paths["markdown"]).read()
