"""SampledFrequentItems: the Section 5 weighted-sampling adaptation."""

import pytest

from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.extensions import SampledFrequentItems
from repro.extensions.sampled_mg import recommended_probability
from repro.streams.exact import ExactCounter
from repro.streams.zipf import ZipfianStream


def test_probability_validation():
    with pytest.raises(InvalidParameterError):
        SampledFrequentItems(16, 0.0)
    with pytest.raises(InvalidParameterError):
        SampledFrequentItems(16, 1.5)
    sampled = SampledFrequentItems(16, 0.5)
    with pytest.raises(InvalidUpdateError):
        sampled.update(1, 0.0)


def test_recommended_probability():
    p = recommended_probability(1e9, epsilon=0.01)
    assert 0 < p <= 1.0
    assert recommended_probability(10.0, epsilon=0.5) == 1.0  # clamped
    with pytest.raises(InvalidParameterError):
        recommended_probability(0.0, 0.1)
    with pytest.raises(InvalidParameterError):
        recommended_probability(100.0, 1.5)
    with pytest.raises(InvalidParameterError):
        recommended_probability(100.0, 0.1, delta=2.0)


def test_probability_one_is_exact_passthrough():
    sampled = SampledFrequentItems(32, 1.0, seed=1)
    for item, weight in [(1, 5.0), (2, 3.0), (1, 2.0)]:
        sampled.update(item, weight)
    assert sampled.estimate(1) == 7.0
    assert sampled.sampled_count == 10


def test_sample_count_concentrates():
    """The thinning keeps ~p fraction of total weight."""
    p = 0.1
    sampled = SampledFrequentItems(64, p, seed=2)
    total = 0.0
    for index in range(5_000):
        weight = float(index % 50 + 1)
        sampled.update(index % 100, weight)
        total += weight
    expected = p * total
    assert sampled.sampled_count == pytest.approx(expected, rel=0.1)
    assert sampled.stream_weight == pytest.approx(total)


def test_estimates_concentrate_on_heavy_items():
    stream = list(
        ZipfianStream(30_000, universe=4_000, alpha=1.3, seed=3,
                      weight_low=1, weight_high=100)
    )
    exact = ExactCounter()
    exact.update_all(stream)
    p = recommended_probability(exact.total_weight, epsilon=0.02)
    sampled = SampledFrequentItems(256, p, seed=4)
    for item, weight in stream:
        sampled.update(item, weight)
    n = exact.total_weight
    for item, frequency in exact.top_k(10):
        assert abs(sampled.estimate(item) - frequency) <= 0.03 * n


def test_bounds_scale_with_inverse_p():
    sampled = SampledFrequentItems(16, 0.25, seed=5)
    for index in range(2_000):
        sampled.update(index % 10, 4.0)
    item = 3
    assert sampled.lower_bound(item) <= sampled.estimate(item) <= \
        sampled.upper_bound(item)


def test_heavy_hitters_scaled():
    sampled = SampledFrequentItems(32, 0.2, seed=6)
    for index in range(10_000):
        sampled.update(0 if index % 3 == 0 else index, 1.0)
    rows = sampled.heavy_hitters(0.2)
    assert any(row.item == 0 for row in rows)
    top = next(row for row in rows if row.item == 0)
    assert top.estimate == pytest.approx(10_000 / 3, rel=0.25)


def test_large_weight_skip_efficiency():
    """A huge weight must be processed without Theta(weight) work."""
    sampled = SampledFrequentItems(16, 1e-6, seed=7)
    sampled.update(1, 1e9)  # would explode if reduced to unit case
    assert sampled.stream_weight == 1e9
    # ~1000 expected samples at p=1e-6
    assert sampled.sampled_count < 10_000


def test_deterministic_per_seed():
    def build():
        sampled = SampledFrequentItems(32, 0.1, seed=11)
        for index in range(3_000):
            sampled.update(index % 40, float(index % 5 + 1))
        return sampled

    a, b = build(), build()
    assert a.sampled_count == b.sampled_count
    assert a.estimate(7) == b.estimate(7)
