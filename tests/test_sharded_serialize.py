"""The framed multi-shard wire format, including the documented offsets.

``test_documented_offsets_*`` are the acceptance tests for
``docs/serialization.md``: they parse serialized sketches using *only*
the byte offsets and field types stated in the document — no constants
imported from :mod:`repro.core.serialize` — so the spec cannot drift
from the implementation unnoticed.
"""

import struct

import numpy as np
import pytest

from repro import (
    FrequentItemsSketch,
    SerializationError,
    ShardedFrequentItemsSketch,
)
from repro.streams.zipf import ZipfianStream


def zipf_batch(n=12_000, universe=3_000, seed=5):
    stream = ZipfianStream(
        n, universe=universe, alpha=1.05, seed=seed, weight_low=1, weight_high=100
    )
    return list(stream.batches(batch_size=n))[0]


def populated(num_shards=4, k=64, seed=1):
    sketch = ShardedFrequentItemsSketch(k, num_shards=num_shards, seed=seed)
    sketch.update_batch(*zipf_batch())
    return sketch


# -- round trips --------------------------------------------------------------


def test_round_trip_is_byte_stable():
    sketch = populated()
    blob = sketch.to_bytes()
    clone = ShardedFrequentItemsSketch.from_bytes(blob)
    assert clone.to_bytes() == blob
    assert clone.num_shards == sketch.num_shards
    assert clone.max_counters == sketch.max_counters
    assert clone.seed == sketch.seed
    sketch.close()


def test_round_trip_preserves_queries():
    sketch = populated()
    clone = ShardedFrequentItemsSketch.from_bytes(sketch.to_bytes())
    assert clone.stream_weight == sketch.stream_weight
    assert clone.maximum_error == sketch.maximum_error
    for row in sketch.to_rows()[:100]:
        assert clone.estimate(row.item) == row.estimate
        assert clone.lower_bound(row.item) == row.lower_bound
    assert [row.item for row in clone.heavy_hitters(0.01)] == [
        row.item for row in sketch.heavy_hitters(0.01)
    ]
    sketch.close()


def test_round_trip_of_empty_and_single_shard():
    for sketch in (
        ShardedFrequentItemsSketch(16, num_shards=2, seed=3),
        ShardedFrequentItemsSketch(16, num_shards=1, seed=3),
    ):
        clone = ShardedFrequentItemsSketch.from_bytes(sketch.to_bytes())
        assert clone.is_empty()
        assert clone.num_shards == sketch.num_shards


def test_round_trip_preserves_carried_over_accumulators():
    a = populated(num_shards=4)
    b = populated(num_shards=2, seed=9)
    a.merge(b)  # re-shard path: nonzero extra offset/weight accumulators
    assert a._extra_offset > 0.0 or b.maximum_error == 0.0
    clone = ShardedFrequentItemsSketch.from_bytes(a.to_bytes())
    assert clone.maximum_error == a.maximum_error
    assert clone.stream_weight == a.stream_weight
    assert clone.to_bytes() == a.to_bytes()
    a.close()
    b.close()


def test_deserialized_sketch_remains_operational():
    sketch = populated()
    clone = ShardedFrequentItemsSketch.from_bytes(sketch.to_bytes())
    clone.update_batch(*zipf_batch(seed=6))
    assert clone.stream_weight > sketch.stream_weight
    assert clone.heavy_hitters(0.01)
    sketch.close()
    clone.close()


# -- malformed input ----------------------------------------------------------


def test_rejects_bad_magic_version_and_truncation():
    blob = populated(num_shards=2).to_bytes()
    with pytest.raises(SerializationError):
        ShardedFrequentItemsSketch.from_bytes(b"XXXX" + blob[4:])
    with pytest.raises(SerializationError):
        ShardedFrequentItemsSketch.from_bytes(blob[:4] + b"\x99" + blob[5:])
    with pytest.raises(SerializationError):
        ShardedFrequentItemsSketch.from_bytes(blob[:20])
    with pytest.raises(SerializationError):
        ShardedFrequentItemsSketch.from_bytes(blob[:-3])
    with pytest.raises(SerializationError):
        ShardedFrequentItemsSketch.from_bytes(blob + b"\x00")


def test_flat_loader_refuses_sharded_frames_with_a_hint():
    blob = populated(num_shards=2).to_bytes()
    with pytest.raises(SerializationError, match="ShardedFrequentItemsSketch"):
        FrequentItemsSketch.from_bytes(blob)


# -- the documented byte offsets (docs/serialization.md) ----------------------


def test_documented_offsets_parse_a_flat_sketch():
    """Parse a flat blob using only the offsets the docs state."""
    sketch = FrequentItemsSketch(64, backend="columnar", seed=17)
    sketch.update_batch(*zipf_batch(n=6_000, universe=2_000))
    blob = sketch.to_bytes()

    # docs/serialization.md, "Flat sketch format" offset table:
    assert blob[0:4] == b"RFI1"                                   # offset 0
    (k,) = struct.unpack_from("<I", blob, 4)                      # offset 4
    backend_code = blob[8]                                        # offset 8
    policy_kind = blob[9]                                         # offset 9
    (policy_param,) = struct.unpack_from("<d", blob, 10)          # offset 10
    (sample_size,) = struct.unpack_from("<I", blob, 18)           # offset 18
    (seed,) = struct.unpack_from("<Q", blob, 22)                  # offset 22
    (offset_value,) = struct.unpack_from("<d", blob, 30)          # offset 30
    (weight,) = struct.unpack_from("<d", blob, 38)                # offset 38
    (count,) = struct.unpack_from("<I", blob, 46)                 # offset 46

    assert k == 64
    assert backend_code == 3  # columnar
    assert policy_kind == 0  # sample-quantile (SMED default)
    assert policy_param == 0.5
    assert sample_size == 1024
    assert seed == 17
    assert offset_value == sketch.maximum_error
    assert weight == sketch.stream_weight
    assert count == sketch.num_active
    assert len(blob) == 50 + 16 * count  # record array starts at offset 50

    # Records: (uint64 item, float64 count) pairs, 16 bytes apiece.
    for index in range(count):
        item, value = struct.unpack_from("<Qd", blob, 50 + 16 * index)
        assert sketch.lower_bound(item) == value


def test_documented_offsets_parse_a_sharded_sketch():
    """Parse a sharded blob using only the offsets the docs state."""
    sketch = populated(num_shards=3, k=32, seed=21)
    blob = sketch.to_bytes()

    # docs/serialization.md, "Sharded frame format" offset table:
    assert blob[0:4] == b"RFS1"                                   # offset 0
    assert blob[4] == 1                                           # version byte
    (num_shards,) = struct.unpack_from("<I", blob, 5)             # offset 5
    (partition_seed,) = struct.unpack_from("<Q", blob, 9)         # offset 9
    (extra_offset,) = struct.unpack_from("<d", blob, 17)          # offset 17
    (extra_weight,) = struct.unpack_from("<d", blob, 25)          # offset 25

    assert num_shards == 3
    assert partition_seed == 21
    assert extra_offset == 0.0
    assert extra_weight == 0.0

    # Shard frames start at offset 33: uint32 length + flat blob each.
    cursor = 33
    shard_weights = []
    for _shard in range(num_shards):
        (frame_length,) = struct.unpack_from("<I", blob, cursor)
        cursor += 4
        frame = blob[cursor : cursor + frame_length]
        assert frame[0:4] == b"RFI1"  # each frame is a flat-format blob
        (shard_weight,) = struct.unpack_from("<d", frame, 38)
        shard_weights.append(shard_weight)
        cursor += frame_length
    assert cursor == len(blob)
    assert sum(shard_weights) + extra_weight == sketch.stream_weight
    sketch.close()
