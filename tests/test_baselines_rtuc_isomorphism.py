"""The isomorphism oracles (Sections 1.3.4, 1.4).

RBMC produces estimates *identical* to RTUC-MG, and MHE to RTUC-SS, on
any integer-weight stream.  Because the RTUC wrappers are nothing but
the trusted unit-update algorithms applied Δ times, these equalities are
whole-algorithm correctness proofs for the weighted implementations.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    ReduceByMinCounter,
    RTUCMisraGries,
    RTUCSpaceSaving,
    SpaceSavingHeap,
)
from repro.errors import InvalidUpdateError

WEIGHTED_STREAM = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=1, max_value=12),
    ),
    max_size=120,
)


@settings(max_examples=120, deadline=None)
@given(WEIGHTED_STREAM, st.integers(min_value=1, max_value=8))
def test_rbmc_equals_rtuc_mg(stream, k):
    rbmc = ReduceByMinCounter(k)
    rtuc = RTUCMisraGries(k)
    for item, weight in stream:
        rbmc.update(item, float(weight))
        rtuc.update(item, weight)
    for item in range(16):
        assert rbmc.estimate(item) == pytest.approx(rtuc.estimate(item)), (
            item,
            dict(rbmc.items()),
            dict(rtuc.items()),
        )


@settings(max_examples=120, deadline=None)
@given(WEIGHTED_STREAM, st.integers(min_value=1, max_value=8))
def test_mhe_equals_rtuc_ss(stream, k):
    mhe = SpaceSavingHeap(k)
    rtuc = RTUCSpaceSaving(k)
    for item, weight in stream:
        mhe.update(item, float(weight))
        rtuc.update(item, weight)
    for item in range(16):
        assert mhe.estimate(item) == pytest.approx(rtuc.estimate(item))


def test_rbmc_paper_worst_case_decrement_counts():
    """On the Section 1.3.4 adversarial stream RBMC decrements on every
    unit update, while the decrement count of SMED stays O(n/k)."""
    from repro.baselines.factory import make_smed
    from repro.streams.adversarial import rbmc_killer_stream

    k = 32
    tail = 2_000
    stream = list(rbmc_killer_stream(k, heavy_weight=10_000.0, num_unit_updates=tail))

    rbmc = ReduceByMinCounter(k)
    for item, weight in stream:
        rbmc.update(item, weight)
    assert rbmc.stats.decrements == tail  # one Θ(k) pass per unit update

    smed = make_smed(k, seed=1)
    for item, weight in stream:
        smed.update(item, weight)
    assert smed.stats.decrements <= tail / (k / 3) + 2


def test_rtuc_rejects_fractional_weights():
    for algorithm in (RTUCMisraGries(4), RTUCSpaceSaving(4)):
        with pytest.raises(InvalidUpdateError):
            algorithm.update(1, 2.5)
        with pytest.raises(InvalidUpdateError):
            algorithm.update(1, 0)


def test_rtuc_expansion_counted():
    rtuc = RTUCMisraGries(4)
    rtuc.update(1, 7)
    rtuc.update(2, 3)
    assert rtuc.stats.rtuc_expansions == 10
    assert rtuc.stats.updates == 10


def test_agarwal_isomorphism_mg_vs_ss():
    """Agarwal et al.: SS with k+1 counters derives from MG with k.

    Concretely, for any unit stream: SS_{k+1}'s estimate of item i equals
    MG_k's estimate plus SS's minimum counter... the testable core is the
    relation between the summaries' guarantees: both bracket the truth
    and SS_{k+1} estimate >= truth >= MG_k estimate.
    """
    from repro.baselines import MisraGries
    from repro.streams.exact import ExactCounter

    random.seed(9)
    stream = [random.randrange(50) for _ in range(4_000)]
    k = 10
    mg = MisraGries(k)
    ss = SpaceSavingHeap(k + 1)
    exact = ExactCounter()
    for item in stream:
        mg.update(item)
        ss.update(item, 1.0)
        exact.update(item)
    for item in range(50):
        truth = exact.frequency(item)
        assert mg.estimate(item) <= truth + 1e-9
        assert ss.estimate(item) >= truth - 1e-9
        # The isomorphism's quantitative face: the two estimates differ
        # by at most the SS minimum counter (= MG's total decrement).
        assert ss.estimate(item) - mg.estimate(item) <= ss.maximum_error + 1e-9
