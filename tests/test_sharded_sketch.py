"""ShardedFrequentItemsSketch: partition, ingest paths, merge-on-query."""

import numpy as np
import pytest

from repro import (
    ExactCounter,
    FrequentItemsSketch,
    InvalidParameterError,
    ShardedFrequentItemsSketch,
)
from helpers import zipf_batch
from repro.core.row import ErrorType
from repro.sharded.partition import partition_salt, shard_ids, shard_of
from repro.streams.zipf import ZipfianStream


# -- partition ----------------------------------------------------------------


def test_partition_scalar_vector_agree():
    items = np.arange(1, 5_000, dtype=np.uint64) * np.uint64(2654435761)
    for num_shards in (1, 2, 3, 4, 7, 8):
        vector = shard_ids(items, num_shards, seed=11)
        scalar = [shard_of(int(item), num_shards, seed=11) for item in items]
        assert vector.tolist() == scalar
        assert 0 <= int(vector.min()) and int(vector.max()) < num_shards


def test_partition_depends_on_seed():
    items = np.arange(10_000, dtype=np.uint64)
    assert not np.array_equal(shard_ids(items, 8, seed=0), shard_ids(items, 8, seed=1))
    assert partition_salt(0) != partition_salt(1)


def test_partition_is_reasonably_balanced():
    items = np.arange(40_000, dtype=np.uint64)
    counts = np.bincount(shard_ids(items, 4, seed=3).astype(np.int64), minlength=4)
    assert counts.min() > 0.8 * len(items) / 4
    assert counts.max() < 1.2 * len(items) / 4


def test_partition_rejects_bad_shard_count():
    with pytest.raises(InvalidParameterError):
        shard_of(1, 0)
    with pytest.raises(InvalidParameterError):
        shard_ids(np.arange(4, dtype=np.uint64), -1)


# -- construction -------------------------------------------------------------


def test_constructor_validation():
    with pytest.raises(InvalidParameterError):
        ShardedFrequentItemsSketch(64, num_shards=0)
    with pytest.raises(InvalidParameterError):
        ShardedFrequentItemsSketch(64, max_workers=0)
    with pytest.raises(InvalidParameterError):
        ShardedFrequentItemsSketch(1)  # per-shard k too small


def test_shards_have_distinct_seeds_and_shared_config():
    sketch = ShardedFrequentItemsSketch(32, num_shards=4, seed=9, backend="dict")
    seeds = {shard.seed for shard in sketch.shards}
    assert len(seeds) == 4
    assert all(shard.backend == "dict" for shard in sketch.shards)
    assert all(shard.max_counters == 32 for shard in sketch.shards)
    assert sketch.space_bytes() == 4 * sketch.shards[0].space_bytes()


# -- ingest paths -------------------------------------------------------------


def test_scalar_and_batch_ingest_are_bit_identical():
    items, weights = zipf_batch()
    batched = ShardedFrequentItemsSketch(64, num_shards=4, seed=9)
    batched.update_batch(items, weights)
    scalar = ShardedFrequentItemsSketch(64, num_shards=4, seed=9)
    for item, weight in zip(items.tolist(), weights.tolist()):
        scalar.update(item, weight)
    assert batched.to_bytes() == scalar.to_bytes()
    batched.close()
    scalar.close()


@pytest.mark.parametrize("backend", ["dict", "probing", "robinhood", "columnar"])
def test_all_backends_supported(backend):
    items, weights = zipf_batch(n=4_000)
    sketch = ShardedFrequentItemsSketch(64, num_shards=4, seed=2, backend=backend)
    sketch.update_batch(items, weights)
    assert sketch.stream_weight == float(weights.sum())
    assert sketch.num_active == sum(shard.num_active for shard in sketch.shards)
    sketch.close()


def test_each_item_lives_on_its_owner_shard_only():
    items, weights = zipf_batch(n=5_000)
    sketch = ShardedFrequentItemsSketch(2_000, num_shards=4, seed=1)
    sketch.update_batch(items, weights)
    owners = shard_ids(items, 4, seed=1)
    for item, owner in zip(items[:200].tolist(), owners[:200].tolist()):
        for index, shard in enumerate(sketch.shards):
            assert (item in shard) == (index == owner)
        assert item in sketch
    sketch.close()


def test_single_shard_matches_its_own_flat_shard():
    items, weights = zipf_batch(n=8_000)
    sketch = ShardedFrequentItemsSketch(64, num_shards=1, seed=3)
    sketch.update_batch(items, weights)
    flat = FrequentItemsSketch(64, backend="columnar", seed=sketch.shards[0].seed)
    flat.update_batch(items, weights)
    assert sketch.shards[0].to_bytes() == flat.to_bytes()
    assert sketch.maximum_error == flat.maximum_error
    assert sketch.estimate(int(items[0])) == flat.estimate(int(items[0]))


def test_update_all_accepts_mixed_forms():
    sketch = ShardedFrequentItemsSketch(16, num_shards=2, seed=4)
    sketch.update_all([5, (6, 2.5), 5])
    assert sketch.estimate(5) == 2.0
    assert sketch.estimate(6) == 2.5
    assert sketch.stream_weight == 4.5


def test_empty_batch_is_a_noop():
    sketch = ShardedFrequentItemsSketch(16, num_shards=2, seed=4)
    sketch.update_batch(np.array([], dtype=np.uint64))
    assert sketch.is_empty()
    assert len(sketch) == 0


# -- merge-on-query -----------------------------------------------------------


def test_merged_view_is_exact_without_decrements():
    items, weights = zipf_batch(n=10_000, universe=500)
    exact = ExactCounter()
    for item, weight in zip(items.tolist(), weights.tolist()):
        exact.update(item, weight)
    # Per-shard k large enough that no shard ever decrements.
    sketch = ShardedFrequentItemsSketch(1_000, num_shards=4, seed=6)
    sketch.update_batch(items, weights)
    assert sketch.maximum_error == 0.0
    assert sketch.stream_weight == exact.total_weight
    for item, frequency in exact.items():
        assert sketch.estimate(item) == frequency
        assert sketch.lower_bound(item) == frequency
        assert sketch.upper_bound(item) == frequency
    sketch.close()


def test_merged_view_is_cached_and_invalidated_on_write():
    sketch = ShardedFrequentItemsSketch(64, num_shards=2, seed=6)
    sketch.update(1, 5.0)
    view = sketch.merged_view()
    assert sketch.merged_view() is view  # cached
    sketch.update(1, 5.0)
    assert sketch.merged_view() is not view  # invalidated by the write
    assert sketch.estimate(1) == 10.0


def test_bounds_bracket_truth_under_pressure():
    items, weights = zipf_batch(n=20_000, universe=6_000)
    exact = ExactCounter()
    for item, weight in zip(items.tolist(), weights.tolist()):
        exact.update(item, weight)
    # Small per-shard k: every shard decrements, offsets are nonzero.
    sketch = ShardedFrequentItemsSketch(64, num_shards=4, seed=8)
    sketch.update_batch(items, weights)
    assert sketch.maximum_error > 0.0
    assert sketch.maximum_error == pytest.approx(
        sum(shard.maximum_error for shard in sketch.shards)
    )
    for item, frequency in exact.items():
        assert sketch.lower_bound(item) <= frequency
        assert sketch.upper_bound(item) >= frequency
        assert abs(sketch.estimate(item) - frequency) <= sketch.maximum_error
    sketch.close()


def test_heavy_hitters_recall_is_total_under_pressure():
    items, weights = zipf_batch(n=20_000, universe=6_000)
    exact = ExactCounter()
    for item, weight in zip(items.tolist(), weights.tolist()):
        exact.update(item, weight)
    sketch = ShardedFrequentItemsSketch(64, num_shards=4, seed=8)
    sketch.update_batch(items, weights)
    phi = 0.01
    true_hh = set(exact.heavy_hitters(phi))
    reported = {
        row.item for row in sketch.heavy_hitters(phi, ErrorType.NO_FALSE_NEGATIVES)
    }
    assert true_hh <= reported
    # And the no-false-positives direction never lies.
    for row in sketch.heavy_hitters(phi, ErrorType.NO_FALSE_POSITIVES):
        assert exact.frequency(row.item) >= phi * exact.total_weight - 1e-9
    sketch.close()


def test_rows_and_iteration_come_from_the_view():
    sketch = ShardedFrequentItemsSketch(16, num_shards=2, seed=4)
    sketch.update_all([(1, 9.0), (2, 3.0), (3, 1.0)])
    rows = sketch.to_rows()
    assert [row.item for row in rows] == [1, 2, 3]
    assert [row.item for row in sketch] == [1, 2, 3]
    assert sketch.row(2).estimate == 3.0
    assert [row.item for row in sketch.frequent_items(threshold=2.0)] == [1, 2]


# -- lifecycle ----------------------------------------------------------------


def test_copy_is_independent():
    sketch = ShardedFrequentItemsSketch(16, num_shards=2, seed=4)
    sketch.update(1, 5.0)
    dup = sketch.copy()
    dup.update(1, 5.0)
    assert sketch.estimate(1) == 5.0
    assert dup.estimate(1) == 10.0
    assert dup.to_bytes() != sketch.to_bytes()


def test_context_manager_closes_pool():
    items, weights = zipf_batch(n=4_000)
    with ShardedFrequentItemsSketch(64, num_shards=4, seed=2) as sketch:
        sketch.update_batch(items, weights)
        assert sketch._executor is not None
    assert sketch._executor is None
    # Still usable after close: a new pool spins up on demand.
    sketch.update_batch(items, weights)
    sketch.close()


def test_stats_aggregate_across_shards():
    items, weights = zipf_batch(n=8_000)
    sketch = ShardedFrequentItemsSketch(64, num_shards=4, seed=2)
    sketch.update_batch(items, weights)
    total = sketch.stats
    assert total.updates == len(items)
    assert total.updates == sum(shard.stats.updates for shard in sketch.shards)
    assert total.decrements == sum(
        shard.stats.decrements for shard in sketch.shards
    )
    sketch.close()
