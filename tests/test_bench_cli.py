"""The bench CLI end to end, on a monkeypatched tiny scale."""

import pytest

from repro.bench import cli
from repro.bench.harness import SCALES, BenchConfig

TINY = BenchConfig(
    num_updates=1_500,
    unique_sources=300,
    k_values=(8, 16),
    merge_pairs=2,
    merge_updates_per_sketch_factor=3,
    quantiles=(0, 50),
    seed=21,
)


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setitem(SCALES, "tiny", TINY)


@pytest.mark.parametrize(
    "experiment, landmark",
    [
        ("fig1", "Figure 1"),
        ("fig2", "Figure 2"),
        ("fig3", "Figure 3"),
        ("fig4", "Figure 4"),
        ("claims", "Section 4.3 claims"),
        ("context", "Context"),
        ("adversarial", "adversarial stream"),
        ("bounds", "Theorem 4 check"),
        ("batch", "Batch ingestion engine"),
        ("decay", "Engine consumers"),
    ],
)
def test_each_experiment_runs(experiment, landmark, capsys):
    assert cli.main([experiment, "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert landmark in out


def test_ablations_run(capsys):
    assert cli.main(["ablations", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "decrement policy" in out
    assert "sample size" in out
    assert "merge iteration order" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        cli.main(["figure9"])


def test_experiments_registry_matches_readme_surface():
    assert set(cli.EXPERIMENTS) == {
        "fig1", "fig2", "fig3", "fig4", "claims", "space",
        "context", "bounds", "adversarial", "batch", "shard", "decay",
        "serve", "ingest-profile", "ablations",
    }


def test_ingest_profile_writes_json(tmp_path, monkeypatch, capsys):
    import json

    monkeypatch.chdir(tmp_path)
    assert cli.main(["ingest-profile", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "Ingest profile" in out
    document = json.loads((tmp_path / "BENCH_ingest.json").read_text())
    assert document["bench"] == "ingest-profile"
    assert document["gates"]["probing_batch_speedup_alpha1.05"] > 0
    backends = {row["backend"] for row in document["rows"]}
    assert backends == {"dict", "probing", "robinhood", "columnar"}


def test_quick_flag_is_scale_alias(monkeypatch, tmp_path, capsys):
    # --quick must parse and select the quick scale; use the cheapest
    # experiment so the test stays fast.
    monkeypatch.chdir(tmp_path)
    monkeypatch.setitem(SCALES, "quick", TINY)
    assert cli.main(["space", "--quick"]) == 0
    assert "space" in capsys.readouterr().out.lower()
