"""The bench CLI end to end, on a monkeypatched tiny scale."""

import pytest

from repro.bench import cli
from repro.bench.harness import SCALES, BenchConfig

TINY = BenchConfig(
    num_updates=1_500,
    unique_sources=300,
    k_values=(8, 16),
    merge_pairs=2,
    merge_updates_per_sketch_factor=3,
    quantiles=(0, 50),
    seed=21,
)


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setitem(SCALES, "tiny", TINY)


@pytest.mark.parametrize(
    "experiment, landmark",
    [
        ("fig1", "Figure 1"),
        ("fig2", "Figure 2"),
        ("fig3", "Figure 3"),
        ("fig4", "Figure 4"),
        ("claims", "Section 4.3 claims"),
        ("context", "Context"),
        ("adversarial", "adversarial stream"),
        ("bounds", "Theorem 4 check"),
        ("batch", "Batch ingestion engine"),
        ("decay", "Engine consumers"),
    ],
)
def test_each_experiment_runs(experiment, landmark, capsys):
    assert cli.main([experiment, "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert landmark in out


def test_ablations_run(capsys):
    assert cli.main(["ablations", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "decrement policy" in out
    assert "sample size" in out
    assert "merge iteration order" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        cli.main(["figure9"])


def test_experiments_registry_matches_readme_surface():
    assert set(cli.EXPERIMENTS) == {
        "fig1", "fig2", "fig3", "fig4", "claims", "space",
        "context", "bounds", "adversarial", "batch", "shard", "decay",
        "serve", "ingest-profile", "ablations",
    }


def test_ingest_profile_writes_json(tmp_path, monkeypatch, capsys):
    import json

    monkeypatch.chdir(tmp_path)
    assert cli.main(["ingest-profile", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "Ingest profile" in out
    document = json.loads((tmp_path / "BENCH_ingest.json").read_text())
    assert document["bench"] == "ingest-profile"
    assert document["gates"]["probing_batch_speedup_alpha1.05"] > 0
    backends = {row["backend"] for row in document["rows"]}
    assert backends == {"dict", "probing", "robinhood", "columnar"}


def test_quick_flag_is_scale_alias(monkeypatch, tmp_path, capsys):
    # --quick must parse and select the quick scale; use the cheapest
    # experiment so the test stays fast.
    monkeypatch.chdir(tmp_path)
    monkeypatch.setitem(SCALES, "quick", TINY)
    assert cli.main(["space", "--quick"]) == 0
    assert "space" in capsys.readouterr().out.lower()


def test_out_appends_are_stamped_with_run_headers(tmp_path, capsys):
    """Satellite: two appends → two attributable blocks, not one blob."""
    out = tmp_path / "report.txt"
    assert cli.main(["space", "--scale", "tiny", "--out", str(out)]) == 0
    assert cli.main(["bounds", "--scale", "tiny", "--out", str(out)]) == 0
    capsys.readouterr()
    text = out.read_text()
    headers = [line for line in text.splitlines() if line.startswith("==== bench run:")]
    assert len(headers) == 2
    assert "==== bench run: space | scale=tiny | git " in headers[0]
    assert "==== bench run: bounds | scale=tiny | git " in headers[1]
    # Each header carries the commit and a UTC instant.
    for header in headers:
        assert "T" in header and header.rstrip().endswith("====")
        assert "Z" in header
    # The stamped blocks still contain their tables, in append order.
    assert text.index(headers[0]) < text.index("Theorem 4 check")


def test_run_header_format():
    header = cli.run_header("fig1", "quick")
    assert header.startswith("==== bench run: fig1 | scale=quick | git ")
    assert header.endswith("====")


def test_report_command_end_to_end(tmp_path, monkeypatch, capsys):
    """The tentpole: matrix run → stamped document → rendered report."""
    import json

    from repro.bench import matrix

    monkeypatch.chdir(tmp_path)
    tiny_spec = matrix.MatrixSpec(
        backends=("columnar",),
        policies=("smed",),
        alphas=(1.05,),
        k_values=(16,),
        growth_modes=("fixed",),
        repeats=2,
        batch_size=512,
    )
    monkeypatch.setattr(matrix, "matrix_for_scale", lambda scale: tiny_spec)
    out = tmp_path / "out.txt"
    assert cli.main([
        "report", "--scale", "tiny",
        "--runs-dir", str(tmp_path / "runs"),
        "--report-dir", str(tmp_path / "rep"),
        "--out", str(out),
    ]) == 0
    printed = capsys.readouterr().out
    assert "Experiment matrix" in printed
    assert "run document:" in printed

    run_files = list((tmp_path / "runs").glob("run-*.json"))
    assert len(run_files) == 1
    document = json.loads(run_files[0].read_text())
    assert document["scale"] == "tiny"
    assert document["git_hash"] and document["timestamp_utc"].endswith("Z")
    assert len(document["cells"]) == 1

    html_doc = (tmp_path / "rep" / "report.html").read_text()
    assert "Accuracy vs space frontier" in html_doc
    assert "Throughput trajectory" in html_doc
    assert "report" in out.read_text().splitlines()[0]  # stamped --out header


def test_report_dir_defaults_under_runs_dir(tmp_path, monkeypatch):
    from repro.bench import matrix

    monkeypatch.chdir(tmp_path)
    tiny_spec = matrix.MatrixSpec(
        backends=("dict",), policies=("smed",), alphas=(1.05,),
        k_values=(16,), growth_modes=("fixed",), repeats=1, batch_size=512,
    )
    monkeypatch.setattr(matrix, "matrix_for_scale", lambda scale: tiny_spec)
    assert cli.main(["report", "--scale", "tiny", "--runs-dir", "runs"]) == 0
    assert (tmp_path / "runs" / "report" / "report.md").exists()
