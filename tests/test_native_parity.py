"""Native-vs-fallback bit-identity: the compiled kernels may not change
one observable bit.

Every test builds the same sketch twice in one process — once with the
compiled path forced on, once forced off (``repro.native.use_native``) —
and asserts the strongest equalities we have: serialized bytes, xoroshiro
state words, offsets, estimates, live table layouts, and probe counts.
The whole module skips cleanly when the extension isn't built (the
pure-NumPy CI job), and the inter-path tests skip when it is but was
disabled via ``REPRO_NATIVE=0`` (the golden-hash suite then covers that
configuration on its own).
"""

import numpy as np
import pytest

from repro import native
from repro.core.frequent_items import FrequentItemsSketch
from repro.core.policies import SampleQuantilePolicy
from repro.engine.kernel import SketchKernel
from repro.errors import InvalidParameterError, TableFullError
from repro.table.probing import LinearProbingTable
from repro.table.robinhood import RobinHoodTable

pytestmark = [
    pytest.mark.native,
    pytest.mark.skipif(
        not native.available(), reason="native extension not built"
    ),
]

BACKENDS = ("probing", "robinhood", "columnar", "dict")
GROWTHS = ("fixed", "adaptive")


def _drive_kernel(use_native_path, backend, growth, policy_kwargs):
    """Interleave scalar updates, batches, and a merge; return the kernel."""
    with native.use_native(use_native_path):
        kernel = SketchKernel(
            128,
            policy=SampleQuantilePolicy(**policy_kwargs),
            backend=backend,
            seed=11,
            growth=growth,
        )
        rng = np.random.default_rng(5)
        items = (rng.zipf(1.2, size=6000) % 700).astype(np.uint64)
        weights = rng.integers(1, 50, size=6000).astype(np.float64)
        # Scalar prefix (partially fills, exercises adaptive staging)...
        for item, weight in zip(items[:300].tolist(), weights[:300].tolist()):
            kernel.update(item, weight)
        # ...then batches large enough to force decrement passes...
        kernel.update_batch_validated(items[300:4000], weights[300:4000])
        # ...a merge from an independently-built donor...
        donor = SketchKernel(
            64,
            policy=SampleQuantilePolicy(**policy_kwargs),
            backend=backend,
            seed=23,
            growth=growth,
        )
        donor.update_batch_validated(items[4000:5000], weights[4000:5000])
        kernel.absorb(donor)
        # ...and a final batch on the merged state.
        kernel.update_batch_validated(items[5000:], weights[5000:])
        return kernel


def _snapshot(kernel):
    items, counts = kernel.store.as_arrays()
    return {
        "items": np.asarray(items).tolist(),
        "counts": np.asarray(counts).tolist(),
        "offset": kernel.offset,
        "stream_weight": kernel.stream_weight,
        "rng": kernel.rng.getstate(),
        "size": len(kernel.store),
        "stats": kernel.stats.as_dict(),
    }


@pytest.mark.parametrize("growth", GROWTHS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_kernel_bit_identity_across_paths(backend, growth):
    """Estimates, RNG words, offset, stats — equal after interleaved ops."""
    fast = _drive_kernel(True, backend, growth, {})
    slow = _drive_kernel(False, backend, growth, {})
    assert _snapshot(fast) == _snapshot(slow)


@pytest.mark.parametrize("backend", ("probing", "robinhood"))
def test_kernel_bit_identity_forced_rng_sampling(backend):
    """A tiny sample_size forces the rejection-sampling PRNG draws in the
    compiled decrement; the post-stream state words must still match."""
    kwargs = {"quantile": 0.5, "sample_size": 64}
    fast = _drive_kernel(True, backend, "fixed", kwargs)
    slow = _drive_kernel(False, backend, "fixed", kwargs)
    assert fast.rng.getstate() == slow.rng.getstate()
    assert _snapshot(fast) == _snapshot(slow)


@pytest.mark.parametrize("quantile", (0.0, 0.25, 1.0))
def test_kernel_bit_identity_quantile_extremes(quantile):
    """SMIN / intermediate / max quantiles hit all selector branches."""
    kwargs = {"quantile": quantile, "sample_size": 1024}
    fast = _drive_kernel(True, "probing", "fixed", kwargs)
    slow = _drive_kernel(False, "probing", "fixed", kwargs)
    assert _snapshot(fast) == _snapshot(slow)


@pytest.mark.parametrize("backend", BACKENDS)
def test_serialized_bytes_identical(backend):
    """The public blob — byte for byte — across paths, then a restore
    round-trip on the opposite path."""

    def build(flag):
        with native.use_native(flag):
            sketch = FrequentItemsSketch(
                max_counters=128, backend=backend, seed=11
            )
            rng = np.random.default_rng(9)
            items = (rng.zipf(1.1, size=8000) % 3000).astype(np.uint64)
            sketch.update_batch(items, np.ones(8000))
            return sketch.to_bytes()

    blob_native = build(True)
    blob_numpy = build(False)
    assert blob_native == blob_numpy
    # Cross-path restore: bytes written by one path load on the other.
    with native.use_native(False):
        restored = FrequentItemsSketch.from_bytes(blob_native)
    with native.use_native(True):
        assert restored.to_bytes() == blob_native


def _live_layout(table):
    occupied = np.flatnonzero(table._states != 0)
    return {
        "states": table._states.tolist(),  # stale cells are zeroed on both paths
        "keys": table._keys[occupied].tolist(),
        "values": table._values[occupied].tolist(),
        "size": len(table),
        "probes": table.probe_count,
    }


@pytest.mark.parametrize("cls", (LinearProbingTable, RobinHoodTable))
def test_table_ops_layout_and_probe_parity(cls):
    """insert_many / get_many / add_many / purge: identical layouts and
    identical probe accounting on both paths."""
    rng = np.random.default_rng(3)
    tables = {}
    for flag in (True, False):
        with native.use_native(flag):
            table = cls(96, hash_seed=13)
            keys = rng.choice(4000, size=96, replace=False).astype(np.uint64)
            values = rng.uniform(1.0, 20.0, size=96)
            table.insert_many(keys, values)
            queries = rng.integers(0, 5000, size=300).astype(np.uint64)
            got = table.get_many(queries)
            table.add_many(keys[:40], np.full(40, 2.5))
            table.adjust_all(-float(np.median(values)))
            freed = table.purge_nonpositive()
            tables[flag] = (_live_layout(table), got.tolist(), freed)
        rng = np.random.default_rng(3)  # same draws for the second pass
    native_result, numpy_result = tables[True], tables[False]
    assert native_result[0] == numpy_result[0]
    assert freed > 0
    assert np.array_equal(
        np.array(native_result[1]), np.array(numpy_result[1]), equal_nan=True
    )
    assert native_result[2] == numpy_result[2]


@pytest.mark.parametrize("cls", (LinearProbingTable, RobinHoodTable))
def test_table_error_paths_native(cls):
    """Duplicate / missing-key errors raise the repro types and leave the
    table untouched, exactly like the NumPy paths."""
    with native.use_native(True):
        table = cls(8, hash_seed=1)
        table.insert(5, 1.0)
        before = _live_layout(table)
        with pytest.raises(InvalidParameterError):
            table.insert_many(
                np.array([7, 5, 9], dtype=np.uint64), np.ones(3)
            )
        assert _live_layout(table)["keys"] == before["keys"]
        with pytest.raises(InvalidParameterError):
            table.add_many(np.array([5, 99], dtype=np.uint64), np.ones(2))
        with pytest.raises(TableFullError):
            table.insert_many(
                np.arange(100, 110, dtype=np.uint64), np.ones(10)
            )


def test_fractional_weights_native_matches_scalar_exactly():
    """Fractional weights: the compiled batch loop IS the scalar update
    sequence, so it lands bit-exactly on the scalar reference — the
    NumPy batch path's grouped accumulation is only documented to agree
    within O(eps log n) there (it is bit-identical for the paper's
    integer-representable workloads, which the other tests pin)."""
    rng = np.random.default_rng(17)
    items = (rng.zipf(1.3, size=4000) % 500).astype(np.uint64)
    weights = rng.uniform(0.1, 3.0, size=4000)

    with native.use_native(True):
        batched = SketchKernel(64, backend="probing", seed=2)
        batched.ingest_batch(items, weights)
    scalar = SketchKernel(64, backend="probing", seed=2)
    for item, weight in zip(items.tolist(), weights.tolist()):
        scalar.ingest(item, weight)
    with native.use_native(False):
        numpy_batched = SketchKernel(64, backend="probing", seed=2)
        numpy_batched.ingest_batch(items, weights)

    snap_native, snap_scalar = _snapshot(batched), _snapshot(scalar)
    assert snap_native == snap_scalar  # bit-exact, counts included
    snap_numpy = _snapshot(numpy_batched)
    assert snap_numpy["items"] == snap_scalar["items"]
    assert snap_numpy["rng"] == snap_scalar["rng"]
    np.testing.assert_allclose(
        snap_numpy["counts"], snap_scalar["counts"], rtol=1e-12
    )


def test_unaligned_blob_arrays_accepted():
    """Deserialization hands the kernels unaligned frombuffer views."""
    with native.use_native(True):
        sketch = FrequentItemsSketch(max_counters=16, seed=3)
        for i in range(40):
            sketch.update(i % 9, float(i + 1))
        clone = FrequentItemsSketch.from_bytes(sketch.to_bytes())
        assert clone.to_bytes() == sketch.to_bytes()


def test_adaptive_tables_go_native_once_grown():
    """While staged the Python growth machinery runs; at final length the
    dispatch flips to the compiled path with no observable seam."""
    with native.use_native(True):
        kernel = SketchKernel(128, backend="probing", seed=7, growth="adaptive")
        assert kernel.store._insertion_log is not None
        assert native.table_kernels(kernel.store) is None
        items = np.arange(4000, dtype=np.uint64)
        kernel.update_batch_validated(items, np.ones(4000))
        assert kernel.store._insertion_log is None
        assert native.table_kernels(kernel.store) is not None
    with native.use_native(False):
        twin = SketchKernel(128, backend="probing", seed=7, growth="adaptive")
        twin.update_batch_validated(items, np.ones(4000))
    assert _snapshot(kernel) == _snapshot(twin)


def test_runtime_metadata_reports_path():
    with native.use_native(True):
        meta = native.runtime_metadata()
        assert meta["ingest_path"] == "native"
        assert meta["native_available"] is True
        assert "native_compiler" in meta
    with native.use_native(False):
        assert native.runtime_metadata()["ingest_path"] == "numpy"
