"""The leader/follower fault-injection matrix.

The acceptance property, stretched over a socket: at *every* fault —
leader killed and recovered, follower killed and recovered, replication
stream cut mid-frame, follower returning after the replay ring wrapped —
the promoted follower's serialized blob and PRNG state words are
byte-identical to the leader's, and the leader itself is byte-identical
to an uninterrupted single-process reference run.  The full matrix
(4 fault kinds x 4 sketch kinds x 4 kill points = 64 scenarios) is
``slow``-marked for the replication CI job; a small cross-section stays
in tier-1.
"""

import asyncio
import random

import pytest

from replication_harness import run_fault_scenario
from test_service_recovery import SKETCH_MAKERS, make_feed, reference_state

pytestmark = [pytest.mark.service, pytest.mark.replication]

FAULTS = ("kill-leader", "kill-follower", "drop-stream", "restart-catch-up")
KILL_POINTS = (0, 4, 9, 12)
FEED_BATCHES = 12


def run(coroutine):
    return asyncio.run(coroutine)


def check_scenario(kind, fault, kill_at, tmp_path):
    make_sketch = SKETCH_MAKERS[kind]
    feed = make_feed(num_batches=FEED_BATCHES, batch_size=150)
    # A small ring forces the snapshot catch-up path where the scenario
    # leaves the follower behind; everywhere else the ring suffices.
    ring = 4 if fault == "restart-catch-up" else 512
    leader_state, follower_state = run(
        run_fault_scenario(
            make_sketch, feed, fault=fault, kill_at=kill_at,
            tmp_path=tmp_path, ring_frames=ring,
        )
    )
    assert leader_state == reference_state(make_sketch, feed), (
        f"{kind}/{fault}@{kill_at}: leader diverged from the "
        "uninterrupted reference"
    )
    assert follower_state == leader_state, (
        f"{kind}/{fault}@{kill_at}: promoted follower is not "
        "byte-identical to the leader"
    )


@pytest.mark.slow
@pytest.mark.parametrize("kill_at", KILL_POINTS)
@pytest.mark.parametrize("fault", FAULTS)
@pytest.mark.parametrize("kind", sorted(SKETCH_MAKERS))
def test_fault_matrix(kind, fault, kill_at, tmp_path):
    """64 scenarios: every fault at every boundary for every sketch kind."""
    check_scenario(kind, fault, kill_at, tmp_path)


@pytest.mark.parametrize("fault", FAULTS)
def test_fault_cross_section(fault, tmp_path):
    """Tier-1 keeps one mid-stream scenario per fault kind."""
    check_scenario("flat-probing", fault, 4, tmp_path)


def test_fault_cross_section_adaptive(tmp_path):
    """...plus the adaptive-growth backend on the harshest fault."""
    check_scenario("flat-columnar-adaptive", "restart-catch-up", 9, tmp_path)


@pytest.mark.slow
def test_randomized_fault_sequences(tmp_path):
    """Beyond the grid: random (kind, fault, kill point) draws, the
    replication twin of test_random_kill_points_fuzz."""
    rng = random.Random(777)
    for index in range(8):
        kind = rng.choice(sorted(SKETCH_MAKERS))
        fault = rng.choice(FAULTS)
        kill_at = rng.randint(0, FEED_BATCHES)
        check_scenario(kind, fault, kill_at, tmp_path / f"fuzz-{index}")
