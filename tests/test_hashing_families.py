"""Multiply-shift and sign hash families for the sketch baselines."""

import pytest

from repro.errors import InvalidParameterError
from repro.hashing.families import MultiplyShiftFamily, SignHashFamily


def test_family_shape():
    family = MultiplyShiftFamily(rows=5, width=256, seed=1)
    assert family.rows == 5
    assert family.width == 256


def test_hash_in_range():
    family = MultiplyShiftFamily(rows=4, width=128, seed=2)
    for key in range(2000):
        for row in range(4):
            assert 0 <= family.hash(row, key) < 128


def test_hash_all_matches_hash():
    family = MultiplyShiftFamily(rows=3, width=64, seed=3)
    for key in (0, 1, 999, 2**63):
        assert family.hash_all(key) == [family.hash(r, key) for r in range(3)]


def test_rows_behave_differently():
    family = MultiplyShiftFamily(rows=2, width=1024, seed=4)
    agreements = sum(
        1 for key in range(2000) if family.hash(0, key) == family.hash(1, key)
    )
    assert agreements < 20  # ~2 expected by chance


def test_distribution_roughly_uniform():
    family = MultiplyShiftFamily(rows=1, width=16, seed=5)
    counts = [0] * 16
    n = 8000
    for key in range(n):
        counts[family.hash(0, key)] += 1
    for count in counts:
        assert 0.6 * n / 16 < count < 1.4 * n / 16


def test_rejects_bad_parameters():
    with pytest.raises(InvalidParameterError):
        MultiplyShiftFamily(rows=0, width=16)
    with pytest.raises(InvalidParameterError):
        MultiplyShiftFamily(rows=1, width=100)  # not a power of two
    with pytest.raises(InvalidParameterError):
        MultiplyShiftFamily(rows=1, width=0)
    with pytest.raises(InvalidParameterError):
        SignHashFamily(rows=0)


def test_signs_are_plus_minus_one_and_balanced():
    signs = SignHashFamily(rows=3, seed=6)
    n = 4000
    for row in range(3):
        total = 0
        for key in range(n):
            sign = signs.sign(row, key)
            assert sign in (-1, 1)
            total += sign
        assert abs(total) < 0.1 * n


def test_sign_deterministic_per_seed():
    a = SignHashFamily(rows=1, seed=7)
    b = SignHashFamily(rows=1, seed=7)
    c = SignHashFamily(rows=1, seed=8)
    series_a = [a.sign(0, key) for key in range(100)]
    series_b = [b.sign(0, key) for key in range(100)]
    series_c = [c.sign(0, key) for key in range(100)]
    assert series_a == series_b
    assert series_a != series_c
