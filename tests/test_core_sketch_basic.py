"""FrequentItemsSketch fundamentals: updates, queries, state, validation."""

import pytest

from repro import (
    ErrorType,
    FrequentItemsSketch,
    InvalidParameterError,
    InvalidUpdateError,
    SampleQuantilePolicy,
)


def test_construction_defaults():
    sketch = FrequentItemsSketch(64)
    assert sketch.max_counters == 64
    assert sketch.backend == "probing"
    assert isinstance(sketch.policy, SampleQuantilePolicy)
    assert sketch.policy.quantile == 0.5
    assert sketch.is_empty()
    assert len(sketch) == 0


def test_rejects_tiny_k():
    with pytest.raises(InvalidParameterError):
        FrequentItemsSketch(1)


def test_rejects_nonpositive_weights():
    sketch = FrequentItemsSketch(8)
    with pytest.raises(InvalidUpdateError):
        sketch.update(1, 0.0)
    with pytest.raises(InvalidUpdateError):
        sketch.update(1, -2.0)


def test_exact_below_capacity():
    """With fewer distinct items than counters the sketch is exact."""
    sketch = FrequentItemsSketch(16, seed=1)
    truth = {}
    for item, weight in [(1, 5.0), (2, 3.0), (1, 2.0), (3, 10.0), (2, 1.0)]:
        sketch.update(item, weight)
        truth[item] = truth.get(item, 0.0) + weight
    assert sketch.maximum_error == 0.0
    for item, frequency in truth.items():
        assert sketch.estimate(item) == frequency
        assert sketch.lower_bound(item) == frequency
        assert sketch.upper_bound(item) == frequency
    assert sketch.estimate(99) == 0.0


def test_unit_weight_default():
    sketch = FrequentItemsSketch(8)
    sketch.update(5)
    sketch.update(5)
    assert sketch.estimate(5) == 2.0
    assert sketch.stream_weight == 2.0


def test_stream_weight_accumulates():
    sketch = FrequentItemsSketch(4, seed=2)
    for item in range(100):
        sketch.update(item, 2.5)
    assert sketch.stream_weight == pytest.approx(250.0)


def test_offset_grows_only_on_overflow():
    sketch = FrequentItemsSketch(4, seed=3)
    for item in range(4):
        sketch.update(item, 10.0)
    assert sketch.maximum_error == 0.0
    sketch.update(99, 1.0)  # forces a decrement pass
    assert sketch.maximum_error > 0.0


def test_bounds_bracket_estimate():
    sketch = FrequentItemsSketch(8, seed=4)
    for item in range(50):
        sketch.update(item % 12, float(item % 7 + 1))
    for item in range(12):
        lower = sketch.lower_bound(item)
        upper = sketch.upper_bound(item)
        estimate = sketch.estimate(item)
        assert lower <= estimate <= upper
        assert upper - lower == pytest.approx(
            sketch.maximum_error if item in sketch else sketch.maximum_error
        )


def test_update_all_accepts_pairs():
    sketch = FrequentItemsSketch(8)
    sketch.update_all([(1, 2.0), (2, 3.0), (1, 1.0)])
    assert sketch.estimate(1) == 3.0
    assert sketch.estimate(2) == 3.0


def test_contains_and_len():
    sketch = FrequentItemsSketch(8)
    sketch.update(3, 1.0)
    assert 3 in sketch
    assert 4 not in sketch
    assert len(sketch) == 1
    assert sketch.num_active == 1


def test_to_rows_sorted_desc():
    sketch = FrequentItemsSketch(8, seed=5)
    sketch.update(1, 10.0)
    sketch.update(2, 30.0)
    sketch.update(3, 20.0)
    rows = sketch.to_rows()
    assert [row.item for row in rows] == [2, 3, 1]
    assert rows[0].estimate >= rows[1].estimate >= rows[2].estimate
    assert list(iter(sketch)) == rows


def test_row_single_item():
    sketch = FrequentItemsSketch(8)
    sketch.update(7, 4.0)
    row = sketch.row(7)
    assert row.item == 7
    assert row.estimate == 4.0
    assert row.lower_bound == 4.0
    assert row.upper_bound == 4.0


def test_copy_is_independent():
    sketch = FrequentItemsSketch(8, seed=6)
    for item in range(20):
        sketch.update(item, float(item + 1))
    dup = sketch.copy()
    assert dup.stream_weight == sketch.stream_weight
    assert dup.maximum_error == sketch.maximum_error
    assert sorted(dup.to_rows()) == sorted(sketch.to_rows())
    dup.update(999, 100.0)
    assert sketch.estimate(999) == 0.0  # original untouched


def test_same_seed_same_sketch():
    def build():
        sketch = FrequentItemsSketch(16, seed=77, backend="dict")
        for item in range(500):
            sketch.update(item % 60, float(item % 9 + 1))
        return sketch

    a, b = build(), build()
    assert a.maximum_error == b.maximum_error
    assert sorted(a.to_rows()) == sorted(b.to_rows())


def test_backends_agree_on_logical_state():
    """Same stream, both backends: identical estimates (ell >= k case)."""
    streams = [(item % 37, float(item % 5 + 1)) for item in range(2000)]
    probing = FrequentItemsSketch(16, backend="probing", seed=8)
    dictionary = FrequentItemsSketch(16, backend="dict", seed=8)
    for item, weight in streams:
        probing.update(item, weight)
        dictionary.update(item, weight)
    assert probing.maximum_error == dictionary.maximum_error
    for item in range(37):
        assert probing.estimate(item) == dictionary.estimate(item)


def test_insert_skipped_when_weight_not_above_cstar():
    """A tiny update against a full table must not be assigned a counter."""
    sketch = FrequentItemsSketch(4, seed=9, backend="dict")
    for item in range(4):
        sketch.update(item, 1000.0)
    sketch.update(99, 0.5)  # c* will exceed 0.5
    assert 99 not in sketch
    assert sketch.estimate(99) == 0.0


def test_huge_update_lands_with_discounted_weight():
    sketch = FrequentItemsSketch(4, seed=10, backend="dict")
    for item in range(4):
        sketch.update(item, 10.0)
    sketch.update(99, 1000.0)
    assert 99 in sketch
    # Raw counter holds weight - c*; the estimate adds the offset back.
    assert sketch.estimate(99) == pytest.approx(1000.0)


def test_stats_tracked():
    sketch = FrequentItemsSketch(4, seed=11, backend="dict")
    for item in range(100):
        # Item 0 recurs with a heavy weight (guaranteed hits); the rest
        # churn through the table (guaranteed decrements).
        if item % 2 == 0:
            sketch.update(0, 50.0)
        else:
            sketch.update(item, 1.0)
    stats = sketch.stats
    assert stats.updates == 100
    assert stats.hits > 0
    assert stats.inserts > 0
    assert stats.decrements > 0
    assert stats.counters_scanned >= stats.decrements * 4
    assert 0 < stats.decrements_per_update() < 1
