"""White-box tests of backward-shift deletion under forced layouts.

The hash function is overridden with a controllable map so collision
chains, wraparound runs, and every branch of the shift logic can be laid
out *exactly* and checked slot by slot — complementing the randomized
model check in test_table_probing.py.
"""

import itertools

from repro.table.probing import LinearProbingTable


class RiggedTable(LinearProbingTable):
    """Probing table whose home slots are dictated by the test."""

    def __init__(self, capacity, homes):
        super().__init__(capacity, hash_seed=0)
        self._homes = homes

    def _home_slot(self, key):
        return self._homes[key] & self._mask


def _slots(table):
    """Physical layout as {slot: (key, value, state)}."""
    layout = {}
    for slot in range(table.length):
        if table._states[slot]:
            layout[slot] = (
                table._keys[slot],
                table._values[slot],
                table._states[slot],
            )
    return layout


def test_chain_all_same_home_shifts_compactly():
    """Keys 0..3 all home at slot 2: a pure collision chain.

    Deleting the head must slide every follower back one slot and
    decrement its probe state.
    """
    table = RiggedTable(6, homes={0: 2, 1: 2, 2: 2, 3: 2})  # length 8
    for key in range(4):
        table.insert(key, float(key + 1))
    assert _slots(table) == {
        2: (0, 1.0, 1),
        3: (1, 2.0, 2),
        4: (2, 3.0, 3),
        5: (3, 4.0, 4),
    }
    table._values[2] = 0.0  # doom the head of the chain
    assert table.purge_nonpositive() == 1
    assert _slots(table) == {
        2: (1, 2.0, 1),
        3: (2, 3.0, 2),
        4: (3, 4.0, 3),
    }
    for key in (1, 2, 3):
        assert table.get(key) == float(key + 1)


def test_element_in_home_position_is_not_moved():
    """A follower already at its own home must not slide backward."""
    table = RiggedTable(6, homes={10: 2, 11: 3})
    table.insert(10, 1.0)
    table.insert(11, 2.0)  # in its home slot 3
    table._values[2] = -1.0
    table.purge_nonpositive()
    # Key 11 must remain at slot 3 (moving to 2 would precede its home).
    assert _slots(table) == {3: (11, 2.0, 1)}
    assert table.get(11) == 2.0


def test_gap_skips_blocked_element_but_moves_later_one():
    """Mixed run: [A(h=1), B(h=2), C(h=1)] — delete A; B cannot move into
    slot 1, C can (its home is 1)."""
    table = RiggedTable(6, homes={0: 1, 1: 2, 2: 1})
    table.insert(0, 1.0)  # slot 1
    table.insert(1, 2.0)  # slot 2 (its home)
    table.insert(2, 3.0)  # homes at 1 -> probes to slot 3
    assert _slots(table) == {1: (0, 1.0, 1), 2: (1, 2.0, 1), 3: (2, 3.0, 3)}
    table._values[1] = 0.0
    table.purge_nonpositive()
    # B stays at its home; C fills the gap left by A.
    assert _slots(table) == {1: (2, 3.0, 1), 2: (1, 2.0, 1)}
    assert table.get(1) == 2.0
    assert table.get(2) == 3.0


def test_wraparound_chain():
    """A chain that crosses the end of the array (home = L-1)."""
    table = RiggedTable(6, homes={0: 7, 1: 7, 2: 7})  # length 8
    for key in range(3):
        table.insert(key, float(key + 1))
    assert _slots(table) == {7: (0, 1.0, 1), 0: (1, 2.0, 2), 1: (2, 3.0, 3)}
    table._values[7] = -5.0
    table.purge_nonpositive()
    assert _slots(table) == {7: (1, 2.0, 1), 0: (2, 3.0, 2)}
    assert table.get(1) == 2.0
    assert table.get(2) == 3.0


def test_cascading_nonpositive_chain():
    """Several consecutive victims: the rescan-same-slot logic."""
    table = RiggedTable(6, homes={key: 2 for key in range(5)})
    for key in range(5):
        table.insert(key, 1.0 if key % 2 == 0 else 10.0)
    table.adjust_all(-1.0)  # keys 0, 2, 4 hit zero
    assert table.purge_nonpositive() == 3
    assert table.get(1) == 9.0
    assert table.get(3) == 9.0
    assert len(table) == 2
    # Survivors compacted to the front of the run.
    assert _slots(table) == {2: (1, 9.0, 1), 3: (3, 9.0, 2)}


def test_purge_entire_wrapped_run():
    table = RiggedTable(4, homes={key: 5 for key in range(4)})  # length 8
    for key in range(4):
        table.insert(key, 0.5)
    assert table.purge_nonpositive() == 0  # all positive, nothing happens
    table.adjust_all(-0.5)
    assert table.purge_nonpositive() == 4
    assert len(table) == 0
    assert all(state == 0 for state in table._states)


def test_interleaved_runs_are_independent():
    """Two separate runs; purging one must not disturb the other."""
    table = RiggedTable(8, homes={0: 0, 1: 0, 10: 4, 11: 4})
    for key, value in [(0, 1.0), (1, 2.0), (10, 3.0), (11, 4.0)]:
        table.insert(key, value)
    table._values[0] = 0.0  # kill key 0 (run at slots 0-1)
    table.purge_nonpositive()
    assert table.get(1) == 2.0
    assert _slots(table)[4] == (10, 3.0, 1)
    assert _slots(table)[5] == (11, 4.0, 2)


def test_lookup_after_every_possible_single_deletion():
    """Exhaustive: for every victim in a 5-chain, all survivors findable."""
    for victim in range(5):
        table = RiggedTable(6, homes={key: 3 for key in range(5)})
        for key in range(5):
            table.insert(key, float(key + 1))
        table._values[(3 + victim) & table._mask] = 0.0
        table.purge_nonpositive()
        for key in range(5):
            if key == victim:
                assert table.get(key) is None
            else:
                assert table.get(key) == float(key + 1), (victim, key)


def test_all_home_permutations_small_exhaustive():
    """Every home assignment of 4 keys over 4 slots, every victim subset:
    after purge, lookups must match a dict model.  2,816 scenarios."""
    for homes in itertools.product(range(4), repeat=4):
        for victim_mask in range(1 << 4):
            table = RiggedTable(4, homes=dict(enumerate(homes)))  # length 8
            model = {}
            for key in range(4):
                value = -1.0 if victim_mask & (1 << key) else float(key + 2)
                # Insert positive first, then doom chosen victims in place.
                table.insert(key, abs(value))
                model[key] = value
            for slot in range(table.length):
                if table._states[slot] and model[table._keys[slot]] < 0:
                    table._values[slot] = -1.0
            table.purge_nonpositive()
            for key in range(4):
                expected = None if model[key] < 0 else model[key]
                assert table.get(key) == expected, (homes, victim_mask, key)
