"""Sampled quantiles: exactness, selector variants, sampling behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidParameterError
from repro.prng import Xoroshiro128PlusPlus
from repro.selection import sample_quantile, sampled_counter_quantile
from repro.selection.sampling import DEFAULT_SAMPLE_SIZE

FLOATS = st.lists(
    st.floats(min_value=0.001, max_value=1e9, allow_nan=False),
    min_size=1,
    max_size=100,
)


def test_default_sample_size_is_papers_ell():
    assert DEFAULT_SAMPLE_SIZE == 1024


@given(FLOATS, st.floats(min_value=0.0, max_value=1.0))
def test_quantile_matches_sorted_rank(values, quantile):
    expected = sorted(values)[int(quantile * (len(values) - 1))]
    assert sample_quantile(values, quantile) == expected


@given(FLOATS, st.floats(min_value=0.0, max_value=1.0))
def test_selectors_agree(values, quantile):
    rng = Xoroshiro128PlusPlus(5)
    auto = sample_quantile(values, quantile, selector="auto")
    quick = sample_quantile(values, quantile, rng, selector="quickselect")
    assert auto == quick


def test_extreme_quantiles():
    values = [5.0, 2.0, 8.0, 1.0]
    assert sample_quantile(values, 0.0) == 1.0
    assert sample_quantile(values, 1.0) == 8.0


def test_rejections():
    with pytest.raises(InvalidParameterError):
        sample_quantile([], 0.5)
    with pytest.raises(InvalidParameterError):
        sample_quantile([1.0], 1.5)
    with pytest.raises(InvalidParameterError):
        sample_quantile([1.0], 0.5, selector="bogus")
    rng = Xoroshiro128PlusPlus(1)
    with pytest.raises(InvalidParameterError):
        sampled_counter_quantile([1.0], 0.5, 0, rng)
    with pytest.raises(InvalidParameterError):
        sampled_counter_quantile([], 0.5, 8, rng)


def test_small_multiset_is_exact():
    """When the multiset fits in the sample, the quantile is exact."""
    rng = Xoroshiro128PlusPlus(2)
    values = [float(x) for x in range(10)]
    assert sampled_counter_quantile(values, 0.5, 100, rng) == 4.0
    assert sampled_counter_quantile(values, 0.0, 100, rng) == 0.0


def test_large_multiset_sampled_median_is_near_true_median():
    rng = Xoroshiro128PlusPlus(3)
    values = [float(x) for x in range(10_000)]
    estimate = sampled_counter_quantile(values, 0.5, 512, rng)
    assert abs(estimate - 5_000) < 800  # within a few percentiles w.h.p.


def test_sample_min_is_an_overestimate_of_true_min():
    """A sampled minimum can only be >= the true minimum."""
    rng = Xoroshiro128PlusPlus(4)
    values = [float(x) for x in range(1_000)]
    for _ in range(20):
        assert sampled_counter_quantile(values, 0.0, 32, rng) >= 0.0


def test_sampling_is_deterministic_per_seed():
    values = [float(x) for x in range(5_000)]
    a = sampled_counter_quantile(values, 0.5, 64, Xoroshiro128PlusPlus(9))
    b = sampled_counter_quantile(values, 0.5, 64, Xoroshiro128PlusPlus(9))
    assert a == b
