"""DecayedFrequentItemsSketch: exponential time fading on the kernel."""

import math

import numpy as np
import pytest

from repro.core.frequent_items import FrequentItemsSketch
from repro.core.row import ErrorType
from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.extensions import DecayedFrequentItemsSketch
from repro.streams.zipf import ZipfianStream


def test_validation():
    with pytest.raises(InvalidParameterError):
        DecayedFrequentItemsSketch(16, half_life=0.0)
    with pytest.raises(InvalidParameterError):
        DecayedFrequentItemsSketch(16, half_life=-1.0)
    sketch = DecayedFrequentItemsSketch(16, half_life=1.0)
    with pytest.raises(InvalidUpdateError):
        sketch.update(1, 0.0)
    with pytest.raises(InvalidParameterError):
        sketch.tick(0.0)


def test_infinite_half_life_matches_plain_sketch():
    """half_life=inf disables decay: state equals the flat sketch's."""
    stream = list(
        ZipfianStream(5_000, universe=800, alpha=1.2, seed=3,
                      weight_low=1, weight_high=50)
    )
    decayed = DecayedFrequentItemsSketch(
        64, half_life=math.inf, backend="columnar", seed=4
    )
    flat = FrequentItemsSketch(64, backend="columnar", seed=4)
    for index, (item, weight) in enumerate(stream):
        decayed.update(item, weight)
        flat.update(item, weight)
        if index % 500 == 0:
            decayed.tick()  # time passes, nothing decays
    assert decayed.decayed_weight == flat.stream_weight
    assert decayed.maximum_error == flat.maximum_error
    for item in range(100):
        assert decayed.estimate(item) == flat.estimate(item)


def test_exact_halving_per_half_life():
    sketch = DecayedFrequentItemsSketch(8, half_life=2.0, seed=1)
    sketch.update(7, 8.0)
    assert sketch.estimate(7) == 8.0
    sketch.tick(2.0)
    assert sketch.estimate(7) == 4.0
    assert sketch.decayed_weight == 4.0
    sketch.tick(4.0)
    assert sketch.estimate(7) == 1.0
    # Fresh traffic counts at full weight.
    sketch.update(9, 3.0)
    assert sketch.estimate(9) == 3.0
    assert sketch.decayed_weight == 4.0


def test_trending_items_displace_faded_ones():
    """Heavy hitters track the *current* distribution, not the all-time one."""
    sketch = DecayedFrequentItemsSketch(32, half_life=3.0, seed=2)
    for _ in range(3_000):
        sketch.update(111, 1.0)
    # 30 half-lives pass: item 111's mass decays by 2^-30.
    for _ in range(90):
        sketch.tick()
    for _ in range(300):
        sketch.update(222, 1.0)
    rows = sketch.heavy_hitters(0.5, ErrorType.NO_FALSE_NEGATIVES)
    items = [row.item for row in rows]
    assert items[0] == 222
    assert sketch.estimate(222) > 100 * sketch.estimate(111)
    # A plain sketch over the same updates would rank 111 first forever.
    assert sketch.estimate(111) < 1.0


def test_bounds_bracket_exact_decayed_frequency():
    """lower/upper bracket the true decayed weight at every query time."""
    stream = list(
        ZipfianStream(8_000, universe=600, alpha=1.1, seed=5,
                      weight_low=1, weight_high=20)
    )
    half_life = 4.0
    sketch = DecayedFrequentItemsSketch(128, half_life=half_life, seed=6)
    truth: dict[int, float] = {}
    time_now = 0.0
    for index, (item, weight) in enumerate(stream):
        sketch.update(item, weight)
        truth[item] = truth.get(item, 0.0) + weight * 2.0 ** (time_now / half_life)
        if (index + 1) % 1_000 == 0:
            sketch.tick()
            time_now += 1.0
    scale = 2.0 ** (time_now / half_life)
    assert sketch.maximum_error > 0.0  # the stream overflowed k=128
    for item, scaled_frequency in truth.items():
        decayed_frequency = scaled_frequency / scale
        assert sketch.lower_bound(item) <= decayed_frequency + 1e-9
        assert sketch.upper_bound(item) >= decayed_frequency - 1e-9


def test_renormalization_preserves_estimates():
    sketch = DecayedFrequentItemsSketch(16, half_life=1.0, seed=7)
    sketch.update(1, 4.0)
    # 100 half-lives in one jump crosses the 2^64 renormalization limit.
    sketch.tick(100.0)
    assert sketch.now == 100.0
    sketch.update(2, 4.0)
    # Item 1 decayed by 2^-100: negligible in the decayed view; item 2
    # is fresh and exact.
    assert sketch.estimate(2) == 4.0
    assert sketch.estimate(1) <= 4.0 * 2.0 ** -64
    assert sketch.decayed_weight == pytest.approx(4.0)


def test_extreme_jump_purges_everything():
    sketch = DecayedFrequentItemsSketch(16, half_life=1.0, seed=8)
    sketch.update(1, 1000.0)
    sketch.tick(5_000.0)  # 2^-5000 underflows to exactly zero
    assert sketch.num_active == 0
    assert sketch.decayed_weight == 0.0
    sketch.update(2, 2.0)
    assert sketch.estimate(2) == 2.0


def test_batch_equals_scalar_bit_for_bit():
    stream = list(
        ZipfianStream(12_000, universe=1_000, alpha=1.05, seed=9,
                      weight_low=1, weight_high=100)
    )
    items = np.array([item for item, _w in stream], dtype=np.uint64)
    weights = np.array([w for _item, w in stream], dtype=np.float64)
    # Whole half-lives per tick keep the ingest scale a power of two, so
    # scaled weights stay exactly representable and the engine's
    # bit-for-bit batch/scalar equivalence applies verbatim.
    scalar = DecayedFrequentItemsSketch(256, half_life=2.0, seed=10)
    batched = DecayedFrequentItemsSketch(256, half_life=2.0, seed=10)
    for start in range(0, len(items), 3_000):
        stop = start + 3_000
        for index in range(start, stop):
            scalar.update(int(items[index]), float(weights[index]))
        scalar.tick(2.0)
        batched.update_batch(items[start:stop], weights[start:stop])
        batched.tick(2.0)
    kernel_a, kernel_b = scalar.kernel, batched.kernel
    assert kernel_a.offset == kernel_b.offset
    assert kernel_a.stream_weight == kernel_b.stream_weight
    assert list(kernel_a.store.items()) == list(kernel_b.store.items())
    assert kernel_a.stats.decrements == kernel_b.stats.decrements


def test_frequent_items_threshold_in_decayed_units():
    sketch = DecayedFrequentItemsSketch(16, half_life=1.0, seed=11)
    sketch.update(1, 8.0)
    sketch.update(2, 2.0)
    sketch.tick()  # decayed weights: 4.0 and 1.0
    rows = sketch.frequent_items(threshold=3.0)
    assert [row.item for row in rows] == [1]
    assert rows[0].estimate == 4.0
    assert rows[0].lower_bound == 4.0


def test_iteration_and_space():
    sketch = DecayedFrequentItemsSketch(16, half_life=2.0, seed=12)
    sketch.update_batch(np.array([1, 2, 3], dtype=np.uint64),
                        np.array([9.0, 5.0, 1.0]))
    assert [row.item for row in sketch] == [1, 2, 3]
    assert 3 in sketch and 4 not in sketch
    assert len(sketch) == 3
    assert sketch.space_bytes() > 0
    assert not sketch.is_empty()
