"""Trace IO: binary and CSV round trips, gzip, corruption handling."""

import pytest

from repro.errors import InvalidUpdateError
from repro.streams.io import (
    read_binary_trace,
    read_csv_trace,
    write_binary_trace,
    write_csv_trace,
)
from repro.types import StreamUpdate

SAMPLE = [
    StreamUpdate(0, 1.0),
    StreamUpdate(42, 3.75),
    StreamUpdate((1 << 64) - 1, 1e12),
    StreamUpdate(7, 0.001),
]


def test_binary_roundtrip(tmp_path):
    path = tmp_path / "trace.bin"
    assert write_binary_trace(path, SAMPLE) == len(SAMPLE)
    assert list(read_binary_trace(path)) == SAMPLE


def test_binary_gzip_roundtrip(tmp_path):
    path = tmp_path / "trace.bin.gz"
    write_binary_trace(path, SAMPLE)
    assert list(read_binary_trace(path)) == SAMPLE
    # gzip actually applied: file starts with the gzip magic.
    assert path.read_bytes()[:2] == b"\x1f\x8b"


def test_binary_truncation_detected(tmp_path):
    path = tmp_path / "trace.bin"
    write_binary_trace(path, SAMPLE)
    blob = path.read_bytes()
    path.write_bytes(blob[:-5])
    with pytest.raises(InvalidUpdateError):
        list(read_binary_trace(path))


def test_binary_empty(tmp_path):
    path = tmp_path / "empty.bin"
    assert write_binary_trace(path, []) == 0
    assert list(read_binary_trace(path)) == []


def test_csv_roundtrip(tmp_path):
    path = tmp_path / "trace.csv"
    assert write_csv_trace(path, SAMPLE) == len(SAMPLE)
    assert list(read_csv_trace(path)) == SAMPLE  # repr() floats round-trip


def test_csv_gzip_roundtrip(tmp_path):
    path = tmp_path / "trace.csv.gz"
    write_csv_trace(path, SAMPLE)
    assert list(read_csv_trace(path)) == SAMPLE


def test_csv_missing_header(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("1,2.0\n")
    with pytest.raises(InvalidUpdateError):
        list(read_csv_trace(path))


def test_csv_bad_record_reports_line(tmp_path):
    path = tmp_path / "bad2.csv"
    path.write_text("item,weight\n1,2.0\nnot-a-number,3.0\n")
    with pytest.raises(InvalidUpdateError) as exc_info:
        list(read_csv_trace(path))
    assert ":3" in str(exc_info.value)


def test_csv_skips_blank_lines(tmp_path):
    path = tmp_path / "blanks.csv"
    path.write_text("item,weight\n1,2.0\n\n2,3.0\n")
    assert list(read_csv_trace(path)) == [StreamUpdate(1, 2.0), StreamUpdate(2, 3.0)]


def test_large_roundtrip_through_both_formats(tmp_path):
    from repro.streams.zipf import ZipfianStream

    updates = list(
        ZipfianStream(2_000, universe=100, alpha=1.2, seed=1,
                      weight_low=1, weight_high=100)
    )
    binary = tmp_path / "big.bin"
    csv = tmp_path / "big.csv"
    write_binary_trace(binary, updates)
    write_csv_trace(csv, updates)
    assert list(read_binary_trace(binary)) == updates
    assert list(read_csv_trace(csv)) == updates
