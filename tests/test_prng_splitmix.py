"""SplitMix64: known-answer vectors and basic statistical sanity."""

from repro.prng import SplitMix64
from repro.prng.splitmix import splitmix64

# Published reference outputs for seed 0 (Steele-Lea-Flood test vectors).
SEED0_OUTPUTS = [
    0xE220A8397B1DCDAF,
    0x6E789E6AA1B965F4,
    0x06C45D188009454F,
    0xF88BB8A8724C81EC,
    0x1B39896A51A8749B,
]


def test_known_answer_seed_zero():
    gen = SplitMix64(0)
    assert [gen.next_u64() for _ in range(5)] == SEED0_OUTPUTS


def test_functional_form_matches_class():
    state = 12345
    gen = SplitMix64(12345)
    for _ in range(10):
        state, expected = splitmix64(state)
        assert gen.next_u64() == expected


def test_outputs_are_64_bit():
    gen = SplitMix64(987654321)
    for _ in range(1000):
        value = gen.next_u64()
        assert 0 <= value < 1 << 64


def test_different_seeds_diverge():
    a = SplitMix64(1)
    b = SplitMix64(2)
    assert [a.next_u64() for _ in range(4)] != [b.next_u64() for _ in range(4)]


def test_seed_is_masked_to_64_bits():
    wide = SplitMix64(1 << 64)  # == seed 0 after masking
    narrow = SplitMix64(0)
    assert wide.next_u64() == narrow.next_u64()


def test_bit_balance():
    """Each bit position should be set roughly half the time."""
    gen = SplitMix64(42)
    n = 2_000
    counts = [0] * 64
    for _ in range(n):
        value = gen.next_u64()
        for bit in range(64):
            counts[bit] += (value >> bit) & 1
    for bit, count in enumerate(counts):
        assert 0.4 * n < count < 0.6 * n, f"bit {bit} unbalanced: {count}/{n}"
