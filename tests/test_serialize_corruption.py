"""Corrupt wire bytes must fail *cleanly* — flat and sharded formats.

Every decode path in ``core/serialize.py`` has to answer hostile input
with :class:`~repro.errors.SerializationError` (a ``ValueError``): no
raw ``struct.error``, no silent misparse into a sketch that disagrees
with the original, no unbounded allocation from an oversized length
frame.  The sweeps below try every truncation length and every
single-byte flip, not just hand-picked offsets.
"""

import struct

import pytest

from helpers import zipf_batch
from repro import (
    FrequentItemsSketch,
    SerializationError,
    ShardedFrequentItemsSketch,
)
from repro.core.serialize import (
    sharded_from_bytes,
    sharded_to_bytes,
    sketch_from_bytes,
    sketch_to_bytes,
)

#: Flat-format header layout (documented in docs/serialization.md):
#: offset 4 = k, 8 = backend byte, 9 = policy kind, 46 = record count.
_FLAT_BACKEND_OFFSET = 8
_FLAT_POLICY_OFFSET = 9
_FLAT_COUNT_OFFSET = 46
#: Sharded header: offset 4 = version byte, 5 = shard count.
_SHARDED_VERSION_OFFSET = 4
_SHARDED_COUNT_OFFSET = 5
#: First frame's uint32 length prefix sits right after the 33-byte header.
_SHARDED_FIRST_FRAME_OFFSET = 33


@pytest.fixture(scope="module")
def flat_blob():
    sketch = FrequentItemsSketch(16, backend="probing", seed=3)
    items, weights = zipf_batch(n=2_000, universe=300, seed=9)
    sketch.update_batch(items, weights)
    assert sketch.num_active == 16  # decrements ran; blob has records
    return sketch.to_bytes()


@pytest.fixture(scope="module")
def sharded_blob():
    sketch = ShardedFrequentItemsSketch(8, num_shards=3, seed=4)
    items, weights = zipf_batch(n=4_000, universe=500, seed=10)
    sketch.update_batch(items, weights)
    blob = sketch.to_bytes()
    sketch.close()
    return blob


# -- truncation sweeps --------------------------------------------------------


def test_flat_every_truncation_rejected(flat_blob):
    """No prefix of a valid flat blob may parse (the format is
    length-delimited by its record count)."""
    for cut in range(len(flat_blob)):
        with pytest.raises(SerializationError):
            sketch_from_bytes(flat_blob[:cut])


def test_sharded_every_truncation_rejected(sharded_blob):
    for cut in range(len(sharded_blob)):
        with pytest.raises(SerializationError):
            sharded_from_bytes(sharded_blob[:cut])


def test_trailing_garbage_rejected(flat_blob, sharded_blob):
    with pytest.raises(SerializationError):
        sketch_from_bytes(flat_blob + b"\x00")
    with pytest.raises(SerializationError):
        sharded_from_bytes(sharded_blob + b"\x00" * 7)


def test_empty_and_tiny_blobs_rejected():
    for blob in (b"", b"R", b"RFI1", b"RFS1", b"RFI1" + b"\x00" * 10):
        with pytest.raises(SerializationError):
            sketch_from_bytes(blob)
        with pytest.raises(SerializationError):
            sharded_from_bytes(blob)


# -- single-byte flip sweeps --------------------------------------------------
# A flipped byte must either raise SerializationError or decode into an
# operational sketch (flips inside seed/offset/weight/record fields are
# semantically invisible to the parser) — never escape as struct.error,
# OverflowError, or a crash.


def _assert_flip_is_clean(blob, decode, probe):
    for position in range(len(blob)):
        mutated = bytearray(blob)
        mutated[position] ^= 0xFF
        try:
            decoded = decode(bytes(mutated))
        except SerializationError:
            continue
        probe(decoded)  # whatever parsed must be a usable sketch


def test_flat_every_byte_flip_clean(flat_blob):
    _assert_flip_is_clean(
        flat_blob,
        sketch_from_bytes,
        lambda sketch: (sketch.estimate(1), sketch.to_bytes()),
    )


def test_sharded_every_byte_flip_clean(sharded_blob):
    _assert_flip_is_clean(
        sharded_blob,
        sharded_from_bytes,
        lambda sketch: (sketch.estimate(1), sketch.to_bytes()),
    )


# -- targeted header corruption ----------------------------------------------


def test_flat_unknown_backend_code_rejected(flat_blob):
    mutated = bytearray(flat_blob)
    mutated[_FLAT_BACKEND_OFFSET] = 0x5F  # low bits = 31: no such backend
    with pytest.raises(SerializationError, match="backend"):
        sketch_from_bytes(bytes(mutated))


def test_flat_adaptive_flag_flip_still_parses(flat_blob):
    """Bit 7 of the backend byte is the adaptive-growth flag — flipping
    it is *valid* wire format and must change only the growth mode."""
    mutated = bytearray(flat_blob)
    mutated[_FLAT_BACKEND_OFFSET] ^= 0x80
    sketch = sketch_from_bytes(bytes(mutated))
    assert sketch.growth == "adaptive"
    reference = sketch_from_bytes(flat_blob)
    assert sketch.estimate(1) == reference.estimate(1)


def test_flat_huge_k_rejected_before_allocation(flat_blob):
    """A corrupt k in the billions must be refused by the decode cap —
    counter tables are pre-allocated, so parsing first would commit
    gigabytes on hostile input."""
    from repro.core.serialize import MAX_DECODE_COUNTERS

    mutated = bytearray(flat_blob)
    struct.pack_into("<I", mutated, 4, 0xF000_0010)
    with pytest.raises(SerializationError, match="decode cap"):
        sketch_from_bytes(bytes(mutated))
    assert 0xF000_0010 > MAX_DECODE_COUNTERS


def test_flat_unknown_policy_kind_rejected(flat_blob):
    mutated = bytearray(flat_blob)
    mutated[_FLAT_POLICY_OFFSET] = 9
    with pytest.raises(SerializationError, match="policy"):
        sketch_from_bytes(bytes(mutated))


def test_flat_oversized_record_count_rejected(flat_blob):
    mutated = bytearray(flat_blob)
    struct.pack_into("<I", mutated, _FLAT_COUNT_OFFSET, 0xFFFF_FFFF)
    with pytest.raises(SerializationError):
        sketch_from_bytes(bytes(mutated))


def test_sharded_version_flip_rejected(sharded_blob):
    mutated = bytearray(sharded_blob)
    mutated[_SHARDED_VERSION_OFFSET] = 2
    with pytest.raises(SerializationError, match="version"):
        sharded_from_bytes(bytes(mutated))


def test_sharded_zero_shard_count_rejected(sharded_blob):
    mutated = bytearray(sharded_blob)
    struct.pack_into("<I", mutated, _SHARDED_COUNT_OFFSET, 0)
    with pytest.raises(SerializationError, match="shard count"):
        sharded_from_bytes(bytes(mutated))


def test_sharded_huge_shard_count_rejected(sharded_blob):
    mutated = bytearray(sharded_blob)
    struct.pack_into("<I", mutated, _SHARDED_COUNT_OFFSET, 0xFFFF_FFFF)
    with pytest.raises(SerializationError):
        sharded_from_bytes(bytes(mutated))


def test_sharded_oversized_frame_length_rejected(sharded_blob):
    """A frame claiming more bytes than the blob holds must be refused
    up front — not read past the end or allocate the claimed size."""
    for claimed in (0xFFFF_FFFF, len(sharded_blob) + 1, 1 << 31):
        mutated = bytearray(sharded_blob)
        struct.pack_into("<I", mutated, _SHARDED_FIRST_FRAME_OFFSET, claimed)
        with pytest.raises(SerializationError, match="frame|truncated"):
            sharded_from_bytes(bytes(mutated))


def test_sharded_undersized_frame_length_rejected(sharded_blob):
    """A shrunken frame misaligns every later frame; some byte of the
    chain must fail validation rather than misparse."""
    mutated = bytearray(sharded_blob)
    (actual,) = struct.unpack_from("<I", mutated, _SHARDED_FIRST_FRAME_OFFSET)
    struct.pack_into("<I", mutated, _SHARDED_FIRST_FRAME_OFFSET, actual - 16)
    with pytest.raises(SerializationError):
        sharded_from_bytes(bytes(mutated))


def test_format_cross_routing_rejected(flat_blob, sharded_blob):
    """Each decoder refuses the other format by magic, with a pointer to
    the right entry point rather than a misparse."""
    with pytest.raises(SerializationError, match="sharded"):
        sketch_from_bytes(sharded_blob)
    with pytest.raises(SerializationError, match="magic"):
        sharded_from_bytes(flat_blob)


def test_flat_nested_inside_frame_rejected(sharded_blob):
    """A sharded blob whose first frame is itself sharded must be caught
    by the per-frame decoder."""
    header = sharded_blob[:_SHARDED_FIRST_FRAME_OFFSET]
    (first_len,) = struct.unpack_from(
        "<I", sharded_blob, _SHARDED_FIRST_FRAME_OFFSET
    )
    nested = sharded_blob[: 4 + first_len]  # starts with RFS1, wrong shape
    frame = struct.pack("<I", len(nested)) + nested
    rest = sharded_blob[_SHARDED_FIRST_FRAME_OFFSET + 4 + first_len :]
    with pytest.raises(SerializationError):
        sharded_from_bytes(header + frame + rest)
