"""The trace-generation CLI."""

import pytest

from repro.streams.cli import main
from repro.streams.io import read_binary_trace, read_csv_trace


def test_caida_binary(tmp_path, capsys):
    out = tmp_path / "trace.bin"
    assert main(["caida", "--updates", "500", "--seed", "3", "--out", str(out)]) == 0
    assert "500" in capsys.readouterr().out
    updates = list(read_binary_trace(out))
    assert len(updates) == 500
    assert all(weight > 0 for _item, weight in updates)


def test_zipf_csv_gz_weighted(tmp_path, capsys):
    out = tmp_path / "trace.csv.gz"
    assert main([
        "zipf", "--updates", "300", "--alpha", "1.05", "--universe", "100",
        "--weight-low", "1", "--weight-high", "10",
        "--seed", "5", "--out", str(out),
    ]) == 0
    capsys.readouterr()
    updates = list(read_csv_trace(out))
    assert len(updates) == 300
    assert all(1.0 <= weight <= 10.0 for _item, weight in updates)


def test_deterministic_across_invocations(tmp_path, capsys):
    a = tmp_path / "a.bin"
    b = tmp_path / "b.bin"
    main(["caida", "--updates", "200", "--seed", "9", "--out", str(a)])
    main(["caida", "--updates", "200", "--seed", "9", "--out", str(b)])
    capsys.readouterr()
    assert a.read_bytes() == b.read_bytes()


def test_bad_kind_rejected():
    with pytest.raises(SystemExit):
        main(["bogus", "--out", "x.bin"])
