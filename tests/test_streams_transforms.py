"""Stream combinators: slicing, partitioning, normalization."""

import pytest

from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.streams.model import as_updates
from repro.streams.transforms import (
    concat,
    materialize,
    partition_hash,
    partition_round_robin,
    split_chunks,
    take,
)
from repro.types import StreamUpdate

SAMPLE = [StreamUpdate(item, float(item + 1)) for item in range(10)]


def test_take():
    assert list(take(SAMPLE, 3)) == SAMPLE[:3]
    assert list(take(SAMPLE, 100)) == SAMPLE
    assert list(take(SAMPLE, 0)) == []
    with pytest.raises(InvalidParameterError):
        take(SAMPLE, -1)


def test_concat():
    assert list(concat(SAMPLE[:3], SAMPLE[3:6], SAMPLE[6:])) == SAMPLE
    assert list(concat()) == []


def test_materialize_copies():
    materialized = materialize(update for update in SAMPLE)
    assert materialized == SAMPLE
    assert all(isinstance(update, StreamUpdate) for update in materialized)


def test_round_robin_partition():
    parts = partition_round_robin(SAMPLE, 3)
    assert len(parts) == 3
    assert [len(part) for part in parts] == [4, 3, 3]
    interleaved = []
    for index in range(4):
        for part in parts:
            if index < len(part):
                interleaved.append(part[index])
    assert interleaved == SAMPLE
    with pytest.raises(InvalidParameterError):
        partition_round_robin(SAMPLE, 0)


def test_hash_partition_is_key_consistent():
    updates = [StreamUpdate(item % 5, 1.0) for item in range(100)]
    parts = partition_hash(updates, 4, seed=1)
    assert sum(len(part) for part in parts) == 100
    for key in range(5):
        homes = {
            index
            for index, part in enumerate(parts)
            if any(update.item == key for update in part)
        }
        assert len(homes) == 1  # every key lives in exactly one shard
    with pytest.raises(InvalidParameterError):
        partition_hash(updates, 0)


def test_hash_partition_seed_changes_layout():
    updates = [StreamUpdate(item, 1.0) for item in range(200)]
    a = partition_hash(updates, 4, seed=1)
    b = partition_hash(updates, 4, seed=2)
    assert [len(part) for part in a] != [len(part) for part in b] or a != b


def test_split_chunks():
    chunks = split_chunks(SAMPLE, 3)
    assert [len(chunk) for chunk in chunks] == [4, 3, 3]
    assert [update for chunk in chunks for update in chunk] == SAMPLE
    assert split_chunks(SAMPLE, 20)[0] == SAMPLE[:1]
    with pytest.raises(InvalidParameterError):
        split_chunks(SAMPLE, 0)


def test_as_updates_normalization():
    normalized = list(as_updates([5, (6, 2.0), StreamUpdate(7, 3.0)]))
    assert normalized == [
        StreamUpdate(5, 1.0),
        StreamUpdate(6, 2.0),
        StreamUpdate(7, 3.0),
    ]


def test_as_updates_rejects_bad_entries():
    with pytest.raises(InvalidUpdateError):
        list(as_updates([(1, 2.0, 3.0)]))
    with pytest.raises(InvalidUpdateError):
        list(as_updates([(1, -1.0)]))
    with pytest.raises(InvalidUpdateError):
        list(as_updates([(1, 0.0)]))
