"""The declared experiment matrix and its stamped run documents."""

import json

import pytest

from repro.bench.harness import BenchConfig
from repro.bench.matrix import (
    FULL_MATRIX,
    QUICK_MATRIX,
    RUN_SCHEMA,
    MatrixSpec,
    matrix_for_scale,
    run_cell,
    run_matrix,
)

TINY = BenchConfig(
    num_updates=1_200,
    unique_sources=250,
    k_values=(16, 32),
    merge_pairs=2,
    merge_updates_per_sketch_factor=3,
    quantiles=(0, 50),
    seed=11,
)

SMALL_SPEC = MatrixSpec(
    backends=("dict",),
    policies=("smed",),
    alphas=(1.05,),
    k_values=(16,),
    growth_modes=("fixed",),
    repeats=2,
    batch_size=512,
)


def test_cells_cross_product_and_order():
    spec = MatrixSpec(
        backends=("dict", "probing"),
        policies=("smed",),
        alphas=(1.05,),
        k_values=(16,),
        growth_modes=("fixed", "adaptive"),
    )
    cells = list(spec.cells(TINY))
    assert len(cells) == spec.num_cells(TINY) == 4
    assert cells[0] == {
        "policy": "smed", "backend": "dict",
        "alpha": 1.05, "k": 16, "growth": "fixed",
    }
    assert [cell["growth"] for cell in cells] == [
        "fixed", "adaptive", "fixed", "adaptive",
    ]


def test_empty_k_values_fall_back_to_config():
    spec = MatrixSpec(k_values=())
    assert spec.resolve_k(TINY) == TINY.k_values
    assert spec.num_cells(TINY) % len(TINY.k_values) == 0


def test_unknown_policy_rejected():
    spec = MatrixSpec(policies=("slast",))
    with pytest.raises(ValueError, match="slast"):
        list(spec.cells(TINY))


def test_matrix_for_scale():
    assert matrix_for_scale("quick") is QUICK_MATRIX
    assert matrix_for_scale("medium") is FULL_MATRIX
    assert matrix_for_scale("paper") is FULL_MATRIX
    assert QUICK_MATRIX.num_cells(TINY) < FULL_MATRIX.num_cells(TINY)


def test_run_cell_measures_and_stamps():
    cell = next(iter(SMALL_SPEC.cells(TINY)))
    result = run_cell(cell, TINY, SMALL_SPEC)
    assert result["updates"] == TINY.num_updates
    assert result["repeats"] == SMALL_SPEC.repeats
    assert len(result["seconds_samples"]) == SMALL_SPEC.repeats
    assert result["seconds_median"] > 0
    assert result["updates_per_sec"] > 0
    assert result["max_error"] >= 0
    assert 0 <= result["rel_error"] < 1
    assert result["space_bytes"] > 0
    # The cell axes ride along unchanged.
    for key, value in cell.items():
        assert result[key] == value


def test_run_matrix_persists_stamped_document(tmp_path):
    runs_dir = tmp_path / "bench_runs"
    seen = []
    document, path = run_matrix(
        TINY, SMALL_SPEC, scale="tiny",
        runs_dir=str(runs_dir), progress=seen.append,
    )
    assert len(seen) == SMALL_SPEC.num_cells(TINY) == 1
    assert document["schema"] == RUN_SCHEMA
    assert document["bench"] == "matrix"
    assert document["scale"] == "tiny"
    assert document["matrix"]["backends"] == ("dict",)
    assert len(document["cells"]) == 1
    # Provenance: every field the results loader validates must exist.
    assert document["run_id"].endswith(document["git_hash"][:8])
    assert document["timestamp_utc"].endswith("Z")
    assert document["host"]["cpu_count"] >= 1
    assert "ingest_path" in document["metadata"]
    # Persisted document round-trips (tuples normalize to JSON arrays).
    assert path == str(runs_dir / f"run-{document['run_id']}.json")
    on_disk = json.loads((runs_dir / f"run-{document['run_id']}.json").read_text())
    assert on_disk == json.loads(json.dumps(document))


def test_run_matrix_without_persistence():
    document, path = run_matrix(TINY, SMALL_SPEC, scale="tiny", runs_dir=None)
    assert path is None
    assert document["cells"]
