"""Lossy Counting and Sticky Sampling: Manku-Motwani guarantees."""

import pytest

from repro.baselines import LossyCounting, StickySampling
from repro.errors import InvalidParameterError, InvalidUpdateError


def test_lossy_validation():
    with pytest.raises(InvalidParameterError):
        LossyCounting(0.0)
    with pytest.raises(InvalidParameterError):
        LossyCounting(1.0)
    lc = LossyCounting(0.01)
    with pytest.raises(InvalidUpdateError):
        lc.update(1, -1.0)


def test_lossy_underestimates_by_at_most_epsilon_n(
    zipf_weighted_stream, zipf_weighted_exact
):
    epsilon = 0.001
    lc = LossyCounting(epsilon)
    for item, weight in zipf_weighted_stream:
        lc.update(item, weight)
    budget = epsilon * zipf_weighted_exact.total_weight
    for item, frequency in zipf_weighted_exact.items():
        estimate = lc.estimate(item)
        assert estimate <= frequency + 1e-6  # never overestimates
        assert frequency - estimate <= budget + 1e-6
        assert lc.upper_bound(item) >= frequency - 1e-6


def test_lossy_no_false_negative_heavy_hitters(
    zipf_weighted_stream, zipf_weighted_exact
):
    epsilon = 0.002
    phi = 0.02
    lc = LossyCounting(epsilon)
    for item, weight in zipf_weighted_stream:
        lc.update(item, weight)
    reported = set(lc.heavy_hitters(phi))
    for item in zipf_weighted_exact.heavy_hitters(phi):
        assert item in reported


def test_lossy_space_grows_with_inverse_epsilon(zipf_weighted_stream):
    small = LossyCounting(0.01)
    large = LossyCounting(0.0005)
    for item, weight in zipf_weighted_stream:
        small.update(item, weight)
        large.update(item, weight)
    assert small.num_active < large.num_active


def test_lossy_prunes():
    lc = LossyCounting(0.1)
    for item in range(200):
        lc.update(item, 1.0)  # all distinct: everything prunable
    assert lc.num_active < 200
    assert lc.stats.decrements > 0


def test_sticky_validation():
    with pytest.raises(InvalidParameterError):
        StickySampling(phi=0.01, epsilon=0.02)  # epsilon >= phi
    with pytest.raises(InvalidParameterError):
        StickySampling(phi=0.5, epsilon=0.1, delta=0.0)
    sticky = StickySampling(phi=0.1, epsilon=0.01)
    with pytest.raises(InvalidUpdateError):
        sticky.update(1, 2.0)


def test_sticky_finds_the_heavy_item():
    sticky = StickySampling(phi=0.3, epsilon=0.05, seed=8)
    for index in range(20_000):
        sticky.update(0 if index % 2 == 0 else index)
    hitters = sticky.heavy_hitters()
    assert 0 in hitters
    # Count is exact up to pre-admission misses and diminishing losses,
    # both bounded by epsilon * n w.h.p.
    assert hitters[0] == pytest.approx(10_000, abs=0.05 * 20_000)


def test_sticky_rate_doubles():
    sticky = StickySampling(phi=0.2, epsilon=0.1, delta=0.1, seed=3)
    assert sticky.sampling_rate == 1
    for index in range(50_000):
        sticky.update(index % 10)
    assert sticky.sampling_rate > 1
    assert sticky.stats.decrements > 0  # diminish passes happened


def test_sticky_always_present_item_is_nearly_exact():
    sticky = StickySampling(phi=0.2, epsilon=0.02, delta=0.01, seed=5)
    for _ in range(30_000):
        sticky.update(7)
    assert sticky.estimate(7) == pytest.approx(30_000, rel=0.05)
