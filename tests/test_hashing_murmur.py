"""MurmurHash3 x64/128 against published known-answer vectors."""

import struct

from hypothesis import given, strategies as st

from repro.hashing.murmur import murmur3_x64_128


def test_empty_seed_zero():
    assert murmur3_x64_128(b"") == (0, 0)


def test_fox_vector():
    # Widely published reference digest for the fox sentence, seed 0:
    # x64_128 -> 6c1b07bc7bbc4be3 47939ac4a93c437a (little-endian bytes),
    # i.e. words (0xe34bbc7bbc071b6c, 0x7a433ca9c49a9347).
    low, high = murmur3_x64_128(b"The quick brown fox jumps over the lazy dog")
    assert low == 0xE34BBC7BBC071B6C
    assert high == 0x7A433CA9C49A9347


def test_hello_vector():
    # Reference: murmur3 x64_128 of "hello" seed 0 =
    # cbd8a7b341bd9b02 5b1e906a48ae1d19
    low, high = murmur3_x64_128(b"hello")
    assert low == 0xCBD8A7B341BD9B02
    assert high == 0x5B1E906A48AE1D19


def test_seed_changes_digest():
    assert murmur3_x64_128(b"payload", seed=0) != murmur3_x64_128(b"payload", seed=1)


def test_all_tail_lengths():
    """Exercise every tail branch (0..15 residual bytes)."""
    digests = set()
    for length in range(48):
        digest = murmur3_x64_128(bytes(range(length % 251 + 1))[:length])
        assert digest not in digests
        digests.add(digest)


@given(st.binary(max_size=200))
def test_deterministic(data):
    assert murmur3_x64_128(data) == murmur3_x64_128(data)


@given(st.binary(min_size=1, max_size=64))
def test_single_byte_change_changes_digest(data):
    mutated = bytearray(data)
    mutated[0] ^= 0xFF
    assert murmur3_x64_128(bytes(mutated)) != murmur3_x64_128(data)


def test_words_are_64_bit():
    for blob in (b"", b"x", b"x" * 16, b"x" * 31):
        low, high = murmur3_x64_128(blob)
        assert 0 <= low < 1 << 64
        assert 0 <= high < 1 << 64


def test_matches_block_layout():
    """A 16-byte aligned input exercises only the body path."""
    data = struct.pack("<QQ", 0x0123456789ABCDEF, 0xFEDCBA9876543210)
    low, high = murmur3_x64_128(data)
    assert (low, high) != (0, 0)
