"""Seeded differential fuzzing: four backends + sharded vs an exact oracle.

Each scenario drives one randomized operation sequence — scalar updates,
array batches, weighted updates, canonical-order merges, serialization
round trips — through *every* store backend (and an adaptive-growth
twin, and a sharded sketch), then checks two independent properties
after every operation:

**Cross-backend bit-identity.**  The backends differ only in counter
*layout*; the algorithm's observable state — the counter multiset, the
accumulated offset, the stream weight, hence every estimate and bound —
is a pure function of the update sequence whenever decrement values are
layout-independent.  That holds for all shipped policies at the sizes
fuzzed here: ``k <= sample_size`` makes the sample-quantile policies use
the whole multiset (an exact order statistic), and the exact-kth /
global-min policies are order statistics by definition.  So estimates
must agree across backends to the last bit, and adaptive growth must be
indistinguishable from fixed.  (True ``merge()`` replays counters in
layout order, which is why merges mid-scenario use a canonical order —
``merge()`` itself is fuzzed at the end of a scenario, where only the
oracle properties below must survive.)

**Paper error bounds.**  Against an exact ``Counter`` oracle, every item
must satisfy ``lower <= f <= upper`` and ``|estimate - f| <=
maximum_error`` (Section 2.3.1's deterministic guarantees), absent items
must estimate to exactly 0, and stream weights must match exactly
(integer weights).

20 parametrized chunks x 10 seeds = 200 generated scenarios spanning
skews, policies, growth modes, batch sizes, and operation mixes.
"""

import random

import numpy as np
import pytest

from helpers import assert_bounds_valid
from repro import (
    ExactCounter,
    ExactKthLargestPolicy,
    FrequentItemsSketch,
    GlobalMinPolicy,
    SampleQuantilePolicy,
    ShardedFrequentItemsSketch,
)
from repro.table import BACKEND_NAMES

SCENARIOS_PER_CHUNK = 10
NUM_CHUNKS = 20  # 200 scenarios total

_POLICIES = [
    lambda: SampleQuantilePolicy(0.5),
    lambda: SampleQuantilePolicy(0.0),
    lambda: SampleQuantilePolicy(0.25),
    lambda: ExactKthLargestPolicy(0.5),
    lambda: GlobalMinPolicy(),
]


def _draw_stream(rng: random.Random, universe: int, n: int, max_weight: int):
    """n weighted updates over [0, universe) with a randomized skew."""
    alpha = rng.choice([0.0, 0.7, 1.1, 1.6])
    if alpha == 0.0:
        items = [rng.randrange(universe) for _ in range(n)]
    else:
        ranks = np.arange(1, universe + 1, dtype=np.float64)
        items = rng.choices(
            range(universe), weights=(1.0 / ranks**alpha).tolist(), k=n
        )
    weights = [float(rng.randint(1, max_weight)) for _ in range(n)]
    return items, weights


def _to_arrays(items, weights):
    return (
        np.array(items, dtype=np.uint64),
        np.array(weights, dtype=np.float64),
    )


def _observable_state(sketch):
    """Layout-free summary state: sorted counters, offset, stream weight."""
    items, counts = sketch._store.as_arrays()
    order = np.argsort(items, kind="stable")
    return (
        items[order].tolist(),
        counts[order].tolist(),
        sketch.maximum_error,
        sketch.stream_weight,
    )


def _assert_variants_agree(variants, probes, context):
    reference = variants[0]
    ref_state = _observable_state(reference)
    ref_estimates = reference.estimate_batch(probes)
    for other in variants[1:]:
        assert _observable_state(other) == ref_state, (
            f"{context}: {other.backend}/{other.growth} diverged from "
            f"{reference.backend}/{reference.growth}"
        )
        assert np.array_equal(other.estimate_batch(probes), ref_estimates), (
            f"{context}: estimates diverged on {other.backend}/{other.growth}"
        )


def _canonical_merge(sketch, donor_items, donor_counts, donor_offset,
                     donor_weight):
    """Algorithm 5 with a layout-independent (sorted) replay order.

    Result-equivalent to ``merge()`` up to replay order: counters are
    replayed through the ingest engine, then the donor's offset and
    *stream* weight (not its counter mass) carry over — so every bound
    the destination reports afterwards is valid for the union stream.
    """
    if len(donor_items):
        sketch.update_batch(donor_items, donor_counts)
        sketch.kernel.stream_weight += donor_weight - float(donor_counts.sum())
    else:
        sketch.kernel.stream_weight += donor_weight
    sketch.kernel.offset += donor_offset


def _run_scenario(seed: int) -> None:
    rng = random.Random(seed)
    k = rng.choice([4, 7, 8, 16, 33, 64])
    policy_factory = rng.choice(_POLICIES)
    growth_primary = rng.choice(BACKEND_NAMES)
    universe = k * rng.choice([2, 8, 32])
    max_weight = rng.choice([1, 10, 10_000])
    sketch_seed = rng.randrange(1 << 32)

    variants = [
        FrequentItemsSketch(
            k, policy=policy_factory(), backend=backend, seed=sketch_seed
        )
        for backend in BACKEND_NAMES
    ]
    # The adaptive twin: same backend as one fixed variant, doubling table.
    variants.append(
        FrequentItemsSketch(
            k, policy=policy_factory(), backend=growth_primary,
            seed=sketch_seed, growth="adaptive",
        )
    )
    sharded = ShardedFrequentItemsSketch(
        max(k // 2, 2), num_shards=rng.choice([1, 2, 3]),
        policy=policy_factory(), seed=sketch_seed, max_workers=1,
    )
    oracle = ExactCounter()
    probes = np.array(
        [rng.randrange(universe) for _ in range(32)]
        + [universe + offset for offset in range(4)],  # guaranteed absent
        dtype=np.uint64,
    )

    num_ops = rng.randint(4, 9)
    for op_index in range(num_ops):
        op = rng.choice(["scalar", "batch", "batch", "chunked", "merge",
                         "roundtrip"])
        context = f"seed={seed} op={op_index}:{op}"
        if op == "scalar":
            items, weights = _draw_stream(
                rng, universe, rng.randint(1, 80), max_weight
            )
            for sketch in variants:
                for item, weight in zip(items, weights):
                    sketch.update(item, weight)
            for item, weight in zip(items, weights):
                sharded.update(item, weight)
                oracle.update(item, weight)
        elif op == "batch":
            items, weights = _draw_stream(
                rng, universe, rng.randint(1, 400), max_weight
            )
            arrays = _to_arrays(items, weights)
            for sketch in variants:
                sketch.update_batch(*arrays)
            sharded.update_batch(*arrays)
            for item, weight in zip(items, weights):
                oracle.update(item, weight)
        elif op == "chunked":
            # The same updates sliced into uneven update_batch calls:
            # batch-boundary placement must not be observable.
            items, weights = _draw_stream(
                rng, universe, rng.randint(2, 300), max_weight
            )
            arrays = _to_arrays(items, weights)
            cut = rng.randint(1, len(items) - 1)
            for sketch in variants:
                sketch.update_batch(arrays[0][:cut], arrays[1][:cut])
                sketch.update_batch(arrays[0][cut:], arrays[1][cut:])
            sharded.update_batch(*arrays)
            for item, weight in zip(items, weights):
                oracle.update(item, weight)
        elif op == "merge":
            # Donor built per backend with identical config/seed; its
            # state is layout-independent too, so replaying it in
            # canonical order preserves cross-backend identity.
            donor_seed = rng.randrange(1 << 32)
            donor_stream = _draw_stream(
                rng, universe, rng.randint(1, 200), max_weight
            )
            donor_arrays = _to_arrays(*donor_stream)
            donor_state = None
            for sketch in variants:
                donor = FrequentItemsSketch(
                    k, policy=policy_factory(), backend=sketch.backend,
                    seed=donor_seed, growth=sketch.growth,
                )
                donor.update_batch(*donor_arrays)
                d_items, d_counts = donor._store.as_arrays()
                order = np.argsort(d_items, kind="stable")
                state = (
                    d_items[order], d_counts[order],
                    donor.maximum_error, donor.stream_weight,
                )
                if donor_state is None:
                    donor_state = state
                _canonical_merge(sketch, state[0], state[1], state[2], state[3])
            # The sharded variant (and the oracle) see the donor's raw
            # stream instead: same combined stream, valid same bounds.
            sharded.update_batch(*donor_arrays)
            for item, weight in zip(*donor_stream):
                oracle.update(item, weight)
        elif op == "roundtrip":
            variants = [
                FrequentItemsSketch.from_bytes(sketch.to_bytes())
                for sketch in variants
            ]
            sharded = ShardedFrequentItemsSketch.from_bytes(sharded.to_bytes())
        _assert_variants_agree(variants, probes, context)

    # -- end-of-scenario oracle checks ---------------------------------------
    for sketch in variants:
        assert_bounds_valid(sketch, oracle, tolerance=0.0)
    assert_bounds_valid(sharded, oracle, tolerance=0.0)
    for sketch in variants[:1] + [sharded]:
        estimates = sketch.estimate_batch(probes)
        for probe, estimate in zip(probes.tolist(), estimates.tolist()):
            frequency = oracle.frequency(probe)
            if frequency == 0.0:
                assert estimate == 0.0  # MG side: absent items are exact
            assert abs(estimate - frequency) <= sketch.maximum_error

    # Serialized round trips preserve all observable state on every
    # variant; the columnar layout (canonically sorted) is additionally
    # byte-stable.
    for sketch in variants:
        clone = FrequentItemsSketch.from_bytes(sketch.to_bytes())
        assert _observable_state(clone) == _observable_state(sketch)
        if sketch.backend == "columnar":
            assert clone.to_bytes() == sketch.to_bytes()
        assert np.array_equal(
            clone.estimate_batch(probes), sketch.estimate_batch(probes)
        )
    sharded_clone = ShardedFrequentItemsSketch.from_bytes(sharded.to_bytes())
    assert sharded_clone.to_bytes() == sharded.to_bytes()

    # Finally, the true merge() path (layout-order replay): identity
    # across backends is out of scope here, but the deterministic
    # guarantees must survive on every backend independently.
    aggregate_stream = _draw_stream(rng, universe, 150, max_weight)
    aggregate_arrays = _to_arrays(*aggregate_stream)
    for item, weight in zip(*aggregate_stream):
        oracle.update(item, weight)
    for sketch in variants:
        donor = FrequentItemsSketch(
            k, policy=policy_factory(), backend=sketch.backend, seed=99,
        )
        donor.update_batch(*aggregate_arrays)
        sketch.merge(donor)
        assert_bounds_valid(sketch, oracle, tolerance=0.0)
    sharded.update_batch(*aggregate_arrays)
    assert_bounds_valid(sharded, oracle, tolerance=0.0)
    sharded.close()


@pytest.mark.parametrize("chunk", range(NUM_CHUNKS))
def test_differential_scenarios(chunk):
    for index in range(SCENARIOS_PER_CHUNK):
        _run_scenario(seed=1_000 * chunk + index)
