"""Cross-cutting edge cases not covered by the per-module suites."""

import pytest

from repro import ErrorType, FrequentItemsSketch, HeavyHitterRow
from repro.baselines import CountMinSketch, LossyCounting
from repro.bench.report import _format_value
from repro.errors import InvalidParameterError


def test_error_type_values_stable():
    """The enum values are part of the serialized/reporting surface."""
    assert ErrorType.NO_FALSE_POSITIVES.value == "no_false_positives"
    assert ErrorType.NO_FALSE_NEGATIVES.value == "no_false_negatives"


def test_heavy_hitter_row_is_ordered_tuple():
    row = HeavyHitterRow(7, 10.0, 8.0, 12.0)
    assert row.item == 7
    assert row.estimate == 10.0
    assert tuple(row) == (7, 10.0, 8.0, 12.0)
    assert row < HeavyHitterRow(8, 1.0, 1.0, 1.0)  # tuple ordering


def test_report_value_formatting():
    assert _format_value(0.0) == "0"
    assert _format_value(5) == "5"
    assert _format_value("abc") == "abc"
    assert _format_value(True) == "True"
    assert "e" in _format_value(1.5e7)  # big -> scientific
    assert "e" in _format_value(1.5e-7)  # tiny -> scientific
    assert _format_value(123.456) == "123.5"
    assert _format_value(1.2345) == "1.234"


def test_cms_candidate_pruning_branch():
    """Push the tracked-candidate dict past 2x track_top to force pruning."""
    cms = CountMinSketch(3, 256, seed=1, track_top=4)
    for item in range(50):
        cms.update(item, float(item + 1))
    assert len(cms._candidates) <= 8
    # The heaviest items must have survived the pruning.
    assert 49 in cms._candidates
    with pytest.raises(InvalidParameterError):
        cms.heavy_hitter_candidates(0.0)


def test_lossy_counting_phi_validation():
    lc = LossyCounting(0.01)
    lc.update(1, 5.0)
    with pytest.raises(InvalidParameterError):
        lc.heavy_hitters(0.0)
    with pytest.raises(InvalidParameterError):
        lc.heavy_hitters(1.5)


def test_sketch_min_k():
    """k=2, the smallest legal sketch, on a two-item alternation."""
    sketch = FrequentItemsSketch(2, backend="dict", seed=1)
    for index in range(100):
        sketch.update(index % 2, 1.0)
    assert sketch.estimate(0) + sketch.estimate(1) >= 90.0
    assert sketch.maximum_error == 0.0  # never overflowed


def test_sketch_repeated_single_item():
    sketch = FrequentItemsSketch(4, backend="probing", seed=2)
    for _ in range(10_000):
        sketch.update(42, 0.5)
    assert sketch.estimate(42) == pytest.approx(5_000.0)
    assert sketch.stats.decrements == 0


def test_float_weights_smaller_than_epsilon():
    """Denormal-adjacent weights must still respect positivity checks."""
    sketch = FrequentItemsSketch(4, backend="dict", seed=3)
    sketch.update(1, 1e-300)
    assert sketch.estimate(1) == 1e-300
    assert sketch.stream_weight == 1e-300


def test_update_all_empty_iterable():
    sketch = FrequentItemsSketch(4)
    sketch.update_all([])
    assert sketch.is_empty()


def test_heavy_hitters_threshold_zero_reports_all_tracked():
    sketch = FrequentItemsSketch(8, backend="dict", seed=4)
    for item in range(5):
        sketch.update(item, float(item + 1))
    rows = sketch.frequent_items(ErrorType.NO_FALSE_NEGATIVES, 0.0)
    assert len(rows) == 5


def test_merge_chain_of_empties():
    from repro import merge_linear

    sketches = [FrequentItemsSketch(4, seed=i) for i in range(4)]
    merged = merge_linear(sketches)
    assert merged.is_empty()
    assert merged.maximum_error == 0.0
