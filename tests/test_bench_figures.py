"""Experiment definitions produce well-formed tables at a tiny scale.

These are smoke + shape tests: the full runs live in benchmarks/.  The
tiny config keeps the whole file under a few seconds.
"""

import pytest

from repro.bench.figures import (
    FOUR_ALGORITHMS,
    ablation_backend,
    ablation_merge_order,
    ablation_policies,
    ablation_sample_size,
    bounds_table,
    claims_table,
    context_table,
    fig1_runtime,
    fig2_error,
    fig3_quantile_tradeoff,
    fig4_merge,
    space_table,
)
from repro.bench.harness import BenchConfig

TINY = BenchConfig(
    num_updates=3_000,
    unique_sources=600,
    k_values=(16, 32),
    merge_pairs=2,
    merge_updates_per_sketch_factor=4,
    quantiles=(0, 50, 98),
    seed=11,
)


@pytest.fixture(scope="module")
def fig12_tables():
    return fig1_runtime(TINY), fig2_error(TINY)


def test_fig1_structure(fig12_tables):
    (equal_space, equal_counters), _ = fig12_tables
    for table in (equal_space, equal_counters):
        assert set(table.column("algorithm")) == set(FOUR_ALGORITHMS)
        assert len(table.rows) == len(FOUR_ALGORITHMS) * len(TINY.k_values)
        assert all(seconds > 0 for seconds in table.column("seconds"))


def test_fig1_equal_space_gives_mhe_fewer_counters(fig12_tables):
    (equal_space, _), _ = fig12_tables
    for k in TINY.k_values:
        mhe_k = equal_space.cell({"algorithm": "MHE", "k": k}, "actual_k")
        smed_k = equal_space.cell({"algorithm": "SMED", "k": k}, "actual_k")
        assert mhe_k < smed_k


def test_fig2_errors_positive_and_decreasing_in_k(fig12_tables):
    _, (equal_space, equal_counters) = fig12_tables
    for table in (equal_space, equal_counters):
        for algorithm in FOUR_ALGORITHMS:
            errors = [
                row["max_error"]
                for row in table.rows
                if row["algorithm"] == algorithm
            ]
            assert all(error >= 0 for error in errors)
            assert errors[-1] <= errors[0]  # larger k, smaller error


def test_fig2_equal_k_rbmc_smin_mhe_indistinguishable(fig12_tables):
    """The paper's Figure 2 note, as an assertion."""
    _, (_, equal_counters) = fig12_tables
    for k in TINY.k_values:
        rbmc = equal_counters.cell({"algorithm": "RBMC", "k": k}, "max_error")
        smin = equal_counters.cell({"algorithm": "SMIN", "k": k}, "max_error")
        mhe = equal_counters.cell({"algorithm": "MHE", "k": k}, "max_error")
        scale = max(rbmc, smin, mhe, 1.0)
        assert abs(rbmc - smin) / scale < 0.15
        assert abs(rbmc - mhe) / scale < 0.15


def test_claims_table(fig12_tables):
    table = claims_table(TINY)
    assert len(table.rows) == 7
    for row in table.rows:
        assert row["measured_min"] <= row["measured_max"]


def test_fig3_shape():
    table = fig3_quantile_tradeoff(TINY)
    ks = sorted(set(table.column("k")))
    assert ks == sorted(TINY.k_values[-2:])
    for k in ks:
        rows = [row for row in table.rows if row["k"] == k]
        by_quantile = {row["quantile_pct"]: row for row in rows}
        # Error grows with the quantile; decrement count shrinks.
        assert by_quantile[98]["max_error"] >= by_quantile[0]["max_error"]
        assert by_quantile[98]["decrements"] <= by_quantile[0]["decrements"]


def test_fig4_shape():
    table = fig4_merge(TINY)
    procedures = set(table.column("procedure"))
    assert procedures == {"ours(Alg5)", "Hoa61", "ACH+13"}
    for row in table.rows:
        assert row["seconds"] > 0
        assert row["mean_max_error"] >= 0
        if row["procedure"] == "ours(Alg5)":
            assert row["scratch_bytes"] == 0
        else:
            assert row["scratch_bytes"] > 0


def test_space_table():
    table = space_table((1024, 3072))
    assert table.cell({"k": 3072}, "bytes_per_counter_ours") == pytest.approx(
        24.0, abs=0.1
    )
    ours = table.cell({"k": 1024}, "smed_smin_rbmc")
    assert table.cell({"k": 1024}, "mhe") > ours
    assert table.cell({"k": 1024}, "med") > ours


def test_context_table():
    table = context_table(TINY)
    names = table.column("algorithm")
    assert any("SMED" in name for name in names)
    assert any("CountMin" in name for name in names)
    assert all(seconds > 0 for seconds in table.column("seconds"))


def test_bounds_table_all_hold():
    table = bounds_table(TINY)
    assert len(table.rows) == 4
    assert all(table.column("holds"))


def test_ablation_tables():
    policies = ablation_policies(TINY)
    assert len(policies.rows) == 4
    sample = ablation_sample_size(TINY)
    assert sample.column("ell") == [8, 32, 128, 512, 1024]
    backend = ablation_backend(TINY)
    assert set(backend.column("backend")) == {"probing", "robinhood", "dict"}
    order = ablation_merge_order(TINY)
    assert set(order.column("order")) == {"in-order", "random"}
    assert all(probes > 0 for probes in order.column("probes"))
