"""Benchmark plumbing: scales, stream caching, timed feeding."""

import gc

import pytest

from repro.bench.harness import (
    SCALES,
    BenchConfig,
    feed_batches,
    feed_stream,
    gc_isolated,
    num_batched_updates,
    packet_batches,
    packet_exact,
    packet_stream,
    repeat_median,
    time_call,
    time_feed,
    time_feed_batches,
    zipf_exact,
    zipf_weighted_batches,
    zipf_weighted_stream,
)
from repro.core.frequent_items import FrequentItemsSketch

TINY = BenchConfig(
    num_updates=2_000,
    unique_sources=400,
    k_values=(16, 32),
    merge_pairs=2,
    merge_updates_per_sketch_factor=4,
    quantiles=(0, 50),
    seed=7,
)


def test_scales_defined():
    assert {"quick", "medium", "paper"} <= set(SCALES)
    for config in SCALES.values():
        assert config.num_updates > 0
        assert len(config.k_values) >= 2
        assert all(0 <= quantile <= 100 for quantile in config.quantiles)


def test_packet_stream_cached_and_sized():
    first = packet_stream(TINY)
    second = packet_stream(TINY)
    assert first is second  # cache hit
    assert len(first) == TINY.num_updates


def test_packet_exact_consistent():
    exact = packet_exact(TINY)
    assert exact.num_updates == TINY.num_updates
    assert exact.total_weight == pytest.approx(
        sum(weight for _item, weight in packet_stream(TINY))
    )


def test_zipf_weighted_stream_cached():
    a = zipf_weighted_stream(500, 100, 1.05, seed=1)
    b = zipf_weighted_stream(500, 100, 1.05, seed=1)
    c = zipf_weighted_stream(500, 100, 1.05, seed=2)
    assert a is b
    assert a != c
    assert all(1.0 <= weight <= 10_000.0 for _item, weight in a)


def test_feed_and_time_feed():
    sketch = FrequentItemsSketch(32, backend="dict", seed=1)
    stream = packet_stream(TINY)
    seconds = time_feed(sketch, stream)
    assert seconds > 0
    assert sketch.stats.updates == len(stream)
    sketch2 = FrequentItemsSketch(32, backend="dict", seed=1)
    feed_stream(sketch2, stream)
    assert sketch2.stats.updates == len(stream)


def test_batch_and_scalar_caches_agree():
    batches = packet_batches(TINY)
    stream = packet_stream(TINY)
    assert num_batched_updates(batches) == len(stream) == TINY.num_updates
    flattened = [
        (int(item), float(weight))
        for items, weights in batches
        for item, weight in zip(items.tolist(), weights.tolist())
    ]
    assert flattened == [(item, weight) for item, weight in stream]
    zb = zipf_weighted_batches(600, 120, 1.05, seed=3)
    zs = zipf_weighted_stream(600, 120, 1.05, seed=3)
    assert num_batched_updates(zb) == len(zs)
    assert zb is zipf_weighted_batches(600, 120, 1.05, seed=3)  # cache hit


def test_feed_batches_equals_feed_stream():
    batches = packet_batches(TINY)
    stream = packet_stream(TINY)
    scalar = FrequentItemsSketch(32, backend="columnar", seed=1)
    feed_stream(scalar, stream)
    batched = FrequentItemsSketch(32, backend="columnar", seed=1)
    seconds = time_feed_batches(batched, batches)
    assert seconds > 0
    assert batched.stats.updates == len(stream)
    assert scalar.to_bytes() == batched.to_bytes()
    again = FrequentItemsSketch(32, backend="columnar", seed=1)
    feed_batches(again, batches)
    assert again.to_bytes() == batched.to_bytes()


def test_time_call():
    seconds, result = time_call(lambda: sum(range(1000)))
    assert seconds >= 0
    assert result == 499_500


def test_gc_isolated_disables_then_restores():
    assert gc.isenabled()
    with gc_isolated():
        assert not gc.isenabled()
    assert gc.isenabled()


def test_gc_isolated_preserves_already_disabled_state():
    gc.disable()
    try:
        with gc_isolated():
            assert not gc.isenabled()
        assert not gc.isenabled()  # caller's setting honored, not clobbered
    finally:
        gc.enable()


def test_gc_isolated_nested():
    with gc_isolated():
        with gc_isolated():
            assert not gc.isenabled()
        assert not gc.isenabled()  # inner exit must not re-enable early
    assert gc.isenabled()


def test_gc_isolated_restores_on_exception():
    with pytest.raises(RuntimeError):
        with gc_isolated():
            raise RuntimeError("boom")
    assert gc.isenabled()


def test_timed_helpers_run_with_gc_disabled():
    states = []
    time_call(lambda: states.append(gc.isenabled()))
    assert states == [False]
    assert gc.isenabled()


def test_repeat_median_returns_median_and_samples():
    samples = iter([3.0, 1.0, 2.0])
    median, seen = repeat_median(lambda: next(samples), repeats=3)
    assert median == 2.0
    assert seen == [3.0, 1.0, 2.0]


def test_repeat_median_single_repeat():
    median, seen = repeat_median(lambda: 5.0, repeats=1)
    assert median == 5.0
    assert seen == [5.0]


def test_repeat_median_rejects_nonpositive_repeats():
    with pytest.raises(ValueError):
        repeat_median(lambda: 1.0, repeats=0)


def test_zipf_exact_cached_and_consistent():
    exact = zipf_exact(600, 120, 1.05, seed=3)
    assert exact is zipf_exact(600, 120, 1.05, seed=3)  # cache hit
    stream = zipf_weighted_stream(600, 120, 1.05, seed=3)
    assert exact.num_updates == len(stream)
    assert exact.total_weight == pytest.approx(
        sum(weight for _item, weight in stream)
    )
