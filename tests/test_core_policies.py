"""Decrement policies: values chosen, labels, parameter validation."""

import pytest

from repro.core.policies import (
    ExactKthLargestPolicy,
    GlobalMinPolicy,
    SampleQuantilePolicy,
    smed_policy,
    smin_policy,
)
from repro.errors import InvalidParameterError
from repro.prng import Xoroshiro128PlusPlus
from repro.table import DictCounterStore


def _store_with(values):
    store = DictCounterStore(len(values))
    for index, value in enumerate(values):
        store.insert(index, value)
    return store


def test_sample_quantile_median_exact_when_small():
    store = _store_with([1.0, 2.0, 3.0, 4.0, 5.0])
    policy = SampleQuantilePolicy(0.5, sample_size=1024)
    assert policy.decrement_value(store, Xoroshiro128PlusPlus(1)) == 3.0


def test_sample_quantile_min_is_global_min_when_small():
    store = _store_with([4.0, 2.0, 9.0])
    policy = SampleQuantilePolicy(0.0, sample_size=1024)
    assert policy.decrement_value(store, Xoroshiro128PlusPlus(1)) == 2.0


def test_sampled_path_returns_live_value():
    values = [float(x + 1) for x in range(500)]
    store = _store_with(values)
    policy = SampleQuantilePolicy(0.5, sample_size=64)
    result = policy.decrement_value(store, Xoroshiro128PlusPlus(3))
    assert result in values
    # The sampled median should land near the true median w.h.p.
    assert 100 <= result <= 400


def test_exact_kth_largest_policy():
    store = _store_with([10.0, 20.0, 30.0, 40.0])
    assert ExactKthLargestPolicy(0.5).decrement_value(
        store, Xoroshiro128PlusPlus(1)
    ) == 30.0  # 2nd largest of 4
    assert ExactKthLargestPolicy(1.0).decrement_value(
        store, Xoroshiro128PlusPlus(1)
    ) == 10.0  # 4th largest


def test_global_min_policy():
    store = _store_with([7.0, 3.0, 11.0])
    assert GlobalMinPolicy().decrement_value(store, Xoroshiro128PlusPlus(1)) == 3.0


def test_describe_labels():
    assert SampleQuantilePolicy(0.5).describe().startswith("SMED")
    assert SampleQuantilePolicy(0.0).describe().startswith("SMIN")
    assert SampleQuantilePolicy(0.7).describe().startswith("SQ70")
    assert ExactKthLargestPolicy().describe().startswith("MED")
    assert GlobalMinPolicy().describe() == "GMIN"


def test_factories():
    assert smed_policy().quantile == 0.5
    assert smin_policy().quantile == 0.0
    assert smed_policy(128).sample_size == 128


def test_parameter_validation():
    with pytest.raises(InvalidParameterError):
        SampleQuantilePolicy(-0.1)
    with pytest.raises(InvalidParameterError):
        SampleQuantilePolicy(1.1)
    with pytest.raises(InvalidParameterError):
        SampleQuantilePolicy(0.5, sample_size=0)
    with pytest.raises(InvalidParameterError):
        SampleQuantilePolicy(0.5, selector="nope")
    with pytest.raises(InvalidParameterError):
        ExactKthLargestPolicy(0.0)
    with pytest.raises(InvalidParameterError):
        ExactKthLargestPolicy(1.5)


def test_quickselect_selector_agrees_with_auto():
    values = [float(x) for x in range(101)]
    store = _store_with(values)
    auto = SampleQuantilePolicy(0.5, 1024, selector="auto")
    quick = SampleQuantilePolicy(0.5, 1024, selector="quickselect")
    assert auto.decrement_value(store, Xoroshiro128PlusPlus(1)) == \
        quick.decrement_value(store, Xoroshiro128PlusPlus(1))
