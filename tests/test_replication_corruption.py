"""Adversarial byte streams against the replication frame parsers.

The failure containment property the follower relies on: whatever bytes
arrive on a replication socket, :func:`read_repl_frame` either yields a
well-formed frame, reports a clean EOF (``None``), or raises
:class:`ReplicationError` — never an unwrapped ``struct.error`` /
``ValueError`` / silent desync where a parsed frame differs from what a
byte-faithful peer actually sent.  The same property is pinned for the
on-disk WAL record codec the ``W`` frame body reuses.
"""

import asyncio
import random
import struct

import numpy as np
import pytest

from repro.errors import ReplicationError, SerializationError
from repro.service import protocol
from repro.service.snapshot import (
    WAL_RECORD_HEADER_SIZE,
    decode_snapshot,
    decode_wal_payload,
    encode_snapshot,
    encode_wal_record,
    parse_wal_record_header,
)

pytestmark = [pytest.mark.service, pytest.mark.replication]


def feed_reader(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def drain_frames(data: bytes):
    """Parse ``data`` to exhaustion.

    Returns ``(frames, error)`` where ``error`` is the terminating
    :class:`ReplicationError` if one fired.  Any *other* exception type
    escapes and fails the calling test — that is the property.
    """

    async def run():
        reader = feed_reader(data)
        frames = []
        while True:
            try:
                frame = await protocol.read_repl_frame(reader)
            except ReplicationError as exc:
                return frames, exc
            if frame is None:
                return frames, None
            frames.append(frame)

    return asyncio.run(run())


def make_wal_frame(seq: int, rng: random.Random) -> bytes:
    count = rng.randint(1, 9)
    items = np.array(
        [rng.randrange(1 << 64) for _ in range(count)], dtype=np.uint64
    )
    weights = np.array(
        [rng.uniform(0.5, 99.0) for _ in range(count)], dtype=np.float64
    )
    return protocol.encode_repl_wal_frame(seq, items, weights)


def frames_equal(parsed, reference) -> bool:
    if parsed[0] != reference[0]:
        return False
    if parsed[0] == "wal":
        return (
            parsed[1] == reference[1]
            and np.array_equal(parsed[2], reference[2])
            and np.array_equal(parsed[3], reference[3])
        )
    return parsed[1:] == reference[1:]


def reference_stream(rng: random.Random):
    """A short mixed stream of valid frames plus the expected parses."""
    from repro import FrequentItemsSketch

    sketch = FrequentItemsSketch(16, seed=5)
    sketch.update(3, 2.0)
    blob = encode_snapshot(sketch, 7)
    wal_one = make_wal_frame(1, rng)
    wal_two = make_wal_frame(2, rng)
    data = (
        wal_one
        + protocol.encode_repl_heartbeat(2)
        + protocol.encode_repl_snapshot_frame(blob)
        + wal_two
    )
    expected, _ = drain_frames(data)
    assert len(expected) == 4
    return data, expected


def test_clean_stream_round_trips():
    data, expected = reference_stream(random.Random(1))
    frames, error = drain_frames(data)
    assert error is None
    assert len(frames) == 4
    assert [f[0] for f in frames] == ["wal", "heartbeat", "snapshot", "wal"]


def test_truncation_at_every_byte_offset():
    """Cutting the stream anywhere yields exactly the frames that are
    complete in the prefix — parsed byte-identically — then either a
    clean EOF (cut on a frame boundary) or a ReplicationError."""
    rng = random.Random(2)
    data, expected = reference_stream(rng)
    # Frame boundaries, reconstructed from the parsed frame sizes.
    lengths = []
    cursor = 0
    for frame in expected:
        if frame[0] == "wal":
            size = 1 + WAL_RECORD_HEADER_SIZE + 16 * len(frame[2])
        elif frame[0] == "snapshot":
            size = 1 + 8 + len(frame[1])
        else:
            size = 1 + 8
        cursor += size
        lengths.append(cursor)
    assert cursor == len(data)
    boundaries = {0, *lengths}
    for cut in range(len(data) + 1):
        frames, error = drain_frames(data[:cut])
        complete = sum(1 for b in lengths if b <= cut)
        assert len(frames) == complete, f"desync at cut {cut}"
        for parsed, reference in zip(frames, expected):
            assert frames_equal(parsed, reference), f"desync at cut {cut}"
        if cut in boundaries:
            assert error is None, f"boundary cut {cut} should be clean EOF"
        else:
            assert isinstance(error, ReplicationError), (
                f"mid-frame cut {cut} must raise ReplicationError"
            )


def test_single_byte_flips_never_escape():
    """Flip each byte of the stream (all 8 bits sampled via XOR mask):
    parsing must end in frames and/or a ReplicationError — no other
    exception, and no bogus 'wal' frame (the CRC covers every body
    byte, so a flipped W frame cannot parse as a different batch)."""
    rng = random.Random(3)
    data, expected = reference_stream(rng)
    wal_seqs = {f[1]: f for f in expected if f[0] == "wal"}
    for position in range(len(data)):
        mask = rng.randint(1, 255)
        mutated = bytearray(data)
        mutated[position] ^= mask
        frames, error = drain_frames(bytes(mutated))
        for frame in frames:
            if frame[0] == "wal" and frame[1] in wal_seqs:
                assert frames_equal(frame, wal_seqs[frame[1]]), (
                    f"flip at {position} produced a corrupt WAL batch "
                    "that passed its CRC"
                )
        del error  # ReplicationError or clean EOF are both acceptable


def test_flipped_length_prefixes_are_rejected_before_allocation():
    """A hostile count/length prefix must be refused by the cap check,
    not answered with a giant readexactly allocation."""
    # W frame claiming 2**31 updates.
    head = struct.pack("<QII", 9, 1 << 31, 0)
    frames, error = drain_frames(b"W" + head + b"\x00" * 64)
    assert frames == []
    assert isinstance(error, ReplicationError)
    assert "cap" in str(error)
    # S frame claiming a 2**60-byte snapshot.
    frames, error = drain_frames(b"S" + struct.pack("<Q", 1 << 60))
    assert frames == []
    assert isinstance(error, ReplicationError)
    assert "cap" in str(error)


def test_unknown_tags_are_rejected():
    for tag in (b"X", b"\x00", b"w", b"s", b"\xff"):
        frames, error = drain_frames(tag + b"\x00" * 32)
        assert frames == []
        assert isinstance(error, ReplicationError)


def test_random_garbage_streams_fuzz():
    """Pure noise, random lengths: every parse terminates in frames plus
    a clean EOF or a ReplicationError."""
    rng = random.Random(4)
    for _ in range(300):
        data = rng.randbytes(rng.randint(0, 200))
        frames, error = drain_frames(data)
        for frame in frames:
            assert frame[0] in ("wal", "snapshot", "heartbeat")
        assert error is None or isinstance(error, ReplicationError)


def test_garbage_preceded_by_valid_frames_fuzz():
    """Noise appended to a valid prefix must not corrupt the prefix."""
    rng = random.Random(5)
    for _ in range(100):
        prefix_frame = make_wal_frame(11, rng)
        data = prefix_frame + rng.randbytes(rng.randint(1, 120))
        frames, error = drain_frames(data)
        assert frames, "the valid leading frame must still parse"
        reference, _ = drain_frames(prefix_frame)
        assert frames_equal(frames[0], reference[0])


def test_wal_payload_crc_catches_every_flip():
    rng = random.Random(6)
    items = np.arange(1, 9, dtype=np.uint64)
    weights = np.linspace(1.0, 8.0, 8)
    record = encode_wal_record(21, items, weights)
    seq, count, crc = parse_wal_record_header(
        record[:WAL_RECORD_HEADER_SIZE]
    )
    payload = record[WAL_RECORD_HEADER_SIZE:]
    # The untouched payload decodes.
    out_items, out_weights = decode_wal_payload(seq, count, crc, payload)
    assert np.array_equal(out_items, items)
    assert np.array_equal(out_weights, weights)
    for position in range(len(payload)):
        mutated = bytearray(payload)
        mutated[position] ^= rng.randint(1, 255)
        with pytest.raises((SerializationError, ValueError)):
            decode_wal_payload(seq, count, crc, bytes(mutated))


def test_snapshot_decode_rejects_flips_and_truncations():
    """The RSNP codec behind an ``S`` frame: bit flips and truncations
    are reported as SerializationError, never applied silently."""
    from repro import FrequentItemsSketch

    rng = random.Random(7)
    sketch = FrequentItemsSketch(16, seed=5)
    for item in range(10):
        sketch.update(item, float(item + 1))
    blob = encode_snapshot(sketch, 12)
    decode_snapshot(blob)  # sanity: the clean blob decodes
    # The trailing CRC32 covers the entire body, so any single-byte XOR
    # (a burst error of at most 8 bits) is guaranteed detectable.
    for _ in range(80):
        mutated = bytearray(blob)
        mutated[rng.randrange(len(blob))] ^= rng.randint(1, 255)
        with pytest.raises((SerializationError, ValueError)):
            decode_snapshot(bytes(mutated))
    for cut in range(len(blob)):
        with pytest.raises((SerializationError, ValueError)):
            decode_snapshot(blob[:cut])
