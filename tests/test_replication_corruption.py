"""Adversarial byte streams against the replication frame parsers.

The failure containment property the follower relies on: whatever bytes
arrive on a replication socket, :func:`read_repl_frame` either yields a
well-formed frame, reports a clean EOF (``None``), or raises
:class:`ReplicationError` — never an unwrapped ``struct.error`` /
``ValueError`` / silent desync where a parsed frame differs from what a
byte-faithful peer actually sent.  The same property is pinned for the
on-disk WAL record codec the ``W`` frame body reuses.
"""

import asyncio
import random
import struct

import numpy as np
import pytest

from repro.errors import ReplicationError, SerializationError
from repro.service import protocol
from repro.service.snapshot import (
    WAL_RECORD_HEADER_SIZE,
    decode_snapshot,
    decode_wal_payload,
    encode_snapshot,
    encode_wal_record,
    parse_wal_record_header,
)

pytestmark = [pytest.mark.service, pytest.mark.replication]


def feed_reader(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def drain_frames(data: bytes):
    """Parse ``data`` to exhaustion.

    Returns ``(frames, error)`` where ``error`` is the terminating
    :class:`ReplicationError` if one fired.  Any *other* exception type
    escapes and fails the calling test — that is the property.
    """

    async def run():
        reader = feed_reader(data)
        frames = []
        while True:
            try:
                frame = await protocol.read_repl_frame(reader)
            except ReplicationError as exc:
                return frames, exc
            if frame is None:
                return frames, None
            frames.append(frame)

    return asyncio.run(run())


def make_wal_frame(seq: int, rng: random.Random) -> bytes:
    count = rng.randint(1, 9)
    items = np.array(
        [rng.randrange(1 << 64) for _ in range(count)], dtype=np.uint64
    )
    weights = np.array(
        [rng.uniform(0.5, 99.0) for _ in range(count)], dtype=np.float64
    )
    return protocol.encode_repl_wal_frame(seq, items, weights)


def frames_equal(parsed, reference) -> bool:
    if parsed[0] != reference[0]:
        return False
    if parsed[0] == "wal":
        return (
            parsed[1] == reference[1]
            and np.array_equal(parsed[2], reference[2])
            and np.array_equal(parsed[3], reference[3])
        )
    if parsed[0] == "fenced":
        return (
            parsed[1] == reference[1]
            and parsed[2] == reference[2]
            and parsed[3] == reference[3]
            and np.array_equal(parsed[4], reference[4])
            and np.array_equal(parsed[5], reference[5])
        )
    return parsed[1:] == reference[1:]


def reference_stream(rng: random.Random):
    """A short mixed stream of valid frames plus the expected parses."""
    from repro import FrequentItemsSketch

    sketch = FrequentItemsSketch(16, seed=5)
    sketch.update(3, 2.0)
    blob = encode_snapshot(sketch, 7)
    wal_one = make_wal_frame(1, rng)
    wal_two = make_wal_frame(2, rng)
    data = (
        wal_one
        + protocol.encode_repl_heartbeat(2)
        + protocol.encode_repl_snapshot_frame(blob)
        + wal_two
    )
    expected, _ = drain_frames(data)
    assert len(expected) == 4
    return data, expected


def test_clean_stream_round_trips():
    data, expected = reference_stream(random.Random(1))
    frames, error = drain_frames(data)
    assert error is None
    assert len(frames) == 4
    assert [f[0] for f in frames] == ["wal", "heartbeat", "snapshot", "wal"]


def test_truncation_at_every_byte_offset():
    """Cutting the stream anywhere yields exactly the frames that are
    complete in the prefix — parsed byte-identically — then either a
    clean EOF (cut on a frame boundary) or a ReplicationError."""
    rng = random.Random(2)
    data, expected = reference_stream(rng)
    # Frame boundaries, reconstructed from the parsed frame sizes.
    lengths = []
    cursor = 0
    for frame in expected:
        if frame[0] == "wal":
            size = 1 + WAL_RECORD_HEADER_SIZE + 16 * len(frame[2])
        elif frame[0] == "snapshot":
            size = 1 + 8 + len(frame[1])
        else:
            size = 1 + 8
        cursor += size
        lengths.append(cursor)
    assert cursor == len(data)
    boundaries = {0, *lengths}
    for cut in range(len(data) + 1):
        frames, error = drain_frames(data[:cut])
        complete = sum(1 for b in lengths if b <= cut)
        assert len(frames) == complete, f"desync at cut {cut}"
        for parsed, reference in zip(frames, expected):
            assert frames_equal(parsed, reference), f"desync at cut {cut}"
        if cut in boundaries:
            assert error is None, f"boundary cut {cut} should be clean EOF"
        else:
            assert isinstance(error, ReplicationError), (
                f"mid-frame cut {cut} must raise ReplicationError"
            )


def test_single_byte_flips_never_escape():
    """Flip each byte of the stream (all 8 bits sampled via XOR mask):
    parsing must end in frames and/or a ReplicationError — no other
    exception, and no bogus 'wal' frame (the CRC covers every body
    byte, so a flipped W frame cannot parse as a different batch)."""
    rng = random.Random(3)
    data, expected = reference_stream(rng)
    wal_seqs = {f[1]: f for f in expected if f[0] == "wal"}
    for position in range(len(data)):
        mask = rng.randint(1, 255)
        mutated = bytearray(data)
        mutated[position] ^= mask
        frames, error = drain_frames(bytes(mutated))
        for frame in frames:
            if frame[0] == "wal" and frame[1] in wal_seqs:
                assert frames_equal(frame, wal_seqs[frame[1]]), (
                    f"flip at {position} produced a corrupt WAL batch "
                    "that passed its CRC"
                )
        del error  # ReplicationError or clean EOF are both acceptable


def test_flipped_length_prefixes_are_rejected_before_allocation():
    """A hostile count/length prefix must be refused by the cap check,
    not answered with a giant readexactly allocation."""
    # W frame claiming 2**31 updates.
    head = struct.pack("<QII", 9, 1 << 31, 0)
    frames, error = drain_frames(b"W" + head + b"\x00" * 64)
    assert frames == []
    assert isinstance(error, ReplicationError)
    assert "cap" in str(error)
    # S frame claiming a 2**60-byte snapshot.
    frames, error = drain_frames(b"S" + struct.pack("<Q", 1 << 60))
    assert frames == []
    assert isinstance(error, ReplicationError)
    assert "cap" in str(error)


def test_unknown_tags_are_rejected():
    for tag in (b"X", b"\x00", b"w", b"s", b"\xff"):
        frames, error = drain_frames(tag + b"\x00" * 32)
        assert frames == []
        assert isinstance(error, ReplicationError)


def test_random_garbage_streams_fuzz():
    """Pure noise, random lengths: every parse terminates in frames plus
    a clean EOF or a ReplicationError."""
    rng = random.Random(4)
    for _ in range(300):
        data = rng.randbytes(rng.randint(0, 200))
        frames, error = drain_frames(data)
        for frame in frames:
            assert frame[0] in ("wal", "snapshot", "heartbeat")
        assert error is None or isinstance(error, ReplicationError)


def test_garbage_preceded_by_valid_frames_fuzz():
    """Noise appended to a valid prefix must not corrupt the prefix."""
    rng = random.Random(5)
    for _ in range(100):
        prefix_frame = make_wal_frame(11, rng)
        data = prefix_frame + rng.randbytes(rng.randint(1, 120))
        frames, error = drain_frames(data)
        assert frames, "the valid leading frame must still parse"
        reference, _ = drain_frames(prefix_frame)
        assert frames_equal(frames[0], reference[0])


def test_wal_payload_crc_catches_every_flip():
    rng = random.Random(6)
    items = np.arange(1, 9, dtype=np.uint64)
    weights = np.linspace(1.0, 8.0, 8)
    record = encode_wal_record(21, items, weights)
    seq, count, crc = parse_wal_record_header(
        record[:WAL_RECORD_HEADER_SIZE]
    )
    payload = record[WAL_RECORD_HEADER_SIZE:]
    # The untouched payload decodes.
    out_items, out_weights = decode_wal_payload(seq, count, crc, payload)
    assert np.array_equal(out_items, items)
    assert np.array_equal(out_weights, weights)
    for position in range(len(payload)):
        mutated = bytearray(payload)
        mutated[position] ^= rng.randint(1, 255)
        with pytest.raises((SerializationError, ValueError)):
            decode_wal_payload(seq, count, crc, bytes(mutated))


def test_snapshot_decode_rejects_flips_and_truncations():
    """The RSNP codec behind an ``S`` frame: bit flips and truncations
    are reported as SerializationError, never applied silently."""
    from repro import FrequentItemsSketch

    rng = random.Random(7)
    sketch = FrequentItemsSketch(16, seed=5)
    for item in range(10):
        sketch.update(item, float(item + 1))
    blob = encode_snapshot(sketch, 12)
    decode_snapshot(blob)  # sanity: the clean blob decodes
    # The trailing CRC32 covers the entire body, so any single-byte XOR
    # (a burst error of at most 8 bits) is guaranteed detectable.
    for _ in range(80):
        mutated = bytearray(blob)
        mutated[rng.randrange(len(blob))] ^= rng.randint(1, 255)
        with pytest.raises((SerializationError, ValueError)):
            decode_snapshot(bytes(mutated))
    for cut in range(len(blob)):
        with pytest.raises((SerializationError, ValueError)):
            decode_snapshot(blob[:cut])


# --------------------------------------------------------------------------
# F (epoch-fenced) frames — PR 9's epoch + idempotency-stamp envelope


def make_fenced_frame(epoch: int, stamps, seq: int, rng: random.Random) -> bytes:
    count = rng.randint(1, 6)
    items = np.array(
        [rng.randrange(1 << 64) for _ in range(count)], dtype=np.uint64
    )
    weights = np.array(
        [rng.uniform(0.5, 99.0) for _ in range(count)], dtype=np.float64
    )
    return protocol.encode_repl_fenced_frame(epoch, stamps, seq, items, weights)


def fenced_reference_stream(rng: random.Random):
    """A mixed fenced stream plus expected parses and frame boundaries."""
    chunks = [
        make_fenced_frame(3, (), 1, rng),
        protocol.encode_repl_heartbeat(1),
        make_fenced_frame(3, (("sess-a", 7),), 2, rng),
        make_fenced_frame(4, (("sess-a", 8), ("b.2_c", 9)), 3, rng),
    ]
    data = b"".join(chunks)
    boundaries = []
    cursor = 0
    for chunk in chunks:
        cursor += len(chunk)
        boundaries.append(cursor)
    expected, error = drain_frames(data)
    assert error is None and len(expected) == 4
    return data, expected, boundaries


def test_fenced_stream_round_trips():
    data, expected, _ = fenced_reference_stream(random.Random(11))
    frames, error = drain_frames(data)
    assert error is None
    assert [f[0] for f in frames] == ["fenced", "heartbeat", "fenced", "fenced"]
    assert frames[0][1] == 3 and frames[0][2] == ()
    assert frames[2][2] == (("sess-a", 7),)
    assert frames[3][1] == 4
    assert frames[3][2] == (("sess-a", 8), ("b.2_c", 9))


def test_fenced_truncation_at_every_byte_offset():
    """Same guarantee the W/S/H frames carry: a cut anywhere yields the
    complete prefix byte-identically, then clean EOF (on a boundary) or
    ReplicationError (mid-frame) — never a desynced parse."""
    rng = random.Random(12)
    data, expected, lengths = fenced_reference_stream(rng)
    boundaries = {0, *lengths}
    for cut in range(len(data) + 1):
        frames, error = drain_frames(data[:cut])
        complete = sum(1 for b in lengths if b <= cut)
        assert len(frames) == complete, f"desync at cut {cut}"
        for parsed, reference in zip(frames, expected):
            assert frames_equal(parsed, reference), f"desync at cut {cut}"
        if cut in boundaries:
            assert error is None, f"boundary cut {cut} should be clean EOF"
        else:
            assert isinstance(error, ReplicationError), (
                f"mid-frame cut {cut} must raise ReplicationError"
            )


def test_fenced_byte_flips_never_corrupt_the_record():
    """The RWAL record inside an F frame is CRC-covered: a flip anywhere
    either fails the parse with ReplicationError or leaves every parsed
    record byte-identical to what was sent.  (The epoch/stamp envelope
    is integrity-protected by TCP, not the CRC — a flip there may parse
    as different metadata, but can never smuggle a corrupt *batch*.)"""
    rng = random.Random(13)
    data, expected, _ = fenced_reference_stream(rng)
    records = {
        f[3]: (f[4], f[5]) for f in expected if f[0] == "fenced"
    }
    for position in range(len(data)):
        mutated = bytearray(data)
        mutated[position] ^= rng.randint(1, 255)
        frames, error = drain_frames(bytes(mutated))
        for frame in frames:
            if frame[0] == "fenced" and frame[3] in records:
                ref_items, ref_weights = records[frame[3]]
                assert np.array_equal(frame[4], ref_items) and (
                    np.array_equal(frame[5], ref_weights)
                ), f"flip at {position} forged a fenced batch past its CRC"
        assert error is None or isinstance(error, ReplicationError)


def test_fenced_stamp_envelope_rejections():
    """Hostile stamp envelopes are refused before any allocation or
    registry write: oversized counts, zero-length ids, non-ASCII bytes,
    and out-of-alphabet ids all raise ReplicationError."""
    epoch = struct.pack("<Q", 1)
    # A stamp count beyond the cap.
    frames, error = drain_frames(
        b"F" + epoch + struct.pack("<H", 300) + b"\x00" * 64
    )
    assert frames == []
    assert isinstance(error, ReplicationError)
    assert "cap" in str(error)
    # A zero-length session id.
    frames, error = drain_frames(
        b"F" + epoch + struct.pack("<H", 1) + b"\x00" + b"\x00" * 32
    )
    assert frames == []
    assert isinstance(error, ReplicationError)
    # Non-ASCII session bytes.
    frames, error = drain_frames(
        b"F" + epoch + struct.pack("<H", 1) + b"\x04\xff\xfe\xff\xfe"
        + b"\x00" * 32
    )
    assert frames == []
    assert isinstance(error, ReplicationError)
    # ASCII but outside the session alphabet (a space).
    frames, error = drain_frames(
        b"F" + epoch + struct.pack("<H", 1) + b"\x03a b" + b"\x00" * 32
    )
    assert frames == []
    assert isinstance(error, ReplicationError)


def test_fenced_encoder_refuses_invalid_stamps():
    items = np.arange(1, 3, dtype=np.uint64)
    weights = np.ones(2, dtype=np.float64)
    with pytest.raises(ValueError):
        protocol.encode_repl_fenced_frame(
            1, [("s", 1)] * (protocol.MAX_FRAME_STAMPS + 1), 1, items, weights
        )
    with pytest.raises(ValueError):
        protocol.encode_repl_fenced_frame(1, [("", 1)], 1, items, weights)
    with pytest.raises(ValueError):
        protocol.encode_repl_fenced_frame(
            1, [("x" * 65, 1)], 1, items, weights
        )


def test_parser_survives_interleaved_partial_reads():
    """Frames delivered in 3-byte dribbles across event-loop turns parse
    byte-identically: readexactly waits out partial delivery and the
    parser never mistakes a short read for corruption."""
    rng = random.Random(14)
    data, expected, _ = fenced_reference_stream(rng)

    async def main():
        reader = asyncio.StreamReader()

        async def feeder():
            for i in range(0, len(data), 3):
                reader.feed_data(data[i:i + 3])
                await asyncio.sleep(0)
            reader.feed_eof()

        task = asyncio.ensure_future(feeder())
        frames = []
        while True:
            frame = await protocol.read_repl_frame(reader)
            if frame is None:
                break
            frames.append(frame)
        await task
        return frames

    frames = asyncio.run(main())
    assert len(frames) == len(expected)
    for parsed, reference in zip(frames, expected):
        assert frames_equal(parsed, reference)


def test_fenced_garbage_fuzz():
    """Noise after a valid F-frame prefix: the prefix always parses, the
    tail ends in frames plus clean EOF or ReplicationError."""
    rng = random.Random(15)
    for _ in range(100):
        prefix = make_fenced_frame(2, (("s-1", 4),), 21, rng)
        data = prefix + rng.randbytes(rng.randint(1, 120))
        frames, error = drain_frames(data)
        assert frames, "the valid leading fenced frame must still parse"
        reference, _ = drain_frames(prefix)
        assert frames_equal(frames[0], reference[0])
        assert error is None or isinstance(error, ReplicationError)


# --------------------------------------------------------------------------
# Election protocol lines (REPL ELECT / vote replies / LEADER / PEERS)


def test_elect_line_round_trips():
    line = protocol.encode_elect_line(5, 123, "n2")
    tokens = line.decode("ascii").split()
    assert tokens[:2] == ["REPL", "ELECT"]
    assert protocol.parse_elect_args(tokens[2:]) == (5, 123, "n2")


@pytest.mark.parametrize("args", [
    [],
    ["1"],
    ["1", "2"],
    ["1", "2", "n1", "extra"],
    ["-1", "2", "n1"],
    ["1e3", "2", "n1"],
    ["0x5", "2", "n1"],
    [str(1 << 64), "2", "n1"],
    ["1", str(1 << 64), "n1"],
    ["1", "2", ""],
    ["1", "2", "bad!id"],
    ["1", "2", "x" * 65],
])
def test_malformed_elect_args_rejected(args):
    with pytest.raises(ReplicationError):
        protocol.parse_elect_args(args)


def test_vote_reply_round_trips():
    for granted, epoch, leader in [
        (True, 7, None), (False, 7, None), (False, 9, "n1"),
    ]:
        text = protocol.encode_vote_reply(granted, epoch, leader)
        assert protocol.parse_vote_reply(text.split()) == (
            granted, epoch, leader
        )


@pytest.mark.parametrize("args", [
    [],
    ["GRANT"],
    ["GRANT", "x"],
    ["GRANT", "1", "2"],
    ["DENY"],
    ["DENY", "1"],
    ["DENY", "-1", "-"],
    ["DENY", "1", "bad!id"],
    ["DENY", "1", "-", "extra"],
    ["YES", "1"],
])
def test_malformed_vote_replies_rejected(args):
    with pytest.raises(ReplicationError):
        protocol.parse_vote_reply(args)


def test_leader_line_round_trips():
    line = protocol.encode_leader_line(3, "n1", "10.0.0.1:9471")
    tokens = line.decode("ascii").split()
    assert tokens[:2] == ["REPL", "LEADER"]
    assert protocol.parse_leader_args(tokens[2:]) == (
        3, "n1", "10.0.0.1:9471"
    )


@pytest.mark.parametrize("args", [
    [],
    ["1"],
    ["1", "n1"],
    ["1", "n1", "h:1", "extra"],
    ["x", "n1", "h:1"],
    ["1", "bad!id", "h:1"],
    ["1", "n1", "noport"],
    ["1", "n1", ":"],
    ["1", "n1", "host:"],
    ["1", "n1", ":123"],
    ["1", "n1", "host:0"],
    ["1", "n1", "host:70000"],
    ["1", "n1", "host:12x"],
])
def test_malformed_leader_args_rejected(args):
    with pytest.raises(ReplicationError):
        protocol.parse_leader_args(args)


def test_peers_reply_round_trips():
    import json

    payload = json.dumps({
        "self": "n1", "role": "leader", "epoch": 3, "applied_seq": 9,
        "leader_id": "n1", "leader_addr": "h:1", "peers": {"n1": "h:1"},
    })
    doc = protocol.parse_peers_reply(payload)
    assert doc["epoch"] == 3
    assert doc["peers"] == {"n1": "h:1"}


@pytest.mark.parametrize("payload", [
    "",
    "not json{",
    "[1, 2]",
    "\"just a string\"",
    "{\"epoch\": -1}",
    "{\"epoch\": \"3\"}",
    f"{{\"epoch\": {1 << 70}}}",
    "{\"peers\": []}",
    "{\"peers\": {\"a\": 1}}",
    "{\"leader_id\": 7}",
])
def test_malformed_peers_replies_rejected(payload):
    with pytest.raises(ReplicationError):
        protocol.parse_peers_reply(payload)


def test_election_token_fuzz_only_replication_errors():
    """Random token soup through every line parser: each call returns a
    well-typed tuple or raises ReplicationError — nothing else."""
    rng = random.Random(16)
    alphabet = (
        "abcXYZ0189_.-!/:{}[]\"'\\ \t\x00\xff"
    )
    parsers = (
        protocol.parse_elect_args,
        protocol.parse_vote_reply,
        protocol.parse_leader_args,
    )
    for _ in range(400):
        tokens = [
            "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 12)))
            for _ in range(rng.randint(0, 5))
        ]
        for parser in parsers:
            try:
                parser(tokens)
            except ReplicationError:
                pass
    for _ in range(200):
        payload = "".join(
            rng.choice(alphabet) for _ in range(rng.randint(0, 60))
        )
        try:
            doc = protocol.parse_peers_reply(payload)
            assert isinstance(doc, dict)
        except ReplicationError:
            pass
