"""Scalar/batch equivalence: ``update_batch`` == the ``update`` loop.

The batched ingestion engine promises more than statistical agreement:
for integer-representable weights the batch path must land in *exactly*
the same state as the scalar loop — same counters, same offset, same
stream weight, same serialized bytes — on every backend, including
batches that straddle decrement passes.  These tests pin that promise
down with a Hypothesis property over adversarially small tables (where
nearly every batch triggers decrements) and with deterministic Zipf
workloads.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from helpers import batch_feed, scalar_feed
from repro.core.frequent_items import FrequentItemsSketch
from repro.errors import InvalidUpdateError
from repro.streams.zipf import ZipfianStream
from repro.table import BACKEND_NAMES

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")


updates_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),      # small universe: heavy churn
        st.integers(min_value=1, max_value=50),      # integer weights: exact sums
    ),
    min_size=0,
    max_size=400,
)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@settings(deadline=None, max_examples=25)
@given(updates=updates_strategy, k=st.integers(2, 12), chunk=st.integers(1, 97))
def test_batch_equals_scalar_bytes(backend, updates, k, chunk):
    updates = [(item, float(weight)) for item, weight in updates]
    scalar = scalar_feed(k, backend, seed=5, updates=updates)
    batched = batch_feed(k, backend, seed=5, updates=updates, chunk=chunk)
    assert scalar.to_bytes() == batched.to_bytes()
    assert scalar.stats.as_dict() == batched.stats.as_dict()


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_batch_equals_scalar_on_zipf_with_decrements(backend):
    """A workload guaranteed to run many decrement passes (k << uniques)."""
    stream = ZipfianStream(
        8_000, universe=3_000, alpha=1.05, seed=11, weight_low=1, weight_high=10_000
    )
    k = 64
    scalar = FrequentItemsSketch(k, backend=backend, seed=11)
    for item, weight in stream:
        scalar.update(item, weight)
    assert scalar.stats.decrements > 10  # the interesting regime
    batched = FrequentItemsSketch(k, backend=backend, seed=11)
    for items, weights in stream.batches(batch_size=1024):
        batched.update_batch(items, weights)
    assert scalar.to_bytes() == batched.to_bytes()
    assert scalar.stats.as_dict() == batched.stats.as_dict()
    # Round-trip stays operational and equal.
    assert FrequentItemsSketch.from_bytes(batched.to_bytes()).to_bytes() == (
        scalar.to_bytes()
    )


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_batch_unit_weights_default(backend):
    items = np.array([3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5], dtype=np.uint64)
    batched = FrequentItemsSketch(8, backend=backend, seed=2)
    batched.update_batch(items)
    scalar = FrequentItemsSketch(8, backend=backend, seed=2)
    for item in items.tolist():
        scalar.update(item, 1.0)
    assert scalar.to_bytes() == batched.to_bytes()


def test_batch_validation():
    sketch = FrequentItemsSketch(8, seed=0)
    with pytest.raises(InvalidUpdateError):
        sketch.update_batch(np.array([1, 2]), np.array([1.0, 0.0]))
    with pytest.raises(InvalidUpdateError):
        sketch.update_batch(np.array([1, 2]), np.array([1.0]))
    with pytest.raises(InvalidUpdateError):
        sketch.update_batch(np.array([[1, 2]]), np.array([[1.0, 1.0]]))
    # Nothing was ingested by the failed calls.
    assert sketch.is_empty()
    sketch.update_batch(np.array([], dtype=np.uint64))  # empty batch is a no-op
    assert sketch.is_empty()


def test_batch_accepts_plain_sequences():
    sketch = FrequentItemsSketch(8, seed=3)
    sketch.update_batch([1, 2, 1], [2.0, 3.0, 4.0])
    assert sketch.estimate(1) == 6.0
    assert sketch.stream_weight == 9.0


def test_batch_large_ids_survive_list_conversion():
    """Regression: ids above 2**53 must not round-trip through float64."""
    big = (1 << 64) - 1
    sketch = FrequentItemsSketch(8, seed=3)
    sketch.update_batch([big, 5, big], [1.0, 2.0, 3.0])
    assert sketch.estimate(big) == 4.0
    assert sketch.estimate(5) == 2.0
    with pytest.raises(InvalidUpdateError):
        sketch.update_batch([-1])
    with pytest.raises(InvalidUpdateError):
        sketch.update_batch([1 << 64])
    with pytest.raises(InvalidUpdateError):
        sketch.update_batch(np.array([-1, 2], dtype=np.int64))


def test_batch_rejects_float_item_ids():
    sketch = FrequentItemsSketch(8, seed=3)
    with pytest.raises(InvalidUpdateError):
        sketch.update_batch(np.array([1.0, 2.0]))  # float dtype array
    with pytest.raises(InvalidUpdateError):
        sketch.update_batch([1.5, 2])  # non-integral value in a list
    assert sketch.is_empty()


def test_columnar_merge_equals_per_entry_ingest():
    """merge() on the columnar backend takes the bulk path; it must stay
    entry-for-entry identical to the generic _ingest loop."""
    donor = FrequentItemsSketch(32, backend="columnar", seed=9)
    for items, weights in ZipfianStream(
        2_000, universe=500, alpha=1.1, seed=21, weight_low=1, weight_high=50
    ).batches():
        donor.update_batch(items, weights)
    base = FrequentItemsSketch(16, backend="columnar", seed=10)
    base.update_batch(np.arange(200, dtype=np.uint64))
    merged = base.copy()
    merged.merge(donor)
    # Replay what Algorithm 5 specifies, on an identical copy: same
    # shuffle (the copy shares the PRNG state), then per-entry ingest.
    reference = base.copy()
    entries = list(donor._store.items())
    order = np.random.Generator(
        np.random.PCG64(reference._rng.next_u64())
    ).permutation(len(entries))
    for index in order:
        item, count = entries[index]
        reference._ingest(item, count)
    reference._offset += donor.maximum_error
    reference._stream_weight += donor.stream_weight
    assert merged.to_bytes() == reference.to_bytes()
    assert merged.stats.as_dict() == reference.stats.as_dict()


def test_mixin_batch_rejects_bad_weights_without_partial_ingest():
    """Order-sensitive baselines validate the whole batch up front."""
    from repro.baselines import CountMinSketch

    sketch = CountMinSketch(4, 256, seed=5, conservative=True)
    before = sketch._table.copy()
    with pytest.raises(InvalidUpdateError):
        sketch.update_batch(np.array([1, 2, 3]), np.array([1.0, 2.0, -1.0]))
    assert np.array_equal(sketch._table, before)
    assert sketch.stream_weight == 0.0


def test_update_all_accepts_bare_items_pairs_and_updates():
    """Regression: update_all crashed on bare item ids despite its docs."""
    from repro.types import StreamUpdate

    sketch = FrequentItemsSketch(8, seed=4)
    sketch.update_all([7, 7, (8, 2.5), StreamUpdate(9, 1.5), 7])
    assert sketch.estimate(7) == 3.0
    assert sketch.estimate(8) == 2.5
    assert sketch.estimate(9) == 1.5
    with pytest.raises(InvalidUpdateError):
        sketch.update_all([(1, -2.0)])


# -- window boundaries -------------------------------------------------------
# update_batch_validated splits big batches into windows of
# max(4096, 8k); the split must be invisible: batches of exactly
# `window`, `window + 1`, and `2 * window` updates land bit-identically
# to the unwindowed scalar loop — serialized bytes AND the PRNG state,
# so every future sampling decision agrees too.


def _window_workload(total, seed):
    stream = ZipfianStream(
        total, universe=total // 4, alpha=1.05, seed=seed,
        weight_low=1, weight_high=500,
    )
    items, weights = [], []
    for batch_items, batch_weights in stream.batches(batch_size=total):
        items.append(batch_items)
        weights.append(batch_weights)
    return np.concatenate(items), np.concatenate(weights)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("extra", [0, 1, 4096])
def test_window_boundary_bit_identical(backend, extra):
    k = 16  # window = max(4096, 8 * 16) = 4096
    window = 4096
    total = window + extra
    items, weights = _window_workload(total, seed=31 + extra)
    scalar = FrequentItemsSketch(k, backend=backend, seed=6)
    for item, weight in zip(items.tolist(), weights.tolist()):
        scalar.update(item, weight)
    assert scalar.stats.decrements > 0  # boundary straddles decrements
    batched = FrequentItemsSketch(k, backend=backend, seed=6)
    batched.update_batch(items, weights)
    assert scalar.to_bytes() == batched.to_bytes()
    assert scalar._rng.getstate() == batched._rng.getstate()
    assert scalar.stats.as_dict() == batched.stats.as_dict()


# -- stream-weight accumulation ---------------------------------------------
# The exactness contract: integer-representable weights sum exactly (any
# order), so batch and scalar stream weights are bit-identical; for
# fractional weights the batch path promises pairwise-summation accuracy
# (O(eps log n) relative error vs. the exact sum), never the naive
# left-to-right drift.


def test_stream_weight_exact_for_integer_weights_near_2_53():
    items = np.arange(4_000, dtype=np.uint64)
    weights = np.full(4_000, 1.0)
    weights[0] = float(1 << 50)  # huge + many small, still integer-exact
    sketch = FrequentItemsSketch(64, backend="columnar", seed=2)
    sketch.update_batch(items, weights)
    scalar = FrequentItemsSketch(64, backend="columnar", seed=2)
    for item, weight in zip(items.tolist(), weights.tolist()):
        scalar.update(item, weight)
    assert sketch.stream_weight == scalar.stream_weight == float((1 << 50) + 3_999)


def test_stream_weight_fractional_drift_is_bounded():
    """Rejects silent drift: the batched sum must stay within the
    documented pairwise-summation bound of the exactly-rounded sum, on a
    workload built to expose naive left-to-right accumulation."""
    import math

    n = 4_096
    items = np.arange(n, dtype=np.uint64)
    # One huge weight followed by many tiny ones: a naive running sum
    # absorbs none of the tail; pairwise summation keeps it.
    weights = np.full(n, 0.125)
    weights[0] = 2.0**53
    sketch = FrequentItemsSketch(64, backend="columnar", seed=2)
    sketch.update_batch(items, weights)
    exact = math.fsum(weights.tolist())
    naive = 0.0
    for w in weights.tolist():
        naive += w
    assert naive != exact  # the workload really is adversarial
    assert sketch.stream_weight == pytest.approx(exact, rel=1e-12, abs=0.0)
    # And across windows the per-window sums accumulate without widening
    # the bound catastrophically.
    big = FrequentItemsSketch(64, backend="columnar", seed=2)
    reps = np.tile(weights, 4)
    big.update_batch(np.tile(items, 4), reps)
    assert big.stream_weight == pytest.approx(math.fsum(reps.tolist()), rel=1e-12)
