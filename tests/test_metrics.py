"""Metrics: error measures, bound checkers, space models, op stats."""

import pytest

from repro.errors import InvalidParameterError
from repro.metrics import OpStats, space_model_bytes
from repro.metrics.accuracy import (
    BoundCheck,
    check_merge_bound,
    check_tail_bound,
    max_error,
    max_underestimate,
    mean_absolute_error,
)
from repro.metrics.heavy_hitters import check_phi_epsilon, hh_precision_recall
from repro.metrics.space import counters_for_equal_space, merge_scratch_bytes
from repro.streams.exact import exact_counts


class _FixedEstimator:
    def __init__(self, mapping):
        self._mapping = mapping

    def estimate(self, item):
        return self._mapping.get(item, 0.0)


def test_error_measures():
    exact = exact_counts([(1, 10.0), (2, 5.0), (3, 1.0)])
    summary = _FixedEstimator({1: 8.0, 2: 6.0})
    assert max_error(summary, exact) == pytest.approx(2.0)
    assert max_underestimate(summary, exact) == pytest.approx(2.0)
    assert mean_absolute_error(summary, exact) == pytest.approx((2 + 1 + 1) / 3)
    # Callables work too.
    assert max_error(lambda item: 0.0, exact) == 10.0


def test_error_measures_empty_truth():
    exact = exact_counts([])
    assert max_error(lambda item: 0.0, exact) == 0.0
    assert mean_absolute_error(lambda item: 0.0, exact) == 0.0


def test_bound_check():
    check = BoundCheck(observed=5.0, bound=10.0)
    assert check.holds
    assert not BoundCheck(11.0, 10.0).holds


def test_check_tail_bound():
    exact = exact_counts([(1, 100.0), (2, 10.0), (3, 10.0)])
    summary = _FixedEstimator({1: 95.0, 2: 8.0, 3: 8.0})
    check = check_tail_bound(summary, exact, j=1, k_star=3.0)
    assert check.bound == pytest.approx(20.0 / 2.0)
    assert check.holds
    with pytest.raises(InvalidParameterError):
        check_tail_bound(summary, exact, j=5, k_star=3.0)


def test_check_merge_bound():
    exact = exact_counts([(1, 100.0), (2, 50.0)])
    summary = _FixedEstimator({1: 90.0, 2: 45.0})
    check = check_merge_bound(summary, exact, counter_sum=135.0, k_star=1.0)
    assert check.bound == pytest.approx(15.0)
    assert check.holds
    with pytest.raises(InvalidParameterError):
        check_merge_bound(summary, exact, 10.0, 0.0)


def test_hh_precision_recall():
    exact = exact_counts([(1, 60.0), (2, 30.0), (3, 10.0)])
    quality = hh_precision_recall([1, 3], exact, phi=0.25)
    assert quality.true_positives == 1
    assert quality.false_positives == 1
    assert quality.false_negatives == 1
    assert quality.precision == 0.5
    assert quality.recall == 0.5
    assert 0 < quality.f1 <= 1.0
    perfect = hh_precision_recall([1, 2], exact, phi=0.25)
    assert perfect.precision == perfect.recall == 1.0
    empty = hh_precision_recall([], exact, phi=0.99)
    assert empty.precision == 1.0 and empty.recall == 1.0


def test_check_phi_epsilon():
    exact = exact_counts([(1, 60.0), (2, 30.0), (3, 10.0)])
    assert check_phi_epsilon([1, 2], exact, phi=0.25, epsilon=0.05)
    assert not check_phi_epsilon([1], exact, phi=0.25, epsilon=0.05)  # misses 2
    assert not check_phi_epsilon([1, 2, 3], exact, phi=0.25, epsilon=0.05)  # 3 too light
    with pytest.raises(InvalidParameterError):
        check_phi_epsilon([1], exact, phi=0.1, epsilon=0.2)


def test_space_models_ordering():
    k = 4096
    ours = space_model_bytes("smed", k)
    assert space_model_bytes("smin", k) == ours
    assert space_model_bytes("rbmc", k) == ours
    assert space_model_bytes("med", k) == ours + 8 * k
    assert space_model_bytes("mhe", k) > ours
    assert space_model_bytes("ssl", k) > ours
    with pytest.raises(InvalidParameterError):
        space_model_bytes("nope", k)
    with pytest.raises(InvalidParameterError):
        space_model_bytes("smed", 0)


def test_paper_24k_accounting():
    k = 24_576  # 4k/3 is a power of two
    assert space_model_bytes("smed", k) == 24 * k + 64


def test_counters_for_equal_space_inverts_model():
    for algorithm in ("smed", "mhe", "med"):
        for k in (64, 500, 4096):
            budget = space_model_bytes(algorithm, k)
            recovered = counters_for_equal_space(algorithm, budget)
            assert space_model_bytes(algorithm, recovered) <= budget
            assert space_model_bytes(algorithm, recovered + 1) > budget
    with pytest.raises(InvalidParameterError):
        counters_for_equal_space("smed", 0)


def test_merge_scratch():
    assert merge_scratch_bytes("ours", 1024) == 0
    assert merge_scratch_bytes("ach13", 1024) > 0
    assert merge_scratch_bytes("hoa61", 1024) == merge_scratch_bytes("ach13", 1024)
    with pytest.raises(InvalidParameterError):
        merge_scratch_bytes("nope", 1024)


def test_op_stats_merge_and_rates():
    a = OpStats(updates=10, hits=5, decrements=2, counters_scanned=20)
    b = OpStats(updates=30, inserts=3, heap_sifts=7)
    a.merge(b)
    assert a.updates == 40
    assert a.hits == 5
    assert a.inserts == 3
    assert a.heap_sifts == 7
    assert a.decrements_per_update() == pytest.approx(2 / 40)
    assert a.amortized_scan_cost() == pytest.approx(20 / 40)
    assert OpStats().decrements_per_update() == 0.0
    assert OpStats().amortized_scan_cost() == 0.0
    assert "updates" in a.as_dict()
