"""Binary serialization: round trips, format validation, corruption."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ExactKthLargestPolicy,
    FrequentItemsSketch,
    GlobalMinPolicy,
    SampleQuantilePolicy,
    SerializationError,
)
from repro.core.serialize import sketch_from_bytes, sketch_to_bytes


def _filled_sketch(policy=None, backend="dict", seed=1):
    sketch = FrequentItemsSketch(16, policy=policy, backend=backend, seed=seed)
    for item in range(200):
        sketch.update(item % 40, float(item % 7 + 1))
    return sketch


def test_roundtrip_preserves_summary_state():
    sketch = _filled_sketch()
    restored = sketch_from_bytes(sketch_to_bytes(sketch))
    assert restored.max_counters == sketch.max_counters
    assert restored.backend == sketch.backend
    assert restored.stream_weight == sketch.stream_weight
    assert restored.maximum_error == sketch.maximum_error
    assert sorted(restored.to_rows()) == sorted(sketch.to_rows())


def test_roundtrip_each_policy():
    for policy in (
        SampleQuantilePolicy(0.25, 512),
        ExactKthLargestPolicy(0.4),
        GlobalMinPolicy(),
    ):
        sketch = _filled_sketch(policy=policy)
        restored = sketch_from_bytes(sketch_to_bytes(sketch))
        assert type(restored.policy) is type(policy)
        if isinstance(policy, SampleQuantilePolicy):
            assert restored.policy.quantile == policy.quantile
            assert restored.policy.sample_size == policy.sample_size
        if isinstance(policy, ExactKthLargestPolicy):
            assert restored.policy.fraction == policy.fraction


def test_roundtrip_probing_backend():
    sketch = _filled_sketch(backend="probing")
    restored = sketch_from_bytes(sketch_to_bytes(sketch))
    assert restored.backend == "probing"
    assert sorted(restored.to_rows()) == sorted(sketch.to_rows())


def test_roundtrip_columnar_backend():
    sketch = _filled_sketch(backend="columnar")
    restored = sketch_from_bytes(sketch_to_bytes(sketch))
    assert restored.backend == "columnar"
    assert sorted(restored.to_rows()) == sorted(sketch.to_rows())
    # The sorted-array layout serializes canonically: a round trip is
    # byte-stable.
    assert sketch_to_bytes(restored) == sketch_to_bytes(sketch)


def test_empty_sketch_roundtrip():
    sketch = FrequentItemsSketch(8, seed=2)
    restored = sketch_from_bytes(sketch_to_bytes(sketch))
    assert restored.is_empty()
    assert restored.max_counters == 8


def test_restored_sketch_remains_usable():
    sketch = _filled_sketch()
    restored = sketch_from_bytes(sketch_to_bytes(sketch))
    restored.update(999, 5.0)
    assert restored.estimate(999) >= 5.0
    other = _filled_sketch(seed=3)
    restored.merge(other)
    assert restored.stream_weight == pytest.approx(
        sketch.stream_weight + 5.0 + other.stream_weight
    )


def test_bad_magic_rejected():
    blob = bytearray(sketch_to_bytes(_filled_sketch()))
    blob[0] ^= 0xFF
    with pytest.raises(SerializationError):
        sketch_from_bytes(bytes(blob))


def test_truncated_blob_rejected():
    blob = sketch_to_bytes(_filled_sketch())
    with pytest.raises(SerializationError):
        sketch_from_bytes(blob[: len(blob) - 7])
    with pytest.raises(SerializationError):
        sketch_from_bytes(blob[:10])


def test_extended_blob_rejected():
    blob = sketch_to_bytes(_filled_sketch())
    with pytest.raises(SerializationError):
        sketch_from_bytes(blob + b"extra")


def test_methods_delegate():
    sketch = _filled_sketch()
    assert sketch.to_bytes() == sketch_to_bytes(sketch)
    assert sorted(FrequentItemsSketch.from_bytes(sketch.to_bytes()).to_rows()) == \
        sorted(sketch.to_rows())


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 64) - 1),
            st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
        ),
        max_size=60,
    )
)
def test_roundtrip_random_contents(updates):
    sketch = FrequentItemsSketch(12, backend="dict", seed=4)
    for item, weight in updates:
        sketch.update(item, weight)
    restored = sketch_from_bytes(sketch_to_bytes(sketch))
    assert sorted(restored.to_rows()) == sorted(sketch.to_rows())
    assert restored.stream_weight == pytest.approx(sketch.stream_weight)
