"""IndexedMinHeap: invariants under all operation mixes."""

import random

import pytest

from repro.baselines.heap import IndexedMinHeap
from repro.errors import InvalidParameterError


def test_push_and_min():
    heap = IndexedMinHeap()
    heap.push(1, 5.0)
    heap.push(2, 3.0)
    heap.push(3, 8.0)
    assert heap.min_item() == 2
    assert heap.min_value() == 3.0
    assert len(heap) == 3
    assert 2 in heap
    assert 9 not in heap
    assert heap.value_of(3) == 8.0
    assert heap.value_of(9) is None


def test_empty_heap_errors():
    heap = IndexedMinHeap()
    with pytest.raises(InvalidParameterError):
        heap.min_value()
    with pytest.raises(InvalidParameterError):
        heap.min_item()
    with pytest.raises(InvalidParameterError):
        heap.pop_min()
    with pytest.raises(InvalidParameterError):
        heap.replace_min(1, 1.0)


def test_duplicate_push_rejected():
    heap = IndexedMinHeap()
    heap.push(1, 1.0)
    with pytest.raises(InvalidParameterError):
        heap.push(1, 2.0)


def test_increase_key_moves_item_down():
    heap = IndexedMinHeap()
    for item, value in [(1, 1.0), (2, 2.0), (3, 3.0)]:
        heap.push(item, value)
    heap.increase_key(1, 10.0)
    assert heap.min_item() == 2
    assert heap.value_of(1) == 10.0
    assert heap.check_invariant()


def test_increase_key_validation():
    heap = IndexedMinHeap()
    heap.push(1, 5.0)
    with pytest.raises(InvalidParameterError):
        heap.increase_key(2, 1.0)  # absent
    with pytest.raises(InvalidParameterError):
        heap.increase_key(1, 4.0)  # lowering


def test_replace_min_evicts_root():
    heap = IndexedMinHeap()
    for item, value in [(1, 1.0), (2, 2.0), (3, 3.0)]:
        heap.push(item, value)
    evicted = heap.replace_min(99, 2.5)
    assert evicted == 1
    assert 1 not in heap
    assert heap.value_of(99) == 2.5
    assert heap.min_item() == 2
    assert heap.check_invariant()
    with pytest.raises(InvalidParameterError):
        heap.replace_min(2, 7.0)  # already present


def test_pop_min_drains_in_order():
    heap = IndexedMinHeap()
    values = [9.0, 1.0, 7.0, 3.0, 5.0, 2.0]
    for item, value in enumerate(values):
        heap.push(item, value)
    drained = [heap.pop_min()[1] for _ in range(len(values))]
    assert drained == sorted(values)
    assert len(heap) == 0


def test_sift_steps_counted():
    heap = IndexedMinHeap()
    for item in range(64):
        heap.push(item, float(64 - item))
    assert heap.sift_steps > 0


def test_random_operation_fuzz():
    random.seed(12)
    heap = IndexedMinHeap()
    model: dict[int, float] = {}
    for step in range(3000):
        action = random.random()
        if action < 0.45 or not model:
            item = random.randrange(200)
            if item not in model:
                value = random.uniform(0, 100)
                heap.push(item, value)
                model[item] = value
        elif action < 0.75:
            item = random.choice(list(model))
            bump = random.uniform(0, 50)
            heap.increase_key(item, model[item] + bump)
            model[item] += bump
        elif action < 0.9:
            item, value = heap.pop_min()
            assert value == pytest.approx(min(model.values()))
            del model[item]
        else:
            new_item = 1000 + step
            old_min = min(model.values())
            victim = heap.replace_min(new_item, old_min + 1.0)
            assert model[victim] == pytest.approx(old_min)
            del model[victim]
            model[new_item] = old_min + 1.0
        if step % 250 == 0:
            assert heap.check_invariant()
            assert len(heap) == len(model)
    assert heap.check_invariant()
