"""The shared-memory frame ring: layout, SPSC protocol, zero-copy views.

All in-process (producer and consumer are the same process mapping the
same segment) — the cross-process behaviour rides on the cluster suites.
The byte-offset test pins the RSHM layout documented in
``docs/serialization.md``: moving a field is a format break and must
show up here.
"""

import numpy as np
import pytest

from repro.errors import ClusterError, InvalidParameterError
from repro.service.frames import (
    RING_HEADER_SIZE,
    RING_MAGIC,
    RING_VERSION,
    SLOT_HEADER_SIZE,
    SharedFrameRing,
    ring_segment_size,
    shared_memory_available,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)


@pytest.fixture
def ring():
    ring = SharedFrameRing.create(slots=4, slot_capacity=8)
    yield ring
    ring.close()


def frame(n, tenant=1, start=0):
    items = np.arange(start, start + n, dtype=np.uint64)
    weights = np.linspace(1.0, 2.0, n)
    return tenant, items, weights


def test_segment_size():
    assert ring_segment_size(4, 8) == (
        RING_HEADER_SIZE + 4 * (SLOT_HEADER_SIZE + 16 * 8)
    )


def test_roundtrip_one_frame(ring):
    tenant, items, weights = frame(5, tenant=3)
    seq = ring.write(tenant, items, weights)
    assert seq == 1
    got = ring.peek()
    assert got is not None
    got_seq, got_tenant, got_items, got_weights = got
    assert (got_seq, got_tenant) == (1, 3)
    np.testing.assert_array_equal(got_items, items)
    np.testing.assert_array_equal(got_weights, weights)
    ring.commit(1)
    assert ring.peek() is None
    assert ring.consumed_seq() == 1


def test_empty_ring_peeks_none(ring):
    assert ring.peek() is None
    assert ring.produced_seq() == 0
    assert ring.consumed_seq() == 0


def test_fill_drain_wraparound(ring):
    # Three full laps around a 4-slot ring.
    next_read = 1
    for seq in range(1, 13):
        assert ring.has_space()
        ring.write(*frame(seq % 8 + 1, tenant=seq, start=seq))
        if seq % 2 == 0:  # drain two at a time
            for _ in range(2):
                got = ring.peek()
                assert got is not None and got[0] == next_read
                assert got[1] == next_read  # tenant stamped per frame
                ring.commit(next_read)
                next_read += 1
    assert ring.produced_seq() == 12
    assert ring.consumed_seq() == 12


def test_backpressure_when_full(ring):
    for seq in range(1, 5):
        ring.write(*frame(2, start=seq))
    assert not ring.has_space()
    ring.commit(ring.peek()[0])
    assert ring.has_space()


def test_out_of_order_commit_rejected(ring):
    ring.write(*frame(2))
    ring.write(*frame(2))
    with pytest.raises(ClusterError):
        ring.commit(2)


def test_oversized_frame_rejected(ring):
    tenant, items, weights = frame(9)
    with pytest.raises(InvalidParameterError):
        ring.write(tenant, items, weights)


def test_degenerate_geometry_rejected():
    with pytest.raises(InvalidParameterError):
        SharedFrameRing.create(slots=0, slot_capacity=8)
    with pytest.raises(InvalidParameterError):
        SharedFrameRing.create(slots=4, slot_capacity=0)


def test_attach_sees_writes(ring):
    tenant, items, weights = frame(4, tenant=7)
    ring.write(tenant, items, weights)
    attached = SharedFrameRing.attach(ring.name)
    try:
        assert attached.slots == ring.slots
        assert attached.slot_capacity == ring.slot_capacity
        got = attached.peek()
        assert got is not None and got[1] == 7
        np.testing.assert_array_equal(got[2], items)
        attached.commit(got[0])
        # The consumed watermark is visible to the creator immediately.
        assert ring.consumed_seq() == 1
    finally:
        # Views must die before the unmap (close() would otherwise have
        # to leak the mapping) — exactly the discipline the worker keeps.
        del got
        attached.close()


def test_attach_rejects_foreign_segment():
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(create=True, size=256)
    try:
        with pytest.raises(ClusterError):
            SharedFrameRing.attach(segment.name)
    finally:
        segment.close()
        segment.unlink()


def test_views_are_zero_copy(ring):
    tenant, items, weights = frame(3)
    ring.write(tenant, items, weights)
    got = ring.peek()
    assert got[2].base is not None  # a view into the segment, not a copy
    assert got[3].base is not None
    assert not got[2].flags.owndata
    assert not got[3].flags.owndata


def test_documented_byte_offsets(ring):
    """Pin the RSHM byte layout of docs/serialization.md, offset by
    offset, against a raw view of the segment."""
    tenant, items, weights = frame(3, tenant=0xABCD)
    ring.write(tenant, items, weights)
    raw = bytes(ring._segment.buf)

    # Ring header.
    assert raw[0:4] == RING_MAGIC                                  # magic @ 0
    assert int.from_bytes(raw[4:8], "little") == RING_VERSION      # version @ 4
    assert int.from_bytes(raw[8:12], "little") == ring.slots       # slots @ 8
    assert int.from_bytes(raw[12:16], "little") == ring.slot_capacity  # @ 12
    assert int.from_bytes(raw[16:24], "little") == 1               # produced @ 16
    assert int.from_bytes(raw[24:32], "little") == 0               # consumed @ 24

    # Slot 0 (sequence 1): header then payload arrays.
    base = RING_HEADER_SIZE
    assert int.from_bytes(raw[base : base + 8], "little") == 1     # frame_seq @ +0
    assert int.from_bytes(raw[base + 8 : base + 12], "little") == 0xABCD  # tenant @ +8
    assert int.from_bytes(raw[base + 12 : base + 16], "little") == 3      # count @ +12
    payload = base + SLOT_HEADER_SIZE
    np.testing.assert_array_equal(
        np.frombuffer(raw, dtype="<u8", count=3, offset=payload), items
    )
    np.testing.assert_array_equal(
        np.frombuffer(
            raw, dtype="<f8", count=3,
            offset=payload + 8 * ring.slot_capacity,
        ),
        weights,
    )

    # Slot 1 begins one header + one payload stride later.
    slot_stride = SLOT_HEADER_SIZE + 16 * ring.slot_capacity
    ring.write(*frame(2, tenant=5))
    raw = bytes(ring._segment.buf)
    base1 = RING_HEADER_SIZE + slot_stride
    assert int.from_bytes(raw[base1 : base1 + 8], "little") == 2
    assert int.from_bytes(raw[base1 + 8 : base1 + 12], "little") == 5
