"""RandomAdmissionSpaceSaving: the Section 5 Sivaraman et al. variant."""

import pytest

from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.extensions import RandomAdmissionSpaceSaving
from repro.streams.exact import ExactCounter
from repro.streams.zipf import ZipfianStream


def test_validation():
    with pytest.raises(InvalidParameterError):
        RandomAdmissionSpaceSaving(0)
    with pytest.raises(InvalidParameterError):
        RandomAdmissionSpaceSaving(8, sample_size=0)
    rap = RandomAdmissionSpaceSaving(8)
    with pytest.raises(InvalidUpdateError):
        rap.update(1, -1.0)


def test_exact_under_capacity():
    rap = RandomAdmissionSpaceSaving(8, seed=1)
    for item, weight in [(1, 5.0), (2, 3.0), (1, 1.0)]:
        rap.update(item, weight)
    assert rap.estimate(1) == 6.0
    assert rap.estimate(2) == 3.0
    assert rap.estimate(9) == 0.0
    assert rap.num_active == 2


def test_takeover_inherits_sampled_counter():
    rap = RandomAdmissionSpaceSaving(2, sample_size=2, seed=2)
    rap.update(1, 10.0)
    rap.update(2, 20.0)
    rap.update(3, 5.0)
    # Item 3 took over one of the two counters; its value is the victim's
    # plus 5, and exactly one of items 1/2 survived.
    assert rap.num_active == 2
    assert rap.estimate(3) in (15.0, 25.0)
    assert (rap.estimate(1) == 0.0) != (rap.estimate(2) == 0.0)


def test_counter_sum_equals_stream_weight():
    """Takeovers only ever move weight — the SS mass invariant holds."""
    rap = RandomAdmissionSpaceSaving(16, sample_size=4, seed=3)
    total = 0.0
    for index in range(5_000):
        weight = float(index % 11 + 1)
        rap.update(index % 300, weight)
        total += weight
    assert sum(value for _item, value in rap.items()) == pytest.approx(total)


def test_larger_sample_closer_to_exact_ss(zipf_weighted_stream, zipf_weighted_exact):
    """With ell -> k the sampled min approaches the true min, and the
    top-item estimate approaches the exact SS overestimate-bounded one."""
    def worst_top_error(sample_size):
        rap = RandomAdmissionSpaceSaving(64, sample_size=sample_size, seed=4)
        for item, weight in zipf_weighted_stream:
            rap.update(item, weight)
        return max(
            abs(rap.estimate(item) - frequency)
            for item, frequency in zipf_weighted_exact.top_k(5)
        )

    assert worst_top_error(32) <= worst_top_error(1) * 1.5 + 1e-6


def test_constant_memory_accesses():
    rap = RandomAdmissionSpaceSaving(256, sample_size=2, seed=5)
    for index in range(10_000):
        rap.update(index, 1.0)  # all misses after fill: every update samples
    # Each takeover touches exactly ell counters.
    assert rap.stats.counters_scanned <= 2 * rap.stats.updates


def test_heavy_item_survives(zipf_weighted_stream, zipf_weighted_exact):
    rap = RandomAdmissionSpaceSaving(128, sample_size=2, seed=6)
    for item, weight in zipf_weighted_stream:
        rap.update(item, weight)
    top_item, top_frequency = zipf_weighted_exact.top_k(1)[0]
    assert rap.estimate(top_item) >= top_frequency * 0.5


def test_deterministic_per_seed(zipf_weighted_stream):
    def build():
        rap = RandomAdmissionSpaceSaving(32, sample_size=2, seed=9)
        for item, weight in zipf_weighted_stream[:5_000]:
            rap.update(item, weight)
        return dict(rap.items())

    assert build() == build()
