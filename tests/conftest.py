"""Shared fixtures: canned streams and ground truths, built once."""

from __future__ import annotations

import pytest

from repro.streams.caida import SyntheticPacketTrace
from repro.streams.exact import ExactCounter
from repro.streams.zipf import ZipfianStream


@pytest.fixture(scope="session")
def zipf_unit_stream():
    """20k unit-weight updates, Zipf(1.2) over 5k items."""
    return list(ZipfianStream(20_000, universe=5_000, alpha=1.2, seed=101))


@pytest.fixture(scope="session")
def zipf_weighted_stream():
    """20k weighted updates (U[1,1000] weights), Zipf(1.1) over 5k items."""
    return list(
        ZipfianStream(
            20_000, universe=5_000, alpha=1.1, seed=202,
            weight_low=1, weight_high=1_000,
        )
    )


@pytest.fixture(scope="session")
def packet_stream():
    """A small synthetic packet trace (items = IPs, weights = bits)."""
    return list(SyntheticPacketTrace(15_000, unique_sources=3_000, seed=303))


@pytest.fixture(scope="session")
def zipf_unit_exact(zipf_unit_stream):
    exact = ExactCounter()
    exact.update_all(zipf_unit_stream)
    return exact


@pytest.fixture(scope="session")
def zipf_weighted_exact(zipf_weighted_stream):
    exact = ExactCounter()
    exact.update_all(zipf_weighted_stream)
    return exact


@pytest.fixture(scope="session")
def packet_exact(packet_stream):
    exact = ExactCounter()
    exact.update_all(packet_stream)
    return exact
