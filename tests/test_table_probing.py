"""LinearProbingTable: unit tests plus a hypothesis stateful model check.

The stateful test drives the table and a plain dict through the same
operation sequences — insert, add_to, get, decrement-and-purge — and
asserts the contents match after every step.  This is the strongest
guard on the backward-shift deletion logic of Section 2.3.3.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import InvalidParameterError, TableFullError
from repro.prng import Xoroshiro128PlusPlus
from repro.table.accounting import (
    next_power_of_two,
    probing_table_bytes,
    table_length,
)
from repro.table.probing import LinearProbingTable


def test_length_is_power_of_two_and_load_bounded():
    for capacity in (1, 2, 3, 5, 64, 100, 1000):
        table = LinearProbingTable(capacity)
        assert table.length & (table.length - 1) == 0
        assert capacity / table.length <= 0.75


def test_paper_length_formula():
    # k = 3 * 2^m makes 4k/3 an exact power of two (paper Section 2.3.3).
    assert table_length(3 * 1024) == 4096
    assert table_length(24_576) == 32_768
    assert next_power_of_two(1) == 1
    assert next_power_of_two(5) == 8


def test_space_model_24k_bytes():
    # 18 bytes/slot * 4k/3 slots = 24k bytes (+ header), for aligned k.
    k = 24_576
    assert probing_table_bytes(k) == 24 * k + 64


def test_insert_get_roundtrip():
    table = LinearProbingTable(16, hash_seed=1)
    table.insert(42, 7.0)
    assert table.get(42) == 7.0
    assert table.get(43) is None
    assert 42 in table
    assert 43 not in table
    assert len(table) == 1


def test_key_zero_is_a_valid_key():
    table = LinearProbingTable(4)
    table.insert(0, 3.0)
    assert table.get(0) == 3.0
    assert len(table) == 1


def test_add_to_only_hits():
    table = LinearProbingTable(8)
    assert table.add_to(5, 1.0) is False
    table.insert(5, 1.0)
    assert table.add_to(5, 2.5) is True
    assert table.get(5) == 3.5


def test_insert_duplicate_rejected():
    table = LinearProbingTable(8)
    table.insert(5, 1.0)
    with pytest.raises(InvalidParameterError):
        table.insert(5, 2.0)


def test_table_full_error():
    table = LinearProbingTable(3)
    for key in range(3):
        table.insert(key, 1.0)
    with pytest.raises(TableFullError):
        table.insert(99, 1.0)


def test_put_inserts_and_overwrites():
    table = LinearProbingTable(4)
    table.put(1, 5.0)
    table.put(1, 9.0)
    assert table.get(1) == 9.0
    assert len(table) == 1


def test_adjust_and_purge():
    table = LinearProbingTable(8, hash_seed=3)
    for key, value in [(1, 5.0), (2, 2.0), (3, 9.0), (4, 2.0)]:
        table.insert(key, value)
    freed = table.decrement_and_purge(2.0)
    assert freed == 2
    assert table.get(1) == 3.0
    assert table.get(2) is None
    assert table.get(3) == 7.0
    assert table.get(4) is None
    assert len(table) == 2


def test_purge_everything():
    table = LinearProbingTable(8)
    for key in range(6):
        table.insert(key, 1.0)
    assert table.decrement_and_purge(1.0) == 6
    assert len(table) == 0
    assert all(table.get(key) is None for key in range(6))


def test_values_list_and_items():
    table = LinearProbingTable(8)
    data = {10: 1.0, 20: 2.0, 30: 3.0}
    for key, value in data.items():
        table.insert(key, value)
    assert sorted(table.values_list()) == [1.0, 2.0, 3.0]
    assert dict(table.items()) == data


def test_sample_values_from_live_counters():
    table = LinearProbingTable(16, hash_seed=2)
    for key in range(10):
        table.insert(key, float(key + 1))
    rng = Xoroshiro128PlusPlus(7)
    sample = table.sample_values(200, rng)
    assert len(sample) == 200
    assert set(sample) <= set(float(x + 1) for x in range(10))
    # With 200 draws over 10 values, each should appear at least once.
    assert len(set(sample)) == 10


def test_sample_from_empty_rejected():
    table = LinearProbingTable(4)
    with pytest.raises(InvalidParameterError):
        table.sample_values(1, Xoroshiro128PlusPlus(0))


def test_clear():
    table = LinearProbingTable(8)
    for key in range(5):
        table.insert(key, 1.0)
    table.clear()
    assert len(table) == 0
    assert table.get(0) is None
    table.insert(0, 2.0)  # usable after clear
    assert table.get(0) == 2.0


def test_probe_count_increases():
    table = LinearProbingTable(64, hash_seed=5)
    before = table.probe_count
    for key in range(48):
        table.insert(key, 1.0)
    for key in range(48):
        table.get(key)
    assert table.probe_count > before


def test_max_state_small_at_working_load():
    """Section 2.3.3: probe distances stay tiny at load 3/4."""
    table = LinearProbingTable(768, hash_seed=11)
    for key in range(768):
        table.insert(key, 1.0)
    assert table.max_state() < 64


def test_wraparound_runs():
    """Force collisions around the end of the array via tiny tables."""
    for seed in range(20):
        table = LinearProbingTable(3, hash_seed=seed)  # length 4
        table.insert(1, 1.0)
        table.insert(2, 2.0)
        table.insert(3, 3.0)
        assert (table.get(1), table.get(2), table.get(3)) == (1.0, 2.0, 3.0)
        table.adjust_all(-1.5)
        table.purge_nonpositive()
        assert table.get(1) is None
        assert table.get(2) == 0.5
        assert table.get(3) == 1.5


class TableVsDictMachine(RuleBasedStateMachine):
    """Drive the probing table and a dict through identical operations."""

    def __init__(self):
        super().__init__()
        self.capacity = 24
        self.table = LinearProbingTable(self.capacity, hash_seed=99)
        self.model: dict[int, float] = {}

    keys = st.integers(min_value=0, max_value=60)
    amounts = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)

    @rule(key=keys, value=amounts)
    def insert_or_bump(self, key, value):
        if key in self.model:
            self.table.add_to(key, value)
            self.model[key] += value
        elif len(self.model) < self.capacity:
            self.table.insert(key, value)
            self.model[key] = value

    @rule(key=keys)
    def lookup(self, key):
        got = self.table.get(key)
        expected = self.model.get(key)
        if expected is None:
            assert got is None
        else:
            assert got is not None and abs(got - expected) < 1e-9

    @rule(amount=amounts)
    def decrement_and_purge(self, amount):
        freed = self.table.decrement_and_purge(amount)
        survivors = {}
        dropped = 0
        for key, value in self.model.items():
            remaining = value - amount
            if remaining > 0:
                survivors[key] = remaining
            else:
                dropped += 1
        self.model = survivors
        assert freed == dropped

    @invariant()
    def contents_match(self):
        assert len(self.table) == len(self.model)
        got = dict(self.table.items())
        assert set(got) == set(self.model)
        for key, value in self.model.items():
            assert abs(got[key] - value) < 1e-9


TestTableVsDict = TableVsDictMachine.TestCase
TestTableVsDict.settings = settings(max_examples=60, stateful_step_count=60, deadline=None)


# -- vectorized batch operations --------------------------------------------
# get_many/add_many/insert_many are gather/scatter probe walks; they must
# visit the same slots as the scalar loops — same layout, same values,
# and (for lookups) the same probe_count, slot for slot.


def _table_pair(cls, capacity, seed, keys, values):
    vectorized = cls(capacity, hash_seed=seed)
    scalar = cls(capacity, hash_seed=seed)
    vectorized.insert_many(keys, values)
    for key, value in zip(keys.tolist(), values.tolist()):
        scalar.insert(key, value)
    return vectorized, scalar


def test_vectorized_ops_match_scalar_probing():
    import numpy as np

    rng = np.random.default_rng(11)
    for trial in range(25):
        capacity = int(rng.integers(2, 64))
        keys = rng.choice(500, size=capacity, replace=False).astype(np.uint64)
        values = rng.uniform(1.0, 9.0, size=capacity)
        vectorized, scalar = _table_pair(
            LinearProbingTable, capacity, trial, keys, values
        )
        assert vectorized._keys.tolist() == scalar._keys.tolist()
        assert vectorized._states.tolist() == scalar._states.tolist()
        assert vectorized._values.tolist() == scalar._values.tolist()
        assert vectorized.probe_count == scalar.probe_count

        queries = rng.integers(0, 600, size=80).astype(np.uint64)
        before_vec = vectorized.probe_count
        got = vectorized.get_many(queries)
        probes_vec = vectorized.probe_count - before_vec
        before_ref = scalar.probe_count
        for index, key in enumerate(queries.tolist()):
            expected = scalar.get(key)
            if expected is None:
                assert got[index] != got[index]  # NaN
            else:
                assert got[index] == expected
        assert probes_vec == scalar.probe_count - before_ref

        present = keys[: min(8, capacity)]
        deltas = rng.uniform(0.5, 2.0, size=len(present))
        vectorized.add_many(present, deltas)
        for key, delta in zip(present.tolist(), deltas.tolist()):
            assert scalar.add_to(key, delta)
        assert vectorized._values.tolist() == scalar._values.tolist()

        amount = float(np.median(values))
        assert vectorized.decrement_and_purge(amount) == scalar.decrement_and_purge(
            amount
        )
        assert vectorized._keys.tolist() == scalar._keys.tolist()
        assert vectorized._states.tolist() == scalar._states.tolist()


def test_add_many_missing_key_raises():
    import numpy as np

    table = LinearProbingTable(8, hash_seed=1)
    table.insert(1, 1.0)
    with pytest.raises(InvalidParameterError):
        table.add_many(np.array([1, 99], dtype=np.uint64), np.ones(2))


def test_insert_many_overflow_raises_before_mutation():
    import numpy as np

    table = LinearProbingTable(3, hash_seed=1)
    table.insert(1, 1.0)
    with pytest.raises(TableFullError):
        table.insert_many(np.arange(10, 13, dtype=np.uint64), np.ones(3))
    assert len(table) == 1
