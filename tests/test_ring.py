"""The consistent-hash ring: determinism, balance, minimal disruption."""

import pytest

from repro.errors import InvalidParameterError
from repro.service.ring import HashRing


def test_deterministic_across_instances():
    a = HashRing(4, vnodes=32, seed=9)
    b = HashRing(4, vnodes=32, seed=9)
    names = [f"tenant-{i}" for i in range(500)]
    assert [a.owner(n) for n in names] == [b.owner(n) for n in names]


def test_seed_changes_placement():
    names = [f"tenant-{i}" for i in range(200)]
    a = HashRing(4, seed=0)
    b = HashRing(4, seed=1)
    assert any(a.owner(n) != b.owner(n) for n in names)


def test_owner_in_range():
    ring = HashRing(3)
    for i in range(300):
        assert 0 <= ring.owner(f"t{i}") < 3


def test_single_worker_owns_everything():
    ring = HashRing(1)
    assert all(ring.owner(f"t{i}") == 0 for i in range(50))


def test_balance_within_spread():
    # With v vnodes the per-worker share concentrates around 1/N with
    # relative spread ~1/sqrt(v); at v=64, N=4 a 2x envelope is safely
    # beyond any plausible statistical excursion.
    ring = HashRing(4, vnodes=64)
    counts = ring.distribution(f"tenant-{i}" for i in range(4000))
    assert set(counts) == {0, 1, 2, 3}
    for worker, count in counts.items():
        assert 400 <= count <= 2000, (worker, counts)


def test_grow_moves_only_onto_new_worker():
    names = [f"tenant-{i}" for i in range(1000)]
    before = HashRing(4, vnodes=64, seed=3)
    after = HashRing(5, vnodes=64, seed=3)
    moved = [n for n in names if before.owner(n) != after.owner(n)]
    # Everything that moved, moved onto the new worker...
    assert all(after.owner(n) == 4 for n in moved)
    # ...and roughly 1/5 of the keyspace moved (generous envelope).
    assert 0.05 * len(names) <= len(moved) <= 0.40 * len(names)


def test_remove_worker_redistributes_only_its_keys():
    names = [f"tenant-{i}" for i in range(1000)]
    ring = HashRing(5, vnodes=64, seed=3)
    before = {n: ring.owner(n) for n in names}
    ring.remove_worker(2)
    assert ring.workers() == [0, 1, 3, 4]
    for n in names:
        owner = ring.owner(n)
        assert owner != 2
        if before[n] != 2:
            assert owner == before[n], n


def test_add_worker_idempotent():
    ring = HashRing(3, vnodes=16)
    size = len(ring)
    ring.add_worker(1)
    assert len(ring) == size


def test_vnode_count():
    ring = HashRing(3, vnodes=16)
    assert len(ring) == 3 * 16
    assert ring.num_workers == 3
    assert ring.vnodes == 16


def test_rejects_degenerate_shapes():
    with pytest.raises(InvalidParameterError):
        HashRing(0)
    with pytest.raises(InvalidParameterError):
        HashRing(2, vnodes=0)
    empty = HashRing(1)
    empty.remove_worker(0)
    with pytest.raises(InvalidParameterError):
        empty.owner("t")
