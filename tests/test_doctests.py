"""Run the executable examples embedded in docstrings.

The ``>>>`` examples in module and class docstrings are part of the
documentation deliverable; this keeps them honest.
"""

import doctest
import importlib

import pytest

MODULES_WITH_DOCTESTS = [
    "repro",
    "repro.core.frequent_items",
    "repro.core.merge",
    "repro.engine.grouping",
    "repro.engine.kernel",
    "repro.engine.query",
    "repro.extensions.decayed",
    "repro.prng.splitmix",
    "repro.prng.xoroshiro",
    "repro.service.cluster",
    "repro.service.pipeline",
    "repro.service.ring",
    "repro.sharded.partition",
    "repro.sharded.sketch",
    "repro.types",
]


@pytest.mark.parametrize("module_name", MODULES_WITH_DOCTESTS)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"


def test_doctests_actually_exist():
    """Guard against the list silently going stale."""
    total_tests = 0
    finder = doctest.DocTestFinder()
    for module_name in MODULES_WITH_DOCTESTS:
        module = importlib.import_module(module_name)
        total_tests += sum(
            len(test.examples) for test in finder.find(module)
        )
    assert total_tests >= 5
