"""Hierarchical heavy hitters over IP prefixes."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.extensions import HierarchicalHeavyHitters
from repro.extensions.hierarchical import HHHNode


def _ip(a, b, c, d):
    return (a << 24) | (b << 16) | (c << 8) | d


def test_validation():
    with pytest.raises(InvalidParameterError):
        HierarchicalHeavyHitters(16, levels=())
    with pytest.raises(InvalidParameterError):
        HierarchicalHeavyHitters(16, levels=(16, 8))  # not increasing
    with pytest.raises(InvalidParameterError):
        HierarchicalHeavyHitters(16, levels=(8, 40))  # beyond address bits
    hhh = HierarchicalHeavyHitters(16)
    with pytest.raises(InvalidUpdateError):
        hhh.update(_ip(1, 2, 3, 4), 0.0)
    with pytest.raises(InvalidUpdateError):
        hhh.update(1 << 33, 1.0)
    with pytest.raises(InvalidParameterError):
        hhh.query(0.0)


def test_cidr_rendering():
    node = HHHNode(level=24, prefix=_ip(10, 1, 2, 0) >> 8, estimate=1.0, discounted=1.0)
    assert node.cidr() == "10.1.2.0/24"
    host = HHHNode(level=32, prefix=_ip(192, 168, 0, 1), estimate=1.0, discounted=1.0)
    assert host.cidr() == "192.168.0.1/32"


def test_single_heavy_host_reported_at_every_relevant_level():
    hhh = HierarchicalHeavyHitters(64, seed=1)
    attacker = _ip(10, 0, 0, 1)
    rng = np.random.Generator(np.random.PCG64(7))
    for _ in range(5_000):
        hhh.update(attacker if rng.random() < 0.5 else int(rng.integers(0, 1 << 32)), 1.0)
    nodes = hhh.query(0.2)
    cidrs = {node.cidr() for node in nodes}
    assert "10.0.0.1/32" in cidrs
    # The /24 and up contain only the host's (discounted) traffic, so they
    # must NOT be reported as additional HHHs.
    assert "10.0.0.0/24" not in cidrs


def test_distributed_subnet_detected_only_at_aggregate_level():
    """Many lightweight hosts in one /24: no host qualifies, the subnet does."""
    hhh = HierarchicalHeavyHitters(128, seed=2)
    rng = np.random.Generator(np.random.PCG64(8))
    for _ in range(20_000):
        if rng.random() < 0.3:
            address = _ip(172, 16, 5, int(rng.integers(0, 256)))
        else:
            address = int(rng.integers(0, 1 << 32))
        hhh.update(address, 1.0)
    nodes = hhh.query(0.05)
    cidrs = {node.cidr() for node in nodes}
    assert "172.16.5.0/24" in cidrs
    assert not any(cidr.endswith("/32") and cidr.startswith("172.16.5.") for cidr in cidrs)


def test_discount_propagates_to_ancestors():
    """A heavy host inside a subnet with little other traffic: the subnet's
    discounted weight falls below threshold and is not reported."""
    hhh = HierarchicalHeavyHitters(64, seed=3)
    host = _ip(10, 1, 1, 1)
    sibling = _ip(10, 1, 1, 2)
    for _ in range(1_000):
        hhh.update(host, 1.0)
    for _ in range(50):
        hhh.update(sibling, 1.0)
    for index in range(1_000):
        hhh.update(_ip(100 + index % 100, 1, 1, 1), 1.0)
    nodes = hhh.query(0.25)
    cidrs = {node.cidr() for node in nodes}
    assert "10.1.1.1/32" in cidrs
    assert "10.1.1.0/24" not in cidrs  # only ~50 unexplained updates


def test_weighted_updates():
    hhh = HierarchicalHeavyHitters(32, seed=4)
    hhh.update(_ip(1, 2, 3, 4), 1_000.0)
    hhh.update(_ip(9, 9, 9, 9), 1.0)
    nodes = hhh.query(0.5)
    assert any(node.cidr() == "1.2.3.4/32" for node in nodes)
    assert hhh.stream_weight == pytest.approx(1_001.0)


def test_custom_levels_and_sketch_access():
    hhh = HierarchicalHeavyHitters(16, levels=(16, 32), seed=5)
    assert hhh.levels == (16, 32)
    hhh.update(_ip(10, 2, 0, 1), 5.0)
    assert hhh.sketch_at(16).stream_weight == 5.0
    assert hhh.sketch_at(32).stream_weight == 5.0
    assert hhh.space_bytes() > 0


def test_results_sorted_most_specific_first():
    hhh = HierarchicalHeavyHitters(32, seed=6)
    for _ in range(100):
        hhh.update(_ip(1, 1, 1, 1), 1.0)
        hhh.update(_ip(2, 2, 2, 2), 1.0)
    nodes = hhh.query(0.3)
    levels = [node.level for node in nodes]
    assert levels == sorted(levels, reverse=True)
