"""ColumnarCounterStore: sorted-array layout, batch ops, purge semantics."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError, TableFullError
from repro.prng import Xoroshiro128PlusPlus
from repro.table import ColumnarCounterStore, DictCounterStore, make_store


def test_make_store_dispatch():
    assert isinstance(make_store("columnar", 8), ColumnarCounterStore)
    assert isinstance(make_store("columnar", 8, seed=5), ColumnarCounterStore)


def test_basic_operations():
    store = ColumnarCounterStore(4)
    assert store.capacity == 4
    store.insert(10, 2.0)
    store.insert(3, 1.0)
    assert store.get(10) == 2.0
    assert store.get(3) == 1.0
    assert store.get(7) is None
    assert store.add_to(10, 3.0) is True
    assert store.get(10) == 5.0
    assert store.add_to(7, 1.0) is False
    assert len(store) == 2
    assert 10 in store and 7 not in store
    with pytest.raises(InvalidParameterError):
        ColumnarCounterStore(0)


def test_items_are_key_sorted_regardless_of_insert_order():
    a = ColumnarCounterStore(8)
    b = ColumnarCounterStore(8)
    pairs = [(5, 1.0), (1, 2.0), (9, 3.0), (3, 4.0)]
    for key, value in pairs:
        a.insert(key, value)
    for key, value in reversed(pairs):
        b.insert(key, value)
    assert list(a.items()) == list(b.items()) == sorted(pairs)


def test_capacity_and_duplicates():
    store = ColumnarCounterStore(2)
    store.insert(1, 1.0)
    store.insert(2, 1.0)
    with pytest.raises(TableFullError):
        store.insert(3, 1.0)
    with pytest.raises(InvalidParameterError):
        store.insert(1, 1.0)
    with pytest.raises(TableFullError):
        store.insert_many(np.array([4, 5], dtype=np.uint64), np.array([1.0, 1.0]))


def test_decrement_and_purge_vectorized():
    store = ColumnarCounterStore(8)
    for key, value in [(1, 5.0), (2, 2.0), (3, 1.0), (4, 9.0)]:
        store.insert(key, value)
    freed = store.decrement_and_purge(2.0)
    assert freed == 2
    assert dict(store.items()) == {1: 3.0, 4: 7.0}
    # Purged slots are reusable.
    store.insert(2, 1.5)
    assert dict(store.items()) == {1: 3.0, 2: 1.5, 4: 7.0}


def test_batch_operations_match_scalar():
    batch = ColumnarCounterStore(16)
    scalar = DictCounterStore(16)
    keys = np.array([8, 2, 12, 4], dtype=np.uint64)
    values = np.array([1.0, 2.0, 3.0, 4.0])
    batch.insert_many(keys, values)
    for key, value in zip(keys.tolist(), values.tolist()):
        scalar.insert(key, value)
    looked = batch.get_many(np.array([2, 5, 12], dtype=np.uint64))
    assert looked[0] == 2.0 and np.isnan(looked[1]) and looked[2] == 3.0
    batch.add_many(np.array([8, 4], dtype=np.uint64), np.array([0.5, 0.25]))
    scalar.add_to(8, 0.5)
    scalar.add_to(4, 0.25)
    assert dict(batch.items()) == dict(scalar.items())


def test_batch_operation_errors():
    store = ColumnarCounterStore(8)
    store.insert_many(np.array([1, 2], dtype=np.uint64), np.array([1.0, 2.0]))
    with pytest.raises(InvalidParameterError):
        store.add_many(np.array([1, 3], dtype=np.uint64), np.array([1.0, 1.0]))
    with pytest.raises(InvalidParameterError):
        store.insert_many(np.array([2], dtype=np.uint64), np.array([1.0]))
    with pytest.raises(InvalidParameterError):
        store.insert_many(np.array([5, 5], dtype=np.uint64), np.array([1.0, 1.0]))
    # Failed calls leave the store unchanged.
    assert dict(store.items()) == {1: 1.0, 2: 2.0}
    store.insert_many(np.array([], dtype=np.uint64), np.array([]))  # no-op
    assert len(store) == 2


def test_values_sampling_and_clear():
    store = ColumnarCounterStore(8)
    for key in range(5):
        store.insert(key, float(key + 1))
    assert sorted(store.values_list()) == [1.0, 2.0, 3.0, 4.0, 5.0]
    sample = store.sample_values(64, Xoroshiro128PlusPlus(1))
    assert len(sample) == 64
    assert set(sample) <= {1.0, 2.0, 3.0, 4.0, 5.0}
    assert store.space_bytes() == DictCounterStore(8).space_bytes()
    store.clear()
    assert len(store) == 0
    with pytest.raises(InvalidParameterError):
        store.sample_values(1, Xoroshiro128PlusPlus(1))


def test_64bit_keys_round_trip():
    store = ColumnarCounterStore(4)
    big = (1 << 64) - 1
    store.insert(big, 7.0)
    store.insert(0, 1.0)
    assert store.get(big) == 7.0
    assert list(store.items()) == [(0, 1.0), (big, 7.0)]


# -- scalar insert: one binary search, one memmove per column ---------------


class _CountingArray(np.ndarray):
    """ndarray that records every __setitem__ (slice writes = memmoves)."""

    writes: list = []

    def __setitem__(self, index, value):
        type(self).writes.append(index)
        super().__setitem__(index, value)


def test_insert_uses_single_searchsorted(monkeypatch):
    """Regression: the scalar insert must not pay a second binary search
    (the old double lookup through _position)."""
    store = ColumnarCounterStore(16)
    for key in (10, 30, 50):
        store.insert(key, 1.0)
    calls = []
    original = np.searchsorted

    def counting(*args, **kwargs):
        calls.append(args)
        return original(*args, **kwargs)

    monkeypatch.setattr(np, "searchsorted", counting)
    store.insert(20, 2.0)
    assert len(calls) == 1
    calls.clear()
    assert store.get(20) == 2.0
    assert len(calls) == 1
    calls.clear()
    assert store.add_to(20, 1.0) is True
    assert len(calls) == 1


def test_insert_is_one_memmove_per_column():
    """The tail shift is a single overlapping slice assignment per column
    plus the scalar write of the new pair — nothing element-wise."""
    store = ColumnarCounterStore(16)
    for key in (10, 30, 50, 70):
        store.insert(key, float(key))
    _CountingArray.writes = []
    store._keys = store._keys.view(_CountingArray)
    store._values = store._values.view(_CountingArray)
    store.insert(20, 2.0)
    slice_writes = [w for w in _CountingArray.writes if isinstance(w, slice)]
    scalar_writes = [w for w in _CountingArray.writes if not isinstance(w, slice)]
    assert len(slice_writes) == 2  # one shift per column
    assert len(scalar_writes) == 2  # one new key, one new value
    # And the store is still correct afterwards.
    assert store._keys[:5].tolist() == [10, 20, 30, 50, 70]
    assert store.get(20) == 2.0 and store.get(70) == 70.0
