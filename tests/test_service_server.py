"""TCP front end: protocol conformance, concurrent clients, durability."""

import asyncio

import numpy as np
import pytest

from repro import (
    ExactCounter,
    FrequentItemsSketch,
    IngestPipeline,
    PipelineConfig,
    ServiceClosedError,
)
from repro.service import ServiceClient, SnapshotManager, StreamServer
from repro.service.client import ServiceError

pytestmark = pytest.mark.service


def run(coroutine):
    return asyncio.run(coroutine)


def _pipeline(k=256, seed=3):
    return IngestPipeline(
        FrequentItemsSketch(k, backend="columnar", seed=seed),
        config=PipelineConfig(max_batch_items=512, flush_interval=0.002),
    )


async def _serve(pipeline):
    await pipeline.start()
    server = StreamServer(pipeline)
    await server.start()
    return server


def test_protocol_round_trip():
    async def main():
        pipeline = _pipeline()
        server = await _serve(pipeline)
        client = await ServiceClient.connect("127.0.0.1", server.port)
        assert await client.ping()
        await client.update(7, 2.0)
        assert await client.send_batch(
            np.array([7, 8, 7], dtype=np.uint64),
            np.array([1.0, 5.0, 1.0]),
        ) == 3
        assert await client.send_batch([8, 9], binary=False) == 2
        await pipeline.drain()
        assert await client.estimate(7) == 4.0
        lower, estimate, upper = await client.bounds(8)
        assert lower == estimate == upper == 6.0
        hitters = await client.heavy_hitters(0.3)
        assert hitters[0] == (8, 6.0)
        stats = await client.stats()
        assert stats["applied_items"] == 6
        assert stats["stream_weight"] == 11.0
        assert stats["pending_items"] == 0
        await client.close()
        await server.stop()
        await pipeline.stop()

    run(main())


def test_errors_keep_the_connection_alive():
    async def main():
        pipeline = _pipeline()
        server = await _serve(pipeline)
        client = await ServiceClient.connect("127.0.0.1", server.port)
        for payload in (
            b"NONSENSE\n",
            b"UPDATE\n",
            b"UPDATE notanumber\n",
            b"UPDATE 5 -1.0\n",           # negative weight: rejected atomically
            b"BATCH 1:2 2:-5\n",
            b"BATCH 99999999999999999999999:1\n",  # item beyond uint64
            b"EST\n",
            b"HH nope\n",
        ):
            with pytest.raises(ServiceError):
                await client._request(payload)
        # The connection survived every error and the sketch is untouched.
        assert await client.ping()
        await client.close()
        # BIN *framing* errors answer ERR and then close: once a binary
        # payload may be in flight the stream cannot be resynchronized.
        for payload in (b"BIN 0\n", b"BIN -4\n", b"BIN abc\n",
                        b"BIN 999999999\n"):
            fresh = await ServiceClient.connect("127.0.0.1", server.port)
            with pytest.raises(ServiceError, match="closing"):
                await fresh._request(payload)
            with pytest.raises(ServiceClosedError):
                await fresh._request(b"PING\n")
        await pipeline.drain()
        assert pipeline.sketch.is_empty()
        await server.stop()
        await pipeline.stop()

    run(main())


def test_weights_travel_at_full_precision():
    """Regression: '%g'-style formatting truncated weights to 6
    significant digits on the scalar and text-batch paths."""
    needs_53_bits = float((1 << 53) - 1)  # 9007199254740991.0

    async def main():
        pipeline = _pipeline()
        server = await _serve(pipeline)
        client = await ServiceClient.connect("127.0.0.1", server.port)
        await client.update(1, 16777217.0)
        await client.send_batch([2], [needs_53_bits], binary=False)
        await pipeline.drain()
        one = await client.estimate(1)
        two = await client.estimate(2)
        await client.close()
        await server.stop()
        await pipeline.stop()
        return one, two

    assert run(main()) == (16777217.0, needs_53_bits)


def test_empty_batch_is_a_noop():
    async def main():
        pipeline = _pipeline()
        server = await _serve(pipeline)
        client = await ServiceClient.connect("127.0.0.1", server.port)
        assert await client.send_batch([]) == 0
        assert await client.send_batch([], binary=False) == 0
        assert await client.ping()
        await pipeline.drain()
        assert pipeline.sketch.is_empty()
        await client.close()
        await server.stop()
        await pipeline.stop()

    run(main())


def test_concurrent_clients_against_oracle():
    oracle = ExactCounter()
    streams = []
    for client_index in range(4):
        items = (np.arange(500, dtype=np.uint64) * 7 + client_index) % 200
        weights = np.full(500, float(client_index + 1))
        streams.append((items, weights))
        for item, weight in zip(items.tolist(), weights.tolist()):
            oracle.update(item, weight)

    async def main():
        pipeline = _pipeline(k=256)
        server = await _serve(pipeline)

        async def feeder(items, weights):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            for start in range(0, len(items), 50):
                await client.send_batch(
                    items[start : start + 50], weights[start : start + 50]
                )
            await client.close()

        await asyncio.gather(*(feeder(*stream) for stream in streams))
        await pipeline.drain()
        await server.stop()
        await pipeline.stop()
        return pipeline.sketch

    sketch = run(main())
    # 200 distinct < k: exact regime, so any lost/duplicated update shows.
    assert sketch.stream_weight == oracle.total_weight
    for item, frequency in oracle.items():
        assert sketch.estimate(item) == frequency


def test_snapshot_command_and_restart(tmp_path):
    directory = str(tmp_path / "served")

    async def serve_and_kill():
        pipeline = IngestPipeline(
            FrequentItemsSketch(64, backend="columnar", seed=5),
            config=PipelineConfig(max_batch_items=512, flush_interval=0.002),
            snapshots=SnapshotManager(directory),
        )
        server = await _serve(pipeline)
        client = await ServiceClient.connect("127.0.0.1", server.port)
        await client.send_batch(
            np.array([1, 1, 2, 3], dtype=np.uint64),
            np.array([4.0, 4.0, 2.0, 1.0]),
        )
        await pipeline.drain()
        seq = await client.snapshot()
        assert seq == pipeline.applied_seq
        await client.close()
        await server.stop()
        await pipeline.stop(final_snapshot=False)

    async def restart():
        pipeline = IngestPipeline.recover(SnapshotManager(directory))
        server = await _serve(pipeline)
        client = await ServiceClient.connect("127.0.0.1", server.port)
        estimate = await client.estimate(1)
        await client.close()
        await server.stop()
        await pipeline.stop()
        return estimate

    run(serve_and_kill())
    assert run(restart()) == 8.0


def test_stop_with_idle_connected_client_does_not_hang():
    """Server.close() only stops accepting; on Python >= 3.12
    wait_closed() waits for handlers, so stop() must actively close the
    connections an idle client keeps open."""

    async def main():
        pipeline = _pipeline()
        server = await _serve(pipeline)
        idle = await ServiceClient.connect("127.0.0.1", server.port)
        assert await idle.ping()
        # The client now sits idle; its handler is parked in readline().
        await asyncio.wait_for(server.stop(), timeout=5.0)
        await pipeline.stop()

    run(main())


def test_quit_closes_connection():
    async def main():
        pipeline = _pipeline()
        server = await _serve(pipeline)
        client = await ServiceClient.connect("127.0.0.1", server.port)
        await client.close()  # QUIT + BYE
        # A second close is a no-op, and new connections still work.
        await client.close()
        fresh = await ServiceClient.connect("127.0.0.1", server.port)
        assert await fresh.ping()
        await fresh.close()
        await server.stop()
        await pipeline.stop()

    run(main())
