"""Merging sharded sketches: shard-wise, re-shard, and edge cases."""

import numpy as np
import pytest

from repro import (
    ExactCounter,
    FrequentItemsSketch,
    IncompatibleSketchError,
    ShardedFrequentItemsSketch,
)
from repro.streams.zipf import ZipfianStream

from helpers import assert_bounds_valid, exact_of
from helpers import zipf_batch as _shared_zipf_batch


def zipf_batch(n=12_000, universe=3_000, seed=5):
    return _shared_zipf_batch(n=n, universe=universe, seed=seed)


# -- shard-wise (equally sharded) ---------------------------------------------


def test_merge_empty_into_empty():
    a = ShardedFrequentItemsSketch(16, num_shards=2, seed=1)
    b = ShardedFrequentItemsSketch(16, num_shards=2, seed=1)
    assert a.merge(b) is a
    assert a.is_empty()
    assert a.maximum_error == 0.0


def test_merge_empty_shards_into_populated():
    batch = zipf_batch()
    a = ShardedFrequentItemsSketch(64, num_shards=4, seed=1)
    a.update_batch(*batch)
    before = a.to_bytes()
    a.merge(ShardedFrequentItemsSketch(64, num_shards=4, seed=1))
    assert a.to_bytes() == before  # absorbing emptiness changes nothing
    a.close()


def test_merge_populated_into_empty_preserves_everything():
    batch = zipf_batch()
    source = ShardedFrequentItemsSketch(64, num_shards=4, seed=1)
    source.update_batch(*batch)
    target = ShardedFrequentItemsSketch(64, num_shards=4, seed=1)
    target.merge(source)
    assert target.stream_weight == source.stream_weight
    assert target.maximum_error >= source.maximum_error
    assert_bounds_valid(target, exact_of(batch))
    source.close()
    target.close()


def test_shardwise_merge_bounds_and_weights_add():
    first, second = zipf_batch(seed=5), zipf_batch(seed=6)
    a = ShardedFrequentItemsSketch(64, num_shards=4, seed=1)
    a.update_batch(*first)
    b = ShardedFrequentItemsSketch(64, num_shards=4, seed=1)
    b.update_batch(*second)
    expected_error_floor = a.maximum_error + b.maximum_error
    a.merge(b)
    # Offsets add shard-wise (replay may add more on full shards).
    assert a.maximum_error >= expected_error_floor - 1e-9
    assert_bounds_valid(a, exact_of(first, second))
    a.close()
    b.close()


def test_merge_rejects_self_and_foreign_types():
    sketch = ShardedFrequentItemsSketch(16, num_shards=2, seed=1)
    with pytest.raises(IncompatibleSketchError):
        sketch.merge(sketch)
    with pytest.raises(IncompatibleSketchError):
        sketch.merge(FrequentItemsSketch(16))


# -- re-shard (mismatched shard counts) ---------------------------------------


@pytest.mark.parametrize("shards_a,shards_b", [(4, 2), (2, 4), (4, 3), (1, 4)])
def test_mismatched_shard_counts_reshard_correctly(shards_a, shards_b):
    first, second = zipf_batch(seed=7), zipf_batch(seed=8)
    a = ShardedFrequentItemsSketch(64, num_shards=shards_a, seed=1)
    a.update_batch(*first)
    b = ShardedFrequentItemsSketch(64, num_shards=shards_b, seed=1)
    b.update_batch(*second)
    a.merge(b)
    assert_bounds_valid(a, exact_of(first, second))
    a.close()
    b.close()


def test_negative_seed_round_trip_still_merges_shardwise():
    """Seed -1 and its 64-bit mask are the same partition, merge-wise."""
    batch = zipf_batch(seed=7)
    original = ShardedFrequentItemsSketch(64, num_shards=4, seed=-1)
    original.update_batch(*batch)
    clone = ShardedFrequentItemsSketch.from_bytes(original.to_bytes())
    assert clone.seed == (1 << 64) - 1  # stored masked
    merged = original.copy().merge(clone)
    # Shard-wise path: no re-shard error carry-over, offsets just add.
    assert merged._extra_offset == 0.0
    assert merged.maximum_error == pytest.approx(2 * original.maximum_error)
    assert merged.stream_weight == 2 * original.stream_weight
    original.close()
    merged.close()


def test_mismatched_partition_seeds_also_reshard():
    batch = zipf_batch(seed=7)
    a = ShardedFrequentItemsSketch(64, num_shards=4, seed=1)
    b = ShardedFrequentItemsSketch(64, num_shards=4, seed=2)
    b.update_batch(*batch)
    a.merge(b)
    assert_bounds_valid(a, exact_of(batch))
    a.close()
    b.close()


def test_reshard_preserves_summary():
    batch = zipf_batch()
    sketch = ShardedFrequentItemsSketch(64, num_shards=4, seed=1)
    sketch.update_batch(*batch)
    for new_count in (1, 2, 8):
        wider = sketch.reshard(new_count)
        assert wider.num_shards == new_count
        assert wider.stream_weight == pytest.approx(sketch.stream_weight)
        assert wider.maximum_error >= sketch.maximum_error - 1e-9
        assert_bounds_valid(wider, exact_of(batch))
        wider.close()
    sketch.close()


def test_reshard_to_same_count_is_shardwise_exact():
    batch = zipf_batch()
    sketch = ShardedFrequentItemsSketch(64, num_shards=4, seed=1)
    sketch.update_batch(*batch)
    clone = sketch.reshard(4)
    assert clone.stream_weight == sketch.stream_weight
    assert clone.num_active == sketch.num_active
    view, clone_view = sketch.merged_view(), clone.merged_view()
    for row in view.to_rows():
        assert clone_view.lower_bound(row.item) == row.lower_bound
    sketch.close()
    clone.close()


def test_absorb_flat_sketch():
    batch = zipf_batch(seed=9)
    flat = FrequentItemsSketch(256, backend="columnar", seed=3)
    flat.update_batch(*batch)
    sharded = ShardedFrequentItemsSketch(256, num_shards=4, seed=1)
    sharded.absorb_flat(flat)
    assert sharded.stream_weight == pytest.approx(flat.stream_weight)
    assert sharded.maximum_error >= flat.maximum_error
    # Every flat bound survives the re-partition, loosened at most by
    # the carried-over offset.
    exact = exact_of(batch)
    assert_bounds_valid(sharded, exact)
    sharded.close()


def test_merge_distributed_workers_equals_guarantees_of_single_sketch():
    """The FDCMSS shape: per-worker sharded sketches, one aggregate."""
    batches = [zipf_batch(seed=s) for s in (10, 11, 12, 13)]
    workers = []
    for index, batch in enumerate(batches):
        worker = ShardedFrequentItemsSketch(64, num_shards=4, seed=1)
        worker.update_batch(*batch)
        workers.append(worker)
    aggregate = workers[0]
    for other in workers[1:]:
        aggregate.merge(other)
    exact = exact_of(*batches)
    assert_bounds_valid(aggregate, exact)
    true_hh = set(exact.heavy_hitters(0.02))
    reported = {row.item for row in aggregate.heavy_hitters(0.02)}
    assert true_hh <= reported
    for worker in workers:
        worker.close()
