"""The synthetic CAIDA-like packet trace: shape matches the paper's stats."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.streams import ExactCounter, SyntheticPacketTrace


def test_validation():
    with pytest.raises(InvalidParameterError):
        SyntheticPacketTrace(-1)
    with pytest.raises(InvalidParameterError):
        SyntheticPacketTrace(100, unique_sources=0)
    with pytest.raises(InvalidParameterError):
        SyntheticPacketTrace(100, segments=0)


def test_length_exact():
    trace = SyntheticPacketTrace(10_001, unique_sources=100, segments=4, seed=1)
    assert len(list(trace)) == 10_001
    assert len(trace) == 10_001


def test_items_are_32_bit_addresses():
    trace = SyntheticPacketTrace(5_000, unique_sources=500, seed=2)
    for item, _weight in trace:
        assert 0 <= item < 1 << 32


def test_weights_are_packet_bits():
    trace = SyntheticPacketTrace(5_000, unique_sources=500, seed=3)
    sizes_bits = {40 * 8, 64 * 8, 576 * 8, 1500 * 8}
    for _item, weight in trace:
        assert weight in sizes_bits


def test_mean_weight_near_papers_ratio():
    """Paper: N/n ~ 572; the default mixture is calibrated near it."""
    trace = SyntheticPacketTrace(30_000, unique_sources=2_000, seed=4)
    exact = ExactCounter()
    exact.update_all(trace)
    mean = exact.total_weight / exact.num_updates
    assert trace.expected_mean_weight() == pytest.approx(572, abs=60)
    assert mean == pytest.approx(trace.expected_mean_weight(), rel=0.05)


def test_unique_sources_in_expected_range():
    trace = SyntheticPacketTrace(50_000, unique_sources=5_000, seed=5)
    exact = ExactCounter()
    exact.update_all(trace)
    # The heavy tail means not every pool address need appear, but a
    # large fraction should, and never more than the pool size.
    assert 0.4 * 5_000 <= exact.num_items <= 5_000


def test_default_unique_ratio():
    """Default pool size mirrors the paper's ~72 updates per source."""
    trace = SyntheticPacketTrace(144_000, seed=6)
    assert trace.unique_sources == 2_000
    tiny = SyntheticPacketTrace(100, seed=6)
    assert tiny.unique_sources == 1024  # floor for tiny streams


def test_skewed_popularity():
    trace = SyntheticPacketTrace(40_000, unique_sources=4_000, seed=7)
    exact = ExactCounter()
    exact.update_all(trace)
    top_share = sum(freq for _item, freq in exact.top_k(40)) / exact.total_weight
    assert top_share > 0.25  # top 1% of sources carries >25% of bytes


def test_deterministic():
    a = list(SyntheticPacketTrace(2_000, unique_sources=300, seed=8))
    b = list(SyntheticPacketTrace(2_000, unique_sources=300, seed=8))
    c = list(SyntheticPacketTrace(2_000, unique_sources=300, seed=9))
    assert a == b
    assert a != c


def test_segments_share_heavy_sources():
    """Big talkers persist across the four emulated capture files."""
    trace = SyntheticPacketTrace(40_000, unique_sources=2_000, segments=4, seed=10)
    updates = list(trace)
    quarter = len(updates) // 4
    first = ExactCounter()
    first.update_all(updates[:quarter])
    last = ExactCounter()
    last.update_all(updates[-quarter:])
    top_first = {item for item, _freq in first.top_k(20)}
    top_last = {item for item, _freq in last.top_k(20)}
    assert len(top_first & top_last) >= 8


def test_batches_match_iteration():
    trace = SyntheticPacketTrace(3_000, unique_sources=300, seed=11, batch_size=256)
    flat = []
    for items, weights in trace.batches():
        flat.extend((int(i), float(w)) for i, w in zip(items, weights))
    assert flat == [(item, weight) for item, weight in trace]
