"""Stream Summary (SSL): O(1) bucket-list Space Saving, unit updates."""

import random

import pytest

from repro.baselines import SpaceSavingHeap, StreamSummary
from repro.errors import InvalidParameterError, InvalidUpdateError


def test_unit_updates_only():
    ssl = StreamSummary(4)
    with pytest.raises(InvalidUpdateError):
        ssl.update(1, 2.0)


def test_rejects_bad_k():
    with pytest.raises(InvalidParameterError):
        StreamSummary(0)


def test_exact_under_capacity():
    ssl = StreamSummary(8)
    for item in [1, 1, 1, 2, 2, 3]:
        ssl.update(item)
    assert ssl.estimate(1) == 3.0
    assert ssl.estimate(2) == 2.0
    assert ssl.estimate(3) == 1.0
    assert ssl.estimate(4) == 0.0
    assert ssl.lower_bound(1) == 3.0  # no takeover: error 0


def test_takeover_inherits_min_plus_one():
    ssl = StreamSummary(2)
    ssl.update(1)
    ssl.update(1)
    ssl.update(2)
    ssl.update(3)  # takes over (2, 1) -> (3, 2)
    assert ssl.estimate(3) == 2.0
    assert ssl.lower_bound(3) == 1.0  # inherited error of 1
    assert ssl.estimate(2) == 2.0  # min bucket value for missing items


def test_counter_sum_equals_n():
    ssl = StreamSummary(16)
    n = 4_000
    random.seed(3)
    for _ in range(n):
        ssl.update(random.randrange(400))
    assert sum(value for _item, value in ssl.items()) == pytest.approx(n)


def test_matches_heap_space_saving_counter_multiset():
    """SSH and SSL may pick different victims, but the multiset of
    counter values is identical for any stream (both are Space Saving)."""
    random.seed(17)
    stream = [random.randrange(60) for _ in range(5_000)]
    ssh = SpaceSavingHeap(12)
    ssl = StreamSummary(12)
    for item in stream:
        ssh.update(item, 1.0)
        ssl.update(item)
    ssh_values = sorted(value for _item, value in ssh.items())
    ssl_values = sorted(value for _item, value in ssl.items())
    assert ssh_values == pytest.approx(ssl_values)


def test_never_underestimates_tracked_items():
    random.seed(23)
    stream = [random.randrange(100) for _ in range(3_000)]
    from repro.streams.exact import ExactCounter

    exact = ExactCounter()
    ssl = StreamSummary(24)
    for item in stream:
        ssl.update(item)
        exact.update(item)
    for item, frequency in exact.items():
        assert ssl.estimate(item) >= frequency - 1e-9


def test_num_updates_and_len():
    ssl = StreamSummary(4)
    for item in [7, 8, 7]:
        ssl.update(item)
    assert ssl.num_updates == 3
    assert len(ssl) == 2
    assert ssl.num_active == 2


def test_bucket_list_stays_consistent_under_churn():
    ssl = StreamSummary(6)
    random.seed(31)
    for _ in range(10_000):
        ssl.update(random.randrange(30))
    # Walk the bucket list: values strictly ascending, nodes consistent.
    bucket = ssl._min_bucket
    previous = 0.0
    nodes_seen = 0
    while bucket is not None:
        assert bucket.value > previous
        assert bucket.nodes
        for node in bucket.nodes:
            assert node.bucket is bucket
        previous = bucket.value
        nodes_seen += len(bucket.nodes)
        bucket = bucket.next
    assert nodes_seen == len(ssl)
