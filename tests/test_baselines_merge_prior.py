"""The prior merge procedures (ACH+13 sort / Hoa61 quickselect)."""

import pytest

from repro.baselines import ach13_merge, hoa61_merge
from repro.baselines.factory import make_smed
from repro.errors import IncompatibleSketchError
from repro.streams.exact import ExactCounter
from repro.streams.zipf import ZipfianStream


def _pair(seed_a=1, seed_b=2, k=32, n=3_000):
    exact = ExactCounter()
    sketches = []
    for seed in (seed_a, seed_b):
        sketch = make_smed(k, seed=seed)
        for item, weight in ZipfianStream(
            n, universe=1_000, alpha=1.05, seed=seed, weight_low=1, weight_high=10_000
        ):
            sketch.update(item, weight)
            exact.update(item, weight)
        sketches.append(sketch)
    return sketches[0], sketches[1], exact


def test_procedures_produce_identical_summaries():
    a, b, _exact = _pair()
    sort_based = ach13_merge(a, b)
    select_based = hoa61_merge(a, b)
    assert sorted(sort_based.to_rows()) == pytest.approx(sorted(select_based.to_rows()))
    assert sort_based.maximum_error == pytest.approx(select_based.maximum_error)


def test_inputs_unchanged():
    a, b, _ = _pair()
    rows_a = sorted(a.to_rows())
    rows_b = sorted(b.to_rows())
    ach13_merge(a, b)
    hoa61_merge(a, b)
    assert sorted(a.to_rows()) == rows_a
    assert sorted(b.to_rows()) == rows_b


def test_output_capped_at_k():
    a, b, _ = _pair()
    merged = ach13_merge(a, b)
    assert merged.num_active <= merged.max_counters


def test_bounds_bracket_union_truth():
    a, b, exact = _pair(seed_a=5, seed_b=6)
    for merged in (ach13_merge(a, b), hoa61_merge(a, b)):
        assert merged.stream_weight == pytest.approx(exact.total_weight)
        for item, frequency in exact.items():
            assert merged.lower_bound(item) <= frequency + 1e-6
            assert merged.upper_bound(item) >= frequency - 1e-6


def test_error_close_to_our_merge():
    """Section 4.5: our merge's error within a few percent of prior art."""
    a, b, exact = _pair(seed_a=7, seed_b=8)
    ours = a.copy().merge(b)
    prior = ach13_merge(a, b)

    def worst(sketch):
        return max(
            abs(frequency - sketch.estimate(item))
            for item, frequency in exact.items()
        )

    ours_error = worst(ours)
    prior_error = worst(prior)
    assert ours_error <= prior_error * 1.6 + 1e-6  # same ballpark


def test_below_capacity_merge_is_lossless():
    k = 64
    a = make_smed(k, seed=9)
    b = make_smed(k, seed=10)
    for item in range(20):
        a.update(item, float(item + 1))
    for item in range(20, 40):
        b.update(item, 3.0)
    merged = ach13_merge(a, b)
    assert merged.maximum_error == 0.0
    assert merged.estimate(5) == 6.0
    assert merged.estimate(25) == 3.0


def test_mismatched_k_rejected():
    a = make_smed(16, seed=1)
    b = make_smed(32, seed=2)
    with pytest.raises(IncompatibleSketchError):
        ach13_merge(a, b)
    with pytest.raises(IncompatibleSketchError):
        hoa61_merge(a, b)


def test_scratch_words_recorded():
    a, b, _ = _pair()
    merged = ach13_merge(a, b)
    assert merged.stats.scratch_words > 0  # the allocation prior work pays
