"""IngestPipeline: concurrency stress, backpressure, coalescing, queries.

The central correctness property is *no lost, no duplicated updates*:
whatever interleaving the event loop produces, the weight that reaches
the sketch must be exactly the weight the producers submitted.  In the
no-decrement regime (``k`` at least the number of distinct items) the
sketch is itself exact, so every per-item count can be checked against
an :class:`ExactCounter` oracle to the last bit.
"""

import asyncio
import random

import numpy as np
import pytest

from helpers import (
    assert_bounds_valid,
    await_applied_seq,
    exact_of,
    zipf_batch,
)
from repro import (
    ExactCounter,
    FrequentItemsSketch,
    IngestPipeline,
    InvalidParameterError,
    InvalidUpdateError,
    PipelineConfig,
    ServiceClosedError,
    ShardedFrequentItemsSketch,
)

pytestmark = pytest.mark.service


def run(coroutine):
    return asyncio.run(coroutine)


# -- configuration ------------------------------------------------------------


def test_config_validation():
    for bad in (
        dict(max_batch_items=0),
        dict(flush_interval=0.0),
        dict(flush_interval=-1.0),
        dict(max_pending_items=0),
        dict(snapshot_every_batches=0),
    ):
        with pytest.raises(InvalidParameterError):
            PipelineConfig(**bad)


# -- concurrency stress -------------------------------------------------------


def test_many_producers_lose_and_duplicate_nothing():
    """8 interleaved producers, random batch sizes, random yields: every
    submitted update must be applied exactly once."""
    num_producers = 8
    rng = random.Random(17)
    streams = []
    for producer in range(num_producers):
        updates = [
            (rng.randrange(500), float(rng.randint(1, 100)))
            for _ in range(rng.randint(300, 900))
        ]
        streams.append(updates)
    oracle = ExactCounter()
    for updates in streams:
        for item, weight in updates:
            oracle.update(item, weight)

    async def main():
        sketch = FrequentItemsSketch(1024, backend="columnar", seed=3)
        config = PipelineConfig(max_batch_items=256, flush_interval=0.002,
                                max_pending_items=1024)
        pipeline = IngestPipeline(sketch, config=config)

        async def producer(updates, seed):
            prng = random.Random(seed)
            position = 0
            while position < len(updates):
                take = prng.randint(1, 64)
                chunk = updates[position : position + take]
                position += take
                items = np.array([i for i, _w in chunk], dtype=np.uint64)
                weights = np.array([w for _i, w in chunk], dtype=np.float64)
                await pipeline.submit(
                    items, weights, wait_applied=prng.random() < 0.2
                )
                if prng.random() < 0.5:
                    await asyncio.sleep(0)

        async with pipeline:
            await asyncio.gather(
                *(producer(stream, 100 + index)
                  for index, stream in enumerate(streams))
            )
            await pipeline.drain()
            assert pipeline.pending_items == 0
        return pipeline

    pipeline = run(main())
    sketch = pipeline.sketch
    # k=1024 > 500 distinct items: the sketch is exact, so any lost or
    # duplicated update would show up in some per-item count.
    assert sketch.maximum_error == 0.0
    assert sketch.stream_weight == oracle.total_weight
    assert sketch.num_active == oracle.num_items
    for item, frequency in oracle.items():
        assert sketch.estimate(item) == frequency
    stats = pipeline.stats
    assert stats.submitted_items == stats.applied_items == oracle.num_updates
    assert stats.applied_batches <= stats.submitted_batches  # coalescing


def test_concurrent_result_bit_identical_to_direct_feed():
    """Micro-batch boundaries are whatever timing produced, but integer
    weights make the engine boundary-invariant — the served columnar
    sketch must serialize identically to a direct update_batch feed."""
    items, weights = zipf_batch(n=6_000, universe=400, seed=23)
    reference = FrequentItemsSketch(64, backend="columnar", seed=9)
    reference.update_batch(items, weights)

    async def main():
        sketch = FrequentItemsSketch(64, backend="columnar", seed=9)
        pipeline = IngestPipeline(
            sketch,
            config=PipelineConfig(max_batch_items=512, flush_interval=0.001),
        )
        async with pipeline:
            for start in range(0, len(items), 777):
                await pipeline.submit(
                    items[start : start + 777], weights[start : start + 777]
                )
            await pipeline.drain()
        return sketch

    served = run(main())
    assert served.stats.decrements > 0  # the interesting regime
    assert served.to_bytes() == reference.to_bytes()


def test_sharded_sketch_rides_the_pipeline():
    items, weights = zipf_batch(n=5_000, universe=600, seed=31)
    oracle = exact_of((items, weights))

    async def main():
        sketch = ShardedFrequentItemsSketch(64, num_shards=2, seed=5)
        pipeline = IngestPipeline(sketch)
        async with pipeline:
            await pipeline.submit(items, weights)
            await pipeline.drain()
        sketch.close()
        return sketch

    sketch = run(main())
    assert_bounds_valid(sketch, oracle)


# -- backpressure -------------------------------------------------------------


def test_backpressure_bounds_the_queue():
    async def main():
        sketch = FrequentItemsSketch(256, backend="columnar", seed=1)
        config = PipelineConfig(
            max_batch_items=128, flush_interval=0.001, max_pending_items=256
        )
        pipeline = IngestPipeline(sketch, config=config)
        async with pipeline:
            async def producer():
                for _ in range(60):
                    await pipeline.submit(
                        np.arange(64, dtype=np.uint64),
                        np.ones(64, dtype=np.float64),
                    )
            await asyncio.gather(producer(), producer(), producer())
            await pipeline.drain()
        return pipeline

    pipeline = run(main())
    stats = pipeline.stats
    assert stats.applied_items == 3 * 60 * 64
    # Admission control: the buffered backlog never exceeded the bound
    # (every submission here is smaller than the bound).
    assert stats.peak_pending_items <= 256
    assert stats.backpressure_waits > 0


# -- coalescing triggers ------------------------------------------------------


def test_size_trigger_coalesces_small_submissions():
    async def main():
        pipeline = IngestPipeline(
            FrequentItemsSketch(128, backend="columnar", seed=2),
            config=PipelineConfig(max_batch_items=512, flush_interval=5.0),
        )
        async with pipeline:
            for index in range(64):  # 64 x 16 = 2 x 512
                await pipeline.submit(
                    np.full(16, index, dtype=np.uint64),
                    np.ones(16, dtype=np.float64),
                )
            await pipeline.drain()
        return pipeline

    pipeline = run(main())
    stats = pipeline.stats
    assert stats.applied_items == 64 * 16
    assert stats.size_flushes >= 1
    assert stats.applied_batches < stats.submitted_batches


def test_time_trigger_flushes_without_reaching_size():
    async def main():
        pipeline = IngestPipeline(
            FrequentItemsSketch(128, seed=2),
            config=PipelineConfig(max_batch_items=1 << 20,
                                  flush_interval=0.005),
        )
        async with pipeline:
            await pipeline.submit(np.array([7, 7], dtype=np.uint64))
            # Deadline-polling, not a fixed sleep: a loaded CI box can
            # stall the 5ms flush timer well past any constant chosen.
            await await_applied_seq(pipeline, 1)
            applied_mid_flight = pipeline.applied_seq
            assert pipeline.estimate(7) == 2.0  # visible before any drain
        return applied_mid_flight

    assert run(main()) == 1


# -- validation and lifecycle -------------------------------------------------


def test_rejected_batch_is_a_noop():
    async def main():
        pipeline = IngestPipeline(FrequentItemsSketch(16, seed=0))
        async with pipeline:
            with pytest.raises(InvalidUpdateError):
                await pipeline.submit(
                    np.array([1, 2], dtype=np.uint64), np.array([1.0, -1.0])
                )
            await pipeline.submit(np.array([], dtype=np.uint64))  # no-op
            await pipeline.drain()
            assert pipeline.sketch.is_empty()
            assert pipeline.stats.submitted_items == 0

    run(main())


def test_submit_after_stop_raises():
    async def main():
        pipeline = IngestPipeline(FrequentItemsSketch(16, seed=0))
        await pipeline.start()
        await pipeline.update(5, 2.0)
        await pipeline.stop()
        assert pipeline.estimate(5) == 2.0  # queries outlive the loop
        with pytest.raises(ServiceClosedError):
            await pipeline.submit(np.array([1], dtype=np.uint64))

    run(main())


def test_stop_applies_queued_work():
    async def main():
        pipeline = IngestPipeline(
            FrequentItemsSketch(64, seed=4),
            config=PipelineConfig(max_batch_items=1 << 20, flush_interval=60.0),
        )
        await pipeline.start()
        await pipeline.submit(np.array([1, 1, 2], dtype=np.uint64))
        # Stop before any trigger fires: the drain loop must still apply
        # everything before shutting down.
        await pipeline.stop()
        assert pipeline.estimate(1) == 2.0
        assert pipeline.pending_items == 0

    run(main())


def test_drain_never_started_raises_cleanly():
    async def main():
        pipeline = IngestPipeline(FrequentItemsSketch(16, seed=0))
        with pytest.raises(ServiceClosedError):
            await pipeline.drain()

    run(main())


def test_drain_task_fault_fails_fast_and_loud():
    """An exception inside apply (disk full, closed sharded executor...)
    must not wedge the pipeline: submits start failing, waiters wake
    with the fault, and stop() re-raises it."""

    class ExplodingSketch(FrequentItemsSketch):
        __slots__ = ("detonated",)

        def update_batch(self, items, weights=None):
            raise OSError("disk full")

    async def main():
        pipeline = IngestPipeline(
            ExplodingSketch(16, seed=0),
            config=PipelineConfig(flush_interval=0.001),
        )
        await pipeline.start()
        with pytest.raises(ServiceClosedError, match="disk full"):
            await pipeline.submit(
                np.array([1], dtype=np.uint64), wait_applied=True
            )
        assert not pipeline.is_running
        with pytest.raises(ServiceClosedError):
            await pipeline.submit(np.array([2], dtype=np.uint64))
        with pytest.raises(ServiceClosedError, match="disk full"):
            await pipeline.drain()
        assert pipeline.pending_items == 0
        with pytest.raises(OSError, match="disk full"):
            await pipeline.stop()

    run(main())


def test_queries_between_micro_batches_are_consistent():
    """A reader woken between submissions sees a sketch whose stream
    weight is always a whole number of applied micro-batches."""
    async def main():
        pipeline = IngestPipeline(
            FrequentItemsSketch(64, backend="columnar", seed=8),
            config=PipelineConfig(max_batch_items=100, flush_interval=0.001),
        )
        observed = []

        async def reader():
            for _ in range(50):
                observed.append(pipeline.sketch.stream_weight)
                await asyncio.sleep(0)

        async with pipeline:
            writer = asyncio.gather(
                *(pipeline.submit(np.full(100, i, dtype=np.uint64))
                  for i in range(20))
            )
            await asyncio.gather(writer, reader())
            await pipeline.drain()
        return observed

    observed = run(main())
    assert all(weight % 100 == 0 for weight in observed)
