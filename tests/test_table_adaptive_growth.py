"""Adaptive (doubling) table growth: identical answers, smaller tables.

The paper's implementation note — the hash map "initially contains 2^5
slots and doubles in size when full" — is reproduced by
``growth="adaptive"``.  The contract these tests pin down:

* decrement passes begin only once the table holds ``k`` counters, so an
  adaptive sketch is *bit-identical in query results* to a fixed one —
  including every PRNG-driven decrement decision, because the probing
  layouts themselves converge bit-for-bit once the arrays reach their
  final length (growth rehashes replay the original insertion order);
* serialized bytes differ from the fixed mode only in the backend flag
  byte, and the adaptive flag round-trips through ``to_bytes`` /
  ``from_bytes``;
* early-stream space is genuinely smaller (that is the point);
* every existing default-mode golden stays untouched (``growth`` is
  opt-in).
"""

import numpy as np
import pytest

from repro.core.frequent_items import FrequentItemsSketch
from repro.errors import InvalidParameterError, TableFullError
from repro.sharded.sketch import ShardedFrequentItemsSketch
from repro.streams.zipf import ZipfianStream
from repro.table import (
    ADAPTIVE_INITIAL_CAPACITY,
    BACKEND_NAMES,
    make_store,
)
from repro.table.probing import LinearProbingTable
from repro.table.robinhood import RobinHoodTable

ADAPTIVE_FLAG = 0x80
BACKEND_BYTE = 8  # offset of the backend code in the flat wire format


def _zipf(n=6_000, seed=9):
    return list(
        ZipfianStream(
            n, universe=2_000, alpha=1.05, seed=seed, weight_low=1, weight_high=100
        )
    )


# -- store level ------------------------------------------------------------


@pytest.mark.parametrize("cls", [LinearProbingTable, RobinHoodTable])
def test_probing_layout_converges_to_fixed(cls):
    """Once grown to the final length, the physical layout is the one the
    fixed-capacity table built from the same operations."""
    rng = np.random.default_rng(3)
    for trial in range(10):
        capacity = int(rng.integers(20, 150))
        fixed = cls(capacity, hash_seed=trial)
        adaptive = cls(capacity, hash_seed=trial, initial_capacity=4)
        keys = rng.choice(100_000, size=capacity, replace=False).astype(np.uint64)
        for index, key in enumerate(keys.tolist()):
            fixed.insert(key, float(index + 1))
            adaptive.insert(key, float(index + 1))
            fixed.add_to(key, 0.25)
            adaptive.add_to(key, 0.25)
        assert adaptive.length == fixed.length
        assert adaptive._keys.tolist() == fixed._keys.tolist()
        assert adaptive._states.tolist() == fixed._states.tolist()
        assert adaptive._values.tolist() == fixed._values.tolist()


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_adaptive_store_starts_small_and_reaches_capacity(backend):
    store = make_store(backend, 1024, seed=1, growth="adaptive")
    fixed = make_store(backend, 1024, seed=1)
    if backend != "dict":  # the builtin dict always grows natively
        assert store.space_bytes() < fixed.space_bytes()
    for key in range(1024):
        store.insert(key, 1.0)
    assert len(store) == 1024
    with pytest.raises(TableFullError):
        store.insert(5000, 1.0)
    assert {key for key, _value in store.items()} == set(range(1024))


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_adaptive_insert_many_grows_through_stages(backend):
    store = make_store(backend, 600, seed=2, growth="adaptive")
    keys = np.arange(600, dtype=np.uint64)
    values = np.arange(1, 601, dtype=np.float64)
    store.insert_many(keys, values)
    assert len(store) == 600
    got = store.get_many(np.array([0, 599, 1000], dtype=np.uint64))
    assert got[0] == 1.0 and got[1] == 600.0 and np.isnan(got[2])


def test_purge_while_growing_keeps_log_consistent():
    for cls in (LinearProbingTable, RobinHoodTable):
        table = cls(200, hash_seed=5, initial_capacity=4)
        for key in range(30):
            table.insert(key, float(key))  # key 0 is non-positive already
        freed = table.decrement_and_purge(10.0)
        assert freed == 11
        # Growth after a purge must only replay surviving keys.
        for key in range(1000, 1100):
            table.insert(key, 1.0)
        assert len(table) == 30 - 11 + 100
        for key in range(11, 30):
            assert table.get(key) == float(key) - 10.0


def test_initial_capacity_validation():
    with pytest.raises(InvalidParameterError):
        LinearProbingTable(10, initial_capacity=0)
    with pytest.raises(ValueError):
        make_store("probing", 10, growth="bogus")
    with pytest.raises(InvalidParameterError):
        FrequentItemsSketch(8, growth="bogus")


# -- sketch level -----------------------------------------------------------


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_adaptive_sketch_bit_identical_to_fixed(backend):
    """Same stream, same seed: counters, offsets, stream weight, and the
    serialized records must match the fixed mode exactly — only the
    backend flag byte may differ."""
    updates = _zipf()
    fixed = FrequentItemsSketch(64, backend=backend, seed=7)
    adaptive = FrequentItemsSketch(64, backend=backend, seed=7, growth="adaptive")
    for item, weight in updates:
        fixed.update(item, weight)
        adaptive.update(item, weight)
    assert fixed.stats.decrements > 10  # the PRNG-driven regime
    fixed_blob = fixed.to_bytes()
    adaptive_blob = adaptive.to_bytes()
    assert adaptive_blob[BACKEND_BYTE] == fixed_blob[BACKEND_BYTE] | ADAPTIVE_FLAG
    assert adaptive_blob[:BACKEND_BYTE] == fixed_blob[:BACKEND_BYTE]
    assert adaptive_blob[BACKEND_BYTE + 1 :] == fixed_blob[BACKEND_BYTE + 1 :]


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_adaptive_batch_equals_adaptive_scalar(backend):
    updates = _zipf(4_000, seed=13)
    scalar = FrequentItemsSketch(48, backend=backend, seed=3, growth="adaptive")
    for item, weight in updates:
        scalar.update(item, weight)
    batched = FrequentItemsSketch(48, backend=backend, seed=3, growth="adaptive")
    items = np.array([item for item, _w in updates], dtype=np.uint64)
    weights = np.array([w for _item, w in updates], dtype=np.float64)
    for start in range(0, len(items), 512):
        batched.update_batch(items[start : start + 512], weights[start : start + 512])
    assert scalar.to_bytes() == batched.to_bytes()


def test_no_decrements_before_table_reaches_k():
    sketch = FrequentItemsSketch(256, backend="probing", seed=1, growth="adaptive")
    for item in range(255):
        sketch.update(item, 1.0)
    assert sketch.stats.decrements == 0
    assert sketch.maximum_error == 0.0
    sketch.update(255, 1.0)
    sketch.update(256, 1.0)  # table full now: this one must decrement
    assert sketch.stats.decrements == 1


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_adaptive_round_trip(backend):
    updates = _zipf(3_000, seed=21)
    sketch = FrequentItemsSketch(32, backend=backend, seed=11, growth="adaptive")
    for item, weight in updates:
        sketch.update(item, weight)
    restored = FrequentItemsSketch.from_bytes(sketch.to_bytes())
    assert restored.growth == "adaptive"
    assert restored.max_counters == sketch.max_counters
    assert restored.maximum_error == sketch.maximum_error
    assert restored.stream_weight == sketch.stream_weight
    assert dict(restored._store.items()) == dict(sketch._store.items())
    # A second round trip is byte-stable, and the sketch stays operational.
    again = FrequentItemsSketch.from_bytes(restored.to_bytes())
    assert again.to_bytes() == restored.to_bytes()
    restored.update(999_999, 5.0)
    assert restored.estimate(999_999) >= 5.0


def test_adaptive_space_is_smaller_early():
    fixed = FrequentItemsSketch(4096, backend="probing", seed=0)
    adaptive = FrequentItemsSketch(4096, backend="probing", seed=0, growth="adaptive")
    for item in range(ADAPTIVE_INITIAL_CAPACITY):
        fixed.update(item)
        adaptive.update(item)
    assert adaptive.space_bytes() < fixed.space_bytes() / 16


def test_sharded_adaptive_round_trip():
    sketch = ShardedFrequentItemsSketch(32, num_shards=2, seed=3, growth="adaptive")
    items = (np.arange(500, dtype=np.uint64) * 7) % 91
    sketch.update_batch(items, np.ones(500))
    assert sketch.growth == "adaptive"
    restored = ShardedFrequentItemsSketch.from_bytes(sketch.to_bytes())
    assert restored.growth == "adaptive"
    assert restored.estimate(0) == sketch.estimate(0)
    wider = sketch.reshard(4)
    assert wider.growth == "adaptive"
    sketch.close()
    restored.close()
    wider.close()
