"""Client-side fault tolerance: reconnect, resubmit, and dedup.

:class:`ReconnectingServiceClient` promises exactly-once ingestion
across server restarts: update batches travel as ``BINS`` frames whose
(session, frame_seq) stamp makes resends idempotent, so an ``OK`` lost
to a crash is retried without double counting and a delivered batch is
never re-applied.  The oracle here is exact by construction — the
serving sketch's capacity exceeds the item universe, so it never
decrements and every estimate equals the true count; any lost or
duplicated update would show up as an exact-count mismatch.
"""

import asyncio

import numpy as np
import pytest

from repro import (
    FrequentItemsSketch,
    IngestPipeline,
    PipelineConfig,
    ServiceClosedError,
)
from repro.service import (
    ReconnectingServiceClient,
    ServiceClient,
    StreamServer,
)
from repro.service import protocol
from helpers import assert_bounds_valid, await_until, exact_of, zipf_batch

pytestmark = [pytest.mark.service]

UNIVERSE = 60  # < k below: the serving sketch stays exact


def run(coroutine):
    return asyncio.run(coroutine)


def exact_pipeline(seed=3):
    """A pipeline whose sketch can never decrement: an exact oracle."""
    return IngestPipeline(
        FrequentItemsSketch(256, backend="columnar", seed=seed),
        config=PipelineConfig(max_batch_items=512, flush_interval=0.002),
    )


def make_batches(num_batches=10, batch_size=200, seed=17):
    """Integer-weighted Zipf batches: float sums stay exact in any
    application order, so the oracle comparison is equality, not ±eps.
    One stream split into slices, so all batches share one item
    universe (distinct ids stay below the serving sketch's k)."""
    items, weights = zipf_batch(
        num_batches * batch_size, universe=UNIVERSE, seed=seed,
        weight_low=1, weight_high=9,
    )
    weights = np.floor(weights)
    return [
        (items[lo : lo + batch_size], weights[lo : lo + batch_size])
        for lo in range(0, len(items), batch_size)
    ]


def exact_counts(batches):
    return exact_of(*batches)


def fast_client(port, **overrides):
    options = dict(
        max_retries=40, backoff_initial=0.01, backoff_max=0.05
    )
    options.update(overrides)
    return ReconnectingServiceClient("127.0.0.1", port, **options)


def test_restarts_mid_stream_lose_and_duplicate_nothing():
    """Kill the server repeatedly while a feeder streams batches; every
    update must land exactly once."""
    batches = make_batches()
    exact = exact_counts(batches)

    async def main():
        pipeline = exact_pipeline()
        await pipeline.start()
        server = StreamServer(pipeline)
        await server.start()
        port = server.port
        client = fast_client(port)
        try:
            for index, (items, weights) in enumerate(batches):
                if index in (2, 5, 8):
                    # Hard restart between acks: connections drop, the
                    # pipeline (and its idempotency registry) survive.
                    await server.stop()
                    server = StreamServer(pipeline, port=port)
                    await server.start()
                acknowledged = await client.send_batch(items, weights)
                assert acknowledged == len(items)
            await await_until(
                lambda: pipeline.pending_items == 0, message="backlog drained"
            )
            assert client.reconnects >= 3
            for item, true_count in exact.items():
                assert pipeline.estimate(item) == true_count
            assert pipeline.sketch.stream_weight == exact.total_weight
        finally:
            await client.close()
            await server.stop()
            await pipeline.stop(final_snapshot=False)

    run(main())


def test_resubmitted_frame_is_deduplicated_not_reapplied():
    """The lost-OK window, simulated deterministically: the same BINS
    frame arrives twice (as a reconnecting client would resend it);
    the second delivery must ingest nothing."""

    async def main():
        pipeline = exact_pipeline()
        await pipeline.start()
        server = StreamServer(pipeline)
        await server.start()
        try:
            items = np.arange(1, 11, dtype=np.uint64)
            weights = np.full(10, 2.0)
            frame = protocol.encode_bins_frame(items, weights, "sess-a", 1)
            plain = await ServiceClient.connect("127.0.0.1", server.port)
            first = await plain._request(frame)
            assert first == "OK 10"
            second = await plain._request(frame)
            assert second == "OK 0"
            # An older frame_seq from the same session is also a replay.
            stale = protocol.encode_bins_frame(items, weights, "sess-a", 0)
            assert await plain._request(stale) == "OK 0"
            await plain.close()
            await await_until(
                lambda: pipeline.pending_items == 0, message="backlog drained"
            )
            for item in range(1, 11):
                assert pipeline.estimate(item) == 2.0
        finally:
            await server.stop()
            await pipeline.stop(final_snapshot=False)

    run(main())


def test_registry_survives_server_restart():
    """A resend after a restart (new StreamServer, same pipeline) still
    answers ``OK 0``: the registry lives on the pipeline."""

    async def main():
        pipeline = exact_pipeline()
        await pipeline.start()
        server = StreamServer(pipeline)
        await server.start()
        port = server.port
        try:
            client = fast_client(port, session="sess-b")
            await client.send_batch(
                np.array([7, 7, 9], dtype=np.uint64), np.ones(3)
            )
            await client.close()
            await server.stop()
            server = StreamServer(pipeline, port=port)
            await server.start()
            # The resend a client would issue for its unacked frame 1.
            frame = protocol.encode_bins_frame(
                np.array([7, 7, 9], dtype=np.uint64), np.ones(3), "sess-b", 1
            )
            plain = await ServiceClient.connect("127.0.0.1", port)
            assert await plain._request(frame) == "OK 0"
            await plain.close()
            await await_until(
                lambda: pipeline.pending_items == 0, message="backlog drained"
            )
            assert pipeline.estimate(7) == 2.0
            assert pipeline.estimate(9) == 1.0
        finally:
            await server.stop()
            await pipeline.stop(final_snapshot=False)

    run(main())


def test_retry_budget_is_bounded():
    """With nothing listening, the client gives up with the documented
    error instead of spinning forever."""

    async def main():
        client = fast_client(1, max_retries=3)
        with pytest.raises(ServiceClosedError, match="gave up after"):
            await client.ping()
        assert client.reconnects == 3

    run(main())


def test_queries_retry_through_a_restart():
    async def main():
        pipeline = exact_pipeline()
        await pipeline.start()
        server = StreamServer(pipeline)
        await server.start()
        port = server.port
        client = fast_client(port)
        try:
            await client.send_batch(
                np.array([5, 5, 5], dtype=np.uint64), np.ones(3)
            )
            await await_until(
                lambda: pipeline.pending_items == 0, message="backlog drained"
            )
            await server.stop()
            server = StreamServer(pipeline, port=port)
            await server.start()
            assert await client.estimate(5) == 3.0
            seq, estimate = await client.qest(5)
            assert (seq, estimate) == (pipeline.applied_seq, 3.0)
            assert client.reconnects >= 1
        finally:
            await client.close()
            await server.stop()
            await pipeline.stop(final_snapshot=False)

    run(main())


def test_bounds_stay_valid_under_restarts_with_small_sketch():
    """Same restart schedule against a genuinely lossy sketch (k far
    below the universe): the paper's error bounds must still hold
    against the exact oracle — reconnects cannot smuggle in updates
    that would push an estimate outside its guarantee."""
    batches = [
        zipf_batch(300, universe=900, seed=31 + index)
        for index in range(8)
    ]
    exact = exact_of(*batches)

    async def main():
        pipeline = IngestPipeline(
            FrequentItemsSketch(64, backend="columnar", seed=9),
            config=PipelineConfig(max_batch_items=512, flush_interval=0.002),
        )
        await pipeline.start()
        server = StreamServer(pipeline)
        await server.start()
        port = server.port
        client = fast_client(port)
        try:
            for index, batch in enumerate(batches):
                if index in (3, 6):
                    await server.stop()
                    server = StreamServer(pipeline, port=port)
                    await server.start()
                await client.send_batch(*batch)
            await await_until(
                lambda: pipeline.pending_items == 0, message="backlog drained"
            )
            assert_bounds_valid(pipeline.sketch, exact)
        finally:
            await client.close()
            await server.stop()
            await pipeline.stop(final_snapshot=False)

    run(main())


# --------------------------------------------------------------------------
# Retry-loop calibration: jitter and the overall deadline (PR 9)


def test_deadline_raises_service_unavailable():
    """With a wall-clock deadline set, a dead cluster fails the request
    with ServiceUnavailableError well before the attempt budget — the
    knob latency-sensitive callers use instead of counting retries."""
    from repro.errors import ServiceUnavailableError

    async def main():
        loop = asyncio.get_running_loop()
        client = fast_client(1, max_retries=10_000, deadline=0.2)
        started = loop.time()
        with pytest.raises(ServiceUnavailableError, match="deadline"):
            await client.ping()
        elapsed = loop.time() - started
        assert elapsed < 5.0, "the deadline must cut the retry loop short"
        assert 0 < client.reconnects < 10_000

    run(main())


def test_backoff_jitter_stretches_delays(monkeypatch):
    """Jitter scales every backoff sleep by ``1 + jitter * random()``.
    With random() pinned to 1.0 the retry loop's wall clock becomes
    deterministic, so the jittered run must take measurably longer than
    the jitter-free one — proving the knob reaches the sleeps."""
    monkeypatch.setattr("random.random", lambda: 1.0)

    async def elapsed_with(jitter):
        loop = asyncio.get_running_loop()
        client = fast_client(
            1, max_retries=4, backoff_initial=0.02, backoff_max=0.02,
            backoff_jitter=jitter,
        )
        started = loop.time()
        with pytest.raises(ServiceClosedError, match="gave up after"):
            await client.ping()
        return loop.time() - started

    async def main():
        plain = await elapsed_with(0.0)      # 4 sleeps of 0.02s
        stretched = await elapsed_with(4.0)  # 4 sleeps of 0.10s
        assert stretched > plain
        assert stretched >= 0.3

    run(main())


def test_follower_retry_deadline_exhausts_cleanly():
    """A follower with a retry deadline against a vanished cluster stops
    with ServiceUnavailableError as its last error — still alive for
    reads — instead of redialing forever."""
    from repro.errors import ServiceUnavailableError
    from repro.service.replication import FollowerService, ReplicationConfig

    async def main():
        pipeline = IngestPipeline(
            FrequentItemsSketch(256, backend="columnar", seed=9),
            config=PipelineConfig(max_batch_items=512, flush_interval=0.002),
            replica=True,
        )
        await pipeline.start()
        follower = FollowerService(
            pipeline, "127.0.0.1", 1,
            config=ReplicationConfig(
                retry_initial=0.01, retry_max=0.05, max_retries=10_000,
                retry_deadline=0.2,
            ),
        )
        try:
            await follower.start()
            await await_until(
                lambda: follower.exhausted, message="retry deadline hit"
            )
            assert isinstance(follower.last_error, ServiceUnavailableError)
            assert "retry deadline" in str(follower.last_error)
            assert 0 < follower.reconnects < 10_000
            assert pipeline.estimate(1) == 0.0  # reads survive exhaustion
        finally:
            await follower.stop()
            await pipeline.stop(final_snapshot=False)

    run(main())
