"""Further property tests: extreme weights, update/merge interleaving,
serialization mid-stream, and cross-policy invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import FrequentItemsSketch, SampleQuantilePolicy
from repro.streams.exact import ExactCounter

EXTREME_UPDATES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),
        st.floats(min_value=1e-9, max_value=1e15, allow_nan=False,
                  allow_infinity=False),
    ),
    min_size=1,
    max_size=200,
)


@settings(max_examples=60, deadline=None)
@given(EXTREME_UPDATES)
def test_extreme_weights_keep_brackets(updates):
    sketch = FrequentItemsSketch(8, backend="dict", seed=1)
    exact = ExactCounter()
    for item, weight in updates:
        sketch.update(item, weight)
        exact.update(item, weight)
    for item, frequency in exact.items():
        # Relative tolerance: float summation order differs between the
        # sketch (decrements) and the exact counter.
        slack = 1e-9 * max(1.0, abs(frequency)) + 1e-6
        assert sketch.lower_bound(item) <= frequency + slack
        assert sketch.upper_bound(item) >= frequency - slack


@settings(max_examples=50, deadline=None)
@given(EXTREME_UPDATES, EXTREME_UPDATES)
def test_merge_equals_concatenation_bounds(first, second):
    """Merging summaries of two halves brackets the concatenated truth."""
    exact = ExactCounter()
    a = FrequentItemsSketch(8, backend="dict", seed=2)
    b = FrequentItemsSketch(8, backend="dict", seed=3)
    for item, weight in first:
        a.update(item, weight)
        exact.update(item, weight)
    for item, weight in second:
        b.update(item, weight)
        exact.update(item, weight)
    a.merge(b)
    assert a.stream_weight == pytest.approx(exact.total_weight, rel=1e-9)
    for item, frequency in exact.items():
        slack = 1e-9 * max(1.0, abs(frequency)) + 1e-6
        assert a.lower_bound(item) <= frequency + slack
        assert a.upper_bound(item) >= frequency - slack


@settings(max_examples=50, deadline=None)
@given(EXTREME_UPDATES, st.integers(min_value=0, max_value=199))
def test_serialize_mid_stream_then_continue(updates, cut_point):
    """A sketch serialized mid-stream and resumed keeps all guarantees."""
    cut = min(cut_point, len(updates))
    exact = ExactCounter()
    sketch = FrequentItemsSketch(8, backend="dict", seed=4)
    for item, weight in updates[:cut]:
        sketch.update(item, weight)
        exact.update(item, weight)
    resumed = FrequentItemsSketch.from_bytes(sketch.to_bytes())
    for item, weight in updates[cut:]:
        resumed.update(item, weight)
        exact.update(item, weight)
    assert resumed.stream_weight == pytest.approx(exact.total_weight, rel=1e-9)
    for item, frequency in exact.items():
        slack = 1e-9 * max(1.0, abs(frequency)) + 1e-6
        assert resumed.lower_bound(item) <= frequency + slack
        assert resumed.upper_bound(item) >= frequency - slack


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=40),
            st.integers(min_value=1, max_value=100),
        ),
        min_size=1,
        max_size=150,
    ),
    st.sampled_from([0.0, 0.3, 0.5, 0.8, 1.0]),
)
def test_counter_mass_never_exceeds_stream_weight(updates, quantile):
    """Invariant: sum of raw counters <= N for every policy and prefix."""
    sketch = FrequentItemsSketch(
        6, policy=SampleQuantilePolicy(quantile), backend="dict", seed=5
    )
    total = 0.0
    for item, weight in updates:
        sketch.update(item, float(weight))
        total += weight
        mass = sum(row.lower_bound for row in sketch.to_rows())
        assert mass <= total + 1e-6
        assert all(row.lower_bound > 0 for row in sketch.to_rows())


@settings(max_examples=40, deadline=None)
@given(EXTREME_UPDATES)
def test_offset_monotone_nondecreasing(updates):
    sketch = FrequentItemsSketch(6, backend="dict", seed=6)
    previous = 0.0
    for item, weight in updates:
        sketch.update(item, weight)
        assert sketch.maximum_error >= previous
        previous = sketch.maximum_error


def test_weight_accumulation_precision():
    """Billions of tiny updates next to huge ones: N stays coherent."""
    sketch = FrequentItemsSketch(4, backend="dict", seed=7)
    sketch.update(1, 1e15)
    for _ in range(1_000):
        sketch.update(2, 1e-3)
    assert sketch.stream_weight == pytest.approx(1e15 + 1.0, rel=1e-9)
