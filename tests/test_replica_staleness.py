"""Read-replica correctness at every staleness point.

A replica answers queries from whatever prefix of the leader's stream it
has applied, and stamps each response with that prefix's sequence (the
``Q*`` verbs).  The differential property, reusing the fuzz machinery of
``test_differential_fuzz``: for *any* stamped sequence ``s``, the answer
must satisfy the paper's Section 2.3.1 deterministic guarantees against
the exact oracle of exactly the first ``s`` micro-batches — bounds
bracket the true prefix count, absent items estimate to zero, and the
``phi``-heavy-hitter list recalls every item at or above ``phi * W_s``.
Staleness points are forced deterministically by freezing the follower
(stopping its stream consumer) while the leader advances, so stamps
strictly below the leader's sequence are guaranteed, not timing luck.
"""

import asyncio
import random

import numpy as np
import pytest

from repro import (
    FrequentItemsSketch,
    IngestPipeline,
    SnapshotManager,
)
from repro.service import ServiceClient, StreamServer
from repro.service.replication import FollowerService, ReplicationManager
from replication_harness import CLUSTER_CFG, FAST_REPL
from test_differential_fuzz import _draw_stream, _to_arrays

pytestmark = [pytest.mark.service, pytest.mark.replication]

UNIVERSE = 400
BATCHES = 10
BATCH_SIZE = 200


def run(coroutine):
    return asyncio.run(coroutine)


def draw_batches(seed):
    rng = random.Random(seed)
    items, weights = _draw_stream(
        rng, universe=UNIVERSE, n=BATCHES * BATCH_SIZE, max_weight=9
    )
    arrays = _to_arrays(items, weights)
    return [
        (arrays[0][lo : lo + BATCH_SIZE], arrays[1][lo : lo + BATCH_SIZE])
        for lo in range(0, len(items), BATCH_SIZE)
    ]


def prefix_oracles(batches):
    """``oracles[s]`` = exact counts and total weight after batch ``s``."""
    counts: dict[int, float] = {}
    oracles = [({}, 0.0)]
    total = 0.0
    for items, weights in batches:
        for item, weight in zip(items.tolist(), weights.tolist()):
            counts[item] = counts.get(item, 0.0) + weight
            total += weight
        oracles.append((dict(counts), total))
    return oracles


async def check_replica_answers(client, oracles, probes):
    """One round of stamped queries, validated against the stamped
    prefix's oracle.  Returns the staleness sequence observed."""
    seqs = set()
    for item in probes:
        seq, lower, estimate, upper = await client.qbounds(item)
        exact, _total = oracles[seq]
        true_count = exact.get(item, 0.0)
        assert lower - 1e-9 <= true_count <= upper + 1e-9, (
            f"bounds [{lower}, {upper}] miss exact {true_count} "
            f"for item {item} at staleness seq {seq}"
        )
        assert lower - 1e-9 <= estimate <= upper + 1e-9
        seqs.add(seq)
    # An item that never occurs anywhere must estimate to exactly zero.
    seq, estimate = await client.qest(UNIVERSE + 1)
    assert estimate == 0.0
    seqs.add(seq)
    # phi-heavy-hitter recall at the stamped prefix.
    phi = 0.05
    seq, pairs = await client.qhh(phi)
    exact, total = oracles[seq]
    returned = {item for item, _est in pairs}
    for item, true_count in exact.items():
        if total and true_count >= phi * total:
            assert item in returned, (
                f"item {item} (exact {true_count} >= {phi} * {total}) "
                f"missing from QHH at staleness seq {seq}"
            )
    seqs.add(seq)
    assert len(seqs) == 1, f"one query round spanned stamps {seqs}"
    return seqs.pop()


@pytest.mark.parametrize("seed", [101, 202])
def test_replica_queries_valid_at_every_staleness_point(seed, tmp_path):
    batches = draw_batches(seed)
    oracles = prefix_oracles(batches)
    probe_rng = random.Random(seed + 1)
    probes = probe_rng.sample(range(UNIVERSE), 40)

    async def main():
        leader = IngestPipeline(
            FrequentItemsSketch(64, backend="columnar", seed=7),
            config=CLUSTER_CFG,
            snapshots=SnapshotManager(str(tmp_path / f"leader-{seed}")),
            replication=ReplicationManager(FAST_REPL),
        )
        await leader.start()
        leader_server = StreamServer(leader)
        await leader_server.start()

        follower_pipe = IngestPipeline(
            FrequentItemsSketch(64, backend="columnar", seed=7),
            config=CLUSTER_CFG,
            snapshots=SnapshotManager(str(tmp_path / f"follower-{seed}")),
            replica=True,
        )
        await follower_pipe.start()
        follower = FollowerService(
            follower_pipe, "127.0.0.1", leader_server.port, config=FAST_REPL
        )
        replica_server = StreamServer(follower_pipe, follower=follower)
        await replica_server.start()
        await follower.start()
        client = await ServiceClient.connect("127.0.0.1", replica_server.port)
        try:
            observed = set()
            # Phase 1: replica attached and caught up after each batch.
            for upto, batch in enumerate(batches[:4], start=1):
                await leader.submit(*batch, wait_applied=True)
                await follower.wait_for_seq(leader.applied_seq)
                observed.add(
                    await check_replica_answers(client, oracles, probes)
                )
            # Phase 2: freeze the replica, let the leader run ahead —
            # every stamp now reports a genuinely stale prefix.
            await follower.stop()
            frozen_seq = follower_pipe.applied_seq
            for batch in batches[4:8]:
                await leader.submit(*batch, wait_applied=True)
                stamp = await check_replica_answers(client, oracles, probes)
                assert stamp == frozen_seq < leader.applied_seq
                observed.add(stamp)
            # Phase 3: resume, catch up, finish the stream.
            await follower.start()
            for batch in batches[8:]:
                await leader.submit(*batch, wait_applied=True)
            await follower.wait_for_seq(leader.applied_seq)
            stamp = await check_replica_answers(client, oracles, probes)
            assert stamp == leader.applied_seq == len(batches)
            observed.add(stamp)
            assert len(observed) >= 5, (
                f"expected many distinct staleness points, saw {observed}"
            )
        finally:
            await client.close()
            await follower.stop()
            await replica_server.stop()
            await follower_pipe.stop(final_snapshot=False)
            await leader_server.stop()
            await leader.stop(final_snapshot=False)

    run(main())
