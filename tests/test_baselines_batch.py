"""BatchUpdateMixin: every baseline speaks array batches, faithfully."""

import numpy as np
import pytest

from repro.baselines import (
    BatchUpdateMixin,
    CountMinSketch,
    CountSketch,
    LossyCounting,
    MisraGries,
    ReduceByMinCounter,
    RTUCMisraGries,
    RTUCSpaceSaving,
    SpaceSavingHeap,
    StickySampling,
    StreamSummary,
)
from repro.errors import InvalidUpdateError


def _weighted(seed, n=3_000, universe=400):
    rng = np.random.default_rng(seed)
    items = rng.integers(0, universe, size=n).astype(np.uint64)
    weights = rng.integers(1, 50, size=n).astype(np.float64)
    return items, weights


ALL_BASELINES = [
    MisraGries,
    SpaceSavingHeap,
    StreamSummary,
    ReduceByMinCounter,
    RTUCMisraGries,
    RTUCSpaceSaving,
    CountMinSketch,
    CountSketch,
    LossyCounting,
    StickySampling,
]


@pytest.mark.parametrize("cls", ALL_BASELINES)
def test_every_baseline_has_the_batch_api(cls):
    assert issubclass(cls, BatchUpdateMixin)


def _make(cls, seed=7):
    if cls in (CountMinSketch, CountSketch):
        return cls(4, 256, seed=seed)
    if cls is LossyCounting:
        return cls(0.01)
    if cls is StickySampling:
        return cls(0.01, delta=0.01, phi=0.05, seed=seed)
    return cls(48)


@pytest.mark.parametrize(
    "cls",
    [SpaceSavingHeap, ReduceByMinCounter, RTUCSpaceSaving, CountMinSketch,
     CountSketch, LossyCounting],
)
def test_batch_matches_scalar_weighted(cls):
    items, weights = _weighted(seed=1)
    scalar = _make(cls)
    for item, weight in zip(items.tolist(), weights.tolist()):
        scalar.update(item, weight)
    batched = _make(cls)
    batched.update_batch(items, weights)
    probe = np.unique(items)[:50].tolist() + [10**9]
    for item in probe:
        assert scalar.estimate(item) == batched.estimate(item), (cls, item)


@pytest.mark.parametrize("cls", [MisraGries, StreamSummary, RTUCMisraGries])
def test_batch_matches_scalar_unit(cls):
    items, _ = _weighted(seed=2)
    scalar = _make(cls)
    for item in items.tolist():
        scalar.update(item, 1.0)
    batched = _make(cls)
    batched.update_batch(items)
    probe = np.unique(items)[:50].tolist() + [10**9]
    for item in probe:
        assert scalar.estimate(item) == batched.estimate(item), (cls, item)


def test_countmin_vectorized_table_identical():
    items, weights = _weighted(seed=3)
    scalar = CountMinSketch(5, 512, seed=11)
    for item, weight in zip(items.tolist(), weights.tolist()):
        scalar.update(item, weight)
    batched = CountMinSketch(5, 512, seed=11)
    batched.update_batch(items, weights)
    assert np.array_equal(scalar._table, batched._table)
    assert scalar.stream_weight == batched.stream_weight
    assert scalar.stats.updates == batched.stats.updates


def test_countmin_order_sensitive_variants_fall_back():
    items, weights = _weighted(seed=4, n=800)
    for kwargs in ({"conservative": True}, {"track_top": 16}):
        scalar = CountMinSketch(4, 256, seed=5, **kwargs)
        for item, weight in zip(items.tolist(), weights.tolist()):
            scalar.update(item, weight)
        batched = CountMinSketch(4, 256, seed=5, **kwargs)
        batched.update_batch(items, weights)
        assert np.array_equal(scalar._table, batched._table), kwargs
        assert scalar._candidates == batched._candidates, kwargs


def test_batch_validation():
    sketch = SpaceSavingHeap(8)
    with pytest.raises(InvalidUpdateError):
        sketch.update_batch(np.array([1, 2]), np.array([1.0]))
    with pytest.raises(InvalidUpdateError):
        sketch.update_batch(np.array([[1]]), np.array([[1.0]]))
    cms = CountMinSketch(2, 64, seed=0)
    with pytest.raises(InvalidUpdateError):
        cms.update_batch(np.array([1]), np.array([-1.0]))
