"""Long-churn stress of the sketch on the array-backed stores.

The probing/Robin Hood tables see thousands of purge-and-refill cycles
here; after every phase the physical structure is validated (occupancy,
probe-path integrity) and the summary's brackets are re-checked against
exact counts.  This is the closest test to production wear.
"""

import pytest

from repro.core.frequent_items import FrequentItemsSketch
from repro.streams.exact import ExactCounter
from repro.streams.zipf import ZipfianStream


def _probe_paths_intact(table) -> bool:
    """Every element's home..slot path must be fully occupied."""
    states = table._states
    mask = table._mask
    for slot in range(len(states)):
        state = states[slot]
        if state == 0:
            continue
        for back in range(1, state):
            if states[(slot - back) & mask] == 0:
                return False
    return True


@pytest.mark.parametrize("backend", ["probing", "robinhood"])
def test_churn_preserves_structure_and_bounds(backend):
    sketch = FrequentItemsSketch(32, backend=backend, seed=3)
    exact = ExactCounter()
    stream = list(
        ZipfianStream(12_000, universe=4_000, alpha=0.9, seed=4,
                      weight_low=1, weight_high=20)
    )
    for phase in range(6):
        chunk = stream[phase * 2_000 : (phase + 1) * 2_000]
        for item, weight in chunk:
            sketch.update(item, weight)
            exact.update(item, weight)
        table = sketch._store
        assert len(table) <= 32
        assert _probe_paths_intact(table), (backend, phase)
        assert all(value > 0 for _key, value in table.items())
        # Brackets against ground truth, every phase.
        for item, frequency in exact.top_k(10):
            assert sketch.lower_bound(item) <= frequency + 1e-6
            assert sketch.upper_bound(item) >= frequency - 1e-6
    # The flat (alpha=0.9, heavy-churn) profile must have purged a lot.
    assert sketch.stats.decrements > 50
    assert sketch.stats.counters_freed > 500


@pytest.mark.parametrize("backend", ["probing", "robinhood"])
def test_interleaved_merge_churn(backend):
    """Merging into an actively churning sketch keeps everything sane."""
    main = FrequentItemsSketch(24, backend=backend, seed=5)
    exact = ExactCounter()
    for round_index in range(5):
        donor = FrequentItemsSketch(24, backend=backend, seed=100 + round_index)
        for item, weight in ZipfianStream(
            1_500, universe=600, alpha=1.1, seed=200 + round_index,
            weight_low=1, weight_high=30,
        ):
            donor.update(item, weight)
            exact.update(item, weight)
        main.merge(donor)
        for item, weight in ZipfianStream(
            1_000, universe=600, alpha=1.1, seed=300 + round_index,
            weight_low=1, weight_high=30,
        ):
            main.update(item, weight)
            exact.update(item, weight)
        assert _probe_paths_intact(main._store)
        assert main.stream_weight == pytest.approx(exact.total_weight)
    for item, frequency in exact.top_k(8):
        assert main.lower_bound(item) <= frequency + 1e-6
        assert main.upper_bound(item) >= frequency - 1e-6


def test_probing_state_bytes_stay_small_under_churn():
    """Section 2.3.3's 2-byte-state claim under thousands of purges."""
    sketch = FrequentItemsSketch(96, backend="probing", seed=6)
    for item, weight in ZipfianStream(
        20_000, universe=8_000, alpha=0.8, seed=7
    ):
        sketch.update(item, weight)
    assert sketch._store.max_state() < 1 << 14


def test_tiny_k_extreme_churn():
    """k=2: every other update can trigger a decrement; nothing breaks."""
    for backend in ("dict", "probing", "robinhood", "columnar"):
        sketch = FrequentItemsSketch(2, backend=backend, seed=8)
        exact = ExactCounter()
        for index in range(3_000):
            item = index % 37
            weight = float(index % 5 + 1)
            sketch.update(item, weight)
            exact.update(item, weight)
        assert len(sketch) <= 2
        for item in range(37):
            assert sketch.lower_bound(item) <= exact.frequency(item) + 1e-6
            assert sketch.upper_bound(item) >= min(
                exact.frequency(item), exact.frequency(item)
            ) - 1e-6
