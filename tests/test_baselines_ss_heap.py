"""Space Saving on a heap (SSH/MHE): Algorithm 2 semantics."""

import pytest

from repro.baselines import SpaceSavingHeap
from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.streams.exact import ExactCounter


def test_rejects_bad_parameters():
    with pytest.raises(InvalidParameterError):
        SpaceSavingHeap(0)
    ss = SpaceSavingHeap(4)
    with pytest.raises(InvalidUpdateError):
        ss.update(1, 0.0)
    with pytest.raises(InvalidUpdateError):
        ss.update(1, -1.0)


def test_exact_under_capacity():
    ss = SpaceSavingHeap(8)
    for item, weight in [(1, 5.0), (2, 3.0), (1, 2.0)]:
        ss.update(item, weight)
    assert ss.estimate(1) == 7.0
    assert ss.estimate(2) == 3.0
    assert ss.estimate(3) == 0.0
    assert ss.maximum_error == 0.0


def test_takeover_semantics():
    ss = SpaceSavingHeap(2)
    ss.update(1, 5.0)
    ss.update(2, 3.0)
    ss.update(3, 1.0)  # takes over the min counter (2, 3.0) -> (3, 4.0)
    assert 2 not in dict(ss.items())
    assert ss.estimate(3) == 4.0
    assert ss.estimate(1) == 5.0
    # Untracked item estimate = min counter (Algorithm 2's Estimate()).
    assert ss.estimate(2) == 4.0


def test_counter_sum_equals_stream_weight():
    """SS invariant: sum of counters == N exactly (no weight is lost)."""
    ss = SpaceSavingHeap(16)
    total = 0.0
    for index in range(3_000):
        weight = float(index % 9 + 1)
        ss.update(index % 300, weight)
        total += weight
    assert sum(value for _item, value in ss.items()) == pytest.approx(total)


def test_never_underestimates(zipf_weighted_stream, zipf_weighted_exact):
    ss = SpaceSavingHeap(64)
    for item, weight in zipf_weighted_stream:
        ss.update(item, weight)
    for item, frequency in zipf_weighted_exact.items():
        assert ss.estimate(item) >= frequency - 1e-6
        assert ss.upper_bound(item) >= frequency - 1e-6
        assert ss.lower_bound(item) <= frequency + 1e-6


def test_overestimate_bounded_by_min_counter(zipf_weighted_stream, zipf_weighted_exact):
    ss = SpaceSavingHeap(64)
    for item, weight in zipf_weighted_stream:
        ss.update(item, weight)
    cap = ss.maximum_error
    for item, frequency in zipf_weighted_exact.items():
        assert ss.estimate(item) - frequency <= cap + 1e-6


def test_heap_work_counted():
    ss = SpaceSavingHeap(64)
    for item in range(5_000):
        ss.update(item % 500, float(item % 7 + 1))
    assert ss.stats.heap_sifts > 0
    assert ss.stats.updates == 5_000


def test_space_exceeds_plain_table():
    """MHE pays for the heap on top of the hash index (Section 4.3)."""
    from repro.metrics.space import space_model_bytes

    assert SpaceSavingHeap(1024).space_bytes() > space_model_bytes("smed", 1024)
