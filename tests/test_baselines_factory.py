"""The by-name algorithm factory used by the benchmark harness."""

import pytest

from repro.baselines import ReduceByMinCounter, SpaceSavingHeap, make_algorithm
from repro.baselines.factory import make_med, make_quantile_variant, make_smed, make_smin
from repro.core.frequent_items import FrequentItemsSketch
from repro.core.policies import ExactKthLargestPolicy, SampleQuantilePolicy
from repro.errors import InvalidParameterError


def test_named_constructions():
    assert isinstance(make_algorithm("SMED", 16), FrequentItemsSketch)
    assert isinstance(make_algorithm("smin", 16), FrequentItemsSketch)
    assert isinstance(make_algorithm("MED", 16), FrequentItemsSketch)
    assert isinstance(make_algorithm("RBMC", 16), ReduceByMinCounter)
    assert isinstance(make_algorithm("MHE", 16), SpaceSavingHeap)


def test_policies_wired_correctly():
    smed = make_smed(16)
    assert isinstance(smed.policy, SampleQuantilePolicy)
    assert smed.policy.quantile == 0.5
    smin = make_smin(16)
    assert smin.policy.quantile == 0.0
    med = make_med(16)
    assert isinstance(med.policy, ExactKthLargestPolicy)
    sq70 = make_algorithm("SQ70", 16)
    assert sq70.policy.quantile == pytest.approx(0.70)


def test_quantile_variant_range_checked():
    assert make_quantile_variant(8, 0.3).policy.quantile == pytest.approx(0.3)
    with pytest.raises(InvalidParameterError):
        make_algorithm("SQ101", 8)
    with pytest.raises(InvalidParameterError):
        make_algorithm("SQxx", 8)


def test_unknown_name_rejected():
    with pytest.raises(InvalidParameterError):
        make_algorithm("FANCY", 8)


def test_all_factory_algorithms_share_update_interface(packet_stream):
    for name in ("SMED", "SMIN", "MED", "RBMC", "MHE", "SQ25"):
        algorithm = make_algorithm(name, 32, seed=1)
        for item, weight in packet_stream[:2_000]:
            algorithm.update(item, weight)
        assert algorithm.estimate(packet_stream[0][0]) >= 0.0
        assert algorithm.stats.updates == 2_000
