"""Every example script must run end to end and print what it promises.

The examples double as the library's executable documentation, so a
broken example is a broken deliverable.  Each runs in a subprocess with
a reduced workload where the script allows it, and the test checks for
the landmark strings the README points readers at.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def _run(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
def test_quickstart():
    out = _run("quickstart.py")
    assert "stream weight N" in out
    assert "heaviest tracked item" in out
    assert "certain heavy hitters" in out
    assert "serialized to" in out


@pytest.mark.slow
def test_network_telemetry():
    out = _run("network_telemetry.py")
    assert "top talkers" in out
    assert "hierarchical heavy hitters" in out
    assert "/32" in out or "/24" in out or "/8" in out


@pytest.mark.slow
def test_distributed_merge():
    out = _run("distributed_merge.py")
    assert "workers" in out
    assert "merged (8-way tree)" in out
    assert "single-pass sketch" in out


@pytest.mark.slow
def test_entropy_anomaly():
    out = _run("entropy_anomaly.py")
    assert "anomaly" in out
    assert "flood injected in window 7" in out
    # The injected window must be flagged.
    for line in out.splitlines():
        if line.strip().startswith("7 "):
            assert "anomaly" in line


@pytest.mark.slow
def test_sharded_ingest():
    out = _run("sharded_ingest.py")
    assert "shards (parallel)" in out
    assert "sharded speedup" in out
    assert "merge-on-query" in out
    assert "recall 1.00" in out


@pytest.mark.slow
def test_quantile_tradeoff():
    out = _run("quantile_tradeoff.py")
    assert "SMIN" in out
    assert "SMED (recommended)" in out


@pytest.mark.slow
def test_decayed_trending():
    out = _run("decayed_trending.py")
    assert "trending now" in out
    assert "the decayed sketch has moved on" in out
    # The time-fading sketch must rank the breakout item first.
    for line in out.splitlines():
        if line.startswith("time-fading"):
            assert line.rstrip().endswith("#1")


@pytest.mark.slow
def test_streaming_service():
    out = _run("streaming_service.py")
    assert "TCP producers" in out
    assert "recall vs exact oracle = 1.00" in out
    assert "bytes identical: True, PRNG identical: True" in out
    assert "recovered service keeps ingesting" in out


def test_all_examples_are_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    covered = {
        "quickstart.py",
        "network_telemetry.py",
        "distributed_merge.py",
        "entropy_anomaly.py",
        "quantile_tradeoff.py",
        "sharded_ingest.py",
        "decayed_trending.py",
        "streaming_service.py",
    }
    assert scripts == covered
