"""Adversarial streams: the constructions behave as specified."""

import pytest

from repro.errors import InvalidParameterError
from repro.streams.adversarial import (
    rbmc_killer_stream,
    two_phase_stream,
    uniform_random_stream,
)
from repro.streams.uniform import round_robin_stream, uniform_weighted_stream


def test_rbmc_killer_structure():
    k = 8
    tail = 20
    updates = list(rbmc_killer_stream(k, 1_000.0, tail))
    assert len(updates) == k + tail
    head, rest = updates[:k], updates[k:]
    assert all(weight == 1_000.0 for _item, weight in head)
    assert all(weight == 1.0 for _item, weight in rest)
    items = [item for item, _weight in updates]
    assert len(set(items)) == len(items)  # all distinct


def test_rbmc_killer_validation():
    with pytest.raises(InvalidParameterError):
        list(rbmc_killer_stream(0, 100.0, 10))
    with pytest.raises(InvalidParameterError):
        list(rbmc_killer_stream(4, 1.0, 10))


def test_rbmc_killer_id_offset():
    a = {item for item, _weight in rbmc_killer_stream(4, 10.0, 4, id_offset=0)}
    b = {item for item, _weight in rbmc_killer_stream(4, 10.0, 4, id_offset=100)}
    assert a.isdisjoint(b)


def test_uniform_random_stream():
    updates = list(uniform_random_stream(1_000, universe=50, seed=1))
    assert len(updates) == 1_000
    assert all(0 <= item < 50 for item, _weight in updates)
    assert all(weight == 1.0 for _item, weight in updates)
    weighted = list(
        uniform_random_stream(100, universe=50, seed=2, max_weight=9.0)
    )
    assert all(1.0 <= weight <= 9.0 for _item, weight in weighted)
    with pytest.raises(InvalidParameterError):
        list(uniform_random_stream(10, 0))
    with pytest.raises(InvalidParameterError):
        list(uniform_random_stream(10, 5, max_weight=0.5))


def test_two_phase_stream():
    updates = list(two_phase_stream(4, 500.0, 10, 2.0, seed=3))
    assert len(updates) == 14
    assert all(weight == 500.0 for _item, weight in updates[:4])
    assert all(1.8 <= weight <= 2.2 for _item, weight in updates[4:])
    with pytest.raises(InvalidParameterError):
        list(two_phase_stream(0, 1.0, 1, 1.0))


def test_uniform_weighted_stream():
    updates = uniform_weighted_stream(500, universe=30, seed=4,
                                      weight_low=2.0, weight_high=8.0)
    assert len(updates) == 500
    assert all(2.0 <= weight < 8.0 for _item, weight in updates)
    with pytest.raises(InvalidParameterError):
        uniform_weighted_stream(10, 5, weight_low=9.0, weight_high=5.0)


def test_round_robin_stream():
    updates = list(round_robin_stream(10, 3))
    assert [item for item, _weight in updates] == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]
    with pytest.raises(InvalidParameterError):
        list(round_robin_stream(10, 0))
