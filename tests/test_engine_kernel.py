"""The engine extraction is bit-identical and the kernel API is sound.

The golden hashes below were computed on the pre-engine
``FrequentItemsSketch`` (counter logic inlined in the class, PR 2 tree)
over fixed-seed workloads; the facade + :class:`SketchKernel` must
reproduce every one of them — serialized bytes, PRNG state, merge
results — exactly.
"""

import hashlib

import numpy as np
import pytest

from repro.core.frequent_items import FrequentItemsSketch
from repro.engine.kernel import SketchKernel
from repro.engine.query import QueryEngine
from repro.errors import IncompatibleSketchError, InvalidParameterError
from repro.streams.zipf import ZipfianStream

BACKENDS = ("dict", "probing", "robinhood", "columnar")

#: sha256(to_bytes()) after 20k scalar Zipf(1.1) updates, k=128, seed=11
#: — computed on the pre-engine implementation.
GOLDEN_BYTES = {
    "dict": "e1ec971850ea078569efa12043e3654e1610ee67b12fbc8abfec299ca3983270",
    "probing": "23fc4e19bc8b3f97ae6e0b1a56fd90133f96a2305dac5f2516f0deb11fe1c306",
    "robinhood": "118b742ae1062989b0916510d6ea7c26c0e68aaf45d9a375ea774a9c0c707110",
    "columnar": "e85276562a22ba8dbf18775c334b4c86829b988a1e48e6b93b1cb3ca6073bb58",
}
#: The PRNG state after the same feed (identical across backends: the
#: sampled decrement draws are backend-independent).
GOLDEN_RNG_STATE = (16158175513459802190, 8041277520670578783)
#: sha256(to_bytes()) after the Algorithm 5 merge of two half-streams,
#: k=64, seeds 3/4 — pre-engine values (covers the dict fast path, the
#: generic ingest loop, and the columnar batch merge).
GOLDEN_MERGE_BYTES = {
    "dict": "972067611c42547468a12d22b398282f63dc8e9064228726e37184480e0955ef",
    "probing": "a9e8342dc4d069f039985a35066b34a876e30d479760b586e19cd102769ba3a4",
    "columnar": "ee12bb616771e67b8925fc065e63f0d92e09b71feb75ae9f061f66473fad7954",
}


def _sha(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


@pytest.fixture(scope="module")
def golden_stream():
    return list(
        ZipfianStream(20_000, universe=2_000, alpha=1.1, seed=7,
                      weight_low=1, weight_high=100)
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_facade_bit_identical_to_pre_engine_sketch(golden_stream, backend):
    sketch = FrequentItemsSketch(128, backend=backend, seed=11)
    for item, weight in golden_stream:
        sketch.update(item, weight)
    assert _sha(sketch.to_bytes()) == GOLDEN_BYTES[backend]
    assert sketch._rng.getstate() == GOLDEN_RNG_STATE


@pytest.mark.parametrize("backend", sorted(GOLDEN_MERGE_BYTES))
def test_merge_bit_identical_to_pre_engine_sketch(golden_stream, backend):
    left = FrequentItemsSketch(64, backend=backend, seed=3)
    right = FrequentItemsSketch(64, backend=backend, seed=4)
    for index, (item, weight) in enumerate(golden_stream[:8_000]):
        (left if index % 2 else right).update(item, weight)
    left.merge(right)
    assert _sha(left.to_bytes()) == GOLDEN_MERGE_BYTES[backend]


def test_batch_path_hits_same_golden(golden_stream):
    items = np.array([item for item, _w in golden_stream], dtype=np.uint64)
    weights = np.array([w for _item, w in golden_stream], dtype=np.float64)
    sketch = FrequentItemsSketch(128, backend="columnar", seed=11)
    for start in range(0, len(items), 4096):
        sketch.update_batch(items[start : start + 4096],
                            weights[start : start + 4096])
    assert _sha(sketch.to_bytes()) == GOLDEN_BYTES["columnar"]
    assert sketch._rng.getstate() == GOLDEN_RNG_STATE


@pytest.mark.parametrize("backend", BACKENDS)
def test_copy_and_from_bytes_share_restore_path(golden_stream, backend):
    """copy() and from_bytes() both funnel through SketchKernel.restore."""
    sketch = FrequentItemsSketch(96, backend=backend, seed=21)
    for item, weight in golden_stream[:6_000]:
        sketch.update(item, weight)
    blob = sketch.to_bytes()

    dup = sketch.copy()
    assert dup.to_bytes() == blob
    # copy carries the PRNG forward; future behavior matches exactly.
    assert dup._rng.getstate() == sketch._rng.getstate()
    assert dup.stats.as_dict() == sketch.stats.as_dict()
    dup.update(999_999, 5.0)
    assert sketch.to_bytes() == blob  # original untouched

    revived = FrequentItemsSketch.from_bytes(blob)
    assert revived.to_bytes() == blob
    # from_bytes restarts the PRNG from the stored seed by design.
    assert revived._rng.getstate() == FrequentItemsSketch(
        96, backend=backend, seed=21
    )._rng.getstate()


def test_kernel_restore_empty_and_rng_state():
    kernel = SketchKernel(16, seed=5)
    restored = SketchKernel.restore(
        16, kernel.policy, "probing", 5,
        np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.float64),
        0.0, 0.0, rng_state=(123, 456),
    )
    assert len(restored) == 0
    assert restored.rng.getstate() == (123, 456)
    assert restored.is_empty()


def test_kernel_validation_and_self_merge():
    with pytest.raises(InvalidParameterError):
        SketchKernel(1)
    kernel = SketchKernel(8)
    with pytest.raises(IncompatibleSketchError):
        kernel.absorb(kernel)
    with pytest.raises(InvalidParameterError):
        kernel.rescale(-1.0)


@pytest.mark.parametrize("backend", BACKENDS)
def test_kernel_rescale_scales_counters_offset_and_weight(backend):
    kernel = SketchKernel(4, backend=backend, seed=1)
    for item in range(6):  # overflow k=4 so the offset is nonzero
        kernel.update(item, float(item + 1))
    assert kernel.offset > 0.0
    before = dict(kernel.store.items())
    offset, weight = kernel.offset, kernel.stream_weight
    kernel.rescale(0.5)
    assert kernel.offset == offset * 0.5
    assert kernel.stream_weight == weight * 0.5
    assert dict(kernel.store.items()) == {
        item: count * 0.5 for item, count in before.items()
    }
    # Scaling to zero purges everything.
    kernel.rescale(0.0)
    assert len(kernel.store) == 0
    assert kernel.stream_weight == 0.0


def test_facade_exposes_engine_objects():
    sketch = FrequentItemsSketch(32, seed=2)
    assert isinstance(sketch.kernel, SketchKernel)
    assert isinstance(sketch.query_engine, QueryEngine)
    assert sketch.query_engine.kernel is sketch.kernel
    # The historical private views alias the kernel state.
    sketch.update(7, 3.0)
    assert sketch._store is sketch.kernel.store
    assert sketch._offset == sketch.kernel.offset
    assert sketch._stream_weight == 3.0
    sketch._stream_weight = 10.0
    assert sketch.kernel.stream_weight == 10.0


def test_from_kernel_wraps_without_copying():
    kernel = SketchKernel(32, backend="dict", seed=9)
    kernel.update(1, 2.0)
    sketch = FrequentItemsSketch._from_kernel(kernel)
    assert sketch.estimate(1) == 2.0
    kernel.update(1, 3.0)
    assert sketch.estimate(1) == 5.0  # shared state, not a snapshot
