"""Error-guarantee properties of the sketch (Lemma 4 / Theorems 2 and 4).

These are the paper's central accuracy statements, tested mechanically:
for every item, ``lower <= f <= upper``; the offset bounds the maximum
underestimate; and the tail bound ``N^res(j)/(k* - j)`` holds with the
conservative k* = k/3 of Theorem 3's analysis.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import FrequentItemsSketch, SampleQuantilePolicy
from repro.metrics.accuracy import check_tail_bound, max_underestimate
from repro.streams.exact import ExactCounter

UPDATES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=80),
        st.floats(min_value=0.01, max_value=1000.0, allow_nan=False),
    ),
    min_size=1,
    max_size=400,
)


def _run(updates, k=8, quantile=0.5, seed=0):
    sketch = FrequentItemsSketch(
        k, policy=SampleQuantilePolicy(quantile), backend="dict", seed=seed
    )
    exact = ExactCounter()
    for item, weight in updates:
        sketch.update(item, weight)
        exact.update(item, weight)
    return sketch, exact


@settings(max_examples=80, deadline=None)
@given(UPDATES)
def test_bounds_always_bracket_truth(updates):
    sketch, exact = _run(updates)
    for item, frequency in exact.items():
        assert sketch.lower_bound(item) <= frequency + 1e-6
        assert sketch.upper_bound(item) >= frequency - 1e-6


@settings(max_examples=80, deadline=None)
@given(UPDATES)
def test_offset_bounds_max_underestimate(updates):
    """Lemma 4's practical face: f_i - lower_bound(i) <= offset."""
    sketch, exact = _run(updates)
    for item, frequency in exact.items():
        assert frequency - sketch.lower_bound(item) <= sketch.maximum_error + 1e-6


@settings(max_examples=80, deadline=None)
@given(UPDATES)
def test_estimates_never_exceed_upper_bound_nor_negative(updates):
    sketch, exact = _run(updates)
    for item in range(81):
        estimate = sketch.estimate(item)
        assert estimate >= 0.0
        assert estimate <= sketch.upper_bound(item) + 1e-9


@settings(max_examples=40, deadline=None)
@given(UPDATES, st.sampled_from([0.0, 0.25, 0.5, 0.75]))
def test_tail_bound_for_all_quantiles(updates, quantile):
    """Theorem 4 with k* = k/3 (valid for the median; conservative below)."""
    sketch, exact = _run(updates, k=12, quantile=quantile)
    k_star = sketch.max_counters / 3.0
    if quantile > 0.5:
        # Higher quantiles decrement more per pass; the guarantee scales
        # with the fraction of counters at or above the decrement value.
        k_star = sketch.max_counters * (1.0 - quantile) / 1.5
    check = check_tail_bound(sketch, exact, 0, k_star)
    assert check.holds, (check.observed, check.bound)


def test_tail_bound_with_j_on_skewed_stream(zipf_weighted_stream, zipf_weighted_exact):
    sketch = FrequentItemsSketch(64, backend="dict", seed=5)
    for item, weight in zipf_weighted_stream:
        sketch.update(item, weight)
    k_star = 64 / 3.0
    for j in (0, 4, 12):
        check = check_tail_bound(sketch, zipf_weighted_exact, j, k_star)
        assert check.holds, (j, check.observed, check.bound)


def test_untracked_items_estimate_zero_mg_property(zipf_unit_stream):
    """The MG half of the hybrid estimator: absent items report 0."""
    sketch = FrequentItemsSketch(32, backend="dict", seed=6)
    for item, weight in zipf_unit_stream:
        sketch.update(item, weight)
    never_seen = 10**15
    assert sketch.estimate(never_seen) == 0.0
    assert sketch.lower_bound(never_seen) == 0.0
    assert sketch.upper_bound(never_seen) == sketch.maximum_error


def test_ss_property_heavy_items_often_exact(zipf_unit_exact, zipf_unit_stream):
    """The SS half: the top item's estimate should be exactly correct
    (its counter was never evicted, so estimate = counter + offset >= f,
    and the upper bound is tight for items inserted before any purge)."""
    sketch = FrequentItemsSketch(64, backend="dict", seed=7)
    for item, weight in zipf_unit_stream:
        sketch.update(item, weight)
    top_item, top_frequency = zipf_unit_exact.top_k(1)[0]
    assert sketch.upper_bound(top_item) >= top_frequency
    assert sketch.estimate(top_item) >= top_frequency * 0.99


def test_smin_more_accurate_than_smed(packet_stream, packet_exact):
    """Figure 2's ordering at equal k: SMIN error <= SMED error."""
    smed = FrequentItemsSketch(
        64, policy=SampleQuantilePolicy(0.5), backend="dict", seed=8
    )
    smin = FrequentItemsSketch(
        64, policy=SampleQuantilePolicy(0.0), backend="dict", seed=8
    )
    for item, weight in packet_stream:
        smed.update(item, weight)
        smin.update(item, weight)
    assert max_underestimate(smin, packet_exact) <= max_underestimate(
        smed, packet_exact
    )


def test_error_shrinks_with_k(packet_stream, packet_exact):
    """Section 4.2: algorithms converge to exact as k grows."""
    errors = []
    for k in (16, 64, 256):
        sketch = FrequentItemsSketch(k, backend="dict", seed=9)
        for item, weight in packet_stream:
            sketch.update(item, weight)
        errors.append(max_underestimate(sketch, packet_exact))
    assert errors[0] > errors[1] > errors[2]


def test_decrement_cadence_theorem3(packet_stream):
    """Decrement passes must be at least ~k/3 updates apart on average."""
    k = 128
    sketch = FrequentItemsSketch(k, backend="dict", seed=10)
    for item, weight in packet_stream:
        sketch.update(item, weight)
    if sketch.stats.decrements:
        cadence = sketch.stats.updates / sketch.stats.decrements
        assert cadence >= k / 3.0
