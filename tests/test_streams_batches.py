"""Array-batch stream APIs: adapters and native batch generators."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.streams import (
    SyntheticPacketTrace,
    ZipfianStream,
    as_batches,
    concat_batches,
    flatten_batches,
    rbmc_killer_batches,
    rbmc_killer_stream,
    round_robin_batches,
    round_robin_stream,
    take_batches,
    uniform_random_batches,
    uniform_random_stream,
    uniform_weighted_batches,
    uniform_weighted_stream,
)
from repro.types import StreamUpdate


def _flat(batches):
    return list(flatten_batches(batches))


def test_as_batches_round_trips():
    updates = [StreamUpdate(i % 7, float(1 + i % 3)) for i in range(100)]
    batches = list(as_batches(updates, batch_size=32))
    assert [len(items) for items, _ in batches] == [32, 32, 32, 4]
    for items, weights in batches:
        assert items.dtype == np.uint64
        assert weights.dtype == np.float64
    assert _flat(batches) == updates
    with pytest.raises(InvalidParameterError):
        list(as_batches(updates, batch_size=0))


def test_take_and_concat_batches():
    updates = [StreamUpdate(i, 1.0) for i in range(50)]
    batches = list(as_batches(updates, batch_size=20))
    assert _flat(take_batches(batches, 33)) == updates[:33]
    assert _flat(take_batches(batches, 0)) == []
    assert _flat(take_batches(batches, 500)) == updates
    doubled = concat_batches(batches, batches)
    assert _flat(doubled) == updates + updates
    with pytest.raises(InvalidParameterError):
        list(take_batches(batches, -1))


def test_zipf_batches_match_iteration_at_any_batch_size():
    stream = ZipfianStream(
        4_000, universe=900, alpha=1.1, seed=5, weight_low=1, weight_high=100
    )
    scalar = list(stream)
    assert _flat(stream.batches(batch_size=123)) == scalar
    assert _flat(stream.batches(batch_size=4_000)) == scalar
    with pytest.raises(InvalidParameterError):
        next(stream.batches(batch_size=0))


def test_caida_batches_cover_stream_and_respect_batch_size():
    trace = SyntheticPacketTrace(5_000, unique_sources=500, seed=9)
    batches = list(trace.batches(batch_size=700))
    assert all(len(items) <= 700 for items, _ in batches)
    flattened = _flat(batches)
    assert len(flattened) == 5_000
    # At the constructor's batch size the batches are exactly __iter__.
    assert _flat(trace.batches()) == list(trace)


def test_uniform_batches_equal_scalar_streams():
    scalar = uniform_weighted_stream(300, 50, seed=3)
    assert _flat(uniform_weighted_batches(300, 50, seed=3, batch_size=64)) == scalar
    scalar = list(uniform_random_stream(300, 50, seed=4, max_weight=8.0))
    assert _flat(uniform_random_batches(300, 50, seed=4, max_weight=8.0,
                                        batch_size=64)) == scalar
    scalar = list(round_robin_stream(100, 7))
    assert _flat(round_robin_batches(100, 7, batch_size=13)) == scalar


def test_rbmc_killer_batches_equal_scalar_stream():
    scalar = list(rbmc_killer_stream(16, 1000.0, 200, id_offset=5))
    batched = _flat(rbmc_killer_batches(16, 1000.0, 200, id_offset=5, batch_size=33))
    assert batched == scalar
    with pytest.raises(InvalidParameterError):
        next(rbmc_killer_batches(0, 1000.0, 10))
    with pytest.raises(InvalidParameterError):
        next(rbmc_killer_batches(4, 0.5, 10))
