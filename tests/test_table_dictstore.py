"""DictCounterStore: interface parity with the probing table."""

import pytest

from repro.errors import InvalidParameterError, TableFullError
from repro.prng import Xoroshiro128PlusPlus
from repro.table import DictCounterStore, LinearProbingTable, make_store


def test_make_store_dispatch():
    assert isinstance(make_store("dict", 8), DictCounterStore)
    assert isinstance(make_store("probing", 8), LinearProbingTable)
    with pytest.raises(ValueError):
        make_store("bogus", 8)


def test_basic_operations():
    store = DictCounterStore(4)
    assert store.capacity == 4
    store.insert(1, 2.0)
    assert store.get(1) == 2.0
    assert store.add_to(1, 3.0) is True
    assert store.get(1) == 5.0
    assert store.add_to(2, 1.0) is False
    assert len(store) == 1
    assert 1 in store
    assert 2 not in store


def test_capacity_enforced():
    store = DictCounterStore(2)
    store.insert(1, 1.0)
    store.insert(2, 1.0)
    with pytest.raises(TableFullError):
        store.insert(3, 1.0)
    with pytest.raises(InvalidParameterError):
        store.insert(1, 1.0)  # duplicate


def test_decrement_and_purge():
    store = DictCounterStore(8)
    for key, value in [(1, 5.0), (2, 2.0), (3, 1.0)]:
        store.insert(key, value)
    freed = store.decrement_and_purge(2.0)
    assert freed == 2
    assert dict(store.items()) == {1: 3.0}


def test_values_and_sampling():
    store = DictCounterStore(8)
    for key in range(5):
        store.insert(key, float(key))
    assert sorted(store.values_list()) == [0.0, 1.0, 2.0, 3.0, 4.0]
    sample = store.sample_values(100, Xoroshiro128PlusPlus(1))
    assert len(sample) == 100
    assert set(sample) <= {0.0, 1.0, 2.0, 3.0, 4.0}
    store.clear()
    assert len(store) == 0
    with pytest.raises(InvalidParameterError):
        store.sample_values(1, Xoroshiro128PlusPlus(1))


def test_space_model_matches_probing_table_model():
    """Equal-space sweeps must charge both backends identically."""
    for capacity in (16, 100, 1024):
        assert (
            DictCounterStore(capacity).space_bytes()
            == LinearProbingTable(capacity).space_bytes()
        )


def test_parity_on_random_workload():
    """Both backends must expose identical logical contents."""
    import random

    random.seed(5)
    dict_store = DictCounterStore(20)
    probing = LinearProbingTable(20, hash_seed=44)
    for _ in range(500):
        action = random.random()
        if action < 0.5:
            key = random.randrange(40)
            if dict_store.get(key) is not None:
                dict_store.add_to(key, 1.0)
                probing.add_to(key, 1.0)
            elif len(dict_store) < 20:
                dict_store.insert(key, 1.0)
                probing.insert(key, 1.0)
        elif action < 0.7:
            amount = random.uniform(0.2, 1.5)
            assert dict_store.decrement_and_purge(amount) == \
                probing.decrement_and_purge(amount)
        else:
            key = random.randrange(40)
            a, b = dict_store.get(key), probing.get(key)
            assert (a is None) == (b is None)
            if a is not None:
                assert abs(a - b) < 1e-9
    assert dict(dict_store.items()) == pytest.approx(dict(probing.items()))
