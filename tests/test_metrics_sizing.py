"""Capacity planning helpers: k_for_error and friends."""

import pytest

from repro.baselines.factory import make_smed
from repro.errors import InvalidParameterError
from repro.metrics.accuracy import max_underestimate
from repro.metrics.sizing import k_for_error, k_for_phi_epsilon, k_for_workload
from repro.streams.exact import ExactCounter, exact_counts
from repro.streams.zipf import ZipfianStream


def test_k_for_error_formulas():
    assert k_for_error(3_000.0, 10.0, "smed") == 900  # 3N/err
    assert k_for_error(3_000.0, 10.0, "exact") == 299  # N/err - 1
    assert k_for_error(10.0, 100.0) == 2  # floor at the minimum k


def test_k_for_error_validation():
    with pytest.raises(InvalidParameterError):
        k_for_error(0.0, 1.0)
    with pytest.raises(InvalidParameterError):
        k_for_error(1.0, 0.0)
    with pytest.raises(InvalidParameterError):
        k_for_error(1.0, 1.0, family="bogus")


def test_k_for_phi_epsilon():
    # epsilon = 0.001 of the stream weight -> k = 3/0.001 for SMED.
    assert k_for_phi_epsilon(0.01, 0.001, "smed") == 3_000
    assert k_for_phi_epsilon(0.01, 0.001, "exact") == 999
    with pytest.raises(InvalidParameterError):
        k_for_phi_epsilon(0.01, 0.02)


def test_recommended_k_actually_meets_target():
    """End-to-end: size from the bound, run, verify the observed error."""
    stream = list(
        ZipfianStream(20_000, universe=3_000, alpha=1.2, seed=1,
                      weight_low=1, weight_high=100)
    )
    exact = ExactCounter()
    exact.update_all(stream)
    target = exact.total_weight / 150.0
    k = k_for_error(exact.total_weight, target, "smed")
    sketch = make_smed(k, seed=2)
    for item, weight in stream:
        sketch.update(item, weight)
    assert max_underestimate(sketch, exact) <= target + 1e-6
    assert sketch.maximum_error <= target + 1e-6


def test_workload_aware_k_is_smaller_on_skew():
    skewed = ExactCounter()
    skewed.update_all(
        ZipfianStream(20_000, universe=3_000, alpha=1.6, seed=3,
                      weight_low=1, weight_high=100)
    )
    target = skewed.total_weight / 300.0
    distribution_free = k_for_error(skewed.total_weight, target, "smed")
    workload_aware = k_for_workload(skewed, target, "smed")
    assert workload_aware < distribution_free
    # And it must actually certify: the tail bound at that k meets target.
    k_star = workload_aware / 3.0
    assert any(
        skewed.residual_weight(j) / (k_star - j) <= target
        for j in range(0, int(k_star))
    )


def test_workload_aware_k_meets_target_in_practice():
    exact = ExactCounter()
    stream = list(
        ZipfianStream(15_000, universe=2_000, alpha=1.5, seed=4,
                      weight_low=1, weight_high=50)
    )
    exact.update_all(stream)
    target = exact.total_weight / 200.0
    k = k_for_workload(exact, target, "smed")
    sketch = make_smed(k, seed=5)
    for item, weight in stream:
        sketch.update(item, weight)
    assert max_underestimate(sketch, exact) <= target + 1e-6


def test_workload_validation():
    with pytest.raises(InvalidParameterError):
        k_for_workload(exact_counts([]), 1.0)
    with pytest.raises(InvalidParameterError):
        k_for_workload(exact_counts([(1, 10.0)]), 0.0)
    with pytest.raises(InvalidParameterError):
        # Impossible target under a tiny cap.
        k_for_workload(exact_counts([(i, 1.0) for i in range(100)]), 1e-9, max_k=16)
