"""fmix64 / hash_u64 / item_to_u64: bijectivity, seeds, item mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.hashing.mixers import fmix64, hash_u64, item_to_u64

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


@given(U64)
def test_fmix64_in_range(x):
    assert 0 <= fmix64(x) < 1 << 64


def test_fmix64_known_fixed_point():
    # fmix64(0) == 0 is the mixer's one well-known fixed point.
    assert fmix64(0) == 0


def test_fmix64_injective_on_sample():
    values = [fmix64(x) for x in range(20_000)]
    assert len(set(values)) == 20_000


def test_fmix64_avalanche():
    """Flipping one input bit should flip roughly half the output bits."""
    base = fmix64(0x123456789ABCDEF0)
    for bit in range(0, 64, 7):
        flipped = fmix64(0x123456789ABCDEF0 ^ (1 << bit))
        distance = bin(base ^ flipped).count("1")
        assert 16 <= distance <= 48, f"bit {bit}: distance {distance}"


@given(U64)
def test_hash_u64_seed_zero_differs_from_identity(x):
    # Not a strict requirement for any single x, but collisions with the
    # identity map should be essentially impossible on random inputs.
    assert 0 <= hash_u64(x, 0) < 1 << 64


def test_hash_u64_seeds_are_independent():
    keys = list(range(1000))
    h0 = [hash_u64(k, 0) for k in keys]
    h1 = [hash_u64(k, 1) for k in keys]
    agreements = sum(1 for a, b in zip(h0, h1) if (a & 1023) == (b & 1023))
    assert agreements < 30  # ~ 1000/1024 expected by chance


def test_hash_u64_injective_per_seed():
    values = {hash_u64(x, 7) for x in range(10_000)}
    assert len(values) == 10_000


def test_item_to_u64_small_ints_passthrough():
    for x in (0, 1, 42, (1 << 64) - 1):
        assert item_to_u64(x) == x


def test_item_to_u64_negative_and_huge_ints_fold():
    assert 0 <= item_to_u64(-5) < 1 << 64
    assert 0 <= item_to_u64(1 << 100) < 1 << 64
    assert item_to_u64(-5) != item_to_u64(5)
    assert item_to_u64(1 << 100) != item_to_u64(1 << 101)


def test_item_to_u64_bool():
    assert item_to_u64(True) == 1
    assert item_to_u64(False) == 0


def test_item_to_u64_strings_and_bytes():
    assert item_to_u64("alpha") == item_to_u64("alpha")
    assert item_to_u64("alpha") != item_to_u64("beta")
    assert item_to_u64(b"alpha") == item_to_u64(bytearray(b"alpha"))
    assert 0 <= item_to_u64("alpha") < 1 << 64


def test_item_to_u64_rejects_unknown_types():
    with pytest.raises(TypeError):
        item_to_u64(3.14)
    with pytest.raises(TypeError):
        item_to_u64(["list"])


@given(st.text(max_size=50))
def test_item_to_u64_text_deterministic(text):
    assert item_to_u64(text) == item_to_u64(text)
