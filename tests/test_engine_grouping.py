"""BatchGrouper: sort-free grouping must match the dict-based reference.

The grouper replaces ``np.unique(..., return_inverse=True)`` in the
batch ingest kernel; these tests pin the exact contract the kernel
depends on — first-occurrence group order (which fixes insertion order
on order-sensitive stores), ``uniq[inverse] == items``, and scratch
reuse across calls of wildly different sizes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.grouping import BatchGrouper


def _reference(items):
    seen = {}
    uniq = []
    inverse = []
    for key in items.tolist():
        if key not in seen:
            seen[key] = len(uniq)
            uniq.append(key)
        inverse.append(seen[key])
    return uniq, inverse


@settings(deadline=None, max_examples=60)
@given(
    raw=st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=300)
)
def test_grouping_matches_reference(raw):
    items = np.array(raw, dtype=np.uint64)
    uniq, inverse, num_groups = BatchGrouper().group(items)
    ref_uniq, ref_inverse = _reference(items)
    assert uniq.tolist() == ref_uniq
    assert inverse.tolist() == ref_inverse
    assert num_groups == len(ref_uniq)
    if len(items):
        assert (uniq[inverse] == items).all()


def test_scratch_reuse_across_varied_batches():
    grouper = BatchGrouper()
    rng = np.random.default_rng(17)
    for trial in range(50):
        n = int(rng.integers(0, 12_000))
        items = rng.integers(0, max(1, n // 3 + 1), size=n, dtype=np.uint64)
        uniq, inverse, num_groups = grouper.group(items)
        ref_uniq, ref_inverse = _reference(items)
        assert uniq.tolist() == ref_uniq
        assert inverse.tolist() == ref_inverse
        assert num_groups == len(ref_uniq)


def test_grouping_is_sort_free(monkeypatch):
    """The whole point: no comparison sort on the key batch."""
    def forbidden(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("BatchGrouper must not sort")

    monkeypatch.setattr(np, "sort", forbidden)
    monkeypatch.setattr(np, "argsort", forbidden)
    monkeypatch.setattr(np, "unique", forbidden)
    items = np.array([5, 3, 5, 9, 3, 1], dtype=np.uint64)
    uniq, inverse, num_groups = BatchGrouper().group(items)
    assert uniq.tolist() == [5, 3, 9, 1]
    assert inverse.tolist() == [0, 1, 0, 2, 1, 3]
    assert num_groups == 4


def test_empty_batch():
    uniq, inverse, num_groups = BatchGrouper().group(np.empty(0, dtype=np.uint64))
    assert len(uniq) == 0 and len(inverse) == 0 and num_groups == 0


def test_adversarial_same_hash_prefix():
    """Dense sequential keys and giant keys both survive probing rounds."""
    items = np.concatenate(
        [
            np.arange(2_000, dtype=np.uint64),
            np.arange(2_000, dtype=np.uint64),
            np.array([(1 << 64) - 1, 0, (1 << 63)], dtype=np.uint64),
        ]
    )
    uniq, inverse, num_groups = BatchGrouper().group(items)
    assert num_groups == 2_002
    assert (uniq[inverse] == items).all()


@pytest.mark.parametrize("seed", [0, 5, 99])
def test_hash_u64_array_matches_scalar(seed):
    from repro.hashing.mixers import hash_u64, hash_u64_array

    keys = np.array(
        [0, 1, 2, 12345, (1 << 53) + 7, (1 << 64) - 1], dtype=np.uint64
    )
    vectorized = hash_u64_array(keys, seed)
    for key, hashed in zip(keys.tolist(), vectorized.tolist()):
        assert hashed == hash_u64(key, seed)
