"""Functional coverage of the multi-process tenant cluster.

Everything here forks real worker processes (and maps real shared
memory), so the whole module carries the ``cluster`` marker — excluded
from tier-1, run by the ``cluster-tests`` CI job under both
``REPRO_NATIVE`` settings.
"""

import asyncio
import json
import subprocess
import sys

import numpy as np
import pytest

from helpers import zipf_batch
from repro.errors import ClusterError, InvalidParameterError
from repro.service.client import ClusterClient, ServiceError
from repro.service.cluster import (
    ClusterConfig,
    ClusterServer,
    TenantSpec,
    WorkerPool,
)
from repro.sharded.partition import shard_ids

pytestmark = [pytest.mark.cluster, pytest.mark.service]


def chunked_oracle(k, seed, batches, chunk):
    """The in-process reference: update_batch at the exact frame
    boundaries the acceptor ships (chunks of ``chunk`` updates)."""
    from repro.core.frequent_items import FrequentItemsSketch

    sketch = FrequentItemsSketch(k, backend="columnar", seed=seed)
    for items, weights in batches:
        for lo in range(0, len(items), chunk):
            sketch.update_batch(items[lo : lo + chunk], weights[lo : lo + chunk])
    return sketch


# -- tenant registry ---------------------------------------------------------


def test_tenant_spec_validation():
    with pytest.raises(InvalidParameterError):
        TenantSpec(name="")
    with pytest.raises(InvalidParameterError):
        TenantSpec(name="has space")
    with pytest.raises(InvalidParameterError):
        TenantSpec(name="shard#0")  # '#' is reserved for substreams
    with pytest.raises(InvalidParameterError):
        TenantSpec(name="t", k=1)
    with pytest.raises(InvalidParameterError):
        TenantSpec(name="t", shards=-1)
    assert TenantSpec(name="ok-name_1.x").substreams() == ["ok-name_1.x"]
    assert TenantSpec(name="s", shards=3).substreams() == ["s#0", "s#1", "s#2"]


def test_cluster_config_validation():
    with pytest.raises(InvalidParameterError):
        ClusterConfig(num_workers=0)
    with pytest.raises(InvalidParameterError):
        ClusterConfig(frame_transport="carrier-pigeon")
    with pytest.raises(InvalidParameterError):
        ClusterConfig(ring_slots=0)


def test_create_list_drop():
    async def scenario():
        async with WorkerPool(ClusterConfig(num_workers=2)) as pool:
            await pool.create_tenant("a", k=64)
            await pool.create_tenant("b", k=128, shards=2)
            names = [spec.name for spec in pool.list_tenants()]
            assert names == ["a", "b"]
            # Identical spec: idempotent no-op.
            await pool.create_tenant("a", k=64)
            # Conflicting spec: refused.
            with pytest.raises(InvalidParameterError):
                await pool.create_tenant("a", k=256)
            await pool.drop_tenant("a")
            assert [spec.name for spec in pool.list_tenants()] == ["b"]
            with pytest.raises(ClusterError):
                await pool.estimate("a", 1)

    asyncio.run(scenario())


def test_registry_persists_across_restart(tmp_path):
    config = ClusterConfig(num_workers=2, data_dir=str(tmp_path))

    async def first():
        async with WorkerPool(config) as pool:
            await pool.create_tenant("kept", k=64, seed=9)
            await pool.submit("kept", np.arange(100, dtype=np.uint64) % 7)
            await pool.drain()
            return await pool.tenant_blobs("kept")

    async def second():
        async with WorkerPool(config) as pool:
            specs = pool.list_tenants()
            assert [spec.name for spec in specs] == ["kept"]
            assert specs[0].k == 64 and specs[0].seed == 9
            return await pool.tenant_blobs("kept")

    assert asyncio.run(first()) == asyncio.run(second())


# -- ingest and queries ------------------------------------------------------


def test_queries_match_oracle():
    items, weights = zipf_batch(n=30_000, universe=500, seed=13)
    config = ClusterConfig(num_workers=3, slot_capacity=4096)

    async def scenario():
        async with WorkerPool(config) as pool:
            await pool.create_tenant("t", k=256, seed=4)
            await pool.submit("t", items, weights)
            # No drain: queries must still see every shipped frame
            # (read-your-writes — the worker consumes its ring before
            # answering).
            oracle = chunked_oracle(256, 4, [(items, weights)], 4096)
            probe = items[:50].tolist() + [2**63]
            for item in probe:
                assert await pool.estimate("t", item) == oracle.estimate(item)
                lower, est, upper = await pool.bounds("t", item)
                assert (lower, est, upper) == (
                    oracle.lower_bound(item),
                    oracle.estimate(item),
                    oracle.upper_bound(item),
                )
            _seq, rows = await pool.heavy_hitters("t", 0.01)
            assert rows == oracle.heavy_hitters(0.01)

    asyncio.run(scenario())


def test_sharded_tenant_partitions_like_library():
    """A sharded tenant's substreams hold exactly the library partition:
    each substream blob equals a flat sketch fed that shard's slice."""
    items, weights = zipf_batch(n=20_000, universe=300, seed=21)
    shards, seed = 3, 17

    async def scenario():
        from repro.service.snapshot import decode_snapshot
        from repro.sharded.sketch import _shard_seed

        config = ClusterConfig(num_workers=2, slot_capacity=2048)
        async with WorkerPool(config) as pool:
            await pool.create_tenant("s", k=128, seed=seed, shards=shards)
            await pool.submit("s", items, weights)
            await pool.drain()
            blobs = await pool.tenant_blobs("s")
            owners = shard_ids(items, shards, seed)
            for index in range(shards):
                mask = owners == index
                reference = chunked_oracle(
                    128, _shard_seed(seed, index),
                    [(items[mask], weights[mask])], 2048,
                )
                sketch, _seq = decode_snapshot(blobs[f"s#{index}"])
                assert sketch.to_bytes() == reference.to_bytes(), index

    asyncio.run(scenario())


def test_pipe_transport_parity():
    items, weights = zipf_batch(n=10_000, universe=200, seed=3)

    async def run(transport):
        config = ClusterConfig(
            num_workers=2, frame_transport=transport, slot_capacity=1024
        )
        async with WorkerPool(config) as pool:
            await pool.create_tenant("t", k=64, seed=1)
            await pool.submit("t", items, weights)
            return await pool.tenant_blobs("t")

    assert asyncio.run(run("shm")) == asyncio.run(run("pipe"))


def test_merged_view_cache_invalidates_on_write():
    async def scenario():
        async with WorkerPool(ClusterConfig(num_workers=2)) as pool:
            await pool.create_tenant("t", k=64)
            await pool.submit("t", np.array([5, 5], dtype=np.uint64))
            seq1, rows1 = await pool.global_heavy_hitters(0.1)
            # Quiet cluster: the answer is served from the cached merge.
            seq2, rows2 = await pool.global_heavy_hitters(0.1)
            assert (seq1, rows1) == (seq2, rows2)
            assert pool._view_cache  # the cache actually engaged
            await pool.submit("t", np.array([9], dtype=np.uint64))
            seq3, rows3 = await pool.global_heavy_hitters(0.1)
            assert seq3 == seq1 + 1
            assert {row.item for row in rows3} == {5, 9}

    asyncio.run(scenario())


def test_worker_death_raises_and_recovery_works(tmp_path):
    config = ClusterConfig(num_workers=2, data_dir=str(tmp_path))

    async def scenario():
        async with WorkerPool(config) as pool:
            await pool.create_tenant("t", k=64)
            await pool.submit("t", np.arange(64, dtype=np.uint64))
            await pool.drain()
            reference = await pool.tenant_blobs("t")
            pool.kill_worker(pool.owner_of("t"))
            await asyncio.sleep(0.05)
            with pytest.raises(ClusterError):
                await pool.estimate("t", 1)
            with pytest.raises(ClusterError):
                await pool.submit("t", np.array([1], dtype=np.uint64))
        # Restart over the same directory: bit-identical recovery.
        async with WorkerPool(config) as pool:
            assert await pool.tenant_blobs("t") == reference

    asyncio.run(scenario())


# -- the TCP front end -------------------------------------------------------


def test_cluster_server_protocol():
    async def scenario():
        async with WorkerPool(ClusterConfig(num_workers=2)) as pool:
            async with ClusterServer(pool) as server:
                client = await ClusterClient.connect("127.0.0.1", server.port)
                assert await client.ping()

                spec = await client.tcreate("clicks", k=128, shards=2)
                assert spec == {
                    "name": "clicks", "k": 128, "backend": "columnar",
                    "seed": 0, "shards": 2,
                }
                items = np.array([1, 1, 1, 2, 3], dtype=np.uint64)
                assert await client.tsend_batch("clicks", items) == 5
                assert await client.testimate("clicks", 1) == 3.0
                lower, est, upper = await client.tbounds("clicks", 1)
                assert lower <= 3.0 <= upper and est == 3.0
                seq, rows = await client.thh("clicks", 0.1)
                assert seq >= 1 and rows[0] == (1, 3.0)

                # Legacy verbs hit the implicit default tenant.
                await client.update(42, 2.0)
                assert await client.estimate(42) == 2.0
                assert await client.send_batch(
                    np.array([42], dtype=np.uint64)
                ) == 1
                assert await client.heavy_hitters(0.1) == [(42, 3.0)]

                # Global views merge every tenant.
                gseq, gest = await client.qest(1)
                assert gest == 3.0 and gseq >= 2
                _seq, ghh = await client.qhh(0.05)
                assert dict(ghh) == {1: 3.0, 2: 1.0, 3: 1.0, 42: 3.0}

                assert await client.drain() >= 2
                names = [entry["name"] for entry in await client.tlist()]
                assert names == ["clicks", "default"]

                stats = await client.stats()
                assert stats["num_workers"] == 2
                assert stats["routing"] == "ketama"
                assert stats["frame_transport"] in ("shm", "pipe")
                assert len(stats["workers"]) == 2

                await client.tdrop("clicks")
                with pytest.raises(ServiceError):
                    await client.testimate("clicks", 1)
                with pytest.raises(ServiceError):
                    await client.tcreate("bad name!")
                await client.close()

    asyncio.run(scenario())


def test_cluster_server_tbin_error_keeps_stream_in_sync():
    """A TBIN for an unknown tenant consumes its payload and answers ERR
    without closing — the next request on the connection still parses."""
    from repro.service import protocol

    async def scenario():
        async with WorkerPool(ClusterConfig(num_workers=1)) as pool:
            async with ClusterServer(pool) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                items = np.array([1, 2], dtype=np.uint64)
                weights = np.ones(2)
                writer.write(protocol.encode_tbin_frame("ghost", items, weights))
                await writer.drain()
                line = await reader.readline()
                assert line.startswith(b"ERR unknown tenant")
                writer.write(b"PING\n")
                await writer.drain()
                assert await reader.readline() == b"PONG\n"
                writer.close()

    asyncio.run(scenario())


# -- the command line --------------------------------------------------------


def test_follow_plus_workers_refused():
    from repro.errors import UsageError
    from repro.service.__main__ import build_parser, check_args

    args = build_parser().parse_args(
        ["--follow", "leader:9471", "--workers", "4"]
    )
    with pytest.raises(UsageError, match="mutually exclusive"):
        check_args(args)
    # And through the real entry point: exit status 2, message on stderr.
    result = subprocess.run(
        [sys.executable, "-m", "repro.service",
         "--follow", "leader:9471", "--workers", "4"],
        capture_output=True, text=True, timeout=60,
    )
    assert result.returncode == 2
    assert "mutually exclusive" in result.stderr


def test_workers_flag_serves_cluster():
    """``python -m repro.service --workers 2`` comes up, speaks the
    tenant protocol, and shuts down cleanly."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service",
         "--workers", "2", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        banner = process.stdout.readline()
        assert "tenant cluster" in banner and "workers=2" in banner
        port = int(banner.split(":")[1].split()[0])

        async def poke():
            client = await ClusterClient.connect("127.0.0.1", port)
            await client.tcreate("t", k=64)
            await client.tupdate("t", 7, 2.0)
            assert await client.testimate("t", 7) == 2.0
            assert json.loads(
                json.dumps(await client.stats())
            )["num_workers"] == 2
            await client.close()

        asyncio.run(poke())
    finally:
        process.terminate()
        process.wait(timeout=30)
