"""Three-node automatic-failover harness with a per-link fault plane.

Extends :mod:`replication_harness` from one leader/one follower to a
full replica set running the PR's failover plane: every node is a real
pipeline + TCP server + :class:`~repro.service.failover.
FailoverCoordinator`, with its election state persisted to its own
directory and its disk traffic routed through a per-node
:class:`~repro.service.faults.DiskFaultPlane`.

**Every inter-node link goes through its own**
:class:`~repro.service.faults.NetworkFaultProxy`: node ``a`` dials node
``b`` at ``a``'s private proxy for ``b``, never at ``b``'s real port.
That is what makes partitions airtight — ``REPL LEADER`` announcements
carry the winner's *real* address, but
``handle_leader_announcement`` resolves the leader through the local
peer map, so a blocked node cannot learn a bypass route from an
announcement that slipped through before the cut.

Determinism is inherited from :data:`replication_harness.CLUSTER_CFG`:
one submission per micro-batch, so every replica replays identical
``update_batch`` calls and byte-identity (serialized sketch plus
xoroshiro state words) against a plain reference loop is a meaningful
assertion after any failover.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Optional

from repro import IngestPipeline, SnapshotManager, StreamServer
from repro.service.failover import (
    EpochStore,
    FailoverConfig,
    FailoverCoordinator,
)
from repro.service.faults import DiskFaultPlane, NetworkFaultProxy
from repro.service.replication import ReplicationManager

from replication_harness import (  # noqa: F401  (re-exported for tests)
    CLUSTER_CFG,
    FAST_REPL,
    SKETCH_MAKERS,
    make_feed,
    reference_state,
    rng_states,
)

#: Sub-second failure detection so a full chaos scenario runs in a few
#: seconds.  The miss window is five heartbeat intervals of FAST_REPL —
#: the same ratio the production defaults keep (2.0 s over 0.5 s beats).
FAST_FAILOVER = FailoverConfig(
    heartbeat_miss_window=0.5,
    check_interval=0.05,
    election_timeout=2.0,
    election_backoff=0.15,
    rpc_timeout=0.4,
    peer_poll_interval=0.2,
    jitter=0.5,
)


class FailoverNode:
    """One replica: pipeline, server, coordinator, and its fault hooks.

    ``proxies[peer_id]`` is the :class:`NetworkFaultProxy` *this* node
    dials to reach ``peer_id``; ``disk`` is the node's
    :class:`DiskFaultPlane`, threaded into its snapshot manager.
    """

    def __init__(self, node_id: str, directory: str) -> None:
        self.node_id = node_id
        self.directory = directory
        self.disk = DiskFaultPlane()
        self.proxies: dict[str, NetworkFaultProxy] = {}
        self.pipeline: Optional[IngestPipeline] = None
        self.server: Optional[StreamServer] = None
        self.coordinator: Optional[FailoverCoordinator] = None
        self.port: Optional[int] = None  # stable across restarts

    @property
    def alive(self) -> bool:
        return self.pipeline is not None

    @property
    def is_leader(self) -> bool:
        return self.alive and not self.pipeline.is_replica

    def state(self):
        """(serialized bytes, PRNG state words) — the byte-identity probe."""
        sketch = self.pipeline.sketch
        return sketch.to_bytes(), rng_states(sketch)


class FailoverCluster:
    """A replica set with automatic failover and per-link fault proxies.

    Parameters
    ----------
    make_sketch:
        Zero-argument sketch factory (see ``SKETCH_MAKERS``).
    tmp_path:
        Parent directory; each node gets its own subdirectory for
        snapshots, WAL, and ``election.json``.
    num_nodes:
        Replica-set size; ``n0`` starts as the leader.  Three nodes give
        quorum 2, so any single failure is survivable and any isolated
        minority of one cannot elect.
    """

    def __init__(
        self,
        make_sketch,
        tmp_path,
        *,
        num_nodes: int = 3,
        failover_config: FailoverConfig = FAST_FAILOVER,
        repl_config=FAST_REPL,
        config=CLUSTER_CFG,
    ) -> None:
        self._make_sketch = make_sketch
        self._config = config
        self._repl_config = repl_config
        self._failover_config = failover_config
        self.node_ids = [f"n{i}" for i in range(num_nodes)]
        self.nodes = {
            node_id: FailoverNode(node_id, str(tmp_path / node_id))
            for node_id in self.node_ids
        }

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "FailoverCluster":
        """Boot the whole set: servers first (ports), then the proxy
        mesh, then the coordinators (which need proxied peer maps)."""
        for node_id in self.node_ids:
            await self._start_node(node_id, replica=(node_id != "n0"))
        for node in self.nodes.values():
            for peer_id in self.node_ids:
                if peer_id == node.node_id:
                    continue
                proxy = NetworkFaultProxy(
                    "127.0.0.1", self.nodes[peer_id].port
                )
                node.proxies[peer_id] = await proxy.start()
        for node_id in self.node_ids:
            await self._start_coordinator(
                node_id, leader_id=None if node_id == "n0" else "n0"
            )
        return self

    async def _start_node(self, node_id: str, *, replica: bool) -> None:
        node = self.nodes[node_id]
        manager = SnapshotManager(node.directory, faults=node.disk)
        if manager.latest_snapshot_seq() is not None:
            node.pipeline = IngestPipeline.recover(
                manager, config=self._config,
                replication=ReplicationManager(self._repl_config),
                replica=replica,
            )
        else:
            node.pipeline = IngestPipeline(
                self._make_sketch(), config=self._config, snapshots=manager,
                replication=ReplicationManager(self._repl_config),
                replica=replica,
            )
        await node.pipeline.start()
        node.server = StreamServer(node.pipeline, port=node.port or 0)
        await node.server.start()
        node.port = node.server.port

    async def _start_coordinator(
        self, node_id: str, *, leader_id: Optional[str]
    ) -> None:
        node = self.nodes[node_id]
        peer_map = {
            peer_id: f"127.0.0.1:{proxy.port}"
            for peer_id, proxy in node.proxies.items()
        }
        node.coordinator = FailoverCoordinator(
            node_id,
            node.pipeline,
            self_addr=f"127.0.0.1:{node.port}",
            peers=peer_map,
            leader_id=leader_id,
            leader_addr=peer_map.get(leader_id) if leader_id else None,
            epoch_store=EpochStore(node.directory),
            repl_config=self._repl_config,
            config=self._failover_config,
        )
        node.server.coordinator = node.coordinator
        await node.coordinator.start()

    async def kill(self, node_id: str) -> None:
        """Crash-equivalent: no final checkpoint, no goodbye to peers.
        The node's proxies stay up — they model the *network*, which
        does not die with a process."""
        node = self.nodes[node_id]
        if node.coordinator is not None:
            await node.coordinator.stop()
            node.coordinator = None
        if node.server is not None:
            await node.server.stop()
            node.server = None
        if node.pipeline is not None:
            # A faulted pipeline re-raises its fault from stop() by
            # design; a crash does not care.
            with contextlib.suppress(Exception):
                await node.pipeline.stop(final_snapshot=False)
            node.pipeline = None

    async def restart(
        self, node_id: str, *, leader_id: Optional[str] = None
    ) -> None:
        """Recover the node from its directory and rejoin as a follower
        of ``leader_id`` (default: whoever currently leads)."""
        if leader_id is None:
            leaders = self.leader_ids()
            leader_id = leaders[0] if leaders else None
        await self._start_node(node_id, replica=True)
        await self._start_coordinator(node_id, leader_id=leader_id)

    async def close(self) -> None:
        for node in self.nodes.values():
            if node.coordinator is not None:
                with contextlib.suppress(Exception):
                    await node.coordinator.stop()
            if node.server is not None:
                with contextlib.suppress(Exception):
                    await node.server.stop()
            if node.pipeline is not None:
                with contextlib.suppress(Exception):
                    await node.pipeline.stop(final_snapshot=False)
            for proxy in node.proxies.values():
                with contextlib.suppress(Exception):
                    await proxy.stop()

    # -- partitions ------------------------------------------------------------

    def isolate(self, node_id: str) -> None:
        """Partition ``node_id`` away: block every link that touches it,
        in both directions (its own dials out and every peer's dials
        in), tearing down live connections."""
        for node in self.nodes.values():
            for peer_id, proxy in node.proxies.items():
                if node.node_id == node_id or peer_id == node_id:
                    proxy.block()

    def heal(self, node_id: str) -> None:
        """Lift the partition around ``node_id``."""
        for node in self.nodes.values():
            for peer_id, proxy in node.proxies.items():
                if node.node_id == node_id or peer_id == node_id:
                    proxy.unblock()

    # -- driving ---------------------------------------------------------------

    async def feed(self, batches, node_id: Optional[str] = None) -> None:
        """Submit one batch per micro-batch to ``node_id`` (default: the
        current leader), awaiting application."""
        if node_id is None:
            (node_id,) = self.leader_ids()
        pipeline = self.nodes[node_id].pipeline
        for items, weights in batches:
            await pipeline.submit(items, weights, wait_applied=True)

    def leader_ids(self) -> list[str]:
        """Live nodes currently accepting writes (healthy cluster: one)."""
        return [
            node_id for node_id in self.node_ids
            if self.nodes[node_id].is_leader
        ]

    async def wait_for_leader(
        self, *, exclude=(), timeout: float = 15.0
    ) -> str:
        """Await exactly one live leader outside ``exclude``; return it.

        ``exclude`` names nodes whose leadership does not count — a
        partitioned stale leader is still *alive* and still thinks it
        leads until it is fenced, so the caller excludes it explicitly
        (and asserts its demotion separately)."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while loop.time() < deadline:
            leaders = [lid for lid in self.leader_ids() if lid not in exclude]
            if len(leaders) == 1:
                return leaders[0]
            await asyncio.sleep(0.02)
        raise TimeoutError(
            f"no single leader within {timeout}s; leaders={self.leader_ids()}"
        )

    async def sync(
        self, node_ids=None, *, seq: Optional[int] = None,
        timeout: float = 20.0,
    ) -> None:
        """Await every live follower reaching ``seq`` (default: the
        current leader's applied seq).  Pass ``seq`` explicitly when the
        leader is wounded or gone but its last frames are still in
        flight to the followers."""
        leader_id = None
        if seq is None:
            (leader_id,) = self.leader_ids()
            seq = self.nodes[leader_id].pipeline.applied_seq
        targets = node_ids if node_ids is not None else [
            node_id for node_id in self.node_ids
            if node_id != leader_id and self.nodes[node_id].alive
        ]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        for node_id in targets:
            pipeline = self.nodes[node_id].pipeline
            while pipeline.applied_seq < seq:
                if loop.time() > deadline:
                    raise TimeoutError(
                        f"{node_id} stuck at seq "
                        f"{pipeline.applied_seq} < {seq}"
                    )
                await asyncio.sleep(0.02)

    async def wait_state_equal(
        self, node_id: str, reference, *, timeout: float = 20.0
    ) -> None:
        """Await ``node_id`` converging byte-identically to ``reference``
        (a ``(bytes, rng_states)`` pair) — the rejoin probe, robust to a
        diverged node whose applied_seq transiently runs *ahead*."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        node = self.nodes[node_id]
        while node.state() != reference:
            if loop.time() > deadline:
                raise TimeoutError(f"{node_id} never converged")
            await asyncio.sleep(0.05)

    def state(self, node_id: str):
        return self.nodes[node_id].state()
