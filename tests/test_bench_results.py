"""The memoized analysis layer: frames over run documents + seed gates."""

import json

import pytest

from repro.bench.io import atomic_write_json
from repro.bench.matrix import RUN_SCHEMA
from repro.bench.results import PROVENANCE_FIELDS, ExperimentResults, Frame


def _cell(backend="columnar", k=64, alpha=1.05, rate=1e6, error=40.0, **extra):
    return {
        "policy": "smed",
        "backend": backend,
        "alpha": alpha,
        "k": k,
        "growth": "fixed",
        "updates_per_sec": rate,
        "max_error": error,
        "rel_error": error / 1e4,
        "space_bytes": 16 * k,
        **extra,
    }


def _run_document(run_id, timestamp, cells, git_hash="a" * 40):
    return {
        "schema": RUN_SCHEMA,
        "bench": "matrix",
        "run_id": run_id,
        "scale": "tiny",
        "git_hash": git_hash,
        "git_dirty": False,
        "timestamp_utc": timestamp,
        "host": {"hostname": "h", "cpu_count": 1},
        "metadata": {"ingest_path": "native"},
        "matrix": {},
        "cells": cells,
    }


@pytest.fixture
def history(tmp_path):
    """Two runs on disk plus seed BENCH_* documents at a fake repo root."""
    runs_dir = tmp_path / "bench_runs"
    runs_dir.mkdir()
    atomic_write_json(
        runs_dir / "run-one.json",
        _run_document(
            "one", "2026-01-01T00:00:00Z",
            [_cell(backend="columnar", k=64, rate=2e6)],
        ),
    )
    atomic_write_json(
        runs_dir / "run-two.json",
        _run_document(
            "two", "2026-02-01T00:00:00Z",
            [
                _cell(backend="columnar", k=64, rate=3e6, error=50.0),
                _cell(backend="columnar", k=128, rate=2.5e6, error=20.0),
                _cell(backend="probing", k=64, rate=1.5e6),
            ],
        ),
    )
    atomic_write_json(
        tmp_path / "BENCH_ingest.json",
        {
            "bench": "ingest-profile",
            "metadata": {"ingest_path": "native"},
            "gates": {"columnar_batch_per_sec_alpha1.05": 3.5e6},
            "rows": [
                {
                    "backend": "columnar", "alpha": 1.05,
                    "batch_speedup": 11.0, "batch_per_sec": 3.5e6,
                    "scalar_per_sec": 3.2e5, "adaptive_per_sec": 3.0e6,
                },
                {
                    "backend": "probing", "alpha": 1.05,
                    "batch_speedup": 5.0, "batch_per_sec": 1.8e6,
                    "scalar_per_sec": 3.6e5, "adaptive_per_sec": 1.5e6,
                },
            ],
        },
    )
    atomic_write_json(
        tmp_path / "BENCH_serve.json",
        {
            "bench": "serve",
            "metadata": {"ingest_path": "native"},
            "gates": {"pipeline_4p_updates_per_sec": 3.0e5},
        },
    )
    return tmp_path


# -- Frame ------------------------------------------------------------------


def test_frame_columns_first_appearance_order():
    frame = Frame([{"b": 1, "a": 2}, {"a": 3, "c": 4}])
    assert frame.columns == ["b", "a", "c"]
    assert frame.column("a") == [2, 3]
    assert frame.column("missing") == [None, None]
    assert len(frame) == 2
    assert not frame.empty
    assert Frame([]).empty


def test_frame_where_equality_and_predicate():
    frame = Frame([{"x": 1, "y": "p"}, {"x": 2, "y": "p"}, {"x": 3, "y": "q"}])
    assert frame.where(y="p").column("x") == [1, 2]
    assert frame.where(lambda row: row["x"] > 1, y="p").column("x") == [2]
    assert frame.where(y="zzz").empty


def test_frame_sort_handles_missing_values():
    frame = Frame([{"k": 2}, {"k": None}, {"k": 1}, {}])
    assert frame.sort("k").column("k") == [None, None, 1, 2]
    assert frame.sort("k", reverse=True).column("k") == [2, 1, None, None]


def test_frame_unique_preserves_order():
    frame = Frame([{"b": "x"}, {"b": "y"}, {"b": "x"}])
    assert frame.unique("b") == ["x", "y"]


def test_frame_to_pandas_requires_pandas():
    frame = Frame([{"a": 1}])
    try:
        import pandas  # noqa: F401
    except ImportError:
        with pytest.raises(ImportError, match="pandas"):
            frame.to_pandas()
    else:  # pragma: no cover - env-dependent
        assert frame.to_pandas().shape == (1, 1)


# -- ExperimentResults -------------------------------------------------------


def test_run_documents_sorted_oldest_first(history):
    results = ExperimentResults(
        runs_dir=str(history / "bench_runs"), repo_root=str(history)
    )
    assert [d["run_id"] for d in results.run_documents] == ["one", "two"]
    assert results.started == "2026-01-01T00:00:00Z"
    assert results.ended == "2026-02-01T00:00:00Z"
    assert results.name == "two"
    assert results.git_hash == "a" * 40


def test_torn_and_foreign_files_skipped(history):
    runs_dir = history / "bench_runs"
    (runs_dir / "run-torn.json").write_text('{"schema": "repro.bench.matr')
    (runs_dir / "run-foreign.json").write_text('{"schema": "other/v9"}')
    (runs_dir / "notes.txt").write_text("ignored: wrong name pattern")
    results = ExperimentResults(runs_dir=str(runs_dir), repo_root=str(history))
    assert [d["run_id"] for d in results.run_documents] == ["one", "two"]


def test_runs_frame_carries_provenance_columns(history):
    results = ExperimentResults(
        runs_dir=str(history / "bench_runs"), repo_root=str(history)
    )
    assert len(results.runs) == 4  # 1 cell + 3 cells
    assert set(results.runs.unique("run_id")) == {"one", "two"}
    assert results.runs.unique("ingest_path") == ["native"]
    assert len(results.latest_cells) == 3
    assert results.latest_cells.unique("run_id") == ["two"]


def test_frontier_series_and_sort(history):
    results = ExperimentResults(
        runs_dir=str(history / "bench_runs"), repo_root=str(history)
    )
    frontier = results.frontier
    assert len(frontier) == 3  # latest run only
    assert "smed/columnar/fixed@a1.05" in frontier.unique("series")
    spaces = frontier.column("space_bytes")
    assert spaces == sorted(spaces)


def test_trajectory_seed_points_come_first(history):
    results = ExperimentResults(
        runs_dir=str(history / "bench_runs"), repo_root=str(history)
    )
    trajectory = results.trajectory
    assert trajectory.column("run_id")[:2] == ["seed:ingest", "seed:serve"]
    assert trajectory.where(run_id="seed:ingest").column("updates_per_sec") == [3.5e6]
    assert trajectory.where(run_id="seed:serve").column("updates_per_sec") == [3.0e5]
    # Per run × backend: run one has columnar only, run two both backends.
    matrix_points = trajectory.where(source="bench_runs")
    assert len(matrix_points) == 3
    # Best cell at the canonical skew wins (3e6 beats 2.5e6 in run two).
    best = matrix_points.where(run_id="two", metric="matrix_columnar_updates_per_sec")
    assert best.column("updates_per_sec") == [3e6]


def test_trajectory_without_seed_documents(history):
    results = ExperimentResults(
        runs_dir=str(history / "bench_runs"),
        repo_root=str(history / "nowhere"),
    )
    assert results.ingest_document is None
    assert results.serve_document is None
    assert results.trajectory.unique("source") == ["bench_runs"]


def test_speedups_per_backend(history):
    results = ExperimentResults(
        runs_dir=str(history / "bench_runs"), repo_root=str(history)
    )
    speedups = results.speedups
    assert speedups.unique("backend") == ["columnar", "probing"]
    assert speedups.where(backend="columnar").column("batch_speedup") == [11.0]
    assert speedups.unique("ingest_path") == ["native"]


def test_summary_facts(history):
    results = ExperimentResults(
        runs_dir=str(history / "bench_runs"), repo_root=str(history)
    )
    summary = results.summary
    assert summary["num_runs"] == 2
    assert summary["num_cells"] == 4
    assert summary["scale"] == "tiny"
    assert summary["ingest_path"] == "native"
    assert summary["has_seed_ingest"] and summary["has_seed_serve"]


def test_empty_history_is_harmless(tmp_path):
    results = ExperimentResults(
        runs_dir=str(tmp_path / "missing"), repo_root=str(tmp_path)
    )
    assert results.run_documents == []
    assert results.name == "bench"
    assert results.git_hash is None
    assert results.runs.empty
    assert results.frontier.empty
    assert results.trajectory.empty
    assert results.speedups.empty
    assert results.summary["num_runs"] == 0


def test_validate_provenance(history):
    results = ExperimentResults(runs_dir=str(history / "bench_runs"))
    document = results.run_documents[-1]
    assert results.validate_provenance(document) == []
    stripped = {k: v for k, v in document.items() if k != "git_hash"}
    stripped["host"] = {}
    assert results.validate_provenance(stripped) == ["git_hash", "host"]
    assert list(PROVENANCE_FIELDS) == [
        "run_id", "git_hash", "timestamp_utc", "host", "metadata",
    ]


def test_results_memoize(history):
    results = ExperimentResults(
        runs_dir=str(history / "bench_runs"), repo_root=str(history)
    )
    first = results.trajectory
    # New files written after first access are not re-read: memoized.
    (history / "bench_runs" / "run-three.json").write_text(
        json.dumps(_run_document("three", "2026-03-01T00:00:00Z", [_cell()]))
    )
    assert results.trajectory is first
    assert [d["run_id"] for d in results.run_documents] == ["one", "two"]
