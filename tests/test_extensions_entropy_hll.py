"""StreamingEntropy and HyperLogLog."""

import math

import pytest

from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.extensions import HyperLogLog, StreamingEntropy
from repro.streams.exact import ExactCounter
from repro.streams.zipf import ZipfianStream


def test_hll_validation():
    with pytest.raises(InvalidParameterError):
        HyperLogLog(3)
    with pytest.raises(InvalidParameterError):
        HyperLogLog(19)


def test_hll_empty_is_zero():
    assert HyperLogLog(10).estimate() == 0.0


def test_hll_small_range_linear_counting():
    hll = HyperLogLog(12, seed=1)
    for item in range(100):
        hll.add(item)
    assert hll.estimate() == pytest.approx(100, rel=0.1)


def test_hll_large_range():
    hll = HyperLogLog(12, seed=2)
    for item in range(200_000):
        hll.add(item)
    assert hll.estimate() == pytest.approx(200_000, rel=0.05)


def test_hll_duplicates_do_not_inflate():
    hll = HyperLogLog(10, seed=3)
    for _ in range(50):
        for item in range(500):
            hll.add(item)
    assert hll.estimate() == pytest.approx(500, rel=0.15)


def test_hll_accepts_strings():
    hll = HyperLogLog(10, seed=4)
    for index in range(1_000):
        hll.add(f"user-{index}")
    assert hll.estimate() == pytest.approx(1_000, rel=0.15)


def test_hll_merge():
    a = HyperLogLog(11, seed=5)
    b = HyperLogLog(11, seed=5)
    for item in range(0, 10_000):
        a.add(item)
    for item in range(5_000, 15_000):
        b.add(item)
    a.merge(b)
    assert a.estimate() == pytest.approx(15_000, rel=0.1)
    with pytest.raises(InvalidParameterError):
        a.merge(HyperLogLog(12, seed=5))
    with pytest.raises(InvalidParameterError):
        a.merge(HyperLogLog(11, seed=6))


def test_hll_space():
    assert HyperLogLog(12).space_bytes() == 4096


def test_entropy_empty_stream():
    assert StreamingEntropy(16).estimate() == 0.0


def test_entropy_rejects_bad_weight():
    monitor = StreamingEntropy(16)
    with pytest.raises(InvalidUpdateError):
        monitor.update(1, 0.0)


def test_entropy_single_item_is_zero():
    monitor = StreamingEntropy(16, seed=1)
    for _ in range(1_000):
        monitor.update(42, 3.0)
    assert monitor.estimate() == pytest.approx(0.0, abs=0.01)


def test_entropy_uniform_matches_log2():
    universe = 256
    monitor = StreamingEntropy(512, seed=2)
    for index in range(20_000):
        monitor.update(index % universe, 1.0)
    assert monitor.estimate() == pytest.approx(math.log2(universe), rel=0.05)


def test_entropy_skewed_stream_close_to_exact():
    monitor = StreamingEntropy(256, seed=3)
    exact = ExactCounter()
    for item, weight in ZipfianStream(30_000, universe=3_000, alpha=1.4, seed=4):
        monitor.update(item, weight)
        exact.update(item, weight)
    assert monitor.estimate() == pytest.approx(exact.entropy(), rel=0.15)


def test_entropy_detects_collapse():
    """A flood from one source must slash the estimated entropy."""
    normal = StreamingEntropy(128, seed=5)
    flooded = StreamingEntropy(128, seed=5)
    for item, weight in ZipfianStream(10_000, universe=5_000, alpha=1.05, seed=6):
        normal.update(item, weight)
        flooded.update(item, weight)
    for _ in range(40_000):
        flooded.update(7, 1.0)
    assert flooded.estimate() < 0.6 * normal.estimate()


def test_entropy_distinct_estimate_exposed():
    monitor = StreamingEntropy(64, seed=7)
    for index in range(5_000):
        monitor.update(index % 750, 1.0)
    assert monitor.distinct_estimate() == pytest.approx(750, rel=0.15)
    assert monitor.space_bytes() > 0
    assert monitor.stream_weight == 5_000
