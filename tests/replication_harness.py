"""Reusable leader/follower fault-injection harness.

Extracted from the kill-point machinery in ``test_service_recovery.py``
and stretched over a socket: a :class:`ReplicaCluster` runs a real
leader (pipeline + TCP server) and a real follower (replica pipeline +
``FollowerService``), each with its own snapshot/WAL directory, and lets
a test

- kill either node crash-like at any micro-batch boundary (no final
  checkpoint, file handles dropped) and restart it from its directory,
- cut the replication stream mid-frame through a byte-dropping TCP
  proxy (:class:`FlakyProxy`) and watch the follower resubscribe,
- promote the follower and compare *serialized bytes and PRNG state
  words* against the leader's.

Determinism comes from the same trick the durability suite uses: one
submission per micro-batch (``wait_applied=True`` plus an unreachable
size trigger), so the leader's frame boundaries — and therefore the
follower's replayed ``update_batch`` calls — are identical across runs
and byte-identity against a plain reference loop is a meaningful
assertion, not a flaky one.
"""

from __future__ import annotations

from typing import Optional

from repro import (
    IngestPipeline,
    PipelineConfig,
    SnapshotManager,
    StreamServer,
)
from repro.service.faults import NetworkFaultProxy
from repro.service.replication import (
    FollowerService,
    ReplicationConfig,
    ReplicationManager,
)

from test_service_recovery import (  # noqa: F401  (re-exported for tests)
    SKETCH_MAKERS,
    make_feed,
    reference_state,
    rng_states,
)

#: Deterministic micro-batch boundaries: one submission per batch.
CLUSTER_CFG = PipelineConfig(
    max_batch_items=1 << 30, flush_interval=30.0, snapshot_every_batches=5
)

#: Fast follower retries so kill/restart scenarios converge quickly.
FAST_REPL = ReplicationConfig(
    retry_initial=0.01, retry_max=0.1, max_retries=200,
    heartbeat_interval=0.1,
)


#: The mid-stream-cut proxy this harness used to define locally; PR 9's
#: fault plane absorbed it (same ``cut_after`` semantics, plus
#: partitions, delays, and chunk drop/duplication).
FlakyProxy = NetworkFaultProxy


class ReplicaCluster:
    """One leader + one follower, both restartable, both durable.

    Parameters
    ----------
    make_sketch:
        Zero-argument sketch factory (see ``SKETCH_MAKERS``); the
        follower starts from a *fresh* factory sketch and relies on the
        bootstrap snapshot, exactly like a real deployment would.
    tmp_path:
        Directory for the two nodes' snapshot/WAL subdirectories.
    via_proxy:
        Route the replication stream through a :class:`FlakyProxy`
        (required by ``drop_stream``).
    repl_config:
        The :class:`ReplicationConfig` for both halves; shrink
        ``ring_frames`` to force snapshot catch-up paths.
    """

    def __init__(
        self,
        make_sketch,
        tmp_path,
        *,
        via_proxy: bool = False,
        repl_config: Optional[ReplicationConfig] = None,
        config: PipelineConfig = CLUSTER_CFG,
    ) -> None:
        self._make_sketch = make_sketch
        self._config = config
        self._repl_config = (
            repl_config if repl_config is not None else FAST_REPL
        )
        self._leader_dir = str(tmp_path / "leader")
        self._follower_dir = str(tmp_path / "follower")
        self._via_proxy = via_proxy
        self.leader: Optional[IngestPipeline] = None
        self.server: Optional[StreamServer] = None
        self.follower_pipe: Optional[IngestPipeline] = None
        self.follower: Optional[FollowerService] = None
        self.proxy: Optional[FlakyProxy] = None
        self._leader_port: Optional[int] = None

    # -- leader ----------------------------------------------------------------

    async def start_leader(self) -> None:
        manager = SnapshotManager(self._leader_dir)
        if manager.latest_snapshot_seq() is not None:
            self.leader = IngestPipeline.recover(
                manager, config=self._config,
                replication=ReplicationManager(self._repl_config),
            )
        else:
            self.leader = IngestPipeline(
                self._make_sketch(), config=self._config, snapshots=manager,
                replication=ReplicationManager(self._repl_config),
            )
        await self.leader.start()
        self.server = StreamServer(
            self.leader, port=self._leader_port or 0
        )
        await self.server.start()
        self._leader_port = self.server.port
        if self._via_proxy and self.proxy is None:
            self.proxy = await FlakyProxy(
                "127.0.0.1", self._leader_port
            ).start()

    async def kill_leader(self) -> None:
        """Crash-equivalent: server gone, no final checkpoint."""
        await self.server.stop()
        await self.leader.stop(final_snapshot=False)
        self.server = None
        self.leader = None

    async def restart_leader(self) -> None:
        await self.start_leader()  # recovers from the directory, same port

    # -- follower --------------------------------------------------------------

    def _follower_addr(self) -> tuple[str, int]:
        if self._via_proxy:
            return "127.0.0.1", self.proxy.port
        return "127.0.0.1", self._leader_port

    async def start_follower(self) -> None:
        manager = SnapshotManager(self._follower_dir)
        if manager.latest_snapshot_seq() is not None:
            self.follower_pipe = IngestPipeline.recover(
                manager, config=self._config, replica=True
            )
        else:
            self.follower_pipe = IngestPipeline(
                self._make_sketch(), config=self._config, snapshots=manager,
                replica=True,
            )
        await self.follower_pipe.start()
        host, port = self._follower_addr()
        self.follower = FollowerService(
            self.follower_pipe, host, port, config=self._repl_config
        )
        await self.follower.start()

    async def kill_follower(self) -> None:
        """Crash-equivalent: stream dropped, no final checkpoint."""
        await self.follower.stop()
        await self.follower_pipe.stop(final_snapshot=False)
        self.follower = None
        self.follower_pipe = None

    async def restart_follower(self) -> None:
        await self.start_follower()  # recovers from its own directory

    # -- driving ---------------------------------------------------------------

    async def feed(self, batches) -> None:
        for items, weights in batches:
            await self.leader.submit(items, weights, wait_applied=True)

    async def sync(self, timeout: float = 20.0) -> None:
        """Await the follower catching up to the leader's applied seq."""
        await self.follower.wait_for_seq(
            self.leader.applied_seq, timeout=timeout
        )

    def drop_stream(self, budget: int = 13) -> None:
        """Cut the replication link after ``budget`` more bytes
        (defaults to mid-frame: a W frame is 17+ bytes)."""
        assert self.proxy is not None, "build the cluster with via_proxy=True"
        self.proxy.cut_after(budget)

    # -- observation -----------------------------------------------------------

    def leader_state(self):
        return self.leader.sketch.to_bytes(), rng_states(self.leader.sketch)

    def follower_state(self):
        return (
            self.follower_pipe.sketch.to_bytes(),
            rng_states(self.follower_pipe.sketch),
        )

    async def promote_follower(self) -> int:
        return await self.follower.promote()

    async def close(self) -> None:
        if self.follower is not None:
            await self.follower.stop()
        if self.follower_pipe is not None:
            await self.follower_pipe.stop()
        if self.proxy is not None:
            await self.proxy.stop()
        if self.server is not None:
            await self.server.stop()
        if self.leader is not None:
            await self.leader.stop()


async def run_fault_scenario(
    make_sketch, feed, *, fault: str, kill_at: int, tmp_path,
    ring_frames: int = 512,
) -> tuple:
    """One full scenario; returns (leader_state, follower_state) at the end.

    ``fault`` is one of ``kill-leader``, ``kill-follower``,
    ``drop-stream``, ``restart-catch-up``; ``kill_at`` is the micro-batch
    boundary (0..len(feed)) where it strikes.  After the fault the
    remaining feed is applied, the follower syncs, and the follower is
    promoted — so the returned states are both *writable leaders*,
    compared bytes-for-bytes by the caller.
    """
    repl = ReplicationConfig(
        ring_frames=ring_frames,
        retry_initial=0.01, retry_max=0.1, max_retries=200,
        heartbeat_interval=0.1,
    )
    cluster = ReplicaCluster(
        make_sketch, tmp_path, via_proxy=(fault == "drop-stream"),
        repl_config=repl,
    )
    try:
        await cluster.start_leader()
        await cluster.start_follower()
        await cluster.feed(feed[:kill_at])
        await cluster.sync()

        if fault == "kill-leader":
            await cluster.kill_leader()
            await cluster.restart_leader()
        elif fault == "kill-follower":
            await cluster.kill_follower()
            await cluster.restart_follower()
        elif fault == "drop-stream":
            cluster.drop_stream()
        elif fault == "restart-catch-up":
            # Follower offline while the leader advances past the replay
            # ring, forcing the snapshot catch-up path on return.
            await cluster.kill_follower()
            await cluster.feed(feed[kill_at:])
            await cluster.restart_follower()
            await cluster.sync()
            seq = await cluster.promote_follower()
            assert seq == cluster.leader.applied_seq
            return cluster.leader_state(), cluster.follower_state()
        else:
            raise ValueError(f"unknown fault kind {fault!r}")

        await cluster.feed(feed[kill_at:])
        await cluster.sync()
        seq = await cluster.promote_follower()
        assert seq == cluster.leader.applied_seq
        return cluster.leader_state(), cluster.follower_state()
    finally:
        await cluster.close()
