"""Cross-module verification of every theorem in the paper.

One test per stated guarantee, on workloads spanning skewed, flat, and
adversarial shapes:

* Lemma 1   — MG: ``0 <= f_i - f̂_i <= N/(k+1)``.
* Lemma 2   — MG tail: ``f_i - f̂_i <= N^res(j)/(k+1-j)``.
* Theorem 1/3 — amortized decrement cadence (MED and SMED).
* Theorem 2 — MED tail bound with exact k*.
* Theorem 4 — SMED tail bound with k* = k/3.
* Theorem 5 — merge bound ``(N - C)/k*`` and its tail form.
"""

import pytest

from repro.baselines import MisraGries
from repro.baselines.factory import make_med, make_smed
from repro.core.frequent_items import FrequentItemsSketch
from repro.metrics.accuracy import check_merge_bound, check_tail_bound, max_underestimate
from repro.streams.adversarial import rbmc_killer_stream, two_phase_stream
from repro.streams.exact import ExactCounter
from repro.streams.uniform import uniform_weighted_stream
from repro.streams.zipf import ZipfianStream


def _workloads():
    return {
        "zipf-skewed": list(
            ZipfianStream(15_000, universe=3_000, alpha=1.4, seed=1,
                          weight_low=1, weight_high=500)
        ),
        "zipf-flat": list(
            ZipfianStream(15_000, universe=3_000, alpha=0.8, seed=2,
                          weight_low=1, weight_high=500)
        ),
        "uniform": uniform_weighted_stream(10_000, universe=2_000, seed=3),
        "rbmc-killer": list(rbmc_killer_stream(64, 50_000.0, 8_000)),
        "two-phase": list(two_phase_stream(64, 10_000.0, 8_000, 3.0, seed=4)),
    }


WORKLOADS = _workloads()


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_lemma1_misra_gries_unit(name):
    stream = WORKLOADS[name]
    k = 48
    mg = MisraGries(k)
    exact = ExactCounter()
    for item, _weight in stream:
        mg.update(item)  # unit-ized view of the workload
        exact.update(item)
    n = exact.total_weight
    worst = max_underestimate(mg, exact)
    assert 0 <= worst <= n / (k + 1) + 1e-9


def test_lemma2_mg_tail_on_skew():
    stream = WORKLOADS["zipf-skewed"]
    k = 64
    mg = MisraGries(k)
    exact = ExactCounter()
    for item, _weight in stream:
        mg.update(item)
        exact.update(item)
    for j in (1, 8, 32):
        bound = exact.residual_weight(j) / (k + 1 - j)
        assert max_underestimate(mg, exact) <= bound + 1e-9


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_theorem2_med_tail_bound(name):
    stream = WORKLOADS[name]
    k = 64
    med = make_med(k, seed=5)
    exact = ExactCounter()
    for item, weight in stream:
        med.update(item, weight)
        exact.update(item, weight)
    k_star = k // 2  # the exact-median policy guarantees k* = k/2
    for j in (0, 8):
        check = check_tail_bound(med, exact, j, k_star)
        assert check.holds, (name, j, check.observed, check.bound)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_theorem4_smed_tail_bound(name):
    stream = WORKLOADS[name]
    k = 64
    smed = make_smed(k, seed=6)
    exact = ExactCounter()
    for item, weight in stream:
        smed.update(item, weight)
        exact.update(item, weight)
    k_star = k / 3.0  # Theorem 3/4's conservative constant
    for j in (0, 8):
        check = check_tail_bound(smed, exact, j, k_star)
        assert check.holds, (name, j, check.observed, check.bound)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_theorem3_decrement_cadence(name):
    """Decrement passes at most once every k/3 updates (SMED)."""
    stream = WORKLOADS[name]
    k = 64
    smed = make_smed(k, seed=7)
    for item, weight in stream:
        smed.update(item, weight)
    if smed.stats.decrements:
        assert smed.stats.updates / smed.stats.decrements >= k / 3.0


def test_theorem1_med_cadence():
    """MED with k* = k/2 decrements at most once every k/2 updates."""
    stream = WORKLOADS["uniform"]
    k = 64
    med = make_med(k, seed=8)
    for item, weight in stream:
        med.update(item, weight)
    if med.stats.decrements:
        assert med.stats.updates / med.stats.decrements >= k / 2.0


def test_theorem5_merge_bound_many_shapes():
    """(N - C)/k* after merging across different workload shapes."""
    k = 64
    union = ExactCounter()
    sketches = []
    for seed, name in enumerate(("zipf-skewed", "uniform", "two-phase")):
        sketch = make_smed(k, seed=100 + seed)
        for item, weight in WORKLOADS[name]:
            sketch.update(item, weight)
            union.update(item, weight)
        sketches.append(sketch)
    merged = sketches[0]
    for other in sketches[1:]:
        merged.merge(other)
    counter_sum = sum(row.lower_bound for row in merged.to_rows())
    check = check_merge_bound(merged.lower_bound, union, counter_sum, k / 3.0)
    assert check.holds, (check.observed, check.bound)


def test_theorem5_tail_form():
    """The N^res(j)/k* refinement of Theorem 5 (Equation 8)."""
    k = 96
    union = ExactCounter()
    first = make_smed(k, seed=9)
    second = make_smed(k, seed=10)
    for sketch, seed in ((first, 11), (second, 12)):
        for item, weight in ZipfianStream(
            10_000, universe=2_000, alpha=1.5, seed=seed,
            weight_low=1, weight_high=100,
        ):
            sketch.update(item, weight)
            union.update(item, weight)
    first.merge(second)
    k_star = k / 3.0
    observed = max_underestimate(first.lower_bound, union)
    for j in (0, 8, 16):
        assert observed <= union.residual_weight(j) / k_star + 1e-9


def test_section4_2_convergence_in_speed_and_error():
    """Decrement counts (the speed driver) and error both fall with k."""
    stream = WORKLOADS["zipf-flat"]
    exact = ExactCounter()
    exact.update_all(stream)
    decrements = []
    errors = []
    for k in (32, 128, 512):
        smed = make_smed(k, seed=13)
        for item, weight in stream:
            smed.update(item, weight)
        decrements.append(smed.stats.decrements)
        errors.append(max_underestimate(smed, exact))
    assert decrements[0] > decrements[1] > decrements[2]
    assert errors[0] > errors[1] >= errors[2]
