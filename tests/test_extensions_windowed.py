"""SlidingWindowHeavyHitters: expiry, merging, bracket correctness."""

import pytest

from repro.core.row import ErrorType
from repro.errors import InvalidParameterError
from repro.extensions import SlidingWindowHeavyHitters
from repro.streams.exact import ExactCounter
from repro.streams.zipf import ZipfianStream


def test_validation():
    with pytest.raises(InvalidParameterError):
        SlidingWindowHeavyHitters(16, 0)


def test_single_bucket_matches_plain_sketch():
    window = SlidingWindowHeavyHitters(32, 1, seed=1)
    for item in range(20):
        window.update(item, float(item + 1))
    assert window.estimate(19) == 20.0
    assert window.window_weight == sum(range(1, 21))


def test_expiry_drops_old_slices():
    window = SlidingWindowHeavyHitters(32, 2, seed=2)
    window.update(1, 100.0)
    window.advance()
    window.update(2, 50.0)
    # Both slices still live.
    assert window.estimate(1) == 100.0
    assert window.estimate(2) == 50.0
    window.advance()
    window.update(3, 10.0)
    # Slice containing item 1 has rotated out.
    assert window.estimate(1) == 0.0
    assert window.estimate(2) == 50.0
    assert window.estimate(3) == 10.0
    assert window.window_weight == 60.0
    assert window.epoch == 2


def test_window_weight_tracks_live_buckets_only():
    window = SlidingWindowHeavyHitters(16, 3, seed=3)
    for epoch in range(6):
        for _ in range(10):
            window.update(epoch, 1.0)
        if epoch < 5:
            window.advance()
    assert window.window_weight == 30.0  # last 3 slices of 10 each


def test_query_does_not_perturb_buckets():
    window = SlidingWindowHeavyHitters(16, 2, seed=4)
    window.update(1, 5.0)
    before = window.estimate(1)
    for _ in range(5):
        window.window_sketch()
    assert window.estimate(1) == before


def test_brackets_hold_vs_exact_per_window():
    window = SlidingWindowHeavyHitters(64, 4, seed=5)
    slices = []
    stream = list(
        ZipfianStream(12_000, universe=2_000, alpha=1.2, seed=6,
                      weight_low=1, weight_high=50)
    )
    slice_size = 2_000
    for start in range(0, len(stream), slice_size):
        chunk = stream[start : start + slice_size]
        exact = ExactCounter()
        for item, weight in chunk:
            window.update(item, weight)
            exact.update(item, weight)
        slices.append(exact)
        merged = window.window_sketch()
        truth = ExactCounter()
        for live in slices[-4:]:
            truth.merge(ExactCounter().merge(live))
        assert merged.stream_weight == pytest.approx(truth.total_weight)
        for item, frequency in truth.top_k(10):
            assert merged.lower_bound(item) <= frequency + 1e-6
            assert merged.upper_bound(item) >= frequency - 1e-6
        if start + slice_size < len(stream):
            window.advance()


def test_heavy_hitters_no_false_negatives_within_window():
    window = SlidingWindowHeavyHitters(64, 2, seed=7)
    for index in range(4_000):
        window.update(0 if index % 4 == 0 else index, 1.0)
    rows = window.heavy_hitters(0.2, ErrorType.NO_FALSE_NEGATIVES)
    assert any(row.item == 0 for row in rows)


def test_space_scales_with_live_buckets():
    window = SlidingWindowHeavyHitters(32, 4, seed=8)
    one = window.space_bytes()
    window.advance()
    window.advance()
    assert window.space_bytes() == 3 * one
    assert window.window_buckets == 4
