"""Quickselect against sorted() as the oracle, plus rank conventions."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidParameterError
from repro.prng import Xoroshiro128PlusPlus
from repro.selection import kth_largest, kth_smallest, quickselect

FLOATS = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    min_size=1,
    max_size=200,
)


@given(FLOATS, st.integers(min_value=0, max_value=2**31), st.randoms())
def test_matches_sorted_oracle(values, seed, pyrandom):
    rank = pyrandom.randrange(len(values))
    rng = Xoroshiro128PlusPlus(seed)
    assert quickselect(list(values), rank, rng) == sorted(values)[rank]


@given(FLOATS)
def test_deterministic_pivot_fallback(values):
    """Without an rng the middle-element pivot must still be correct."""
    rank = len(values) // 2
    assert quickselect(list(values), rank) == sorted(values)[rank]


def test_kth_smallest_and_largest_conventions():
    values = [5.0, 1.0, 9.0, 3.0, 7.0]
    assert kth_smallest(list(values), 1) == 1.0
    assert kth_smallest(list(values), 5) == 9.0
    assert kth_largest(list(values), 1) == 9.0
    assert kth_largest(list(values), 5) == 1.0


def test_heavy_ties():
    values = [2.0] * 50 + [1.0] * 50 + [3.0] * 50
    for rank in (0, 49, 50, 99, 100, 149):
        assert quickselect(list(values), rank) == sorted(values)[rank]


def test_single_element():
    assert quickselect([42.0], 0) == 42.0


def test_two_elements():
    assert quickselect([2.0, 1.0], 0) == 1.0
    assert quickselect([2.0, 1.0], 1) == 2.0


def test_rank_out_of_range():
    with pytest.raises(InvalidParameterError):
        quickselect([1.0], 1)
    with pytest.raises(InvalidParameterError):
        quickselect([1.0], -1)
    with pytest.raises(InvalidParameterError):
        quickselect([], 0)


def test_partial_reordering_preserves_multiset():
    values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    work = list(values)
    quickselect(work, 3, Xoroshiro128PlusPlus(1))
    assert sorted(work) == sorted(values)


def test_reproducible_with_seeded_rng():
    values = [float(x) for x in range(1000, 0, -1)]
    a = quickselect(list(values), 500, Xoroshiro128PlusPlus(9))
    b = quickselect(list(values), 500, Xoroshiro128PlusPlus(9))
    assert a == b == sorted(values)[500]
