"""The public surface: imports, __all__, errors hierarchy, docstrings."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_docstring_example():
    sketch = repro.FrequentItemsSketch(max_counters=64, seed=7)
    for flow, packet_bytes in [(1, 1500), (2, 64), (1, 1500), (3, 576)]:
        sketch.update(flow, packet_bytes)
    assert sketch.estimate(1) == 3000.0
    assert [row.item for row in sketch.heavy_hitters(phi=0.5)] == [1]


def test_error_hierarchy():
    assert issubclass(repro.InvalidParameterError, repro.ReproError)
    assert issubclass(repro.InvalidParameterError, ValueError)
    assert issubclass(repro.InvalidUpdateError, repro.ReproError)
    assert issubclass(repro.TableFullError, RuntimeError)
    assert issubclass(repro.SerializationError, repro.ReproError)
    assert issubclass(repro.IncompatibleSketchError, repro.ReproError)


SUBMODULES = [
    "repro.core",
    "repro.core.frequent_items",
    "repro.core.policies",
    "repro.core.merge",
    "repro.core.serialize",
    "repro.core.row",
    "repro.sharded",
    "repro.sharded.partition",
    "repro.sharded.sketch",
    "repro.service",
    "repro.service.pipeline",
    "repro.service.snapshot",
    "repro.service.protocol",
    "repro.service.server",
    "repro.service.client",
    "repro.baselines",
    "repro.extensions",
    "repro.streams",
    "repro.table",
    "repro.selection",
    "repro.hashing",
    "repro.prng",
    "repro.metrics",
    "repro.bench",
    "repro.bench.cli",
]


@pytest.mark.parametrize("module_name", SUBMODULES)
def test_submodules_import_and_are_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


def test_public_classes_documented():
    for name in repro.__all__:
        obj = getattr(repro, name)
        if isinstance(obj, type):
            assert obj.__doc__, f"{name} lacks a docstring"


def test_cli_entrypoint_help():
    from repro.bench.cli import main

    with pytest.raises(SystemExit) as exc_info:
        main(["--help"])
    assert exc_info.value.code == 0


def test_cli_space_runs(capsys):
    from repro.bench.cli import main

    assert main(["space", "--scale", "quick"]) == 0
    out = capsys.readouterr().out
    assert "Space models" in out


def test_cli_writes_report(tmp_path, capsys):
    from repro.bench.cli import main

    out_file = tmp_path / "report.txt"
    assert main(["space", "--out", str(out_file)]) == 0
    capsys.readouterr()
    assert "Space models" in out_file.read_text()
