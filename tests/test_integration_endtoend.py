"""End-to-end pipelines: the workflows the examples demonstrate."""

import pytest

from repro import ErrorType, FrequentItemsSketch, merge_pairwise_tree
from repro.extensions import HierarchicalHeavyHitters, StreamingEntropy
from repro.metrics.heavy_hitters import hh_precision_recall
from repro.streams import (
    ExactCounter,
    SyntheticPacketTrace,
    partition_hash,
    partition_round_robin,
)
from repro.streams.io import read_binary_trace, write_binary_trace


def test_telemetry_pipeline(tmp_path):
    """Generate -> persist -> reload -> sketch -> query, vs ground truth."""
    trace_path = tmp_path / "trace.bin"
    trace = SyntheticPacketTrace(20_000, unique_sources=2_500, seed=42)
    write_binary_trace(trace_path, trace)

    sketch = FrequentItemsSketch(256, backend="dict", seed=1)
    exact = ExactCounter()
    for item, weight in read_binary_trace(trace_path):
        sketch.update(item, weight)
        exact.update(item, weight)

    assert sketch.stream_weight == pytest.approx(exact.total_weight)
    phi = 0.01
    quality = hh_precision_recall(
        (row.item for row in sketch.heavy_hitters(phi, ErrorType.NO_FALSE_NEGATIVES)),
        exact,
        phi,
    )
    assert quality.recall == 1.0
    quality_nfp = hh_precision_recall(
        (row.item for row in sketch.heavy_hitters(phi, ErrorType.NO_FALSE_POSITIVES)),
        exact,
        phi,
    )
    assert quality_nfp.precision == 1.0


@pytest.mark.parametrize("partitioner", [partition_round_robin, partition_hash])
def test_distributed_pipeline(partitioner):
    """Shard -> sketch per shard -> serialize -> tree merge -> query."""
    stream = list(SyntheticPacketTrace(16_000, unique_sources=2_000, seed=7))
    exact = ExactCounter()
    exact.update_all(stream)

    shards = partitioner(stream, 8)
    blobs = []
    for index, shard in enumerate(shards):
        sketch = FrequentItemsSketch(128, backend="dict", seed=index)
        for item, weight in shard:
            sketch.update(item, weight)
        blobs.append(sketch.to_bytes())

    merged = merge_pairwise_tree(
        [FrequentItemsSketch.from_bytes(blob) for blob in blobs]
    )
    assert merged.stream_weight == pytest.approx(exact.total_weight)
    for item, frequency in exact.top_k(10):
        assert merged.lower_bound(item) - 1e-6 <= frequency <= \
            merged.upper_bound(item) + 1e-6
    # Merged error stays bounded: Theorem 5 with k* = k/3.
    counter_sum = sum(row.lower_bound for row in merged.to_rows())
    bound = (exact.total_weight - counter_sum) / (merged.max_counters / 3)
    worst = max(
        frequency - merged.lower_bound(item) for item, frequency in exact.items()
    )
    assert worst <= bound + 1e-6


def test_anomaly_pipeline():
    """Windowed entropy + HHH localization of an injected flood."""
    window = 4_000
    baseline = list(SyntheticPacketTrace(window, unique_sources=1_500, seed=3))
    attacker = 0x0A0B0C0D
    flood = [(attacker, 2048.0)] * (window // 2) + baseline[: window // 2]

    def entropy_of(updates):
        monitor = StreamingEntropy(128, seed=5)
        for item, weight in updates:
            monitor.update(item, weight)
        return monitor.estimate()

    assert entropy_of(flood) < 0.7 * entropy_of(baseline)

    hhh = HierarchicalHeavyHitters(128, seed=6)
    for item, weight in flood:
        hhh.update(item, weight)
    cidrs = {node.cidr() for node in hhh.query(0.2)}
    assert "10.11.12.13/32" in cidrs


def test_sketch_survives_pathological_weights():
    """Mixing tiny and enormous weights must not break any invariant."""
    sketch = FrequentItemsSketch(32, backend="dict", seed=8)
    exact = ExactCounter()
    weights = [1e-6, 1.0, 1e12, 3.5, 1e-3, 7e9]
    for index in range(5_000):
        item = index % 100
        weight = weights[index % len(weights)]
        sketch.update(item, weight)
        exact.update(item, weight)
    for item in range(100):
        assert sketch.lower_bound(item) <= exact.frequency(item) * (1 + 1e-9) + 1e-6
        assert sketch.upper_bound(item) >= exact.frequency(item) * (1 - 1e-9) - 1e-6


def test_string_items_via_hashing():
    """The item_to_u64 bridge lets applications use string keys."""
    from repro.hashing import item_to_u64

    sketch = FrequentItemsSketch(64, backend="dict", seed=9)
    users = [f"user-{index % 20}" for index in range(2_000)]
    for user in users:
        sketch.update(item_to_u64(user), 1.0)
    top = item_to_u64("user-0")
    assert sketch.estimate(top) == pytest.approx(100.0)
