"""Algorithm 5 merging: semantics, Theorem 5, aggregation trees."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    FrequentItemsSketch,
    IncompatibleSketchError,
    merge_linear,
    merge_pairwise_tree,
)
from repro.errors import InvalidParameterError
from repro.metrics.accuracy import check_merge_bound
from repro.streams.exact import ExactCounter
from repro.streams.zipf import ZipfianStream


def _filled(seed, k=32, n=3_000, backend="dict"):
    sketch = FrequentItemsSketch(k, backend=backend, seed=seed)
    exact = ExactCounter()
    for item, weight in ZipfianStream(
        n, universe=1_500, alpha=1.2, seed=seed, weight_low=1, weight_high=100
    ):
        sketch.update(item, weight)
        exact.update(item, weight)
    return sketch, exact


def test_merge_accumulates_weight_and_offset():
    a, _ = _filled(1)
    b, _ = _filled(2)
    weight_a, weight_b = a.stream_weight, b.stream_weight
    offset_a, offset_b = a.maximum_error, b.maximum_error
    a.merge(b)
    assert a.stream_weight == pytest.approx(weight_a + weight_b)
    assert a.maximum_error >= offset_a + offset_b  # merge may add decrements


def test_merge_returns_self_and_leaves_other_intact():
    a, _ = _filled(3)
    b, _ = _filled(4)
    b_rows = sorted(b.to_rows())
    result = a.merge(b)
    assert result is a
    assert sorted(b.to_rows()) == b_rows


def test_merge_self_rejected():
    a, _ = _filled(5)
    with pytest.raises(IncompatibleSketchError):
        a.merge(a)


def test_merged_bounds_bracket_union_truth():
    a, exact_a = _filled(6)
    b, exact_b = _filled(7)
    exact_a.merge(exact_b)
    a.merge(b)
    for item, frequency in exact_a.items():
        assert a.lower_bound(item) <= frequency + 1e-6
        assert a.upper_bound(item) >= frequency - 1e-6


def test_theorem5_merge_bound():
    a, exact_a = _filled(8)
    b, exact_b = _filled(9)
    exact_a.merge(exact_b)
    a.merge(b)
    counter_sum = sum(row.lower_bound for row in a.to_rows())
    check = check_merge_bound(
        a.lower_bound, exact_a, counter_sum, a.max_counters / 3.0
    )
    assert check.holds, (check.observed, check.bound)


def test_merge_below_capacity_is_lossless():
    a = FrequentItemsSketch(64, backend="dict", seed=10)
    b = FrequentItemsSketch(64, backend="dict", seed=11)
    for item in range(20):
        a.update(item, float(item + 1))
    for item in range(15, 35):
        b.update(item, 2.0)
    a.merge(b)
    assert a.maximum_error == 0.0
    assert a.estimate(16) == 17.0 + 2.0
    assert a.estimate(34) == 2.0


def test_merge_empty_is_identity():
    a, _ = _filled(12)
    rows = sorted(a.to_rows())
    weight = a.stream_weight
    a.merge(FrequentItemsSketch(32, backend="dict", seed=99))
    assert sorted(a.to_rows()) == rows
    assert a.stream_weight == weight


def test_merge_into_empty():
    a = FrequentItemsSketch(32, backend="dict", seed=13)
    b, exact = _filled(14)
    a.merge(b)
    assert a.stream_weight == b.stream_weight
    for item, frequency in exact.top_k(5):
        assert a.lower_bound(item) <= frequency <= a.upper_bound(item)


def test_merge_mixed_backends():
    a, _ = _filled(15, backend="probing")
    b, exact_b = _filled(16, backend="dict")
    a.merge(b)
    top_item, top_frequency = exact_b.top_k(1)[0]
    assert a.upper_bound(top_item) >= top_frequency * 0.5


def test_fast_path_matches_generic_ingest():
    """The dict-backend inlined merge must equal per-entry _ingest."""
    a1, _ = _filled(17, backend="dict")
    a2 = a1.copy()
    b, _ = _filled(18, backend="dict")

    a1.merge(b)

    # Generic path: replicate merge via _ingest with the same RNG state.
    entries = list(b._store.items())
    import numpy as np

    order = np.random.Generator(
        np.random.PCG64(a2._rng.next_u64())
    ).permutation(len(entries))
    for index in order:
        a2._ingest(*entries[index])
    a2._offset += b.maximum_error
    a2._stream_weight += b.stream_weight

    assert a1.maximum_error == pytest.approx(a2.maximum_error)
    assert sorted(a1.to_rows()) == pytest.approx(sorted(a2.to_rows()))


def test_linear_vs_tree_merge_error_bounds():
    """Arbitrary aggregation trees: both shapes satisfy Theorem 5."""
    parts = []
    union = ExactCounter()
    for seed in range(8):
        sketch, exact = _filled(20 + seed, k=48, n=2_000)
        parts.append(sketch)
        union.merge(exact)

    linear_inputs = [p.copy() for p in parts]
    tree_inputs = [p.copy() for p in parts]
    linear = merge_linear(linear_inputs)
    tree = merge_pairwise_tree(tree_inputs)

    for merged in (linear, tree):
        assert merged.stream_weight == pytest.approx(union.total_weight)
        counter_sum = sum(row.lower_bound for row in merged.to_rows())
        check = check_merge_bound(
            merged.lower_bound, union, counter_sum, merged.max_counters / 3.0
        )
        assert check.holds, (check.observed, check.bound)


def test_merge_helpers_reject_empty():
    with pytest.raises(InvalidParameterError):
        merge_linear([])
    with pytest.raises(InvalidParameterError):
        merge_pairwise_tree([])


def test_merge_helpers_single_input():
    a, _ = _filled(30)
    assert merge_linear([a]) is a
    assert merge_pairwise_tree([a]) is a


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=9))
def test_tree_merge_any_width(width):
    parts = []
    union = ExactCounter()
    for seed in range(width):
        sketch, exact = _filled(100 + seed, k=24, n=800)
        parts.append(sketch)
        union.merge(exact)
    merged = merge_pairwise_tree(parts)
    assert merged.stream_weight == pytest.approx(union.total_weight)
    for item, frequency in union.top_k(3):
        assert merged.upper_bound(item) >= frequency - 1e-6
