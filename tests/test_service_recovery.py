"""Snapshot/WAL durability: kill anywhere, recover bit-identically.

The contract under test: a pipeline killed at an arbitrary point and
recovered from its snapshot directory reaches a state — serialized
bytes *and* kernel PRNG state — identical to a run that was never
interrupted, and continuing the workload after recovery lands on the
identical final state.  Also covered: torn WAL tails, the logged-but-
never-applied crash window, snapshot corruption fallback, and pruning.
"""

import asyncio
import os
import random
import struct

import numpy as np
import pytest

from repro import (
    FrequentItemsSketch,
    IngestPipeline,
    PipelineConfig,
    SerializationError,
    ServiceClosedError,
    ShardedFrequentItemsSketch,
    SnapshotManager,
)
from repro.service.snapshot import decode_snapshot, encode_snapshot
from repro.streams.zipf import ZipfianStream

pytestmark = pytest.mark.service


def run(coroutine):
    return asyncio.run(coroutine)


def make_feed(num_batches=24, batch_size=400, seed=3):
    stream = ZipfianStream(
        num_batches * batch_size, universe=700, alpha=1.1, seed=seed,
        weight_low=1, weight_high=50,
    )
    return list(stream.batches(batch_size=batch_size))


def rng_states(sketch):
    if isinstance(sketch, ShardedFrequentItemsSketch):
        return [shard.kernel.rng.getstate() for shard in sketch.shards]
    return [sketch.kernel.rng.getstate()]


def reference_state(make_sketch, feed):
    sketch = make_sketch()
    for items, weights in feed:
        sketch.update_batch(items, weights)
    return sketch.to_bytes(), rng_states(sketch)


#: One submission per micro-batch (wait_applied + an unreachable size
#: trigger) keeps batch boundaries deterministic across runs, so the
#: uninterrupted reference can be computed by a plain update_batch loop.
_CFG = PipelineConfig(
    max_batch_items=1 << 30, flush_interval=30.0, snapshot_every_batches=5
)


async def feed_pipeline(pipeline, feed):
    for items, weights in feed:
        await pipeline.submit(items, weights, wait_applied=True)


async def killed_then_recovered(make_sketch, feed, kill_at, directory):
    """Apply ``kill_at`` batches, die without a final checkpoint, recover,
    finish the workload.  Returns (recovered-at-kill, final) sketches."""
    pipeline = IngestPipeline(
        make_sketch(), config=_CFG, snapshots=SnapshotManager(directory)
    )
    await pipeline.start()
    await feed_pipeline(pipeline, feed[:kill_at])
    # Crash-equivalent shutdown: applied batches sit in the WAL, no
    # final snapshot is taken, file handles drop.
    await pipeline.stop(final_snapshot=False)

    recovered = IngestPipeline.recover(
        SnapshotManager(directory), config=_CFG
    )
    assert recovered.applied_seq == kill_at
    at_kill = (recovered.sketch.to_bytes(), rng_states(recovered.sketch))
    await recovered.start()
    await feed_pipeline(recovered, feed[kill_at:])
    await recovered.stop()
    return at_kill, (recovered.sketch.to_bytes(), rng_states(recovered.sketch))


def _sampling_sketch():
    # sample_size < k: every decrement pass draws PRNG words, so the
    # kill-point grid exercises PRNG capture/restore non-trivially (with
    # the default ell >= k the quantile is exact and draws nothing).
    from repro import SampleQuantilePolicy

    return FrequentItemsSketch(
        48, policy=SampleQuantilePolicy(0.5, sample_size=8),
        backend="dict", seed=11,
    )


SKETCH_MAKERS = {
    "flat-probing": lambda: FrequentItemsSketch(48, backend="probing", seed=11),
    "flat-dict-sampling": _sampling_sketch,
    "flat-columnar-adaptive": lambda: FrequentItemsSketch(
        48, backend="columnar", seed=11, growth="adaptive"
    ),
    "sharded": lambda: ShardedFrequentItemsSketch(
        32, num_shards=3, seed=11, max_workers=1
    ),
}


@pytest.mark.parametrize("kind", sorted(SKETCH_MAKERS))
def test_kill_at_arbitrary_points_recovers_bit_identically(kind, tmp_path):
    """The acceptance property: snapshot + WAL replay == uninterrupted
    run, to the serialized byte and the PRNG word, at every kill point —
    on, before, and after snapshot boundaries (snapshot_every=5)."""
    make_sketch = SKETCH_MAKERS[kind]
    feed = make_feed()
    final_reference = reference_state(make_sketch, feed)
    for kill_at in (0, 1, 4, 5, 6, 11, 17, len(feed)):
        prefix_reference = reference_state(make_sketch, feed[:kill_at])
        directory = tmp_path / f"{kind}-{kill_at}"
        at_kill, final = run(
            killed_then_recovered(make_sketch, feed, kill_at, str(directory))
        )
        assert at_kill == prefix_reference, f"kill_at={kill_at} (recovery)"
        assert final == final_reference, f"kill_at={kill_at} (continuation)"


def test_double_kill_recovers(tmp_path):
    """Crash, recover, crash again mid-continuation, recover again."""
    feed = make_feed(num_batches=18)
    make_sketch = SKETCH_MAKERS["flat-probing"]

    async def main():
        directory = str(tmp_path / "double")
        pipeline = IngestPipeline(
            make_sketch(), config=_CFG, snapshots=SnapshotManager(directory)
        )
        await pipeline.start()
        await feed_pipeline(pipeline, feed[:7])
        await pipeline.stop(final_snapshot=False)

        second = IngestPipeline.recover(SnapshotManager(directory), config=_CFG)
        await second.start()
        await feed_pipeline(second, feed[7:13])
        await second.stop(final_snapshot=False)

        third = IngestPipeline.recover(SnapshotManager(directory), config=_CFG)
        await third.start()
        await feed_pipeline(third, feed[13:])
        await third.stop()
        return third.sketch.to_bytes(), rng_states(third.sketch)

    assert run(main()) == reference_state(make_sketch, feed)


def test_logged_but_never_applied_batch_replays(tmp_path):
    """The crash window between the WAL append and the apply: recovery
    treats the logged batch as applied — identical to the uninterrupted
    run that got one batch further."""
    feed = make_feed(num_batches=6)
    make_sketch = SKETCH_MAKERS["flat-probing"]
    directory = str(tmp_path / "window")

    async def main():
        pipeline = IngestPipeline(
            make_sketch(), config=_CFG, snapshots=SnapshotManager(directory)
        )
        await pipeline.start()
        await feed_pipeline(pipeline, feed[:5])
        # Simulate dying after the WAL write, before update_batch: log
        # batch 6 by hand and drop everything.
        manager = pipeline._snapshots
        manager.append_wal(6, feed[5][0], feed[5][1])
        manager.close()

    run(main())
    recovered = SnapshotManager(directory).recover()
    assert recovered is not None
    sketch, seq = recovered
    assert seq == 6
    assert (sketch.to_bytes(), rng_states(sketch)) == reference_state(
        make_sketch, feed
    )


def test_torn_wal_tail_is_discarded(tmp_path):
    """Truncating mid-record must cost exactly the torn batch, nothing
    else — recovery lands on the previous batch's state."""
    feed = make_feed(num_batches=9)
    make_sketch = SKETCH_MAKERS["flat-probing"]
    directory = str(tmp_path / "torn")

    async def main():
        pipeline = IngestPipeline(
            make_sketch(), config=_CFG, snapshots=SnapshotManager(directory)
        )
        await pipeline.start()
        await feed_pipeline(pipeline, feed)
        await pipeline.stop(final_snapshot=False)

    run(main())
    wal_paths = sorted(
        path for path in os.listdir(directory) if path.endswith(".rwal")
    )
    last = os.path.join(directory, wal_paths[-1])
    size = os.path.getsize(last)
    with open(last, "r+b") as fh:
        fh.truncate(size - 11)  # rip through the final record
    sketch, seq = SnapshotManager(directory).recover()
    assert seq == len(feed) - 1
    assert (sketch.to_bytes(), rng_states(sketch)) == reference_state(
        make_sketch, feed[:-1]
    )


def test_corrupt_newest_snapshot_falls_back(tmp_path):
    """A torn newest checkpoint must not strand the service: recovery
    falls back to the previous snapshot and replays the retained WAL —
    same final state."""
    feed = make_feed(num_batches=13)  # snapshots at 5 and 10
    make_sketch = SKETCH_MAKERS["flat-probing"]
    directory = str(tmp_path / "fallback")

    async def main():
        pipeline = IngestPipeline(
            make_sketch(), config=_CFG, snapshots=SnapshotManager(directory)
        )
        await pipeline.start()
        await feed_pipeline(pipeline, feed)
        await pipeline.stop(final_snapshot=False)

    run(main())
    snapshots = sorted(
        path for path in os.listdir(directory) if path.endswith(".rsnap")
    )
    assert len(snapshots) == 2  # keep_snapshots default
    newest = os.path.join(directory, snapshots[-1])
    blob = bytearray(open(newest, "rb").read())
    blob[len(blob) // 2] ^= 0xFF
    open(newest, "wb").write(bytes(blob))
    sketch, seq = SnapshotManager(directory).recover()
    assert seq == len(feed)
    assert (sketch.to_bytes(), rng_states(sketch)) == reference_state(
        make_sketch, feed
    )


def test_pruning_keeps_recovery_possible(tmp_path):
    """Long-running service: old snapshots/WAL segments are pruned, yet
    every later recovery still works."""
    feed = make_feed(num_batches=30)
    make_sketch = SKETCH_MAKERS["flat-probing"]
    directory = str(tmp_path / "prune")

    async def main():
        pipeline = IngestPipeline(
            make_sketch(), config=_CFG, snapshots=SnapshotManager(directory)
        )
        await pipeline.start()
        await feed_pipeline(pipeline, feed)
        await pipeline.stop(final_snapshot=False)

    run(main())
    names = os.listdir(directory)
    assert sum(name.endswith(".rsnap") for name in names) == 2
    assert sum(name.endswith(".rwal") for name in names) <= 3
    sketch, seq = SnapshotManager(directory).recover()
    assert seq == len(feed)
    assert sketch.to_bytes() == reference_state(make_sketch, feed)[0]


# -- snapshot codec -----------------------------------------------------------


def test_snapshot_codec_roundtrip_includes_prng():
    from repro import SampleQuantilePolicy

    # sample_size < k forces the decrement policy to actually sample,
    # consuming PRNG words (with the default ell >= k the quantile is
    # exact and draws nothing).
    policy = SampleQuantilePolicy(0.5, sample_size=4)
    sketch = FrequentItemsSketch(16, policy=policy, seed=5)
    items, weights = make_feed(num_batches=1, batch_size=2_000)[0]
    sketch.update_batch(items, weights)
    assert sketch.kernel.rng.getstate() != FrequentItemsSketch(
        16, policy=policy, seed=5
    ).kernel.rng.getstate()  # decrements consumed PRNG words
    blob = encode_snapshot(sketch, seq=42)
    clone, seq = decode_snapshot(blob)
    assert seq == 42
    assert clone.to_bytes() == sketch.to_bytes()
    assert rng_states(clone) == rng_states(sketch)


def test_snapshot_codec_rejects_corruption():
    sketch = FrequentItemsSketch(8, seed=1)
    sketch.update(3, 4.0)
    blob = encode_snapshot(sketch, seq=7)
    for cut in range(len(blob)):
        with pytest.raises(SerializationError):
            decode_snapshot(blob[:cut])
    for position in range(len(blob)):
        mutated = bytearray(blob)
        mutated[position] ^= 0xFF
        with pytest.raises(SerializationError):
            # Every flip trips the CRC (or an earlier structural check).
            decode_snapshot(bytes(mutated))


def test_snapshot_rejects_unsupported_sketch():
    from repro import DecayedFrequentItemsSketch, InvalidParameterError

    with pytest.raises(InvalidParameterError, match="snapshot"):
        encode_snapshot(DecayedFrequentItemsSketch(16, half_life=10.0), seq=0)


def test_recover_empty_directory(tmp_path):
    directory = str(tmp_path / "fresh")
    assert SnapshotManager(directory).recover() is None
    with pytest.raises(ServiceClosedError):
        IngestPipeline.recover(SnapshotManager(directory))


def test_wal_gap_detected(tmp_path):
    """A missing record in the middle is corruption, not a torn tail —
    replay must refuse rather than skip silently."""
    directory = str(tmp_path / "gap")
    manager = SnapshotManager(directory)
    sketch = FrequentItemsSketch(8, seed=2)
    manager.write_snapshot(sketch, seq=0)
    manager.append_wal(1, np.array([1], dtype=np.uint64), np.array([1.0]))
    manager.append_wal(3, np.array([2], dtype=np.uint64), np.array([1.0]))
    manager.close()
    with pytest.raises(SerializationError, match="gap"):
        SnapshotManager(directory).recover()


def test_random_kill_points_fuzz(tmp_path):
    """A randomized sweep across sketch kinds and kill points (beyond
    the deterministic grid above)."""
    rng = random.Random(2024)
    feed = make_feed(num_batches=12, batch_size=250)
    for index in range(6):
        kind = rng.choice(sorted(SKETCH_MAKERS))
        make_sketch = SKETCH_MAKERS[kind]
        kill_at = rng.randint(0, len(feed))
        directory = tmp_path / f"fuzz-{index}"
        at_kill, final = run(
            killed_then_recovered(make_sketch, feed, kill_at, str(directory))
        )
        assert at_kill == reference_state(make_sketch, feed[:kill_at])
        assert final == reference_state(make_sketch, feed)
