"""Windowed and sampled-MG results are bit-identical pre/post re-base.

Both extensions were converted from hand-rolled update loops over a
``FrequentItemsSketch`` to direct :class:`~repro.engine.kernel.
SketchKernel` composition.  The golden hashes below were computed with
the pre-engine implementations (PR 2 tree) on fixed-seed Zipf and
adversarial streams; the kernel-composed versions must reproduce them
exactly — and their new ``update_batch`` paths must land in the same
state as their scalar loops.
"""

import numpy as np
import pytest

from helpers import sha256_hex as _sha
from repro.extensions.sampled_mg import SampledFrequentItems
from repro.extensions.windowed import SlidingWindowHeavyHitters
from repro.streams.adversarial import rbmc_killer_stream
from repro.streams.zipf import ZipfianStream

#: Pre-rebase goldens: sha256 of the merged window / inner summary bytes.
GOLDEN_WINDOWED_ZIPF = (
    "06b0a97c3d5e553f1b7f9e72d77198da13b30939f8b3053e362fb70fbf53751b"
)
GOLDEN_WINDOWED_ZIPF_WEIGHT = 303_826.0
GOLDEN_WINDOWED_ADVERSARIAL = (
    "f993435a1fc43a840c0b281c5b12ec162b1de96779b7afab3d696564a4b9d718"
)
GOLDEN_WINDOWED_ADVERSARIAL_WEIGHT = 34_000.0
GOLDEN_SAMPLED_ZIPF = (
    "d63201335fc864cee979174b32d1beb3788606152ff4e99932baa2397a8bd90c"
)
GOLDEN_SAMPLED_ZIPF_COUNT = 100_713
GOLDEN_SAMPLED_ZIPF_SKIP = 7.0
GOLDEN_SAMPLED_ADVERSARIAL = (
    "c4ef22cb57fbfbea892c7c346357550eee5f4ef2e80200424914ac97b92e1edd"
)
GOLDEN_SAMPLED_ADVERSARIAL_COUNT = 8_502
GOLDEN_SAMPLED_ADVERSARIAL_SKIP = 1.0


@pytest.fixture(scope="module")
def zipf_stream():
    return list(
        ZipfianStream(20_000, universe=2_000, alpha=1.1, seed=7,
                      weight_low=1, weight_high=100)
    )


@pytest.fixture(scope="module")
def adversarial_stream():
    return list(rbmc_killer_stream(32, 1000.0, 2_000))


def test_windowed_golden_zipf(zipf_stream):
    window = SlidingWindowHeavyHitters(64, 4, seed=5)
    for index, (item, weight) in enumerate(zipf_stream[:12_000]):
        window.update(item, weight)
        if (index + 1) % 2_000 == 0:
            window.advance()
    assert window.window_weight == GOLDEN_WINDOWED_ZIPF_WEIGHT
    assert _sha(window.window_sketch().to_bytes()) == GOLDEN_WINDOWED_ZIPF


def test_windowed_golden_adversarial(adversarial_stream):
    window = SlidingWindowHeavyHitters(32, 3, seed=9)
    for index, (item, weight) in enumerate(adversarial_stream):
        window.update(item, weight)
        if (index + 1) % 700 == 0:
            window.advance()
    assert window.window_weight == GOLDEN_WINDOWED_ADVERSARIAL_WEIGHT
    assert _sha(window.window_sketch().to_bytes()) == GOLDEN_WINDOWED_ADVERSARIAL


def test_sampled_golden_zipf(zipf_stream):
    sampled = SampledFrequentItems(64, 0.1, seed=13)
    for item, weight in zipf_stream:
        sampled.update(item, weight)
    assert sampled.sampled_count == GOLDEN_SAMPLED_ZIPF_COUNT
    assert sampled._skip == GOLDEN_SAMPLED_ZIPF_SKIP
    assert _sha(sampled.inner.to_bytes()) == GOLDEN_SAMPLED_ZIPF


def test_sampled_golden_adversarial(adversarial_stream):
    sampled = SampledFrequentItems(32, 0.25, seed=17)
    for item, weight in adversarial_stream:
        sampled.update(item, weight)
    assert sampled.sampled_count == GOLDEN_SAMPLED_ADVERSARIAL_COUNT
    assert sampled._skip == GOLDEN_SAMPLED_ADVERSARIAL_SKIP
    assert _sha(sampled.inner.to_bytes()) == GOLDEN_SAMPLED_ADVERSARIAL


@pytest.mark.parametrize("backend", ("dict", "columnar"))
def test_windowed_batch_equals_scalar(zipf_stream, backend):
    """The inherited kernel batch path lands in scalar-identical state."""
    items = np.array([item for item, _w in zipf_stream[:12_000]], dtype=np.uint64)
    weights = np.array([w for _item, w in zipf_stream[:12_000]], dtype=np.float64)
    scalar = SlidingWindowHeavyHitters(64, 4, backend=backend, seed=5)
    batched = SlidingWindowHeavyHitters(64, 4, backend=backend, seed=5)
    for start in range(0, 12_000, 2_000):
        stop = start + 2_000
        for index in range(start, stop):
            scalar.update(int(items[index]), float(weights[index]))
        scalar.advance()
        batched.update_batch(items[start:stop], weights[start:stop])
        batched.advance()
    assert scalar.window_weight == batched.window_weight
    assert (
        scalar.window_sketch().to_bytes() == batched.window_sketch().to_bytes()
    )


@pytest.mark.parametrize("backend", ("dict", "columnar"))
def test_sampled_batch_equals_scalar(zipf_stream, backend):
    """Batch thinning draws the same renewal sequence as the scalar loop."""
    items = np.array([item for item, _w in zipf_stream], dtype=np.uint64)
    weights = np.array([w for _item, w in zipf_stream], dtype=np.float64)
    scalar = SampledFrequentItems(64, 0.1, backend=backend, seed=13)
    for item, weight in zipf_stream:
        scalar.update(item, weight)
    batched = SampledFrequentItems(64, 0.1, backend=backend, seed=13)
    for start in range(0, len(items), 4_096):
        batched.update_batch(items[start : start + 4_096],
                             weights[start : start + 4_096])
    assert batched.sampled_count == scalar.sampled_count
    assert batched._skip == scalar._skip
    assert batched.stream_weight == scalar.stream_weight
    assert batched.inner.to_bytes() == scalar.inner.to_bytes()


def test_sampled_batch_passthrough_probability_one():
    sampled = SampledFrequentItems(32, 1.0, seed=1)
    sampled.update_batch(np.array([1, 2, 1], dtype=np.uint64),
                         np.array([5.0, 3.0, 2.0]))
    assert sampled.estimate(1) == 7.0
    assert sampled.sampled_count == 10
    assert sampled.stream_weight == 10.0


def test_sampled_batch_renewal_boundary_clamped():
    """A renewal landing in the pairwise-vs-sequential sum gap must not crash.

    ``weights.sum()`` (pairwise) can exceed ``np.cumsum(weights)[-1]``
    (sequential) by a few ulps for non-integer weights; a carried-over
    skip landing in that gap used to index past the batch.  It must be
    attributed to the last update, per the scalar loop's inclusive
    boundary.
    """
    for n in (300, 1_000, 3_000, 10_000):
        weights = np.full(n, 0.1)
        if float(weights.sum()) > float(np.cumsum(weights)[-1]):
            break
    else:
        pytest.skip("no pairwise/sequential summation gap on this platform")
    items = np.arange(len(weights), dtype=np.uint64)
    sampled = SampledFrequentItems(32, 0.5, seed=3)
    sampled._skip = float(weights.sum())  # renewal exactly at the batch end
    sampled.update_batch(items, weights)  # must not raise
    assert sampled.sampled_count == 1
    assert sampled.inner.lower_bound(int(items[-1])) == 1.0


def test_sampled_batch_empty_and_no_hits():
    sampled = SampledFrequentItems(32, 0.001, seed=2)
    sampled.update_batch(np.array([], dtype=np.uint64))
    assert sampled.stream_weight == 0.0
    # A tiny batch at p=0.001 usually samples nothing; state must stay
    # consistent either way.
    sampled.update_batch(np.array([9], dtype=np.uint64), np.array([1.0]))
    assert sampled.stream_weight == 1.0
    assert sampled.sampled_count in (0, 1)
