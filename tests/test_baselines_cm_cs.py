"""CountMin and CountSketch: one-sided / unbiased error behaviour."""

import pytest

from repro.baselines import CountMinSketch, CountSketch
from repro.errors import InvalidParameterError, InvalidUpdateError


def test_cms_validation():
    with pytest.raises(InvalidParameterError):
        CountMinSketch(0, 16)
    with pytest.raises(InvalidParameterError):
        CountMinSketch(4, 100)  # width not a power of two
    cms = CountMinSketch(4, 16)
    with pytest.raises(InvalidUpdateError):
        cms.update(1, -1.0)


def test_cms_never_underestimates(zipf_weighted_stream, zipf_weighted_exact):
    cms = CountMinSketch(4, 2048, seed=1)
    for item, weight in zipf_weighted_stream:
        cms.update(item, weight)
    for item, frequency in zipf_weighted_exact.top_k(50):
        assert cms.estimate(item) >= frequency - 1e-6
        assert cms.upper_bound(item) == cms.estimate(item)
        assert cms.lower_bound(item) <= frequency + 1e-6


def test_cms_error_scales_with_width(zipf_weighted_stream, zipf_weighted_exact):
    narrow = CountMinSketch(4, 256, seed=2)
    wide = CountMinSketch(4, 4096, seed=2)
    for item, weight in zipf_weighted_stream:
        narrow.update(item, weight)
        wide.update(item, weight)

    def mean_overestimate(sketch):
        rows = zipf_weighted_exact.top_k(100)
        return sum(sketch.estimate(i) - f for i, f in rows) / len(rows)

    assert mean_overestimate(wide) <= mean_overestimate(narrow)


def test_cms_conservative_update_tighter(zipf_weighted_stream, zipf_weighted_exact):
    plain = CountMinSketch(4, 512, seed=3)
    conservative = CountMinSketch(4, 512, seed=3, conservative=True)
    for item, weight in zipf_weighted_stream:
        plain.update(item, weight)
        conservative.update(item, weight)
    for item, frequency in zipf_weighted_exact.top_k(20):
        assert conservative.estimate(item) <= plain.estimate(item) + 1e-6
        assert conservative.estimate(item) >= frequency - 1e-6


def test_cms_candidate_tracking(zipf_weighted_stream, zipf_weighted_exact):
    cms = CountMinSketch(4, 2048, seed=4, track_top=32)
    for item, weight in zipf_weighted_stream:
        cms.update(item, weight)
    phi = 0.02
    candidates = cms.heavy_hitter_candidates(phi)
    for item in zipf_weighted_exact.heavy_hitters(phi):
        assert item in candidates


def test_cms_merge():
    a = CountMinSketch(3, 256, seed=5)
    b = CountMinSketch(3, 256, seed=5)
    a.update(1, 10.0)
    b.update(1, 5.0)
    b.update(2, 7.0)
    a.merge(b)
    assert a.estimate(1) >= 15.0
    assert a.stream_weight == 22.0
    with pytest.raises(InvalidParameterError):
        a.merge(CountMinSketch(3, 512, seed=5))


def test_countsketch_validation():
    with pytest.raises(InvalidParameterError):
        CountSketch(0, 16)
    with pytest.raises(InvalidParameterError):
        CountSketch(4, 77)
    cs = CountSketch(3, 64)
    with pytest.raises(InvalidUpdateError):
        cs.update(1, 0.0)


def test_countsketch_roughly_unbiased(zipf_weighted_stream, zipf_weighted_exact):
    cs = CountSketch(5, 2048, seed=6)
    for item, weight in zipf_weighted_stream:
        cs.update(item, weight)
    n = zipf_weighted_exact.total_weight
    for item, frequency in zipf_weighted_exact.top_k(10):
        assert abs(cs.estimate(item) - frequency) <= 0.05 * n


def test_countsketch_merge():
    a = CountSketch(3, 128, seed=7)
    b = CountSketch(3, 128, seed=7)
    a.update(1, 100.0)
    b.update(1, 50.0)
    a.merge(b)
    assert a.estimate(1) == pytest.approx(150.0)
    with pytest.raises(InvalidParameterError):
        a.merge(CountSketch(4, 128, seed=7))


def test_space_accounting():
    assert CountMinSketch(4, 1024).space_bytes() == 8 * 4 * 1024 + 16 * 4
    assert CountSketch(4, 1024).space_bytes() == 8 * 4 * 1024 + 32 * 4
