"""ISSUE-8 fault gate: a SIGKILLed worker must not cost a single bit.

The scenario mirrors ``run_fault_scenario`` from
``tests/replication_harness.py``, transplanted to the process pool: feed
part of a deterministic frame sequence, SIGKILL one worker mid-batch
(frames shipped, not yet drained), restart the pool over the same data
directory, and replay from each substream's *recovered applied-seq
watermark* — exactly what a reconnecting client would do.  The final
per-tenant blobs must be byte-identical to an uninterrupted run.

The watermark replay is the load-bearing move: per-tenant WAL/snapshot
recovery is at-most-once (a frame in flight at the kill is lost
entirely, never half-applied), so the client re-sends everything past
``applied_seq``.  Because one submitted frame is exactly one applied
sequence, "everything past" is just a list slice.
"""

import asyncio

import numpy as np
import pytest

from helpers import zipf_batch
from repro.errors import ClusterError
from repro.service.cluster import ClusterConfig, WorkerPool

pytestmark = [pytest.mark.cluster, pytest.mark.service, pytest.mark.replication]

SLOT_CAPACITY = 1024

TENANTS = {"alpha": dict(k=96, seed=7), "beta": dict(k=64, seed=19)}


def frame_feed():
    """Per-tenant frame lists: every entry is exactly one frame (its
    size is under the slot capacity), so entry index == applied seq."""
    feed = {}
    for index, tenant in enumerate(TENANTS):
        frames = []
        for frame_index in range(12):
            items, weights = zipf_batch(
                n=700 + 31 * frame_index + 7 * index,
                universe=150,
                seed=50 * index + frame_index,
            )
            frames.append((items, weights))
        feed[tenant] = frames
    return feed


def pool_config(tmp_path):
    return ClusterConfig(
        num_workers=2,
        data_dir=str(tmp_path),
        slot_capacity=SLOT_CAPACITY,
        snapshot_every_batches=4,
    )


async def create_tenants(pool):
    for tenant, params in TENANTS.items():
        await pool.create_tenant(tenant, **params)


async def run_uninterrupted(tmp_path):
    feed = frame_feed()
    async with WorkerPool(pool_config(tmp_path)) as pool:
        await create_tenants(pool)
        for tenant, frames in feed.items():
            for items, weights in frames:
                await pool.submit(tenant, items, weights)
        await pool.drain()
        blobs = {}
        for tenant in TENANTS:
            blobs.update(await pool.tenant_blobs(tenant))
    return blobs


@pytest.mark.parametrize("kill_at", [3, 7])
def test_kill_worker_mid_batch_recovers_bit_identical(tmp_path, kill_at):
    feed = frame_feed()
    reference = asyncio.run(run_uninterrupted(tmp_path / "reference"))

    async def faulted(data_dir):
        config = pool_config(data_dir)
        pool = WorkerPool(config)
        await pool.start()
        try:
            await create_tenants(pool)
            victim = pool.owner_of("alpha")
            # Phase 1: the settled prefix.
            for tenant, frames in feed.items():
                for items, weights in frames[:kill_at]:
                    await pool.submit(tenant, items, weights)
            await pool.drain()
            # Phase 2: ship more frames and SIGKILL the owner of
            # "alpha" with them still in flight — mid-batch, no drain.
            with pytest.raises((ClusterError, asyncio.TimeoutError)):
                async with asyncio.timeout(30):
                    for tenant, frames in feed.items():
                        for items, weights in frames[kill_at : kill_at + 3]:
                            await pool.submit(tenant, items, weights)
                            if tenant == "alpha":
                                pool.kill_worker(victim)
                    # Submits to the dead worker's tenants raise; if
                    # every submit happened to land before the kill,
                    # force the error surface through a query.
                    await pool.drain()
                    await pool.estimate("alpha", 1)
                    raise AssertionError("dead worker went unnoticed")
        finally:
            await pool.stop(final_snapshot=False)

        # Phase 3: restart over the same directory, read each tenant's
        # recovered watermark, and client-replay everything past it.
        async with WorkerPool(config) as pool:
            assert sorted(spec.name for spec in pool.list_tenants()) == (
                sorted(TENANTS)
            )
            seqs = await pool.drain()
            blobs = {}
            for tenant, frames in feed.items():
                applied = seqs[tenant]
                # At-most-once: nothing past what we shipped, nothing
                # below the settled prefix.
                assert kill_at <= applied <= kill_at + 3, (tenant, applied)
                for items, weights in frames[applied:]:
                    await pool.submit(tenant, items, weights)
                await pool.drain()
                blobs.update(await pool.tenant_blobs(tenant))
            return blobs

    recovered = asyncio.run(faulted(tmp_path / "faulted"))
    assert recovered.keys() == reference.keys()
    for substream in reference:
        assert recovered[substream] == reference[substream], (
            f"{substream} not byte-identical after crash recovery"
        )


def test_restart_without_fault_is_also_identical(tmp_path):
    """Control arm: a clean stop/restart replays to the same bytes
    (separates crash-recovery bugs from plain restart bugs)."""
    feed = frame_feed()
    reference = asyncio.run(run_uninterrupted(tmp_path / "reference"))

    async def restarted(data_dir):
        config = pool_config(data_dir)
        half = 6
        async with WorkerPool(config) as pool:
            await create_tenants(pool)
            for tenant, frames in feed.items():
                for items, weights in frames[:half]:
                    await pool.submit(tenant, items, weights)
            await pool.drain()
        async with WorkerPool(config) as pool:
            seqs = await pool.drain()
            assert all(seq == half for seq in seqs.values()), seqs
            blobs = {}
            for tenant, frames in feed.items():
                for items, weights in frames[half:]:
                    await pool.submit(tenant, items, weights)
                await pool.drain()
                blobs.update(await pool.tenant_blobs(tenant))
            return blobs

    assert asyncio.run(restarted(tmp_path / "restarted")) == reference


def test_unapplied_tail_is_bounded(tmp_path):
    """The kill can lose only frames that were never acknowledged as
    applied: after recovery the watermark never exceeds what was
    shipped, and re-shipping from it is always safe."""

    async def scenario():
        config = pool_config(tmp_path)
        shipped = 8
        items = np.arange(600, dtype=np.uint64) % 41
        pool = WorkerPool(config)
        await pool.start()
        try:
            await pool.create_tenant("only", k=64, seed=2)
            for _ in range(shipped):
                await pool.submit("only", items)
            pool.kill_worker(pool.owner_of("only"))
        finally:
            await pool.stop(final_snapshot=False)
        async with WorkerPool(config) as pool:
            seqs = await pool.drain()
            assert 0 <= seqs["only"] <= shipped
        return True

    assert asyncio.run(scenario())
