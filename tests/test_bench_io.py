"""Atomic bench-document writes: a torn write must never reach ``path``."""

import json
import os

import pytest

from repro.bench.io import atomic_write_json, git_revision, load_json, utc_timestamp


def test_write_and_load_round_trip(tmp_path):
    path = tmp_path / "doc.json"
    atomic_write_json(path, {"bench": "x", "rows": [1, 2, 3]})
    assert load_json(path) == {"bench": "x", "rows": [1, 2, 3]}


def test_output_is_newline_terminated(tmp_path):
    path = tmp_path / "doc.json"
    atomic_write_json(path, {"a": 1})
    assert path.read_text().endswith("\n")


def test_overwrite_replaces_document(tmp_path):
    path = tmp_path / "doc.json"
    atomic_write_json(path, {"version": 1})
    atomic_write_json(path, {"version": 2})
    assert load_json(path) == {"version": 2}
    assert not (tmp_path / "doc.json.tmp").exists()


def test_crash_mid_serialization_keeps_previous_file_byte_identical(tmp_path):
    """The acceptance scenario: a crash partway through ``json.dump``.

    ``object()`` is unserializable, so the dump raises *after* the
    serializer has already streamed the leading keys into the temporary
    file.  The previous document must survive byte-for-byte and no
    ``.tmp`` debris may remain for the next writer to trip over.
    """
    path = tmp_path / "BENCH_ingest.json"
    atomic_write_json(path, {"bench": "ingest-profile", "gates": {"g": 1.0}})
    before = path.read_bytes()

    with pytest.raises(TypeError):
        atomic_write_json(path, {"bench": "ingest-profile", "bad": object()})

    assert path.read_bytes() == before
    assert os.listdir(tmp_path) == ["BENCH_ingest.json"]
    # And the survivor still parses.
    assert json.loads(path.read_text())["gates"] == {"g": 1.0}


def test_crash_with_no_previous_file_leaves_nothing(tmp_path):
    path = tmp_path / "fresh.json"
    with pytest.raises(TypeError):
        atomic_write_json(path, {"bad": object()})
    assert os.listdir(tmp_path) == []


def test_git_revision_inside_checkout():
    revision = git_revision(os.path.dirname(os.path.abspath(__file__)))
    assert set(revision) == {"git_hash", "git_dirty"}
    assert len(revision["git_hash"]) == 40
    assert isinstance(revision["git_dirty"], bool)


def test_git_revision_outside_checkout(tmp_path):
    revision = git_revision(str(tmp_path))
    assert revision == {"git_hash": "unknown", "git_dirty": None}


def test_utc_timestamp_shape():
    stamp = utc_timestamp()
    assert stamp.endswith("Z")
    assert len(stamp) == len("2026-01-01T00:00:00Z")
