"""ResultTable rendering and access."""

import pytest

from repro.bench.report import ResultTable


def _table():
    table = ResultTable("demo", ["name", "k", "value"])
    table.add_row(name="a", k=1, value=0.5)
    table.add_row(name="b", k=2, value=1_000_000.0)
    return table


def test_columns_and_rows():
    table = _table()
    assert table.column("name") == ["a", "b"]
    assert table.column("k") == [1, 2]


def test_cell_lookup():
    table = _table()
    assert table.cell({"name": "a"}, "value") == 0.5
    assert table.cell({"name": "b", "k": 2}, "value") == 1_000_000.0
    with pytest.raises(KeyError):
        table.cell({"name": "zzz"}, "value")


def test_unknown_column_rejected():
    table = _table()
    with pytest.raises(KeyError):
        table.add_row(name="c", bogus=1)


def test_text_rendering():
    text = _table().to_text()
    lines = text.splitlines()
    assert "demo" in lines[1]
    assert any("name" in line and "value" in line for line in lines)
    assert "1.000e+06" in text  # big floats in scientific notation
    assert str(_table()) == text


def test_missing_cells_render_blank():
    table = ResultTable("sparse", ["a", "b"])
    table.add_row(a=1)
    assert "1" in table.to_text()


def test_empty_table_renders():
    table = ResultTable("empty", ["x"])
    text = table.to_text()
    assert "empty" in text
    assert "x" in text  # the header row still appears


def test_cell_no_match_message_names_table_and_criteria():
    table = _table()
    with pytest.raises(KeyError) as excinfo:
        table.cell({"name": "zzz", "k": 9}, "value")
    message = str(excinfo.value)
    assert "demo" in message  # which table
    assert "zzz" in message and "9" in message  # which criteria failed


def test_unknown_column_message_names_offenders():
    table = _table()
    with pytest.raises(KeyError) as excinfo:
        table.add_row(name="c", bogus=1, wat=2)
    message = str(excinfo.value)
    assert "bogus" in message and "wat" in message and "demo" in message
    assert len(table.rows) == 2  # the bad row was not half-appended


def test_non_finite_floats_render():
    table = ResultTable("odd", ["name", "value"])
    table.add_row(name="nan", value=float("nan"))
    table.add_row(name="inf", value=float("inf"))
    table.add_row(name="ninf", value=float("-inf"))
    text = table.to_text()
    assert "nan" in text
    assert "inf" in text
    assert "-inf" in text
