#!/usr/bin/env python
"""Explore the decrement-quantile speed/accuracy dial (paper Section 4.4).

The single design parameter separating SMIN (quantile 0), SMED
(quantile 0.5), and everything between: a higher decrement quantile
frees more counters per pass — fewer, better-amortized passes, hence
speed — at the price of more error per pass.  This mini-sweep reproduces
the Figure 3 shape on a small stream and prints the same conclusion the
paper reaches: the error curve is nearly flat up to mid quantiles while
the runtime falls off a cliff, making the median an attractive operating
point.

Run:  python examples/quantile_tradeoff.py
"""

import time

from repro import FrequentItemsSketch, SampleQuantilePolicy
from repro.streams import ExactCounter, SyntheticPacketTrace


def main() -> None:
    k = 256
    stream = list(
        SyntheticPacketTrace(40_000, unique_sources=8_000, seed=11)
    )
    exact = ExactCounter()
    exact.update_all(stream)

    print(f"k = {k}, {len(stream):,} weighted updates")
    print(f"{'quantile':>8}  {'seconds':>8}  {'max error':>11}  "
          f"{'decrements':>10}  note")
    for percent in (0, 5, 10, 25, 50, 75, 90, 98):
        sketch = FrequentItemsSketch(
            k, policy=SampleQuantilePolicy(percent / 100.0), seed=1
        )
        start = time.perf_counter()
        for item, weight in stream:
            sketch.update(item, weight)
        elapsed = time.perf_counter() - start
        worst = max(
            abs(freq - sketch.estimate(item)) for item, freq in exact.items()
        )
        note = {0: "SMIN", 50: "SMED (recommended)"}.get(percent, "")
        print(f"{percent:>7}%  {elapsed:8.3f}  {worst:11,.0f}  "
              f"{sketch.stats.decrements:>10}  {note}")


if __name__ == "__main__":
    main()
