#!/usr/bin/env python
"""Network telemetry: top talkers and heavy subnets from a packet stream.

The paper's motivating workload (Section 4.1): updates are
``(source_ip, packet_size_in_bits)``.  This example finds

  1. the top talkers by bytes sent (weighted heavy hitters), with
     guaranteed-correct lower bounds, and
  2. the hierarchical heavy hitters — the /8, /16 and /24 subnets
     responsible for outsized traffic even when no single host is
     (the paper's Section 6 future-work application).

Run:  python examples/network_telemetry.py
"""

from repro import ErrorType, FrequentItemsSketch
from repro.extensions import HierarchicalHeavyHitters
from repro.streams import ExactCounter, SyntheticPacketTrace


def format_ip(address: int) -> str:
    return ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def main() -> None:
    trace = SyntheticPacketTrace(
        num_updates=100_000, unique_sources=15_000, seed=2016
    )
    sketch = FrequentItemsSketch(max_counters=512, backend="dict", seed=1)
    subnets = HierarchicalHeavyHitters(max_counters=512, seed=2)
    exact = ExactCounter()  # ground truth, for the comparison printout

    for source, bits in trace:
        sketch.update(source, bits)
        subnets.update(source, bits)
        exact.update(source, bits)

    n = sketch.stream_weight
    print(f"processed {len(trace):,} packets, {n / 8 / 1e6:,.1f} MB total")
    print(f"distinct sources: {exact.num_items:,}; sketch keeps "
          f"{sketch.num_active} counters in {sketch.space_bytes():,} bytes")
    print()

    print("top talkers (NO_FALSE_POSITIVES at phi = 0.5%):")
    print(f"{'source':>17}  {'est MB':>9}  {'exact MB':>9}  {'share':>6}")
    for row in sketch.heavy_hitters(0.005, ErrorType.NO_FALSE_POSITIVES)[:10]:
        true = exact.frequency(row.item)
        print(
            f"{format_ip(row.item):>17}  {row.estimate / 8e6:9.2f}  "
            f"{true / 8e6:9.2f}  {100 * true / n:5.1f}%"
        )
    print()

    print("hierarchical heavy hitters (phi = 2%), discounted:")
    for node in subnets.query(0.02)[:12]:
        print(
            f"  {node.cidr():>20}  discounted {node.discounted / 8e6:8.2f} MB  "
            f"(total {node.estimate / 8e6:8.2f} MB)"
        )


if __name__ == "__main__":
    main()
