#!/usr/bin/env python
"""Trending items with the exponential time-fading sketch.

A traffic mix that shifts over time: an "old guard" item dominates the
early stream, then fades out of the workload while a "breakout" item
ramps up.  A plain :class:`~repro.core.frequent_items.FrequentItemsSketch`
keeps ranking the old guard first forever (it optimizes all-time
totals); the :class:`~repro.extensions.decayed.DecayedFrequentItemsSketch`
halves every item's influence per half-life, so its heavy hitters track
what is trending *now*.  Both sketches ingest the same array batches —
the decayed sketch rides the shared engine's vectorized batch path.

Run:  python examples/decayed_trending.py
"""

import time

import numpy as np

from repro import DecayedFrequentItemsSketch, FrequentItemsSketch

OLD_GUARD = 1001
BREAKOUT = 2002


def epoch_batch(rng: np.random.Generator, epoch: int, num_epochs: int,
                size: int) -> tuple[np.ndarray, np.ndarray]:
    """One epoch of traffic: OLD_GUARD dominates early, BREAKOUT late."""
    late = epoch >= num_epochs - 3
    share_old = 0.0 if late else 0.40        # 40% of traffic, then gone
    share_new = 0.25 if late else 0.0        # absent, then 25% of traffic
    draws = rng.random(size)
    items = rng.integers(10_000, 40_000, size=size).astype(np.uint64)
    items[draws < share_old] = OLD_GUARD
    items[(draws >= share_old) & (draws < share_old + share_new)] = BREAKOUT
    weights = rng.integers(1, 100, size=size).astype(np.float64)
    return items, weights


def main() -> None:
    num_epochs = 12
    batch_size = 25_000
    rng = np.random.default_rng(7)

    alltime = FrequentItemsSketch(1024, backend="columnar", seed=3)
    decayed = DecayedFrequentItemsSketch(1024, half_life=2.0, seed=3)

    start = time.perf_counter()
    for epoch in range(num_epochs):
        items, weights = epoch_batch(rng, epoch, num_epochs, batch_size)
        alltime.update_batch(items, weights)
        decayed.update_batch(items, weights)
        if epoch < num_epochs - 1:
            decayed.tick()                   # one epoch = one time unit
    seconds = time.perf_counter() - start
    total = num_epochs * batch_size
    print(f"{total:,} updates over {num_epochs} epochs "
          f"({total / seconds:,.0f} updates/sec through both sketches)")
    print()

    def rank(sketch, item) -> str:
        rows = sketch.heavy_hitters(phi=0.001)
        for position, row in enumerate(rows, start=1):
            if row.item == item:
                return f"#{position}"
        return "unranked"

    print(f"{'sketch':<22} {'old guard':>12} {'breakout':>12}")
    print(f"{'all-time totals':<22} {rank(alltime, OLD_GUARD):>12} "
          f"{rank(alltime, BREAKOUT):>12}")
    print(f"{'time-fading (trend)':<22} {rank(decayed, OLD_GUARD):>12} "
          f"{rank(decayed, BREAKOUT):>12}")
    print()
    print(f"all-time estimates : old guard {alltime.estimate(OLD_GUARD):>12,.0f}"
          f"   breakout {alltime.estimate(BREAKOUT):>12,.0f}")
    print(f"decayed estimates  : old guard {decayed.estimate(OLD_GUARD):>12,.0f}"
          f"   breakout {decayed.estimate(BREAKOUT):>12,.0f}")
    print()
    top = decayed.heavy_hitters(phi=0.05)
    print(f"trending now (phi = 5% of decayed weight "
          f"{decayed.decayed_weight:,.0f}):")
    for row in top[:3]:
        print(f"  item {row.item:>6}: decayed estimate {row.estimate:12,.1f} "
              f"in [{row.lower_bound:,.1f}, {row.upper_bound:,.1f}]")
    assert top and top[0].item == BREAKOUT, "breakout item should lead the trend"
    assert alltime.estimate(OLD_GUARD) > alltime.estimate(BREAKOUT)
    assert decayed.estimate(BREAKOUT) > decayed.estimate(OLD_GUARD)
    print()
    print("the all-time sketch still ranks the old guard; the decayed "
          "sketch has moved on")


if __name__ == "__main__":
    main()
