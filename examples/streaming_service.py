#!/usr/bin/env python
"""The streaming ingest service, end to end: server, clients, recovery.

Starts a :class:`~repro.service.server.StreamServer` over an
:class:`~repro.service.pipeline.IngestPipeline` with snapshot/WAL
durability, drives it with concurrent producer clients shipping binary
batch frames over TCP, queries heavy hitters live, then *kills* the
service without a clean shutdown and recovers it from the checkpoint
directory — demonstrating that the recovered state matches the killed
one bit for bit (serialized bytes and PRNG state both).

Run:  python examples/streaming_service.py
"""

import asyncio
import tempfile
import time

from repro import ExactCounter, FrequentItemsSketch, IngestPipeline, PipelineConfig
from repro.service import ServiceClient, SnapshotManager, StreamServer
from repro.streams import ZipfianStream

K = 1024
NUM_PRODUCERS = 4
UPDATES_PER_PRODUCER = 50_000
FRAME = 4_096


def producer_stream(index: int):
    return list(
        ZipfianStream(
            UPDATES_PER_PRODUCER, universe=10_000, alpha=1.1,
            seed=100 + index, weight_low=1, weight_high=1_000,
        ).batches(batch_size=FRAME)
    )


async def run_producer(port: int, batches) -> int:
    client = await ServiceClient.connect("127.0.0.1", port)
    sent = 0
    for items, weights in batches:
        sent += await client.send_batch(items, weights)  # binary frames
    await client.close()
    return sent


async def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="repro-service-")
    streams = [producer_stream(index) for index in range(NUM_PRODUCERS)]
    exact = ExactCounter()
    for batches in streams:
        for items, weights in batches:
            for item, weight in zip(items.tolist(), weights.tolist()):
                exact.update(item, weight)

    # -- serve, ingest from concurrent TCP producers, query live -----------
    pipeline = IngestPipeline(
        FrequentItemsSketch(K, backend="columnar", seed=7),
        config=PipelineConfig(max_batch_items=16_384, flush_interval=0.005,
                              snapshot_every_batches=16),
        snapshots=SnapshotManager(data_dir),
    )
    async with pipeline:
        server = StreamServer(pipeline)
        async with server:
            print(f"serving on 127.0.0.1:{server.port}  (data dir {data_dir})")
            start = time.perf_counter()
            sent = await asyncio.gather(
                *(run_producer(server.port, batches) for batches in streams)
            )
            await pipeline.drain()
            seconds = time.perf_counter() - start
            total = sum(sent)
            print(f"ingested {total:,} updates from {NUM_PRODUCERS} TCP "
                  f"producers in {seconds:.2f}s "
                  f"({total / seconds:,.0f} updates/sec)")

            query = await ServiceClient.connect("127.0.0.1", server.port)
            hitters = await query.heavy_hitters(0.005)
            stats = await query.stats()
            await query.close()
            print(f"micro-batches applied: {stats['applied_batches']}, "
                  f"snapshots: {stats['snapshots_written']}, "
                  f"WAL bytes: {stats['wal_bytes']:,}")
            true_hitters = exact.heavy_hitters(0.005)
            reported = {item for item, _estimate in hitters}
            recall = sum(item in reported for item in true_hitters) / max(
                1, len(true_hitters)
            )
            print(f"heavy hitters (phi=0.5%): {len(hitters)} reported, "
                  f"recall vs exact oracle = {recall:.2f}")
        # Kill: no final snapshot — state survives only as checkpoint + WAL.
        await pipeline.stop(final_snapshot=False)
    killed_bytes = pipeline.sketch.to_bytes()
    killed_rng = pipeline.sketch.kernel.rng.getstate()

    # -- recover from disk and verify bit-identity --------------------------
    recovered = IngestPipeline.recover(SnapshotManager(data_dir))
    match_bytes = recovered.sketch.to_bytes() == killed_bytes
    match_rng = recovered.sketch.kernel.rng.getstate() == killed_rng
    print(f"recovered from {data_dir}: seq={recovered.applied_seq}, "
          f"bytes identical: {match_bytes}, PRNG identical: {match_rng}")
    assert match_bytes and match_rng
    async with recovered:
        await recovered.submit([1, 2, 1], [10.0, 5.0, 10.0])
        await recovered.drain()
    print("recovered service keeps ingesting: estimate(1) =",
          recovered.estimate(1))


if __name__ == "__main__":
    asyncio.run(main())
