#!/usr/bin/env python
"""Entropy-based anomaly detection over traffic windows (Section 6).

Estimating the empirical entropy of the source-address distribution is a
classic use of heavy-hitter summaries (and one of the paper's named
future-work applications): a DDoS-like event — one source suddenly
dominating — collapses the entropy, while an address scan inflates it.

This example monitors fixed-size windows of a synthetic packet stream
with :class:`repro.extensions.StreamingEntropy` and flags windows whose
entropy deviates sharply from the trailing mean.  A burst from a single
source is injected mid-stream; the monitor localizes it.

Run:  python examples/entropy_anomaly.py
"""

from repro.extensions import StreamingEntropy
from repro.streams import ExactCounter, SyntheticPacketTrace


def window_entropy(updates) -> tuple[float, float]:
    """(estimated, exact) entropy of one window."""
    monitor = StreamingEntropy(max_counters=256, seed=5)
    exact = ExactCounter()
    for item, weight in updates:
        monitor.update(item, weight)
        exact.update(item, weight)
    return monitor.estimate(), exact.entropy()


def main() -> None:
    window = 10_000
    windows = 12
    attack_window = 7
    trace = list(
        SyntheticPacketTrace(window * windows, unique_sources=20_000, seed=3)
    )
    # Inject the attack: one source floods 70% of a mid-stream window.
    attacker = 0x0A0A0A0A
    start = attack_window * window
    for offset in range(0, int(window * 0.7)):
        item, weight = trace[start + offset]
        trace[start + offset] = type(trace[0])(attacker, weight)

    print(f"{'window':>6}  {'est H (bits)':>12}  {'exact H':>8}  flag")
    history: list[float] = []
    for index in range(windows):
        chunk = trace[index * window : (index + 1) * window]
        estimate, exact = window_entropy(chunk)
        flag = ""
        if len(history) >= 3:
            mean = sum(history) / len(history)
            if abs(estimate - mean) > 0.15 * mean:
                flag = "<-- anomaly"
        print(f"{index:>6}  {estimate:12.3f}  {exact:8.3f}  {flag}")
        if not flag:
            history.append(estimate)
    print()
    print(f"(single-source flood injected in window {attack_window})")


if __name__ == "__main__":
    main()
