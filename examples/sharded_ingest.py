#!/usr/bin/env python
"""Sharded parallel ingestion with merge-on-query.

One :class:`~repro.sharded.sketch.ShardedFrequentItemsSketch` ingesting
Zipf array batches: items are hash-partitioned across shard sketches,
each shard's sub-batch runs through the vectorized ``update_batch`` path
on a thread pool, and queries are answered from a merged view assembled
on demand and cached until the next write.  The script compares the
sharded sketch against a flat columnar sketch on the same stream —
throughput, decrement-pass counts (the hardware-independent speed
driver), and heavy-hitter accuracy against exact ground truth.

Run:  python examples/sharded_ingest.py
"""

import time

from repro import ExactCounter, FrequentItemsSketch, ShardedFrequentItemsSketch
from repro.streams import ZipfianStream


def main() -> None:
    k = 2048
    num_shards = 4
    stream = ZipfianStream(
        num_updates=100_000,
        universe=20_000,
        alpha=1.05,
        seed=42,
        weight_low=1,
        weight_high=10_000,
    )
    batches = list(stream.batches(batch_size=16_384))
    total_updates = sum(len(items) for items, _weights in batches)

    # Flat reference: one columnar sketch, one table, one thread.
    flat = FrequentItemsSketch(k, backend="columnar", seed=7)
    start = time.perf_counter()
    for items, weights in batches:
        flat.update_batch(items, weights)
    flat_seconds = time.perf_counter() - start

    # Sharded: same batches, partitioned across num_shards tables and
    # ingested in parallel.
    sharded = ShardedFrequentItemsSketch(k, num_shards=num_shards, seed=7)
    start = time.perf_counter()
    for items, weights in batches:
        sharded.update_batch(items, weights)
    sharded_seconds = time.perf_counter() - start

    exact = ExactCounter()
    for items, weights in batches:
        for item, weight in zip(items.tolist(), weights.tolist()):
            exact.update(item, weight)

    print(f"{total_updates:,} updates, {exact.num_items:,} distinct items, "
          f"N = {exact.total_weight:,.0f}")
    print()
    print(f"{'ingest path':<28} {'sec':>8} {'updates/sec':>14} {'decrements':>11}")
    print(f"{'flat columnar':<28} {flat_seconds:8.3f} "
          f"{total_updates / flat_seconds:14,.0f} {flat.stats.decrements:11d}")
    print(f"{f'{num_shards} shards (parallel)':<28} {sharded_seconds:8.3f} "
          f"{total_updates / sharded_seconds:14,.0f} "
          f"{sharded.stats.decrements:11d}")
    print(f"sharded speedup: {flat_seconds / sharded_seconds:.2f}x")
    print()

    # Merge-on-query: the first query assembles the merged view; it is
    # cached until the next write invalidates it.
    start = time.perf_counter()
    top = sharded.heavy_hitters(phi=0.01)
    first_query = time.perf_counter() - start
    start = time.perf_counter()
    sharded.heavy_hitters(phi=0.01)
    cached_query = time.perf_counter() - start
    print(f"merged view: {sharded.num_active:,} counters from "
          f"{num_shards} shards, error bound {sharded.maximum_error:,.0f} "
          f"(summed per-shard)")
    print(f"merge-on-query: first query {first_query * 1e3:.2f} ms, "
          f"cached {cached_query * 1e3:.3f} ms")
    print()

    true_hh = exact.heavy_hitters(0.01)
    reported = {row.item for row in top}
    recall = len(reported & set(true_hh)) / len(true_hh) if true_hh else 1.0
    print(f"heavy hitters (phi = 1%): {len(top)} reported, "
          f"{len(true_hh)} true, recall {recall:.2f}")
    for row in top[:5]:
        print(f"  item {row.item:>20}: est {row.estimate:12,.0f}   "
              f"exact {exact.frequency(row.item):12,.0f}")
    sharded.close()


if __name__ == "__main__":
    main()
