#!/usr/bin/env python
"""Distributed summarization: shard, sketch per shard, merge (Section 3).

Models the paper's mergeability scenario: a dataset partitioned across 8
workers, each summarizing independently; the per-worker summaries are
serialized (the wire format standing in for the network) and combined by
a balanced aggregation tree at the coordinator.  The merged summary is
compared against (a) the exact answer and (b) a single sketch that saw
the whole stream — demonstrating Theorem 5: merging does not blow up the
error.

Run:  python examples/distributed_merge.py
"""

from repro import FrequentItemsSketch, merge_pairwise_tree
from repro.streams import ExactCounter, ZipfianStream, partition_round_robin


def main() -> None:
    k = 256
    workers = 8
    stream = list(
        ZipfianStream(
            num_updates=120_000,
            universe=30_000,
            alpha=1.1,
            seed=99,
            weight_low=1,
            weight_high=10_000,
        )
    )
    shards = partition_round_robin(stream, workers)

    # Each worker builds its own summary (distinct seeds: Section 3.2's
    # advice that merged summaries should not share hash functions).
    blobs = []
    for worker, shard in enumerate(shards):
        sketch = FrequentItemsSketch(k, seed=worker)
        for item, weight in shard:
            sketch.update(item, weight)
        blobs.append(sketch.to_bytes())
    wire_bytes = sum(len(blob) for blob in blobs)

    # Coordinator: deserialize and fold up a binary aggregation tree.
    summaries = [FrequentItemsSketch.from_bytes(blob) for blob in blobs]
    merged = merge_pairwise_tree(summaries)

    # References: exact counts and a single all-seeing sketch.
    exact = ExactCounter()
    exact.update_all(stream)
    single = FrequentItemsSketch(k, seed=1234)
    for item, weight in stream:
        single.update(item, weight)

    def max_err(sketch: FrequentItemsSketch) -> float:
        return max(
            abs(freq - sketch.estimate(item)) for item, freq in exact.items()
        )

    n = exact.total_weight
    print(f"{workers} workers x {len(shards[0]):,} updates, N = {n:,.0f}")
    print(f"wire transfer: {wire_bytes:,} bytes total "
          f"(vs {exact.num_items:,} distinct items exact)")
    print()
    print(f"{'summary':<22} {'max error':>12} {'rel to N':>9}")
    print(f"{'merged (8-way tree)':<22} {max_err(merged):12,.0f} "
          f"{max_err(merged) / n:9.2e}")
    print(f"{'single-pass sketch':<22} {max_err(single):12,.0f} "
          f"{max_err(single) / n:9.2e}")
    print()
    print("top-5 items, merged summary vs exact:")
    for row in merged.to_rows()[:5]:
        print(f"  item {row.item:>12}: est {row.estimate:12,.0f}   "
              f"exact {exact.frequency(row.item):12,.0f}   "
              f"bracket [{row.lower_bound:,.0f}, {row.upper_bound:,.0f}]")


if __name__ == "__main__":
    main()
