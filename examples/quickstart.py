#!/usr/bin/env python
"""Quickstart: the FrequentItemsSketch public API in two minutes.

Run:  python examples/quickstart.py
"""

from repro import ErrorType, FrequentItemsSketch
from repro.streams import ZipfianStream


def main() -> None:
    # A sketch with k = 128 counters.  The default configuration is the
    # paper's recommended SMED: decrement by the median of 1024 sampled
    # counters whenever the table overflows.
    sketch = FrequentItemsSketch(max_counters=128, seed=42)

    # Feed a weighted stream: 50k updates, Zipf-popular items, and a
    # weight attached to each update (think bytes per packet).
    stream = ZipfianStream(
        num_updates=50_000,
        universe=10_000,
        alpha=1.2,
        seed=7,
        weight_low=1,
        weight_high=100,
    )
    for item, weight in stream:
        sketch.update(item, weight)

    print(f"stream weight N        = {sketch.stream_weight:,.0f}")
    print(f"counters in use        = {sketch.num_active} / {sketch.max_counters}")
    print(f"maximum estimate error = {sketch.maximum_error:,.0f}")
    print(f"sketch footprint       = {sketch.space_bytes():,} bytes (vs exact: "
          f"one counter per distinct item)")
    print()

    # Point queries come with deterministic brackets.
    top_row = sketch.to_rows()[0]
    print("heaviest tracked item:")
    print(f"  item {top_row.item}: estimate {top_row.estimate:,.0f} "
          f"in [{top_row.lower_bound:,.0f}, {top_row.upper_bound:,.0f}]")
    print()

    # Heavy hitters, both error directions (Section 1.2 of the paper).
    phi = 0.02
    sure = sketch.heavy_hitters(phi, ErrorType.NO_FALSE_POSITIVES)
    complete = sketch.heavy_hitters(phi, ErrorType.NO_FALSE_NEGATIVES)
    print(f"phi = {phi}: {len(sure)} certain heavy hitters, "
          f"{len(complete)} candidates including borderline cases")
    print()

    # Summaries serialize compactly and merge losslessly (Algorithm 5).
    blob = sketch.to_bytes()
    other = FrequentItemsSketch(max_counters=128, seed=43)
    for item, weight in ZipfianStream(
        20_000, universe=10_000, alpha=1.2, seed=8, weight_low=1, weight_high=100
    ):
        other.update(item, weight)
    restored = FrequentItemsSketch.from_bytes(blob)
    restored.merge(other)
    print(f"serialized to {len(blob):,} bytes; merged summary now covers "
          f"N = {restored.stream_weight:,.0f}")


if __name__ == "__main__":
    main()
