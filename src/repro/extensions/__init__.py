"""Extensions the paper sketches or names as future work.

* :class:`SampledFrequentItems` — the Section 5 adaptation of
  Bhattacharyya et al.'s sampling algorithm to weighted streams via
  geometric skipping, layered over our optimized sketch.
* :class:`RandomAdmissionSpaceSaving` — the Section 5 description of
  Sivaraman et al.'s proposal (sample ℓ counters, take over the sampled
  minimum), the HashPipe-style constant-memory-access variant.
* :class:`HierarchicalHeavyHitters` — the Section 6 future-work item:
  hierarchical heavy hitters over IP prefixes with our sketch as the
  per-level subroutine (after Mitzenmacher-Steinke-Thaler).
* :class:`StreamingEntropy` — the other Section 6 item: empirical
  entropy estimation driven by the heavy-hitter summary (with a
  from-scratch HyperLogLog supplying the distinct count the residual
  term needs).
* :class:`TwoSidedSketch` — the Section 1.3 note: handling deletions by
  running one summary on positive and one on negative updates.
* :class:`DecayedFrequentItemsSketch` — exponential time-fading heavy
  hitters (Cafaro et al.'s model) as a forward-decay schedule on one
  :class:`~repro.engine.kernel.SketchKernel`.
"""

from repro.extensions.decayed import DecayedFrequentItemsSketch
from repro.extensions.hierarchical import HierarchicalHeavyHitters, HHHNode
from repro.extensions.hyperloglog import HyperLogLog
from repro.extensions.entropy import StreamingEntropy
from repro.extensions.rap import RandomAdmissionSpaceSaving
from repro.extensions.sampled_mg import SampledFrequentItems
from repro.extensions.turnstile import TwoSidedSketch
from repro.extensions.windowed import SlidingWindowHeavyHitters

__all__ = [
    "SampledFrequentItems",
    "RandomAdmissionSpaceSaving",
    "HierarchicalHeavyHitters",
    "HHHNode",
    "StreamingEntropy",
    "HyperLogLog",
    "TwoSidedSketch",
    "SlidingWindowHeavyHitters",
    "DecayedFrequentItemsSketch",
]
