"""Deletions via paired summaries (the Section 1.3 note).

Counter-based algorithms cannot process negative updates directly, but
the paper observes that in the strict turnstile model one can run one
instance on the positive updates and another on the magnitudes of the
negative updates; the difference of the two estimates has error at most
the *sum* of the two instances' errors (triangle inequality) — i.e.
proportional to ``sum |delta_j|`` instead of ``N``.  Suitable whenever
deletions are a modest fraction of traffic.
"""

from __future__ import annotations

from typing import Optional

from repro.core.frequent_items import FrequentItemsSketch
from repro.core.policies import DecrementPolicy
from repro.core.row import HeavyHitterRow
from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.types import ItemId


class TwoSidedSketch:
    """Strict-turnstile point queries from two one-sided sketches."""

    __slots__ = ("_positive", "_negative")

    def __init__(
        self,
        max_counters: int,
        policy: Optional[DecrementPolicy] = None,
        backend: str = "dict",
        seed: int = 0,
    ) -> None:
        self._positive = FrequentItemsSketch(
            max_counters, policy=policy, backend=backend, seed=seed
        )
        self._negative = FrequentItemsSketch(
            max_counters, policy=policy, backend=backend, seed=seed ^ 0x0FF5E7
        )

    @property
    def positive(self) -> FrequentItemsSketch:
        """The summary of the insertions."""
        return self._positive

    @property
    def negative(self) -> FrequentItemsSketch:
        """The summary of the deletion magnitudes."""
        return self._negative

    @property
    def gross_weight(self) -> float:
        """``sum |delta_j|`` — the error scale of this construction."""
        return self._positive.stream_weight + self._negative.stream_weight

    @property
    def net_weight(self) -> float:
        """``N = sum delta_j`` (assumed non-negative per strict turnstile)."""
        return self._positive.stream_weight - self._negative.stream_weight

    def update(self, item: ItemId, weight: float) -> None:
        """Process a signed update; ``weight`` may be negative, not zero."""
        if weight > 0:
            self._positive.update(item, weight)
        elif weight < 0:
            self._negative.update(item, -weight)
        else:
            raise InvalidUpdateError(f"zero-weight update for item {item}")

    def estimate(self, item: ItemId) -> float:
        """Difference of the two estimates, floored at zero.

        In the strict turnstile model every true frequency is
        non-negative, so clamping can only help.
        """
        return max(
            0.0, self._positive.estimate(item) - self._negative.estimate(item)
        )

    def lower_bound(self, item: ItemId) -> float:
        """``lb+ - ub-``, floored at zero."""
        return max(
            0.0,
            self._positive.lower_bound(item) - self._negative.upper_bound(item),
        )

    def upper_bound(self, item: ItemId) -> float:
        """``ub+ - lb-`` (never below the lower bound)."""
        return max(
            self.lower_bound(item),
            self._positive.upper_bound(item) - self._negative.lower_bound(item),
        )

    def heavy_hitters(self, phi: float) -> list[HeavyHitterRow]:
        """Items whose net frequency may reach ``phi * net_weight``.

        Scans the union of both instances' tracked items with upper-bound
        qualification, so no true heavy hitter is missed.
        """
        if not 0.0 < phi <= 1.0:
            raise InvalidParameterError(f"phi must be in (0, 1], got {phi}")
        threshold = phi * self.net_weight
        candidates = {row.item for row in self._positive.to_rows()}
        candidates.update(row.item for row in self._negative.to_rows())
        rows = []
        for item in candidates:
            upper = self.upper_bound(item)
            if upper >= threshold:
                rows.append(
                    HeavyHitterRow(
                        item, self.estimate(item), self.lower_bound(item), upper
                    )
                )
        rows.sort(key=lambda r: (-r.estimate, r.item))
        return rows

    def merge(self, other: "TwoSidedSketch") -> "TwoSidedSketch":
        """Merge side-wise (Algorithm 5 on each side); returns self."""
        self._positive.merge(other._positive)
        self._negative.merge(other._negative)
        return self

    def space_bytes(self) -> int:
        """Both sides' footprints."""
        return self._positive.space_bytes() + self._negative.space_bytes()
