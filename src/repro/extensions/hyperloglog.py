"""HyperLogLog distinct counting (Flajolet et al. 2007), from scratch.

The entropy extension needs an estimate of the number of distinct items
to apportion the residual (non-heavy) probability mass; HyperLogLog
supplies it in O(2^precision) bytes.  Standard estimator with the small-
range (linear counting) correction; hashing via our own 64-bit mixer.
"""

from __future__ import annotations

import math

from repro.errors import InvalidParameterError
from repro.hashing.mixers import hash_u64, item_to_u64


class HyperLogLog:
    """Distinct-count estimator over 64-bit-hashable items."""

    __slots__ = ("_p", "_m", "_registers", "_seed", "_alpha")

    def __init__(self, precision: int = 12, seed: int = 0) -> None:
        if not 4 <= precision <= 18:
            raise InvalidParameterError(
                f"precision must be in [4, 18], got {precision}"
            )
        self._p = precision
        self._m = 1 << precision
        self._registers = bytearray(self._m)
        self._seed = seed
        if self._m >= 128:
            self._alpha = 0.7213 / (1.0 + 1.079 / self._m)
        elif self._m == 64:
            self._alpha = 0.709
        elif self._m == 32:
            self._alpha = 0.697
        else:
            self._alpha = 0.673

    @property
    def precision(self) -> int:
        """The register-count exponent ``p`` (``m = 2^p`` registers)."""
        return self._p

    def add(self, item: object) -> None:
        """Observe one item (duplicates do not change the estimate's target)."""
        digest = hash_u64(item_to_u64(item), self._seed)
        index = digest >> (64 - self._p)
        remainder = digest << self._p & ((1 << 64) - 1)
        # Rank: position of the leftmost 1 in the remaining bits, 1-based;
        # a zero remainder gets the maximum rank.
        if remainder == 0:
            rank = 64 - self._p + 1
        else:
            rank = 65 - remainder.bit_length()
        if rank > self._registers[index]:
            self._registers[index] = rank

    def estimate(self) -> float:
        """The HLL cardinality estimate with small-range correction."""
        m = self._m
        inverse_sum = 0.0
        zeros = 0
        for register in self._registers:
            inverse_sum += 2.0 ** (-register)
            if register == 0:
                zeros += 1
        raw = self._alpha * m * m / inverse_sum
        if raw <= 2.5 * m and zeros:
            # Linear counting for small cardinalities.
            return m * math.log(m / zeros)
        return raw

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Register-wise maximum; requires equal precision and seed."""
        if self._p != other._p or self._seed != other._seed:
            raise InvalidParameterError(
                "can only merge HyperLogLogs with equal precision and seed"
            )
        mine = self._registers
        theirs = other._registers
        for index in range(self._m):
            if theirs[index] > mine[index]:
                mine[index] = theirs[index]
        return self

    def space_bytes(self) -> int:
        """One byte per register."""
        return self._m
