"""Exponential time-fading frequent items on the shared engine.

The time-fading model (Cafaro, Pulimeno & Epicoco, *Mining frequent
items in the time fading model*; cf. Cormode et al.'s forward decay)
weights an update observed at time ``t`` by ``2^-(T - t)/h`` when
queried at time ``T`` — recent traffic counts fully, old traffic decays
geometrically with half-life ``h``.  Heavy hitters under this model are
the *currently trending* items rather than the all-time-total ones.

The implementation is the forward-decay trick composed with one
:class:`~repro.engine.kernel.SketchKernel`:

* at ingest, a weight arriving at time ``t`` is scaled **up** by the
  running scale ``2^(t - t0)/h`` (``t0`` a landmark) and fed to the
  kernel unchanged — both kernel ingest paths, scalar and segmented
  batch, work as-is, so the decayed sketch inherits the vectorized
  ``update_batch`` for free;
* at query, every kernel-domain quantity (counters + offset, stream
  weight, error bound) is divided by the current scale, which turns the
  stored values back into decayed frequencies;
* when the scale grows past ``2^64`` the whole kernel is renormalized
  through :meth:`~repro.engine.kernel.SketchKernel.rescale` — one
  multiply over the counter column — so counters stay in float range
  forever.  Renormalization changes no reported estimate; weight decayed
  below float resolution is purged, which is exactly when dropping it is
  harmless.

All of Algorithm 4's guarantees carry over verbatim in the scaled
domain: the kernel's offset bounds the (scaled) underestimate, so after
unscaling, ``lower_bound <= decayed f_i <= upper_bound`` holds
deterministically at every query time.

>>> sketch = DecayedFrequentItemsSketch(64, half_life=2.0, seed=1)
>>> sketch.update(7, 8.0)
>>> sketch.tick(2.0)                    # one half-life elapses
>>> sketch.estimate(7)
4.0
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

import numpy as np

from repro.core.policies import DecrementPolicy
from repro.core.row import ErrorType, HeavyHitterRow
from repro.engine.kernel import SketchKernel
from repro.engine.query import QueryEngine
from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.streams.model import as_batch
from repro.types import ItemId, Weight

#: Renormalize once the ingest scale exceeds 2^64: far below float
#: overflow, far above anything a few half-lives of traffic needs.
_LOG2_RENORM_LIMIT = 64.0


class DecayedFrequentItemsSketch:
    """Frequent items under exponential time fading, on one kernel.

    Parameters
    ----------
    max_counters:
        The kernel's ``k`` — counters maintained.  Must be at least 2.
    half_life:
        Time (in :meth:`tick` units) for an update's influence to halve.
        ``math.inf`` disables decay, reducing to the plain sketch.
    policy, backend, seed:
        Forwarded to the kernel.  ``"columnar"`` (the default here) is
        the batch-ingest fast path.

    Examples
    --------
    >>> sketch = DecayedFrequentItemsSketch(8, half_life=1.0, seed=3)
    >>> sketch.update(1, 4.0)
    >>> sketch.tick()
    >>> sketch.update(2, 4.0)
    >>> sketch.estimate(1), sketch.estimate(2)
    (2.0, 4.0)
    """

    __slots__ = ("_kernel", "_query", "_half_life", "_now", "_landmark", "_scale")

    def __init__(
        self,
        max_counters: int,
        half_life: float,
        policy: Optional[DecrementPolicy] = None,
        backend: str = "columnar",
        seed: int = 0,
    ) -> None:
        if not half_life > 0.0:
            raise InvalidParameterError(
                f"half_life must be positive (math.inf disables decay), "
                f"got {half_life}"
            )
        self._kernel = SketchKernel(
            max_counters, policy=policy, backend=backend, seed=seed
        )
        self._query = QueryEngine(self._kernel)
        self._half_life = half_life
        self._now = 0.0
        self._landmark = 0.0
        self._scale = 1.0

    # -- configuration / state introspection -----------------------------------

    @property
    def kernel(self) -> SketchKernel:
        """The underlying :class:`~repro.engine.kernel.SketchKernel`."""
        return self._kernel

    @property
    def max_counters(self) -> int:
        """The configured number of counters ``k``."""
        return self._kernel.k

    @property
    def half_life(self) -> float:
        """The configured decay half-life, in tick units."""
        return self._half_life

    @property
    def backend(self) -> str:
        """The kernel's counter-store backend name."""
        return self._kernel.backend

    @property
    def seed(self) -> int:
        """The construction seed."""
        return self._kernel.seed

    @property
    def now(self) -> float:
        """Current stream time, in tick units."""
        return self._now

    @property
    def num_active(self) -> int:
        """Number of items currently assigned counters."""
        return len(self._kernel.store)

    @property
    def decayed_weight(self) -> float:
        """Total *decayed* stream weight at the current time.

        The time-fading analogue of ``N``: every ingested unit of weight
        contributes its current decay factor.
        """
        return self._kernel.stream_weight / self._scale

    @property
    def maximum_error(self) -> float:
        """Width of every estimate's uncertainty interval, decayed units."""
        return self._kernel.offset / self._scale

    def is_empty(self) -> bool:
        """True if the sketch has processed no weight."""
        return self._kernel.is_empty()

    def __len__(self) -> int:
        return len(self._kernel.store)

    def __contains__(self, item: ItemId) -> bool:
        return self._kernel.store.get(item) is not None

    # -- time ------------------------------------------------------------------

    def tick(self, dt: float = 1.0) -> None:
        """Advance stream time by ``dt`` (same units as ``half_life``).

        O(1) except when the ingest scale crosses the renormalization
        limit, which costs one vectorized pass over the ``k`` counters —
        amortized over the ≥ 64 half-lives between crossings.
        """
        if dt <= 0:
            raise InvalidParameterError(f"tick dt must be positive, got {dt}")
        if math.isinf(self._half_life):
            self._now += dt
            return
        self._now += dt
        log2_scale = (self._now - self._landmark) / self._half_life
        if log2_scale > _LOG2_RENORM_LIMIT:
            # 2**-log2_scale may underflow to exactly 0.0 for extreme
            # jumps; rescale then purges everything, which is the right
            # answer — all prior weight has decayed below resolution.
            self._kernel.rescale(2.0 ** -log2_scale)
            self._landmark = self._now
            self._scale = 1.0
        else:
            self._scale = 2.0 ** log2_scale

    # -- updates ---------------------------------------------------------------

    def update(self, item: ItemId, weight: Weight = 1.0) -> None:
        """Process one weighted update stamped at the current time."""
        if weight <= 0:
            # Validate before scaling so the diagnostic reports the
            # caller's weight, not the scaled one.
            raise InvalidUpdateError(
                f"update weights must be positive, got {weight} for item {item}"
            )
        self._kernel.update(item, weight * self._scale)

    def update_batch(self, items, weights=None) -> None:
        """Process one array batch stamped at the current time.

        One vector multiply applies the decay scale, then the batch runs
        through the kernel's segmented batch engine — identical state to
        the scalar loop (for integer-representable scaled weights) at a
        fraction of the cost.
        """
        items, weights = as_batch(items, weights)
        if self._scale != 1.0:
            weights = weights * self._scale
        self._kernel.update_batch_validated(items, weights)

    # -- queries (all in decayed units) ----------------------------------------

    def estimate(self, item: ItemId) -> float:
        """Estimated decayed weight of ``item`` at the current time."""
        return self._query.estimate(item) / self._scale

    def estimate_batch(self, items) -> np.ndarray:
        """Vectorized :meth:`estimate` over an array of item identifiers."""
        return self._query.estimate_batch(items) / self._scale

    def lower_bound(self, item: ItemId) -> float:
        """A value guaranteed ``<=`` the item's decayed weight."""
        return self._query.lower_bound(item) / self._scale

    def upper_bound(self, item: ItemId) -> float:
        """A value guaranteed ``>=`` the item's decayed weight."""
        return self._query.upper_bound(item) / self._scale

    def row(self, item: ItemId) -> HeavyHitterRow:
        """The full (estimate, bounds) record for one item, decayed units."""
        return self._scaled(self._query.row(item))

    def _scaled(self, row: HeavyHitterRow) -> HeavyHitterRow:
        inv = 1.0 / self._scale
        return row._replace(
            estimate=row.estimate * inv,
            lower_bound=row.lower_bound * inv,
            upper_bound=row.upper_bound * inv,
        )

    def frequent_items(
        self,
        error_type: ErrorType = ErrorType.NO_FALSE_POSITIVES,
        threshold: Optional[float] = None,
    ) -> list[HeavyHitterRow]:
        """Items whose decayed weight (may) exceed ``threshold``.

        Semantics match the flat sketch's method, with thresholds and
        reported rows in decayed units; the default threshold is
        :attr:`maximum_error`.
        """
        if threshold is not None:
            threshold = threshold * self._scale
        rows = self._query.frequent_items(error_type, threshold)
        return [self._scaled(row) for row in rows]

    def heavy_hitters(
        self,
        phi: float,
        error_type: ErrorType = ErrorType.NO_FALSE_NEGATIVES,
    ) -> list[HeavyHitterRow]:
        """(φ)-heavy hitters of the decayed stream: the trending items.

        Items whose decayed weight is at least ``phi * decayed_weight``;
        with the default error direction every true decayed heavy hitter
        is reported.
        """
        rows = self._query.heavy_hitters(phi, error_type)
        return [self._scaled(row) for row in rows]

    def to_rows(self) -> list[HeavyHitterRow]:
        """All tracked items as rows, sorted by decayed estimate descending."""
        return [self._scaled(row) for row in self._query.to_rows()]

    def __iter__(self) -> Iterator[HeavyHitterRow]:
        return iter(self.to_rows())

    # -- accounting ------------------------------------------------------------

    def space_bytes(self) -> int:
        """Modeled memory footprint (the kernel's table; decay state is O(1))."""
        return self._kernel.store.space_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecayedFrequentItemsSketch(k={self._kernel.k}, "
            f"half_life={self._half_life:g}, backend={self._kernel.backend!r}, "
            f"active={len(self._kernel.store)}, t={self._now:g}, "
            f"decayed_N={self.decayed_weight:g})"
        )
