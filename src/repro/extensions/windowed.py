"""Sliding-window heavy hitters built on cheap merging.

The paper's Section 3 motivates mergeability with systems that keep one
summary per time slice and combine slices at query time.  This module
packages that pattern: a ring of per-bucket sketches; ``update`` feeds
the current bucket, ``advance`` rotates it, and queries merge the live
buckets with Algorithm 5 (cheap enough — O(k) per bucket — to run per
query).  Expired buckets simply drop out, giving heavy hitters over the
last ``window_buckets`` slices with the usual deterministic brackets.

This is exactly the "separate summary for each 1-hour period" deployment
of Section 3, in library form.
"""

from __future__ import annotations

from typing import Optional

from repro.core.frequent_items import FrequentItemsSketch
from repro.core.policies import DecrementPolicy
from repro.core.row import ErrorType, HeavyHitterRow
from repro.errors import InvalidParameterError
from repro.types import ItemId, Weight


class SlidingWindowHeavyHitters:
    """Heavy hitters over the most recent ``window_buckets`` time slices.

    Parameters
    ----------
    max_counters:
        Counters per bucket sketch (and for the merged query view).
    window_buckets:
        Number of slices the window spans.  One slice = whatever the
        caller delimits with :meth:`advance` (a minute, an hour, 10k
        packets, ...).
    policy, backend, seed:
        Forwarded to every bucket sketch; each bucket gets a distinct
        derived seed, per the Section 3.2 guidance that summaries to be
        merged should not share hash functions.
    """

    def __init__(
        self,
        max_counters: int,
        window_buckets: int,
        policy: Optional[DecrementPolicy] = None,
        backend: str = "dict",
        seed: int = 0,
    ) -> None:
        if window_buckets < 1:
            raise InvalidParameterError(
                f"window_buckets must be at least 1, got {window_buckets}"
            )
        self._k = max_counters
        self._window = window_buckets
        self._policy = policy
        self._backend = backend
        self._seed = seed
        self._epoch = 0
        #: Ring of (epoch, sketch); index = epoch % window.
        self._buckets: list[Optional[tuple[int, FrequentItemsSketch]]] = (
            [None] * window_buckets
        )
        self._buckets[0] = (0, self._new_sketch(0))

    def _new_sketch(self, epoch: int) -> FrequentItemsSketch:
        return FrequentItemsSketch(
            self._k,
            policy=self._policy,
            backend=self._backend,
            seed=self._seed + 0x9E37 * epoch,
        )

    @property
    def epoch(self) -> int:
        """Index of the current (open) time slice."""
        return self._epoch

    @property
    def window_buckets(self) -> int:
        """The configured window span, in slices."""
        return self._window

    def update(self, item: ItemId, weight: Weight = 1.0) -> None:
        """Record one update in the current slice."""
        slot = self._buckets[self._epoch % self._window]
        assert slot is not None
        slot[1].update(item, weight)

    def advance(self) -> None:
        """Close the current slice and open the next.

        The bucket that falls out of the window is discarded wholesale —
        no per-item decay bookkeeping, which is the point of the
        one-summary-per-slice design.
        """
        self._epoch += 1
        self._buckets[self._epoch % self._window] = (
            self._epoch,
            self._new_sketch(self._epoch),
        )

    def _live_sketches(self) -> list[FrequentItemsSketch]:
        floor = self._epoch - self._window + 1
        return [
            sketch
            for slot in self._buckets
            if slot is not None
            for epoch, sketch in [slot]
            if epoch >= floor
        ]

    def window_sketch(self) -> FrequentItemsSketch:
        """A fresh sketch summarizing the whole window (Algorithm 5 folds).

        The returned sketch is independent of the ring: querying never
        perturbs the per-slice summaries.
        """
        merged = self._new_sketch(-1)
        for sketch in self._live_sketches():
            merged.merge(sketch)
        return merged

    @property
    def window_weight(self) -> float:
        """Total weight inside the window."""
        return sum(sketch.stream_weight for sketch in self._live_sketches())

    def estimate(self, item: ItemId) -> float:
        """Point estimate of the item's weight within the window."""
        return self.window_sketch().estimate(item)

    def heavy_hitters(
        self,
        phi: float,
        error_type: ErrorType = ErrorType.NO_FALSE_NEGATIVES,
    ) -> list[HeavyHitterRow]:
        """φ-heavy hitters of the window."""
        return self.window_sketch().heavy_hitters(phi, error_type)

    def space_bytes(self) -> int:
        """Footprint of the ring (excludes transient query merges)."""
        return sum(sketch.space_bytes() for sketch in self._live_sketches())
