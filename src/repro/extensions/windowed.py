"""Sliding-window heavy hitters built on cheap merging.

The paper's Section 3 motivates mergeability with systems that keep one
summary per time slice and combine slices at query time.  This module
packages that pattern: a ring of per-bucket summaries; ``update`` (or
``update_batch``) feeds the current bucket, ``advance`` rotates it, and
queries merge the live buckets with Algorithm 5 (cheap enough — O(k) per
bucket — to run per query).  Expired buckets simply drop out, giving
heavy hitters over the last ``window_buckets`` slices with the usual
deterministic brackets.

Each bucket is a bare :class:`~repro.engine.kernel.SketchKernel`, so the
window inherits both engine ingest paths: the scalar ``update`` loop and
the segmented, vectorized ``update_batch`` — one array call per slice
batch instead of one Python call per update.

This is exactly the "separate summary for each 1-hour period" deployment
of Section 3, in library form.
"""

from __future__ import annotations

from typing import Optional

from repro.core.frequent_items import FrequentItemsSketch
from repro.core.policies import DecrementPolicy
from repro.core.row import ErrorType, HeavyHitterRow
from repro.engine.kernel import SketchKernel
from repro.engine.query import QueryEngine
from repro.errors import InvalidParameterError
from repro.streams.model import as_batch
from repro.types import ItemId, Weight


class SlidingWindowHeavyHitters:
    """Heavy hitters over the most recent ``window_buckets`` time slices.

    Parameters
    ----------
    max_counters:
        Counters per bucket kernel (and for the merged query view).
    window_buckets:
        Number of slices the window spans.  One slice = whatever the
        caller delimits with :meth:`advance` (a minute, an hour, 10k
        packets, ...).
    policy, backend, seed:
        Forwarded to every bucket kernel; each bucket gets a distinct
        derived seed, per the Section 3.2 guidance that summaries to be
        merged should not share hash functions.
    """

    def __init__(
        self,
        max_counters: int,
        window_buckets: int,
        policy: Optional[DecrementPolicy] = None,
        backend: str = "dict",
        seed: int = 0,
    ) -> None:
        if window_buckets < 1:
            raise InvalidParameterError(
                f"window_buckets must be at least 1, got {window_buckets}"
            )
        self._k = max_counters
        self._window = window_buckets
        self._policy = policy
        self._backend = backend
        self._seed = seed
        self._epoch = 0
        #: Ring of (epoch, kernel); index = epoch % window.
        self._buckets: list[Optional[tuple[int, SketchKernel]]] = (
            [None] * window_buckets
        )
        self._buckets[0] = (0, self._new_kernel(0))

    def _new_kernel(self, epoch: int) -> SketchKernel:
        return SketchKernel(
            self._k,
            policy=self._policy,
            backend=self._backend,
            seed=self._seed + 0x9E37 * epoch,
        )

    @property
    def epoch(self) -> int:
        """Index of the current (open) time slice."""
        return self._epoch

    @property
    def window_buckets(self) -> int:
        """The configured window span, in slices."""
        return self._window

    def _current(self) -> SketchKernel:
        slot = self._buckets[self._epoch % self._window]
        assert slot is not None
        return slot[1]

    def update(self, item: ItemId, weight: Weight = 1.0) -> None:
        """Record one update in the current slice."""
        self._current().update(item, weight)

    def update_batch(self, items, weights=None) -> None:
        """Record one array batch in the current slice.

        Routed through the kernel's segmented batch engine, so the
        result is identical to calling :meth:`update` per element (for
        integer-representable weights) at a fraction of the cost.
        """
        items, weights = as_batch(items, weights)
        self._current().update_batch_validated(items, weights)

    def advance(self) -> None:
        """Close the current slice and open the next.

        The bucket that falls out of the window is discarded wholesale —
        no per-item decay bookkeeping, which is the point of the
        one-summary-per-slice design.
        """
        self._epoch += 1
        self._buckets[self._epoch % self._window] = (
            self._epoch,
            self._new_kernel(self._epoch),
        )

    def _live_kernels(self) -> list[SketchKernel]:
        floor = self._epoch - self._window + 1
        return [
            kernel
            for slot in self._buckets
            if slot is not None
            for epoch, kernel in [slot]
            if epoch >= floor
        ]

    def window_kernel(self) -> SketchKernel:
        """A fresh kernel summarizing the whole window (Algorithm 5 folds).

        The returned kernel is independent of the ring: querying never
        perturbs the per-slice summaries.
        """
        merged = self._new_kernel(-1)
        for kernel in self._live_kernels():
            merged.absorb(kernel)
        return merged

    def window_sketch(self) -> FrequentItemsSketch:
        """The merged window as a queryable :class:`FrequentItemsSketch`."""
        return FrequentItemsSketch._from_kernel(self.window_kernel())

    @property
    def window_weight(self) -> float:
        """Total weight inside the window."""
        return sum(kernel.stream_weight for kernel in self._live_kernels())

    def estimate(self, item: ItemId) -> float:
        """Point estimate of the item's weight within the window."""
        return QueryEngine(self.window_kernel()).estimate(item)

    def estimate_batch(self, items):
        """Vectorized :meth:`estimate` over an array of item identifiers."""
        return QueryEngine(self.window_kernel()).estimate_batch(items)

    def heavy_hitters(
        self,
        phi: float,
        error_type: ErrorType = ErrorType.NO_FALSE_NEGATIVES,
    ) -> list[HeavyHitterRow]:
        """φ-heavy hitters of the window."""
        return QueryEngine(self.window_kernel()).heavy_hitters(phi, error_type)

    def space_bytes(self) -> int:
        """Footprint of the ring (excludes transient query merges)."""
        return sum(kernel.store.space_bytes() for kernel in self._live_kernels())
