"""Sampling-based frequent items for weighted streams (Section 5).

Bhattacharyya, Dey and Woodruff's simple algorithm samples ~ε⁻²log(1/δ)
stream positions and feeds them to a small Misra-Gries instance; the
paper (Section 5) sketches the weighted adaptation that keeps O(1)
amortized time: when processing ``(i, delta)``, draw geometric(p)
variables until their sum exceeds ``delta`` — if that takes ``t`` draws
beyond the running position, feed ``(i, t)`` into any weighted
counter-based algorithm.  Equivalently, each unit of stream weight is
sampled independently with probability ``p`` and the survivors are fed,
batched per update, downstream.

We implement exactly that construction with a *persistent* skip counter
(the renewal process continues across updates, so the sample is a true
Bernoulli(p) thinning of the weighted stream), layered over a
:class:`~repro.engine.kernel.SketchKernel` — the "black box" composition
the paper points out its optimizations enable.  The batch path runs the
same renewal process vectorized: geometric gaps are drawn to cover the
batch's total weight, ``searchsorted`` maps each sampled unit onto its
update, and the surviving ``(item, hits)`` pairs go through the kernel's
segmented batch ingest in one call.  Estimates are scaled by ``1/p``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.frequent_items import FrequentItemsSketch
from repro.core.policies import DecrementPolicy
from repro.engine.kernel import SketchKernel
from repro.engine.query import QueryEngine
from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.prng import Xoroshiro128PlusPlus
from repro.streams.model import as_batch
from repro.types import ItemId, Weight


def recommended_probability(
    total_weight: float, epsilon: float, delta: float = 1e-6
) -> float:
    """The paper's ``p = O(eps^-2 log(1/delta) / N)`` with constant 4."""
    if total_weight <= 0:
        raise InvalidParameterError(f"total_weight must be positive, got {total_weight}")
    if not 0 < epsilon < 1:
        raise InvalidParameterError(f"epsilon must be in (0,1), got {epsilon}")
    if not 0 < delta < 1:
        raise InvalidParameterError(f"delta must be in (0,1), got {delta}")
    p = 4.0 * math.log(1.0 / delta) / (epsilon * epsilon * total_weight)
    return min(1.0, p)


class SampledFrequentItems:
    """Weighted frequent items over a Bernoulli(p) thinning of the stream.

    Parameters
    ----------
    max_counters:
        Counters in the downstream kernel (``O(1/epsilon)`` suffices for
    	the sampled stream).
    probability:
        The per-unit-weight sampling probability ``p``; use
        :func:`recommended_probability` when ``N`` is known in advance
        (the paper notes the assumption can be removed with standard
        restarting tricks).
    policy, backend, seed:
        Forwarded to the inner :class:`~repro.engine.kernel.SketchKernel`.
    """

    __slots__ = (
        "_p", "_kernel", "_query", "_inner", "_skip", "_rng",
        "_stream_weight", "_sampled",
    )

    def __init__(
        self,
        max_counters: int,
        probability: float,
        policy: Optional[DecrementPolicy] = None,
        backend: str = "dict",
        seed: int = 0,
    ) -> None:
        if not 0.0 < probability <= 1.0:
            raise InvalidParameterError(
                f"probability must be in (0, 1], got {probability}"
            )
        self._p = probability
        self._kernel = SketchKernel(
            max_counters, policy=policy, backend=backend, seed=seed
        )
        self._query = QueryEngine(self._kernel)
        self._inner = FrequentItemsSketch._from_kernel(self._kernel)
        self._rng = Xoroshiro128PlusPlus(seed ^ 0x5A3D)
        # Distance (in stream weight) to the next sampled position.
        self._skip = float(self._rng.geometric(probability)) if probability < 1.0 else 1.0
        self._stream_weight = 0.0
        self._sampled = 0

    @property
    def probability(self) -> float:
        """The sampling probability ``p``."""
        return self._p

    @property
    def stream_weight(self) -> float:
        """Total weight processed (before sampling)."""
        return self._stream_weight

    @property
    def sampled_count(self) -> int:
        """How many unit positions have been sampled so far."""
        return self._sampled

    @property
    def kernel(self) -> SketchKernel:
        """The downstream kernel fed with sampled updates."""
        return self._kernel

    @property
    def inner(self) -> FrequentItemsSketch:
        """The downstream summary as a queryable sketch (shared state)."""
        return self._inner

    def update(self, item: ItemId, weight: Weight = 1.0) -> None:
        """Process one weighted update in O(1 + p * weight) expected time."""
        if weight <= 0:
            raise InvalidUpdateError(
                f"update weights must be positive, got {weight} for item {item}"
            )
        self._stream_weight += weight
        if self._p >= 1.0:
            self._kernel.update(item, weight)
            self._sampled += int(weight)
            return
        # Renewal process: count geometric gaps that land inside this
        # update's weight interval.
        hits = 0
        remaining = weight
        skip = self._skip
        rng = self._rng
        p = self._p
        while skip <= remaining:
            hits += 1
            remaining -= skip
            skip = float(rng.geometric(p))
        self._skip = skip - remaining
        if hits:
            self._kernel.update(item, float(hits))
            self._sampled += hits

    def update_batch(self, items, weights=None) -> None:
        """Process an array batch through the same renewal process.

        The geometric gap sequence is drawn exactly as the scalar loop
        would draw it (same PRNG, same order), so batch and scalar
        ingestion land in identical state for integer-representable
        weights (arbitrary reals can differ by floating-point summation
        order at interval boundaries); the per-update hit counting and
        the downstream Misra-Gries work are vectorized.
        """
        items, weights = as_batch(items, weights)
        n = items.shape[0]
        if n == 0:
            return
        total = float(weights.sum())
        self._stream_weight += total
        if self._p >= 1.0:
            self._kernel.update_batch_validated(items, weights)
            # Per-update truncation, matching the scalar path exactly.
            self._sampled += int(np.floor(weights).sum())
            return
        # Absolute positions (in cumulative stream weight, within this
        # batch) of the renewal points: the carried-over skip, then one
        # geometric gap per sampled unit until the batch is exhausted.
        positions = []
        position = self._skip
        rng = self._rng
        p = self._p
        while position <= total:
            positions.append(position)
            position += float(rng.geometric(p))
        self._skip = position - total
        if not positions:
            return
        # Map each sampled unit onto the update whose weight interval
        # contains it; interval ends are inclusive, as in the scalar
        # loop's ``skip <= remaining``.  For non-integer weights the
        # pairwise ``weights.sum()`` bound above can exceed the
        # sequential ``cumsum`` end by a few ulps, so clamp the boundary
        # unit onto the last update instead of indexing past it.
        ends = np.cumsum(weights)
        where = np.searchsorted(ends, np.array(positions, dtype=np.float64),
                                side="left")
        where = np.minimum(where, n - 1)
        hits = np.bincount(where, minlength=n).astype(np.float64)
        sampled_mask = hits > 0.0
        self._kernel.update_batch_validated(items[sampled_mask], hits[sampled_mask])
        self._sampled += len(positions)

    def estimate(self, item: ItemId) -> float:
        """Scaled point estimate ``f̂_sample(i) / p``."""
        return self._query.estimate(item) / self._p

    def estimate_batch(self, items) -> np.ndarray:
        """Vectorized :meth:`estimate` over an array of item identifiers."""
        return self._query.estimate_batch(items) / self._p

    def lower_bound(self, item: ItemId) -> float:
        """Scaled lower bound (deterministic only w.r.t. the sample)."""
        return self._query.lower_bound(item) / self._p

    def upper_bound(self, item: ItemId) -> float:
        """Scaled upper bound (deterministic only w.r.t. the sample)."""
        return self._query.upper_bound(item) / self._p

    def heavy_hitters(self, phi: float):
        """φ-heavy hitters of the sampled stream, scaled back up."""
        rows = self._query.heavy_hitters(phi)
        scale = 1.0 / self._p
        return [row._replace(
            estimate=row.estimate * scale,
            lower_bound=row.lower_bound * scale,
            upper_bound=row.upper_bound * scale,
        ) for row in rows]

    def space_bytes(self) -> int:
        """The inner kernel's footprint (sampling state is O(1))."""
        return self._kernel.store.space_bytes()
