"""Hierarchical heavy hitters over IP prefixes (paper Section 6 future work).

Follows the Mitzenmacher-Steinke-Thaler recipe ("Hierarchical Heavy
Hitters with the Space Saving Algorithm", ALENEX 2012) with our
optimized sketch substituted as the per-level heavy-hitter subroutine —
exactly the drop-in replacement the paper's conclusion proposes.

One frequency sketch is kept per prefix level (e.g. /8, /16, /24, /32
for IPv4).  Every update feeds each level its item's prefix at that
length, with the full weight.  At query time, heavy hitters are
extracted bottom-up: a prefix is a *hierarchical* heavy hitter if its
estimated weight, after discounting the weight already attributed to
its HHH descendants, still clears ``phi * N``.  This is the standard
discounted-HHH semantics used in network anomaly detection (finding the
subnets, not just hosts, responsible for traffic).
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

from repro.core.frequent_items import FrequentItemsSketch
from repro.core.policies import DecrementPolicy
from repro.core.row import ErrorType
from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.types import ItemId, Weight

#: Default IPv4 prefix hierarchy, most general to most specific.
IPV4_LEVELS = (8, 16, 24, 32)


class HHHNode(NamedTuple):
    """One hierarchical heavy hitter."""

    level: int
    prefix: int
    estimate: float
    discounted: float

    def cidr(self) -> str:
        """Render the prefix in CIDR notation (IPv4 semantics)."""
        address = self.prefix << (32 - self.level)
        octets = [(address >> shift) & 0xFF for shift in (24, 16, 8, 0)]
        return f"{octets[0]}.{octets[1]}.{octets[2]}.{octets[3]}/{self.level}"


class HierarchicalHeavyHitters:
    """HHH detection with one frequency sketch per prefix level.

    Parameters
    ----------
    max_counters:
        Counters per per-level sketch.
    levels:
        Prefix lengths, strictly increasing, each in ``[1, address_bits]``.
    address_bits:
        Width of the address space (32 for IPv4).
    policy, backend, seed:
        Forwarded to each level's :class:`FrequentItemsSketch` (with a
        level-distinct derived seed).
    """

    def __init__(
        self,
        max_counters: int,
        levels: Sequence[int] = IPV4_LEVELS,
        address_bits: int = 32,
        policy: Optional[DecrementPolicy] = None,
        backend: str = "dict",
        seed: int = 0,
    ) -> None:
        if not levels:
            raise InvalidParameterError("need at least one prefix level")
        if list(levels) != sorted(set(levels)):
            raise InvalidParameterError(
                f"levels must be strictly increasing, got {levels!r}"
            )
        if levels[0] < 1 or levels[-1] > address_bits:
            raise InvalidParameterError(
                f"levels must lie in [1, {address_bits}], got {levels!r}"
            )
        self._levels = tuple(levels)
        self._bits = address_bits
        self._sketches = {
            level: FrequentItemsSketch(
                max_counters, policy=policy, backend=backend, seed=seed + 7919 * level
            )
            for level in levels
        }
        self._stream_weight = 0.0

    @property
    def levels(self) -> tuple[int, ...]:
        """The configured prefix lengths."""
        return self._levels

    @property
    def stream_weight(self) -> float:
        """Total processed weight ``N``."""
        return self._stream_weight

    def sketch_at(self, level: int) -> FrequentItemsSketch:
        """The per-level sketch (for inspection)."""
        return self._sketches[level]

    def _prefix(self, address: ItemId, level: int) -> int:
        return address >> (self._bits - level)

    def update(self, address: ItemId, weight: Weight = 1.0) -> None:
        """Feed one address observation to every level."""
        if weight <= 0:
            raise InvalidUpdateError(
                f"update weights must be positive, got {weight} for {address}"
            )
        if not 0 <= address < (1 << self._bits):
            raise InvalidUpdateError(
                f"address {address} out of range for {self._bits}-bit space"
            )
        self._stream_weight += weight
        for level in self._levels:
            self._sketches[level].update(self._prefix(address, level), weight)

    def query(self, phi: float) -> list[HHHNode]:
        """Discounted hierarchical φ-heavy hitters, most specific first.

        Bottom-up: at the deepest level ordinary heavy hitters qualify
        directly; at each shallower level the weight already explained by
        qualifying descendants is subtracted before the threshold test.
        """
        if not 0.0 < phi <= 1.0:
            raise InvalidParameterError(f"phi must be in (0, 1], got {phi}")
        threshold = phi * self._stream_weight
        result: list[HHHNode] = []
        # discounts[level][prefix] = weight explained by deeper HHHs.
        discounts: dict[int, dict[int, float]] = {
            level: {} for level in self._levels
        }
        for position in range(len(self._levels) - 1, -1, -1):
            level = self._levels[position]
            sketch = self._sketches[level]
            level_discount = discounts[level]
            for row in sketch.frequent_items(
                ErrorType.NO_FALSE_NEGATIVES, threshold
            ):
                discounted = row.estimate - level_discount.get(row.item, 0.0)
                if discounted < threshold:
                    continue
                result.append(HHHNode(level, row.item, row.estimate, discounted))
                # Propagate this node's *discounted* weight up the tree so
                # ancestors only count unexplained traffic.
                for ancestor_position in range(position - 1, -1, -1):
                    ancestor_level = self._levels[ancestor_position]
                    ancestor_prefix = row.item >> (level - ancestor_level)
                    bucket = discounts[ancestor_level]
                    bucket[ancestor_prefix] = (
                        bucket.get(ancestor_prefix, 0.0) + discounted
                    )
        result.sort(key=lambda node: (-node.level, -node.discounted, node.prefix))
        return result

    def space_bytes(self) -> int:
        """Sum of the per-level sketch footprints."""
        return sum(sketch.space_bytes() for sketch in self._sketches.values())
