"""Streaming empirical-entropy estimation (paper Section 6 future work).

Entropy of the traffic distribution is a classic anomaly-detection
signal (port scans and DDoS floods shift it sharply); Chakrabarti,
Cormode and McGregor showed heavy-hitter summaries are the key
ingredient for estimating it in one pass.  This module implements the
practical decomposition estimator:

    H = -sum_i (f_i/N) log2(f_i/N)
      ~ [exact-ish part from the heavy-hitter sketch]
        + [residual part, assumed near-uniform over the remaining
           distinct items, counted by HyperLogLog]

The heavy part uses the sketch's point estimates (tight for precisely
the items that dominate the sum); the residual mass ``R`` is spread over
the estimated number of untracked distinct items.  The uniform
assumption maximizes the residual's entropy contribution, so the
estimate errs upward when the tail is skewed — acceptable for
change-detection, and the tests quantify it against exact entropy.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.frequent_items import FrequentItemsSketch
from repro.core.policies import DecrementPolicy
from repro.errors import InvalidUpdateError
from repro.extensions.hyperloglog import HyperLogLog
from repro.types import ItemId, Weight


class StreamingEntropy:
    """One-pass empirical entropy estimator for weighted streams."""

    __slots__ = ("_sketch", "_distinct")

    def __init__(
        self,
        max_counters: int,
        hll_precision: int = 12,
        policy: Optional[DecrementPolicy] = None,
        backend: str = "dict",
        seed: int = 0,
    ) -> None:
        self._sketch = FrequentItemsSketch(
            max_counters, policy=policy, backend=backend, seed=seed
        )
        self._distinct = HyperLogLog(hll_precision, seed=seed)

    @property
    def sketch(self) -> FrequentItemsSketch:
        """The underlying heavy-hitter sketch."""
        return self._sketch

    @property
    def stream_weight(self) -> float:
        """Total processed weight ``N``."""
        return self._sketch.stream_weight

    def update(self, item: ItemId, weight: Weight = 1.0) -> None:
        """Observe one weighted update."""
        if weight <= 0:
            raise InvalidUpdateError(
                f"update weights must be positive, got {weight} for item {item}"
            )
        self._sketch.update(item, weight)
        self._distinct.add(item)

    def distinct_estimate(self) -> float:
        """Estimated number of distinct items seen."""
        return self._distinct.estimate()

    def estimate(self) -> float:
        """Estimated empirical entropy in bits.

        Head term: tracked items, using sketch estimates clipped to the
        stream weight.  Residual term: the unaccounted mass ``R`` spread
        uniformly over the estimated untracked distinct count.
        """
        n = self._sketch.stream_weight
        if n <= 0:
            return 0.0
        head = 0.0
        head_mass = 0.0
        tracked = 0
        for row in self._sketch.to_rows():
            estimate = min(row.estimate, n)
            if estimate <= 0:
                continue
            probability = estimate / n
            head -= probability * math.log2(probability)
            head_mass += estimate
            tracked += 1
        residual_mass = max(0.0, n - head_mass)
        if residual_mass <= 0:
            return head
        residual_items = max(1.0, self._distinct.estimate() - tracked)
        per_item = residual_mass / residual_items
        probability = per_item / n
        # residual_items terms of -p log p each.
        return head - residual_items * probability * math.log2(probability)

    def space_bytes(self) -> int:
        """Sketch plus HyperLogLog registers."""
        return self._sketch.space_bytes() + self._distinct.space_bytes()
