"""Sivaraman et al.'s random-admission Space Saving variant (Section 5).

Designed for network switching hardware where *memory accesses per
update* is the binding constraint: on a miss against a full table,
sample ``ell`` counters uniformly, evict the smallest of the sample, and
give its counter (plus the update weight) to the new item.  With
``ell = O(1)`` every update touches O(1) memory — no heap, no global
minimum — at the cost of weaker error guarantees than SMED (the sampled
minimum may be far above the true minimum, inflating takeovers).  The
paper leaves the head-to-head comparison to future work; our ablation
benchmark provides it.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.metrics.instrumentation import OpStats
from repro.metrics.space import space_model_bytes
from repro.prng import Xoroshiro128PlusPlus
from repro.types import ItemId


class RandomAdmissionSpaceSaving:
    """SS with sampled-minimum takeover and O(1) memory accesses."""

    __slots__ = ("_k", "_ell", "_keys", "_values", "_pos", "_rng",
                 "_stream_weight", "stats")

    def __init__(self, max_counters: int, sample_size: int = 2, seed: int = 0) -> None:
        if max_counters < 1:
            raise InvalidParameterError(
                f"max_counters must be at least 1, got {max_counters}"
            )
        if sample_size < 1:
            raise InvalidParameterError(
                f"sample_size must be at least 1, got {sample_size}"
            )
        self._k = max_counters
        self._ell = sample_size
        # Parallel arrays + position index: O(1) uniform counter sampling.
        self._keys: list[ItemId] = []
        self._values: list[float] = []
        self._pos: dict[ItemId, int] = {}
        self._rng = Xoroshiro128PlusPlus(seed)
        self._stream_weight = 0.0
        self.stats = OpStats()

    @property
    def max_counters(self) -> int:
        """The configured number of counters ``k``."""
        return self._k

    @property
    def sample_size(self) -> int:
        """Counters sampled per takeover (the design parameter ℓ)."""
        return self._ell

    @property
    def stream_weight(self) -> float:
        """Total processed weight ``N``."""
        return self._stream_weight

    @property
    def num_active(self) -> int:
        """Number of items currently assigned counters."""
        return len(self._keys)

    def update(self, item: ItemId, weight: float = 1.0) -> None:
        """Process one weighted update touching O(ℓ) counters."""
        if weight <= 0:
            raise InvalidUpdateError(
                f"update weights must be positive, got {weight} for item {item}"
            )
        self._stream_weight += weight
        stats = self.stats
        stats.updates += 1
        position = self._pos.get(item)
        if position is not None:
            self._values[position] += weight
            stats.hits += 1
            return
        if len(self._keys) < self._k:
            self._pos[item] = len(self._keys)
            self._keys.append(item)
            self._values.append(weight)
            stats.inserts += 1
            return
        # Sampled-minimum takeover.
        rng = self._rng
        values = self._values
        size = len(values)
        best = rng.randrange(size)
        for _ in range(self._ell - 1):
            candidate = rng.randrange(size)
            if values[candidate] < values[best]:
                best = candidate
        stats.counters_scanned += self._ell
        evicted = self._keys[best]
        del self._pos[evicted]
        self._keys[best] = item
        values[best] += weight
        self._pos[item] = best
        stats.inserts += 1

    def estimate(self, item: ItemId) -> float:
        """``c(i)`` if assigned, else 0.

        (Unlike exact SS there is no cheap global minimum to return for
        misses — avoiding that bookkeeping is the point of the design.)
        """
        position = self._pos.get(item)
        return 0.0 if position is None else self._values[position]

    def items(self) -> Iterator[tuple[ItemId, float]]:
        """Iterate over assigned ``(item, counter)`` pairs."""
        return iter(zip(self._keys, self._values))

    def space_bytes(self) -> int:
        """Modeled footprint: the flat arrays plus the index."""
        return space_model_bytes("mg", self._k)

    def __len__(self) -> int:
        return len(self._keys)
