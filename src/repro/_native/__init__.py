"""Loader for the optional compiled kernels.

The extension is built in place by ``python setup.py build_ext --inplace``
(see ``docs/performance.md``).  When the shared object is absent — no
compiler, or a pure-NumPy checkout — ``kernels`` is ``None`` and every
caller falls back to the NumPy paths through :mod:`repro.native`.
"""

from __future__ import annotations

#: Flags the extension is compiled with; recorded in bench metadata so
#: perf rows are interpretable across environments.
EXTRA_COMPILE_ARGS = ["-O3"]

try:
    from repro._native import _kernels as kernels  # type: ignore[attr-defined]
except ImportError:  # pragma: no cover - exercised by the no-compiler CI job
    kernels = None  # type: ignore[assignment]

__all__ = ["kernels", "EXTRA_COMPILE_ARGS"]
