/* Compiled hot paths for the repro counter tables and ingest kernel.
 *
 * Every routine in this file is a line-for-line port of an interpreted
 * loop elsewhere in the package, constrained to be *bit-identical* to
 * it: same IEEE-754 operation sequence, same xoroshiro128++ word
 * sequence, same table layouts, same probe accounting as the scalar
 * call sequence.  The Python sources remain the executable
 * specification — the golden-hash and differential-fuzz suites run
 * against both paths and must agree exactly.
 *
 * Ported loops:
 *   - repro.hashing.mixers.fmix64 / hash_u64        -> fmix64, hash_seeded
 *   - repro.prng.xoroshiro.Xoroshiro128PlusPlus     -> xoro_next/xoro_randrange
 *   - repro.table.probing scalar get/add_to/insert  -> lp_find/lp_insert_absent
 *   - repro.table.robinhood scalar walks            -> rh_find/rh_place
 *   - LinearProbingTable/RobinHoodTable purge       -> purge_sweep (the
 *     canonical ascending backward-shift sweep both NumPy strategies
 *     are proven layout-identical to)
 *   - SampleQuantilePolicy.decrement_value          -> sq_decrement
 *   - SketchKernel.ingest (the scalar loop the segmented batch path is
 *     defined to be per-update-equivalent to)        -> py_ingest_batch
 *   - BatchGrouper.group                            -> py_group
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#define NPY_NO_DEPRECATED_API NPY_1_7_API_VERSION
#include <numpy/arrayobject.h>

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ---------------------------------------------------------------------------
 * array access helpers
 * ------------------------------------------------------------------------- */

static void *
arr_data(PyObject *obj, int typenum, int writeable, const char *name)
{
    PyArrayObject *arr;
    if (!PyArray_Check(obj)) {
        PyErr_Format(PyExc_TypeError, "%s must be a numpy array", name);
        return NULL;
    }
    arr = (PyArrayObject *)obj;
    if (PyArray_TYPE(arr) != typenum || PyArray_NDIM(arr) != 1 ||
        !(writeable ? PyArray_ISCARRAY(arr) : PyArray_ISCARRAY_RO(arr))) {
        PyErr_Format(PyExc_TypeError,
                     "%s must be a 1-D C-contiguous array of the expected "
                     "dtype", name);
        return NULL;
    }
    return PyArray_DATA(arr);
}

static npy_intp
arr_len(PyObject *obj)
{
    return PyArray_DIM((PyArrayObject *)obj, 0);
}

/* ---------------------------------------------------------------------------
 * hashing (repro.hashing.mixers, bit-identical)
 * ------------------------------------------------------------------------- */

static inline uint64_t
fmix64(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return x;
}

/* hash_u64(key, seed) with the seed already folded to
 * (seed * GOLDEN) & MASK64 on the Python side. */
static inline uint64_t
hash_seeded(uint64_t key, uint64_t seedmix)
{
    return fmix64(fmix64(key) ^ seedmix);
}

/* ---------------------------------------------------------------------------
 * xoroshiro128++ (repro.prng.xoroshiro, bit-identical word sequence)
 * ------------------------------------------------------------------------- */

typedef struct {
    uint64_t s0;
    uint64_t s1;
} xoro_t;

static inline uint64_t
rotl64(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

static inline uint64_t
xoro_next(xoro_t *rng)
{
    uint64_t s0 = rng->s0;
    uint64_t s1 = rng->s1;
    uint64_t result = rotl64(s0 + s1, 17) + s0;
    s1 ^= s0;
    rng->s0 = rotl64(s0, 49) ^ s1 ^ (s1 << 21);
    rng->s1 = rotl64(s1, 28);
    return result;
}

/* randrange(n): rejection sampling on the top of the 64-bit range,
 * consuming exactly the draws the Python implementation consumes. */
static inline uint64_t
xoro_randrange(xoro_t *rng, uint64_t n)
{
    /* 2**64 mod n, computed in uint64 arithmetic. */
    uint64_t rem = ((uint64_t)0 - n) % n;
    for (;;) {
        uint64_t draw = xoro_next(rng);
        /* Python accepts draw < 2**64 - rem (always, when rem == 0). */
        if (rem == 0 || draw < ((uint64_t)0 - rem)) {
            return draw % n;
        }
    }
}

/* ---------------------------------------------------------------------------
 * scalar probe walks (ports of the Python scalar methods, including the
 * exact probe_count accounting of the scalar call sequence)
 * ------------------------------------------------------------------------- */

/* Linear-probing lookup; returns 1 and *slot_out when found.  Charges
 * probes exactly like LinearProbingTable.get / add_to. */
static inline int
lp_find(const uint64_t *tk, const int64_t *ts, uint64_t mask, uint64_t seedmix,
        uint64_t key, uint64_t *slot_out, int64_t *probe_total)
{
    uint64_t slot = hash_seeded(key, seedmix) & mask;
    int64_t probes = 0;
    while (ts[slot] != 0) {
        probes += 1;
        if (tk[slot] == key) {
            *probe_total += probes;
            *slot_out = slot;
            return 1;
        }
        slot = (slot + 1) & mask;
    }
    *probe_total += probes + 1;
    return 0;
}

/* Robin Hood lookup with the early exit; charges probes exactly like
 * RobinHoodTable.get / add_to. */
static inline int
rh_find(const uint64_t *tk, const int64_t *ts, uint64_t mask, uint64_t seedmix,
        uint64_t key, uint64_t *slot_out, int64_t *probe_total)
{
    uint64_t slot = hash_seeded(key, seedmix) & mask;
    int64_t distance = 0;
    int64_t probes = 0;
    for (;;) {
        int64_t state = ts[slot];
        probes += 1;
        if (state == 0 || state - 1 < distance) {
            *probe_total += probes;
            return 0;
        }
        if (tk[slot] == key) {
            *probe_total += probes;
            *slot_out = slot;
            return 1;
        }
        slot = (slot + 1) & mask;
        distance += 1;
    }
}

/* FCFS insert of a key known to be absent (the ingest path guarantees
 * it: add_to just missed).  Charges probes like the scalar insert. */
static inline void
lp_insert_absent(uint64_t *tk, double *tv, int64_t *ts, uint64_t mask,
                 uint64_t seedmix, uint64_t key, double value,
                 int64_t *probe_total)
{
    uint64_t home = hash_seeded(key, seedmix) & mask;
    uint64_t slot = home;
    int64_t probes = 0;
    while (ts[slot] != 0) {
        probes += 1;
        slot = (slot + 1) & mask;
    }
    tk[slot] = key;
    tv[slot] = value;
    ts[slot] = (int64_t)((slot - home) & mask) + 1;
    *probe_total += probes + 1;
}

/* Robin Hood displacement walk (key known absent); charges probes like
 * RobinHoodTable._place. */
static inline void
rh_place(uint64_t *tk, double *tv, int64_t *ts, uint64_t mask,
         uint64_t key, double value, uint64_t home, int64_t *probe_total)
{
    uint64_t slot = home;
    int64_t distance = 0;
    int64_t probes = 0;
    for (;;) {
        int64_t state = ts[slot];
        probes += 1;
        if (state == 0) {
            tk[slot] = key;
            tv[slot] = value;
            ts[slot] = distance + 1;
            *probe_total += probes;
            return;
        }
        int64_t resident_distance = state - 1;
        if (resident_distance < distance) {
            uint64_t evicted_key = tk[slot];
            double evicted_value = tv[slot];
            tk[slot] = key;
            tv[slot] = value;
            ts[slot] = distance + 1;
            key = evicted_key;
            value = evicted_value;
            distance = resident_distance;
        }
        slot = (slot + 1) & mask;
        distance += 1;
    }
}

/* Scalar-equivalent insert dispatch for the ingest loop.  The Robin
 * Hood scalar insert runs a duplicate-check get() before placing, and
 * that lookup's probes are charged; the key is absent here, so the
 * check is a guaranteed-miss walk replayed for probe parity only. */
static inline void
table_insert_absent(uint64_t *tk, double *tv, int64_t *ts, uint64_t mask,
                    uint64_t seedmix, int robinhood, uint64_t key,
                    double value, int64_t *probe_total)
{
    if (robinhood) {
        uint64_t dummy;
        (void)rh_find(tk, ts, mask, seedmix, key, &dummy, probe_total);
        rh_place(tk, tv, ts, mask, key, value,
                 hash_seeded(key, seedmix) & mask, probe_total);
    }
    else {
        lp_insert_absent(tk, tv, ts, mask, seedmix, key, value, probe_total);
    }
}

/* ---------------------------------------------------------------------------
 * deletion + purge (ports of _remove_at and the canonical ascending
 * backward-shift sweep both NumPy purge strategies reproduce)
 * ------------------------------------------------------------------------- */

static void
lp_remove_at(uint64_t *tk, double *tv, int64_t *ts, uint64_t mask,
             uint64_t slot)
{
    ts[slot] = 0;
    uint64_t free_slot = slot;
    uint64_t scan = (slot + 1) & mask;
    while (ts[scan] != 0) {
        uint64_t distance = (uint64_t)(ts[scan] - 1);
        uint64_t home = (scan - distance) & mask;
        uint64_t free_distance = (free_slot - home) & mask;
        if (free_distance < distance) {
            tk[free_slot] = tk[scan];
            tv[free_slot] = tv[scan];
            ts[free_slot] = (int64_t)free_distance + 1;
            ts[scan] = 0;
            free_slot = scan;
        }
        scan = (scan + 1) & mask;
    }
}

static void
rh_remove_at(uint64_t *tk, double *tv, int64_t *ts, uint64_t mask,
             uint64_t slot)
{
    ts[slot] = 0;
    uint64_t previous = slot;
    uint64_t current = (slot + 1) & mask;
    while (ts[current] > 1) {
        tk[previous] = tk[current];
        tv[previous] = tv[current];
        ts[previous] = ts[current] - 1;
        ts[current] = 0;
        previous = current;
        current = (current + 1) & mask;
    }
}

/* The canonical scalar purge: sweep slots 0..L-1 ascending, removing
 * every non-positive counter with the backward shift and re-examining
 * the slot after each removal (shifting may move another counter in).
 * Values never change during the sweep and shifts only move counters
 * toward their homes, so exactly the non-positive counters are freed —
 * the same contract the two vectorized strategies satisfy. */
static int64_t
purge_sweep(uint64_t *tk, double *tv, int64_t *ts, uint64_t mask,
            int robinhood)
{
    int64_t length = (int64_t)mask + 1;
    int64_t freed = 0;
    for (int64_t slot = 0; slot < length; slot++) {
        while (ts[slot] != 0 && tv[slot] <= 0.0) {
            if (robinhood) {
                rh_remove_at(tk, tv, ts, mask, (uint64_t)slot);
            }
            else {
                lp_remove_at(tk, tv, ts, mask, (uint64_t)slot);
            }
            freed += 1;
        }
    }
    return freed;
}

/* ---------------------------------------------------------------------------
 * SampleQuantilePolicy.decrement_value (selector="auto"), bit-identical
 * ------------------------------------------------------------------------- */

static int
cmp_double(const void *pa, const void *pb)
{
    double a = *(const double *)pa;
    double b = *(const double *)pb;
    return (a > b) - (a < b);
}

static double
sq_decrement(const double *tv, const int64_t *ts, int64_t length,
             int64_t size, int64_t sample_size, double quantile,
             xoro_t *rng, double *scratch)
{
    int64_t n;
    if (size <= sample_size) {
        /* values_list(): live values in ascending slot order. */
        n = 0;
        for (int64_t slot = 0; slot < length; slot++) {
            if (ts[slot] != 0) {
                scratch[n++] = tv[slot];
            }
        }
    }
    else {
        /* sample_values(): rejection-sample physical slots, consuming
         * exactly the Python draw sequence. */
        n = sample_size;
        for (int64_t j = 0; j < n; j++) {
            for (;;) {
                uint64_t slot = xoro_randrange(rng, (uint64_t)length);
                if (ts[slot] != 0) {
                    scratch[j] = tv[slot];
                    break;
                }
            }
        }
    }
    /* sample_quantile(..., selector="auto"): min/max at the extremes,
     * full sort otherwise; rank = int(quantile * (n - 1)) truncated. */
    if (quantile == 0.0) {
        double minimum = scratch[0];
        for (int64_t j = 1; j < n; j++) {
            if (scratch[j] < minimum) {
                minimum = scratch[j];
            }
        }
        return minimum;
    }
    if (quantile == 1.0) {
        double maximum = scratch[0];
        for (int64_t j = 1; j < n; j++) {
            if (scratch[j] > maximum) {
                maximum = scratch[j];
            }
        }
        return maximum;
    }
    qsort(scratch, (size_t)n, sizeof(double), cmp_double);
    int64_t rank = (int64_t)(quantile * (double)(n - 1));
    return scratch[rank];
}

/* ---------------------------------------------------------------------------
 * get_many / add_many / insert_many / purge_nonpositive entry points
 * ------------------------------------------------------------------------- */

static PyObject *
py_get_many(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *keys_o, *tk_o, *tv_o, *ts_o;
    unsigned long long seedmix_ull;
    int robinhood;
    if (!PyArg_ParseTuple(args, "OOOOKi", &keys_o, &tk_o, &tv_o, &ts_o,
                          &seedmix_ull, &robinhood)) {
        return NULL;
    }
    const uint64_t *keys = arr_data(keys_o, NPY_UINT64, 0, "keys");
    const uint64_t *tk = arr_data(tk_o, NPY_UINT64, 0, "table keys");
    const double *tv = arr_data(tv_o, NPY_DOUBLE, 0, "table values");
    const int64_t *ts = arr_data(ts_o, NPY_INT64, 0, "table states");
    if (!keys || !tk || !tv || !ts) {
        return NULL;
    }
    npy_intp n = arr_len(keys_o);
    uint64_t mask = (uint64_t)arr_len(ts_o) - 1;
    uint64_t seedmix = (uint64_t)seedmix_ull;

    npy_intp dims[1] = {n};
    PyObject *out_o = PyArray_SimpleNew(1, dims, NPY_DOUBLE);
    if (out_o == NULL) {
        return NULL;
    }
    double *out = PyArray_DATA((PyArrayObject *)out_o);
    int64_t probes = 0;

    Py_BEGIN_ALLOW_THREADS
    for (npy_intp i = 0; i < n; i++) {
        uint64_t slot;
        int found = robinhood
            ? rh_find(tk, ts, mask, seedmix, keys[i], &slot, &probes)
            : lp_find(tk, ts, mask, seedmix, keys[i], &slot, &probes);
        out[i] = found ? tv[slot] : (double)NAN;
    }
    Py_END_ALLOW_THREADS

    return Py_BuildValue("(NL)", out_o, (long long)probes);
}

static PyObject *
py_add_many(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *keys_o, *deltas_o, *tk_o, *tv_o, *ts_o;
    unsigned long long seedmix_ull;
    int robinhood;
    if (!PyArg_ParseTuple(args, "OOOOOKi", &keys_o, &deltas_o, &tk_o, &tv_o,
                          &ts_o, &seedmix_ull, &robinhood)) {
        return NULL;
    }
    const uint64_t *keys = arr_data(keys_o, NPY_UINT64, 0, "keys");
    const double *deltas = arr_data(deltas_o, NPY_DOUBLE, 0, "deltas");
    const uint64_t *tk = arr_data(tk_o, NPY_UINT64, 0, "table keys");
    double *tv = arr_data(tv_o, NPY_DOUBLE, 1, "table values");
    const int64_t *ts = arr_data(ts_o, NPY_INT64, 0, "table states");
    if (!keys || !deltas || !tk || !tv || !ts) {
        return NULL;
    }
    npy_intp n = arr_len(keys_o);
    uint64_t mask = (uint64_t)arr_len(ts_o) - 1;
    uint64_t seedmix = (uint64_t)seedmix_ull;

    uint64_t *slots = PyMem_Malloc((size_t)(n > 0 ? n : 1) * sizeof(uint64_t));
    if (slots == NULL) {
        return PyErr_NoMemory();
    }
    int64_t probes = 0;
    npy_intp missing = -1;

    Py_BEGIN_ALLOW_THREADS
    /* Locate every key first (charging probes for all of them, as the
     * vectorized walk does), then scatter — the table is untouched when
     * any key is missing. */
    for (npy_intp i = 0; i < n; i++) {
        int found = robinhood
            ? rh_find(tk, ts, mask, seedmix, keys[i], &slots[i], &probes)
            : lp_find(tk, ts, mask, seedmix, keys[i], &slots[i], &probes);
        if (!found && missing < 0) {
            missing = i;
        }
    }
    if (missing < 0) {
        for (npy_intp i = 0; i < n; i++) {
            tv[slots[i]] += deltas[i];
        }
    }
    Py_END_ALLOW_THREADS

    PyMem_Free(slots);
    return Py_BuildValue("(Ln)", (long long)probes, (Py_ssize_t)missing);
}

static PyObject *
py_insert_many(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *keys_o, *values_o, *tk_o, *tv_o, *ts_o;
    unsigned long long seedmix_ull;
    int robinhood;
    if (!PyArg_ParseTuple(args, "OOOOOKi", &keys_o, &values_o, &tk_o, &tv_o,
                          &ts_o, &seedmix_ull, &robinhood)) {
        return NULL;
    }
    const uint64_t *keys = arr_data(keys_o, NPY_UINT64, 0, "keys");
    const double *values = arr_data(values_o, NPY_DOUBLE, 0, "values");
    uint64_t *tk = arr_data(tk_o, NPY_UINT64, 1, "table keys");
    double *tv = arr_data(tv_o, NPY_DOUBLE, 1, "table values");
    int64_t *ts = arr_data(ts_o, NPY_INT64, 1, "table states");
    if (!keys || !values || !tk || !tv || !ts) {
        return NULL;
    }
    npy_intp n = arr_len(keys_o);
    int64_t length = (int64_t)arr_len(ts_o);
    uint64_t mask = (uint64_t)length - 1;
    uint64_t seedmix = (uint64_t)seedmix_ull;
    int64_t probes = 0;
    uint64_t duplicate_key = 0;
    int duplicate = 0;

    if (robinhood) {
        /* Simulate the displacement walks on copies (the NumPy slow
         * path simulates on Python lists), then commit — a duplicate
         * leaves the table untouched. */
        int64_t *scopy = PyMem_Malloc((size_t)length * sizeof(int64_t));
        uint64_t *kcopy = PyMem_Malloc((size_t)length * sizeof(uint64_t));
        double *vcopy = PyMem_Malloc((size_t)length * sizeof(double));
        if (scopy == NULL || kcopy == NULL || vcopy == NULL) {
            PyMem_Free(scopy);
            PyMem_Free(kcopy);
            PyMem_Free(vcopy);
            return PyErr_NoMemory();
        }
        Py_BEGIN_ALLOW_THREADS
        memcpy(scopy, ts, (size_t)length * sizeof(int64_t));
        memcpy(kcopy, tk, (size_t)length * sizeof(uint64_t));
        memcpy(vcopy, tv, (size_t)length * sizeof(double));
        for (npy_intp j = 0; j < n && !duplicate; j++) {
            uint64_t key = keys[j];
            double value = values[j];
            uint64_t slot = hash_seeded(key, seedmix) & mask;
            int64_t distance = 0;
            for (;;) {
                int64_t state = scopy[slot];
                probes += 1;
                if (state == 0) {
                    kcopy[slot] = key;
                    vcopy[slot] = value;
                    scopy[slot] = distance + 1;
                    break;
                }
                if (kcopy[slot] == key) {
                    duplicate = 1;
                    duplicate_key = key;
                    break;
                }
                int64_t resident_distance = state - 1;
                if (resident_distance < distance) {
                    uint64_t evicted_key = kcopy[slot];
                    double evicted_value = vcopy[slot];
                    kcopy[slot] = key;
                    vcopy[slot] = value;
                    scopy[slot] = distance + 1;
                    key = evicted_key;
                    value = evicted_value;
                    distance = resident_distance;
                }
                slot = (slot + 1) & mask;
                distance += 1;
            }
        }
        if (!duplicate) {
            memcpy(ts, scopy, (size_t)length * sizeof(int64_t));
            memcpy(tk, kcopy, (size_t)length * sizeof(uint64_t));
            memcpy(tv, vcopy, (size_t)length * sizeof(double));
        }
        Py_END_ALLOW_THREADS
        PyMem_Free(scopy);
        PyMem_Free(kcopy);
        PyMem_Free(vcopy);
    }
    else {
        /* FCFS placement depends only on occupancy: walk an occupancy
         * overlay, record the placements, scatter on success. */
        char *occ = PyMem_Malloc((size_t)length);
        uint64_t *kcopy = PyMem_Malloc((size_t)length * sizeof(uint64_t));
        uint64_t *pos = PyMem_Malloc((size_t)(n > 0 ? n : 1) * sizeof(uint64_t));
        int64_t *dist = PyMem_Malloc((size_t)(n > 0 ? n : 1) * sizeof(int64_t));
        if (occ == NULL || kcopy == NULL || pos == NULL || dist == NULL) {
            PyMem_Free(occ);
            PyMem_Free(kcopy);
            PyMem_Free(pos);
            PyMem_Free(dist);
            return PyErr_NoMemory();
        }
        Py_BEGIN_ALLOW_THREADS
        for (int64_t slot = 0; slot < length; slot++) {
            occ[slot] = ts[slot] != 0;
        }
        memcpy(kcopy, tk, (size_t)length * sizeof(uint64_t));
        for (npy_intp j = 0; j < n && !duplicate; j++) {
            uint64_t key = keys[j];
            uint64_t home = hash_seeded(key, seedmix) & mask;
            uint64_t slot = home;
            while (occ[slot]) {
                if (kcopy[slot] == key) {
                    duplicate = 1;
                    duplicate_key = key;
                    break;
                }
                slot = (slot + 1) & mask;
            }
            if (duplicate) {
                break;
            }
            occ[slot] = 1;
            kcopy[slot] = key;
            pos[j] = slot;
            dist[j] = (int64_t)((slot - home) & mask);
        }
        if (!duplicate) {
            for (npy_intp j = 0; j < n; j++) {
                tk[pos[j]] = keys[j];
                tv[pos[j]] = values[j];
                ts[pos[j]] = dist[j] + 1;
                probes += dist[j] + 1;
            }
        }
        Py_END_ALLOW_THREADS
        PyMem_Free(occ);
        PyMem_Free(kcopy);
        PyMem_Free(pos);
        PyMem_Free(dist);
    }

    if (duplicate) {
        PyErr_Format(PyExc_ValueError,
                     "key %llu is already assigned a counter",
                     (unsigned long long)duplicate_key);
        return NULL;
    }
    return PyLong_FromLongLong((long long)probes);
}

static PyObject *
py_purge_nonpositive(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *tk_o, *tv_o, *ts_o;
    int robinhood;
    if (!PyArg_ParseTuple(args, "OOOi", &tk_o, &tv_o, &ts_o, &robinhood)) {
        return NULL;
    }
    uint64_t *tk = arr_data(tk_o, NPY_UINT64, 1, "table keys");
    double *tv = arr_data(tv_o, NPY_DOUBLE, 1, "table values");
    int64_t *ts = arr_data(ts_o, NPY_INT64, 1, "table states");
    if (!tk || !tv || !ts) {
        return NULL;
    }
    uint64_t mask = (uint64_t)arr_len(ts_o) - 1;
    int64_t freed;

    Py_BEGIN_ALLOW_THREADS
    freed = purge_sweep(tk, tv, ts, mask, robinhood);
    Py_END_ALLOW_THREADS

    return PyLong_FromLongLong((long long)freed);
}

/* ---------------------------------------------------------------------------
 * the ingest kernel (scalar SketchKernel.ingest loop over a batch)
 * ------------------------------------------------------------------------- */

static PyObject *
py_ingest_batch(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *items_o, *weights_o, *tk_o, *tv_o, *ts_o;
    long long size_ll, capacity_ll, sample_size_ll;
    unsigned long long seedmix_ull, s0_ull, s1_ull;
    int robinhood;
    double offset, quantile;
    if (!PyArg_ParseTuple(args, "OOOOOLLKiKKddL", &items_o, &weights_o, &tk_o,
                          &tv_o, &ts_o, &size_ll, &capacity_ll, &seedmix_ull,
                          &robinhood, &s0_ull, &s1_ull, &offset, &quantile,
                          &sample_size_ll)) {
        return NULL;
    }
    const uint64_t *items = arr_data(items_o, NPY_UINT64, 0, "items");
    const double *weights = arr_data(weights_o, NPY_DOUBLE, 0, "weights");
    uint64_t *tk = arr_data(tk_o, NPY_UINT64, 1, "table keys");
    double *tv = arr_data(tv_o, NPY_DOUBLE, 1, "table values");
    int64_t *ts = arr_data(ts_o, NPY_INT64, 1, "table states");
    if (!items || !weights || !tk || !tv || !ts) {
        return NULL;
    }
    npy_intp n = arr_len(items_o);
    int64_t length = (int64_t)arr_len(ts_o);
    uint64_t mask = (uint64_t)length - 1;
    uint64_t seedmix = (uint64_t)seedmix_ull;
    int64_t size = (int64_t)size_ll;
    int64_t capacity = (int64_t)capacity_ll;
    int64_t sample_size = (int64_t)sample_size_ll;
    xoro_t rng = {(uint64_t)s0_ull, (uint64_t)s1_ull};

    int64_t scratch_len = capacity > sample_size ? capacity : sample_size;
    double *scratch = PyMem_Malloc((size_t)scratch_len * sizeof(double));
    if (scratch == NULL) {
        return PyErr_NoMemory();
    }

    int64_t probes = 0;
    int64_t hits = 0;
    int64_t inserts = 0;
    int64_t decrements = 0;
    int64_t scanned = 0;
    int64_t freed_total = 0;

    Py_BEGIN_ALLOW_THREADS
    for (npy_intp i = 0; i < n; i++) {
        uint64_t key = items[i];
        double weight = weights[i];
        uint64_t slot;
        int found = robinhood
            ? rh_find(tk, ts, mask, seedmix, key, &slot, &probes)
            : lp_find(tk, ts, mask, seedmix, key, &slot, &probes);
        if (found) {
            tv[slot] += weight;
            hits += 1;
            continue;
        }
        if (size < capacity) {
            table_insert_absent(tk, tv, ts, mask, seedmix, robinhood, key,
                                weight, &probes);
            size += 1;
            inserts += 1;
            continue;
        }
        /* Table full: DecrementCounters(), scalar code path verbatim. */
        double c_star = sq_decrement(tv, ts, length, size, sample_size,
                                     quantile, &rng, scratch);
        scanned += size;
        double neg = -c_star;
        for (int64_t s = 0; s < length; s++) {
            if (ts[s] != 0) {
                tv[s] += neg;
            }
        }
        int64_t freed = purge_sweep(tk, tv, ts, mask, robinhood);
        size -= freed;
        freed_total += freed;
        decrements += 1;
        offset += c_star;
        if (weight > c_star) {
            table_insert_absent(tk, tv, ts, mask, seedmix, robinhood, key,
                                weight - c_star, &probes);
            size += 1;
            inserts += 1;
        }
    }
    Py_END_ALLOW_THREADS

    PyMem_Free(scratch);
    return Py_BuildValue("(LKKdLLLLLL)",
                         (long long)size,
                         (unsigned long long)rng.s0,
                         (unsigned long long)rng.s1,
                         offset,
                         (long long)probes,
                         (long long)hits,
                         (long long)inserts,
                         (long long)decrements,
                         (long long)scanned,
                         (long long)freed_total);
}

/* ---------------------------------------------------------------------------
 * BatchGrouper.group (scalar claim walk; identical outputs)
 * ------------------------------------------------------------------------- */

static PyObject *
py_group(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *items_o, *gk_o, *stamps_o, *gid_o, *inverse_o, *uniq_o;
    long long epoch_ll;
    if (!PyArg_ParseTuple(args, "OOOOOOL", &items_o, &gk_o, &stamps_o, &gid_o,
                          &inverse_o, &uniq_o, &epoch_ll)) {
        return NULL;
    }
    const uint64_t *items = arr_data(items_o, NPY_UINT64, 0, "items");
    uint64_t *gk = arr_data(gk_o, NPY_UINT64, 1, "group table keys");
    int64_t *stamps = arr_data(stamps_o, NPY_INT64, 1, "stamps");
    int64_t *gid = arr_data(gid_o, NPY_INT64, 1, "group ids");
    int64_t *inverse = arr_data(inverse_o, NPY_INT64, 1, "inverse");
    uint64_t *uniq = arr_data(uniq_o, NPY_UINT64, 1, "uniq");
    if (!items || !gk || !stamps || !gid || !inverse || !uniq) {
        return NULL;
    }
    npy_intp n = arr_len(items_o);
    uint64_t mask = (uint64_t)arr_len(stamps_o) - 1;
    int64_t epoch = (int64_t)epoch_ll;
    int64_t num_groups = 0;

    Py_BEGIN_ALLOW_THREADS
    for (npy_intp i = 0; i < n; i++) {
        uint64_t key = items[i];
        uint64_t slot = fmix64(key) & mask;
        for (;;) {
            if (stamps[slot] != epoch) {
                stamps[slot] = epoch;
                gk[slot] = key;
                gid[slot] = num_groups;
                uniq[num_groups] = key;
                inverse[i] = num_groups;
                num_groups += 1;
                break;
            }
            if (gk[slot] == key) {
                inverse[i] = gid[slot];
                break;
            }
            slot = (slot + 1) & mask;
        }
    }
    Py_END_ALLOW_THREADS

    return PyLong_FromLongLong((long long)num_groups);
}

/* ---------------------------------------------------------------------------
 * module definition
 * ------------------------------------------------------------------------- */

static PyMethodDef kernel_methods[] = {
    {"get_many", py_get_many, METH_VARARGS,
     "Scalar-equivalent batched lookup on a probing table."},
    {"add_many", py_add_many, METH_VARARGS,
     "Scalar-equivalent batched increment on a probing table."},
    {"insert_many", py_insert_many, METH_VARARGS,
     "Scalar-equivalent batched insert on a probing table."},
    {"purge_nonpositive", py_purge_nonpositive, METH_VARARGS,
     "Canonical ascending backward-shift purge sweep."},
    {"ingest_batch", py_ingest_batch, METH_VARARGS,
     "The scalar SketchKernel.ingest loop over a whole batch."},
    {"group", py_group, METH_VARARGS,
     "BatchGrouper.group claim walk (first-occurrence order)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernels_module = {
    PyModuleDef_HEAD_INIT,
    "repro._native._kernels",
    "Compiled probe/decrement kernels, bit-identical to the NumPy paths.",
    -1,
    kernel_methods,
    NULL,
    NULL,
    NULL,
    NULL,
};

PyMODINIT_FUNC
PyInit__kernels(void)
{
    PyObject *module;
    import_array();
    module = PyModule_Create(&kernels_module);
    if (module == NULL) {
        return NULL;
    }
#if defined(__clang__)
    PyModule_AddStringConstant(module, "COMPILER", "clang " __VERSION__);
#elif defined(__GNUC__)
    PyModule_AddStringConstant(module, "COMPILER", "gcc " __VERSION__);
#else
    PyModule_AddStringConstant(module, "COMPILER", "unknown");
#endif
    return module;
}
