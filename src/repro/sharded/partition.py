"""Deterministic hash partitioning of item identifiers onto shards.

The sharded sketch owes its guarantees to a simple invariant: **every
occurrence of an item lands on the same shard**.  The partition is a
pure function of ``(item, num_shards, seed)`` — seeded so that shard
membership is uncorrelated with the per-shard counter tables' own
hashes, and exposed in scalar and vectorized forms that are bit-
identical element-wise (the tests assert so).

The scalar form serves ``update()``; the array form is the first step
of every ``update_batch()`` and costs one vectorized mix plus one
modulo over the batch.

>>> import numpy as np
>>> shard_of(1234, 4, seed=7) == int(shard_ids(np.array([1234], dtype=np.uint64), 4, seed=7)[0])
True
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.hashing.mixers import fmix64, fmix64_array, item_to_u64

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
#: Domain-separation constant: keeps the shard router independent from
#: every other seeded hash in the library built on the same mixer.
_SHARD_SALT = 0x5AFE_C0DE_0F_5AFE


def partition_salt(seed: int) -> int:
    """The 64-bit salt the router folds into every item before mixing.

    Parameters
    ----------
    seed : int
        The sharded sketch's construction seed.

    Returns
    -------
    int
        A seed-dependent 64-bit constant.

    Examples
    --------
    >>> partition_salt(0) == partition_salt(0)
    True
    >>> partition_salt(0) != partition_salt(1)
    True
    """
    return ((seed * _GOLDEN) ^ _SHARD_SALT) & _MASK64


def shard_of(item: object, num_shards: int, seed: int = 0) -> int:
    """Route one item to its owning shard.

    Parameters
    ----------
    item : int, str, or bytes-like
        The item identifier; friendly types are folded onto the 64-bit
        identifier space exactly as the sketches fold them
        (:func:`repro.hashing.mixers.item_to_u64`).
    num_shards : int
        Number of shards being routed across; must be positive.
    seed : int, optional
        Partition seed.  Two routers with the same seed agree on every
        item — the property shard-wise merging relies on.

    Returns
    -------
    int
        The shard index in ``[0, num_shards)``.

    Examples
    --------
    >>> shard_of(42, 1)
    0
    >>> all(0 <= shard_of(i, 8, seed=3) < 8 for i in range(100))
    True
    """
    if num_shards <= 0:
        raise InvalidParameterError(f"num_shards must be positive, got {num_shards}")
    return fmix64(item_to_u64(item) ^ partition_salt(seed)) % num_shards


def shard_ids(items: np.ndarray, num_shards: int, seed: int = 0) -> np.ndarray:
    """Vectorized :func:`shard_of` over a uint64 item array.

    Parameters
    ----------
    items : numpy.ndarray
        1-D uint64 array of item identifiers (already coerced, e.g. by
        :func:`repro.streams.model.as_batch`).
    num_shards : int
        Number of shards being routed across; must be positive.
    seed : int, optional
        Partition seed, as in :func:`shard_of`.

    Returns
    -------
    numpy.ndarray
        uint64 array of shard indices, aligned with ``items``.

    Examples
    --------
    >>> import numpy as np
    >>> ids = shard_ids(np.arange(6, dtype=np.uint64), 2, seed=1)
    >>> sorted(set(ids.tolist())) in ([0], [1], [0, 1])
    True
    """
    if num_shards <= 0:
        raise InvalidParameterError(f"num_shards must be positive, got {num_shards}")
    mixed = fmix64_array(np.asarray(items, dtype=np.uint64) ^ np.uint64(partition_salt(seed)))
    if num_shards & (num_shards - 1) == 0:
        # Power-of-two shard counts reduce with a mask; fmix64's full
        # avalanche makes the low bits as good as any.
        return mixed & np.uint64(num_shards - 1)
    return mixed % np.uint64(num_shards)
