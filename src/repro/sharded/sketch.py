"""Sharded parallel ingestion with merge-on-query (scale-out, Section 3).

The paper's summary is mergeable by construction (Algorithm 5), which is
what makes the scale-out shape of real deployments work: many ingest
workers each maintain their own summary, and queries see a merged
aggregate.  :class:`ShardedFrequentItemsSketch` packages that shape into
one object:

* **Hash-partitioned ingest** — every item is routed to one of ``n``
  independent shard sketches by a seeded 64-bit mix
  (:mod:`repro.sharded.partition`), so each shard observes a disjoint
  substream.  Batches are masked per shard and ingested through each
  shard's :class:`~repro.engine.kernel.SketchKernel` batch path on a
  ``ThreadPoolExecutor``, so per-shard state is bit-reproducible given
  the partition.
* **Merge-on-query** — queries are answered from a flat view (one
  :class:`~repro.engine.kernel.SketchKernel` of capacity ``n * k``
  wrapped in a :class:`~repro.core.frequent_items.FrequentItemsSketch`)
  assembled from the shards' counters on first use and cached
  until the next write.  Because the partition keeps shard key sets
  disjoint and the view has room for every live counter, assembling it
  adds **zero** error: the view's offset is exactly the *sum of the
  per-shard offsets* (plus any error absorbed from foreign summaries),
  and every per-item bound it reports is valid for the full stream.
* **Why it is fast** — with ``n`` shards each keeping ``k`` counters,
  the aggregate table is ``n`` times larger, so decrement passes (and
  the batch segmentation they force) become rarer or disappear while
  per-update work stays vectorized.  On multi-core hardware the shard
  ingests also genuinely overlap, since the heavy NumPy kernels release
  the GIL.

>>> import numpy as np
>>> sketch = ShardedFrequentItemsSketch(64, num_shards=4, seed=1)
>>> sketch.update_batch(np.array([7, 8, 7, 9], dtype=np.uint64),
...                     np.array([100.0, 50.0, 25.0, 10.0]))
>>> sketch.estimate(7)
125.0
>>> sketch.close()
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.core.frequent_items import FrequentItemsSketch
from repro.core.policies import DecrementPolicy
from repro.core.row import ErrorType, HeavyHitterRow
from repro.engine.kernel import SketchKernel
from repro.errors import IncompatibleSketchError, InvalidParameterError
from repro.hashing.mixers import hash_u64
from repro.metrics.instrumentation import OpStats
from repro.sharded.partition import shard_ids, shard_of
from repro.streams.model import as_batch, as_updates
from repro.types import ItemId, Weight


def _shard_seed(seed: int, index: int) -> int:
    """Per-shard sketch seed: decorrelates shard tables and policies."""
    return hash_u64(seed, index + 1)


class ShardedFrequentItemsSketch:
    """Frequent items at scale: ``num_shards`` sketches, one queryable view.

    Parameters
    ----------
    max_counters : int
        The per-shard ``k`` — each of the ``num_shards`` shard sketches
        keeps this many counters, so the aggregate holds up to
        ``num_shards * max_counters``.  Must be at least 2.
    num_shards : int, optional
        How many independent shard sketches to partition items across.
        Power-of-two counts route fastest; any positive count works.
    policy : DecrementPolicy, optional
        Decrement policy shared by every shard (the paper's SMED
        configuration when omitted).
    backend : str, optional
        Counter-store backend for every shard and for the merged view.
        ``"columnar"`` (default here) is the batch-ingest fast path.
    seed : int, optional
        Master seed: fixes the partition and, through per-shard derived
        seeds, every shard's sampling and table hash.  Two sharded
        sketches built with the same seed and inputs are identical.
    max_workers : int, optional
        Thread-pool width for parallel batch ingest.  Defaults to
        ``min(num_shards, os.cpu_count())`` — more workers than cores
        only adds scheduling jitter.

    Examples
    --------
    >>> sketch = ShardedFrequentItemsSketch(8, num_shards=2, seed=3)
    >>> sketch.update(1001, 5.0)
    >>> sketch.update(1001, 2.0)
    >>> sketch.estimate(1001)
    7.0
    >>> sketch.num_shards
    2
    >>> sketch.close()
    """

    __slots__ = (
        "_k",
        "_num_shards",
        "_policy",
        "_backend",
        "_seed",
        "_shards",
        "_extra_offset",
        "_extra_weight",
        "_merged",
        "_max_workers",
        "_executor",
    )

    def __init__(
        self,
        max_counters: int,
        num_shards: int = 4,
        policy: Optional[DecrementPolicy] = None,
        backend: str = "columnar",
        seed: int = 0,
        max_workers: Optional[int] = None,
        growth: str = "fixed",
    ) -> None:
        if num_shards < 1:
            raise InvalidParameterError(
                f"num_shards must be at least 1, got {num_shards}"
            )
        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be at least 1, got {max_workers}"
            )
        self._k = max_counters
        self._num_shards = num_shards
        self._backend = backend
        self._seed = seed
        self._shards = [
            FrequentItemsSketch(
                max_counters,
                policy=policy,
                backend=backend,
                seed=_shard_seed(seed, index),
                growth=growth,
            )
            for index in range(num_shards)
        ]
        # Every shard shares one policy object (policies are stateless
        # parameter holders); grab the resolved default off shard 0.
        self._policy = self._shards[0].policy
        self._extra_offset = 0.0
        self._extra_weight = 0.0
        self._merged: Optional[FrequentItemsSketch] = None
        self._max_workers = max_workers
        self._executor: Optional[ThreadPoolExecutor] = None

    @classmethod
    def _from_parts(
        cls,
        shards: list[FrequentItemsSketch],
        seed: int,
        extra_offset: float,
        extra_weight: float,
        max_workers: Optional[int] = None,
    ) -> "ShardedFrequentItemsSketch":
        """Rebuild from already-constructed shards (deserialization path)."""
        if not shards:
            raise InvalidParameterError("need at least one shard")
        sketch = cls.__new__(cls)
        sketch._k = shards[0].max_counters
        sketch._num_shards = len(shards)
        sketch._policy = shards[0].policy
        sketch._backend = shards[0].backend
        sketch._seed = seed
        sketch._shards = list(shards)
        sketch._extra_offset = extra_offset
        sketch._extra_weight = extra_weight
        sketch._merged = None
        sketch._max_workers = max_workers
        sketch._executor = None
        return sketch

    # -- configuration introspection ------------------------------------------

    @property
    def max_counters(self) -> int:
        """Per-shard counter budget ``k`` (aggregate is ``num_shards * k``).

        Examples
        --------
        >>> ShardedFrequentItemsSketch(32, num_shards=4).max_counters
        32
        """
        return self._k

    @property
    def num_shards(self) -> int:
        """Number of independent shard sketches items are routed across."""
        return self._num_shards

    @property
    def policy(self) -> DecrementPolicy:
        """The decrement policy every shard runs."""
        return self._policy

    @property
    def backend(self) -> str:
        """Counter-store backend used by shards and the merged view."""
        return self._backend

    @property
    def seed(self) -> int:
        """The master seed (fixes partition and per-shard seeds)."""
        return self._seed

    @property
    def growth(self) -> str:
        """Per-shard table-growth mode (``"fixed"`` or ``"adaptive"``)."""
        return self._shards[0].growth

    @property
    def shards(self) -> tuple[FrequentItemsSketch, ...]:
        """The shard sketches (read-only tuple; do not mutate them)."""
        return tuple(self._shards)

    # -- state introspection ---------------------------------------------------

    @property
    def num_active(self) -> int:
        """Total items currently holding a counter on any shard.

        Examples
        --------
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2)
        >>> s.update_all([1, 2, 3])
        >>> s.num_active
        3
        """
        return sum(shard.num_active for shard in self._shards)

    @property
    def stream_weight(self) -> float:
        """Total weight ``N`` processed, across shards and merged-in sketches."""
        return (
            sum(shard.stream_weight for shard in self._shards) + self._extra_weight
        )

    @property
    def maximum_error(self) -> float:
        """The summed per-shard error bound the merged view reports.

        Sum of every shard's accumulated offset, plus the error carried
        over from foreign summaries absorbed via the re-shard path.
        Every estimate's uncertainty interval has at most this width.
        """
        return (
            sum(shard.maximum_error for shard in self._shards) + self._extra_offset
        )

    @property
    def stats(self) -> OpStats:
        """Aggregated operation counts over all shards (a fresh snapshot)."""
        total = OpStats()
        for shard in self._shards:
            total.merge(shard.stats)
        return total

    def is_empty(self) -> bool:
        """True if no shard has processed any weight.

        Examples
        --------
        >>> ShardedFrequentItemsSketch(8).is_empty()
        True
        """
        return self.stream_weight == 0.0

    def __len__(self) -> int:
        return self.num_active

    def __contains__(self, item: ItemId) -> bool:
        return item in self._owner(item)

    def _owner(self, item: ItemId) -> FrequentItemsSketch:
        """The shard sketch that owns ``item`` under the partition."""
        return self._shards[shard_of(item, self._num_shards, self._seed)]

    # -- executor management ----------------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            workers = self._max_workers
            if workers is None:
                workers = min(self._num_shards, os.cpu_count() or 1)
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            )
        return self._executor

    def close(self) -> None:
        """Shut down the ingest thread pool (idempotent).

        The sketch remains fully usable afterwards — a new pool is spun
        up lazily if more parallel batches arrive.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardedFrequentItemsSketch":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown paths
        try:
            if self._executor is not None:
                self._executor.shutdown(wait=False)
        except Exception:
            pass

    # -- updates ---------------------------------------------------------------

    def update(self, item: ItemId, weight: Weight = 1.0) -> None:
        """Process one weighted update by routing it to the owning shard.

        Parameters
        ----------
        item : int
            The 64-bit item identifier, as in the flat sketch (helpers
            in :mod:`repro.hashing` fold strings/bytes onto that space).
        weight : float, optional
            Positive update weight (1.0 when omitted).

        Examples
        --------
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> s.update(10, 3.0)
        >>> s.update(10)
        >>> s.estimate(10)
        4.0
        """
        self._merged = None
        self._owner(item).update(item, weight)

    def update_all(self, updates: Iterable) -> None:
        """Consume an iterable of updates (items, pairs, or StreamUpdates).

        Bare item ids count as unit-weight updates, exactly like
        :meth:`FrequentItemsSketch.update_all`.

        Examples
        --------
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> s.update_all([1, (2, 10.0), 1])
        >>> s.estimate(2)
        10.0
        """
        self._merged = None
        shards = self._shards
        n, seed = self._num_shards, self._seed
        for item, weight in as_updates(updates):
            shards[shard_of(item, n, seed)].update(item, weight)

    def update_batch(self, items, weights=None) -> None:
        """Partition one array batch across shards and ingest in parallel.

        The batch is validated once, masked into per-shard sub-batches
        by the seeded partition, and each sub-batch is fed through the
        shard's existing vectorized ``update_batch`` path on the thread
        pool.  Given the partition, per-shard results are bit-identical
        to feeding each shard its substream directly.

        Parameters
        ----------
        items : numpy.ndarray or sequence
            1-D array of 64-bit item identifiers.
        weights : numpy.ndarray, optional
            Parallel array of positive weights (all 1.0 when omitted).

        Examples
        --------
        >>> import numpy as np
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> s.update_batch(np.array([4, 4, 5], dtype=np.uint64))
        >>> s.estimate(4)
        2.0
        """
        items, weights = as_batch(items, weights)
        if items.shape[0] == 0:
            return
        self._merged = None
        if self._num_shards == 1:
            self._shards[0].kernel.update_batch_validated(items, weights)
            return
        owners = shard_ids(items, self._num_shards, self._seed)

        def ingest(index: int) -> None:
            mask = owners == index
            if mask.any():
                self._shards[index].kernel.update_batch_validated(
                    items[mask], weights[mask]
                )

        futures = [
            self._pool().submit(ingest, index) for index in range(self._num_shards)
        ]
        for future in futures:
            future.result()

    # -- merge-on-query view -----------------------------------------------------

    def merged_view(self) -> FrequentItemsSketch:
        """The flat sketch queries are answered from (cached until a write).

        The view has capacity ``num_shards * max_counters`` — enough for
        every live counter — so assembling it performs no decrement
        passes: counters are copied verbatim, its offset is exactly
        :attr:`maximum_error`, and its stream weight is
        :attr:`stream_weight`.  Treat the returned sketch as read-only;
        it is invalidated and rebuilt after any update or merge.

        Examples
        --------
        >>> s = ShardedFrequentItemsSketch(8, num_shards=4, seed=2)
        >>> s.update_all([(1, 5.0), (2, 3.0)])
        >>> view = s.merged_view()
        >>> view.estimate(1), view.stream_weight
        (5.0, 8.0)
        """
        if self._merged is None:
            kernel = SketchKernel(
                self._k * self._num_shards,
                policy=self._policy,
                backend=self._backend,
                seed=self._seed,
            )
            for shard in self._shards:
                items, counts = shard._store.as_arrays()
                if len(items):
                    # Shard key sets are disjoint under the partition, so
                    # the copies never collide and never overflow n*k.
                    kernel.store.insert_many(items, counts)
            kernel.offset = self.maximum_error
            kernel.stream_weight = self.stream_weight
            self._merged = FrequentItemsSketch._from_kernel(kernel)
        return self._merged

    # -- point queries ----------------------------------------------------------

    def estimate(self, item: ItemId) -> float:
        """Hybrid point estimate from the merged view (see the flat sketch).

        Examples
        --------
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> s.update(3, 7.0)
        >>> s.estimate(3)
        7.0
        >>> s.estimate(99)
        0.0
        """
        return self.merged_view().estimate(item)

    def estimate_batch(self, items) -> np.ndarray:
        """Vectorized :meth:`estimate` over an array of item identifiers.

        One bulk probe of the merged view's store instead of one Python
        call (and one merged-view lookup) per key; repeated and absent
        keys are both fine.  Element-for-element equal to the scalar
        method.

        Examples
        --------
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> s.update(3, 7.0)
        >>> s.estimate_batch([3, 99])
        array([7., 0.])
        """
        return self.merged_view().estimate_batch(items)

    def lower_bound(self, item: ItemId) -> float:
        """A value guaranteed ``<= f(item)`` for the full stream.

        Examples
        --------
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> s.update(3, 7.0)
        >>> s.lower_bound(3)
        7.0
        """
        return self.merged_view().lower_bound(item)

    def upper_bound(self, item: ItemId) -> float:
        """A value guaranteed ``>= f(item)`` for the full stream.

        Examples
        --------
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> s.update(3, 7.0)
        >>> s.upper_bound(3)
        7.0
        """
        return self.merged_view().upper_bound(item)

    def row(self, item: ItemId) -> HeavyHitterRow:
        """The full (estimate, bounds) record for one item.

        Examples
        --------
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> s.update(3, 7.0)
        >>> s.row(3).estimate
        7.0
        """
        return self.merged_view().row(item)

    # -- heavy hitters ------------------------------------------------------------

    def frequent_items(
        self,
        error_type: ErrorType = ErrorType.NO_FALSE_POSITIVES,
        threshold: Optional[float] = None,
    ) -> list[HeavyHitterRow]:
        """Items whose frequency (may) exceed ``threshold``, via the merged view.

        Semantics match :meth:`FrequentItemsSketch.frequent_items`, with
        the view's offset — the summed per-shard error — as the default
        threshold.

        Examples
        --------
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> s.update_all([(1, 9.0), (2, 1.0)])
        >>> [row.item for row in s.frequent_items(threshold=5.0)]
        [1]
        """
        return self.merged_view().frequent_items(error_type, threshold)

    def heavy_hitters(
        self,
        phi: float,
        error_type: ErrorType = ErrorType.NO_FALSE_NEGATIVES,
    ) -> list[HeavyHitterRow]:
        """(φ)-heavy hitters of the full stream, via the merged view.

        With the default error direction every true φ-heavy hitter is
        returned; false positives are limited to items of frequency at
        least ``phi * N - maximum_error``.

        Examples
        --------
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> s.update_all([(1, 9.0), (2, 1.0)])
        >>> [row.item for row in s.heavy_hitters(phi=0.5)]
        [1]
        """
        return self.merged_view().heavy_hitters(phi, error_type)

    def to_rows(self) -> list[HeavyHitterRow]:
        """All tracked items as rows, sorted by estimate descending.

        Examples
        --------
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> s.update_all([(1, 9.0), (2, 1.0)])
        >>> [row.item for row in s.to_rows()]
        [1, 2]
        """
        return self.merged_view().to_rows()

    def __iter__(self) -> Iterator[HeavyHitterRow]:
        return iter(self.to_rows())

    # -- merging -------------------------------------------------------------------

    def merge(self, other: "ShardedFrequentItemsSketch") -> "ShardedFrequentItemsSketch":
        """Absorb another sharded sketch into this one; returns self.

        Two regimes:

        * **Equally sharded** (same ``num_shards`` and same ``seed``, so
          the partitions agree item for item): shard ``i`` absorbs the
          other's shard ``i`` via Algorithm 5.  Offsets and stream
          weights add shard-wise; the global bound stays the sum of
          per-shard bounds.
        * **Mismatched** (different shard count or partition seed): the
          other sketch is *re-sharded* — its counters are re-routed
          through this sketch's partition and replayed through the batch
          ingest path, and its total error bound is carried over into
          this sketch's :attr:`maximum_error` once.

        ``other`` is not modified.

        Examples
        --------
        >>> a = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> b = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> a.update(1, 4.0); b.update(1, 6.0)
        >>> _ = a.merge(b)
        >>> a.estimate(1)
        10.0
        """
        if other is self:
            raise IncompatibleSketchError("cannot merge a sketch into itself")
        if not isinstance(other, ShardedFrequentItemsSketch):
            raise IncompatibleSketchError(
                "merge expects another ShardedFrequentItemsSketch; use "
                "absorb_flat for a flat FrequentItemsSketch"
            )
        self._merged = None
        # Partition identity is the *masked* seed: routing only sees the
        # seed through 64-bit arithmetic (and serialization stores it
        # masked), so seed -1 and 2**64 - 1 are the same partition.
        same_partition = (other._seed - self._seed) % (1 << 64) == 0
        if other._num_shards == self._num_shards and same_partition:
            for mine, theirs in zip(self._shards, other._shards):
                if len(theirs._store) or theirs.stream_weight or theirs.maximum_error:
                    mine.merge(theirs)
            self._extra_offset += other._extra_offset
            self._extra_weight += other._extra_weight
            return self
        # Re-shard path: re-route the foreign counters through this
        # sketch's partition, then account the foreign error bound once.
        for shard in other._shards:
            items, counts = shard._store.as_arrays()
            if len(items):
                self._replay_counters(items, counts)
        self._extra_offset += other.maximum_error
        self._extra_weight += other.stream_weight - other._counter_mass()
        return self

    def absorb_flat(self, other: FrequentItemsSketch) -> "ShardedFrequentItemsSketch":
        """Absorb a flat :class:`FrequentItemsSketch` into the shards.

        The flat summary's counters are partitioned like any other
        updates and replayed through the batch ingest path; its error
        bound and stream weight carry over, so every bound this sketch
        reports afterwards is valid for the union of both streams.

        Examples
        --------
        >>> flat = FrequentItemsSketch(8, seed=1)
        >>> flat.update(42, 9.0)
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> _ = s.absorb_flat(flat)
        >>> s.estimate(42), s.stream_weight
        (9.0, 9.0)
        """
        self._merged = None
        items, counts = other._store.as_arrays()
        mass = 0.0
        if len(items):
            mass = float(counts.sum())
            self._replay_counters(items, counts)
        self._extra_offset += other.maximum_error
        self._extra_weight += other.stream_weight - mass
        return self

    def _replay_counters(self, items: np.ndarray, counts: np.ndarray) -> None:
        """Route foreign ``(item, count)`` pairs into the owning shards.

        Counter mass is credited to each shard's stream weight so that
        the sharded total rises by exactly the replayed mass (the
        caller accounts the remainder via ``_extra_weight``).  Replay
        may trigger decrement passes on full shards; the resulting
        offsets are accounted per shard, as in Algorithm 5.
        """
        owners = shard_ids(items, self._num_shards, self._seed)
        for index in range(self._num_shards):
            mask = owners == index
            if mask.any():
                self._shards[index].kernel.update_batch_validated(
                    items[mask], counts[mask]
                )

    def _counter_mass(self) -> float:
        """Total live counter mass across shards (a lower bound on N)."""
        return float(
            sum(
                sum(count for _item, count in shard._store.items())
                for shard in self._shards
            )
        )

    def reshard(self, num_shards: int) -> "ShardedFrequentItemsSketch":
        """A new sketch with ``num_shards`` shards holding this summary.

        Built by merging this sketch into a fresh instance with the same
        per-shard ``k``, policy, backend, and seed.  When the shard
        count differs the counters are re-routed under the new partition
        and the error bound carries over conservatively; when it is the
        same the merge is shard-wise and exact.  ``self`` is unchanged.

        Examples
        --------
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> s.update_all([(1, 5.0), (2, 3.0)])
        >>> wider = s.reshard(4)
        >>> wider.num_shards, wider.estimate(1), wider.stream_weight
        (4, 5.0, 8.0)
        """
        fresh = ShardedFrequentItemsSketch(
            self._k,
            num_shards=num_shards,
            policy=self._policy,
            backend=self._backend,
            seed=self._seed,
            max_workers=self._max_workers,
            growth=self.growth,
        )
        return fresh.merge(self)

    def copy(self) -> "ShardedFrequentItemsSketch":
        """An independent deep copy (same configuration and contents).

        Examples
        --------
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> s.update(1, 5.0)
        >>> dup = s.copy()
        >>> dup.update(1, 5.0)
        >>> s.estimate(1), dup.estimate(1)
        (5.0, 10.0)
        """
        dup = ShardedFrequentItemsSketch.__new__(ShardedFrequentItemsSketch)
        dup._k = self._k
        dup._num_shards = self._num_shards
        dup._policy = self._policy
        dup._backend = self._backend
        dup._seed = self._seed
        dup._shards = [shard.copy() for shard in self._shards]
        dup._extra_offset = self._extra_offset
        dup._extra_weight = self._extra_weight
        dup._merged = None
        dup._max_workers = self._max_workers
        dup._executor = None
        return dup

    # -- accounting ------------------------------------------------------------------

    def space_bytes(self) -> int:
        """Modeled memory footprint: the sum over shard tables.

        The merge-on-query view is transient and excluded, matching how
        deployments charge per-worker memory.

        Examples
        --------
        >>> one = ShardedFrequentItemsSketch(64, num_shards=1).space_bytes()
        >>> four = ShardedFrequentItemsSketch(64, num_shards=4).space_bytes()
        >>> four == 4 * one
        True
        """
        return sum(shard.space_bytes() for shard in self._shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedFrequentItemsSketch(k={self._k}, shards={self._num_shards}, "
            f"backend={self._backend!r}, active={len(self)}, "
            f"N={self.stream_weight:g}, error<={self.maximum_error:g})"
        )

    # -- serialization hooks (implemented in repro.core.serialize) --------------------

    def to_bytes(self) -> bytes:
        """Serialize to the framed multi-shard format (see docs/serialization.md).

        Examples
        --------
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> s.update(1, 5.0)
        >>> s.to_bytes()[:4]
        b'RFS1'
        """
        from repro.core.serialize import sharded_to_bytes

        return sharded_to_bytes(self)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ShardedFrequentItemsSketch":
        """Reconstruct a sketch serialized with :meth:`to_bytes`.

        Examples
        --------
        >>> s = ShardedFrequentItemsSketch(8, num_shards=2, seed=5)
        >>> s.update(1, 5.0)
        >>> ShardedFrequentItemsSketch.from_bytes(s.to_bytes()).estimate(1)
        5.0
        """
        from repro.core.serialize import sharded_from_bytes

        return sharded_from_bytes(blob)
