"""Sharded parallel ingestion with merge-on-query.

The scale-out layer: :class:`ShardedFrequentItemsSketch` hash-partitions
items across independent shard sketches, ingests array batches in
parallel through a thread pool, and answers every query from a cached
merged view whose guarantees derive from the summed per-shard error.
:mod:`repro.sharded.partition` holds the seeded item router.
"""

from repro.sharded.partition import partition_salt, shard_ids, shard_of
from repro.sharded.sketch import ShardedFrequentItemsSketch

__all__ = [
    "ShardedFrequentItemsSketch",
    "partition_salt",
    "shard_ids",
    "shard_of",
]
