"""Consistent-hash routing of tenant streams onto worker processes.

The cluster assigns every tenant stream to exactly one worker, and the
assignment must survive resizing gracefully: growing a pool from ``N``
to ``N + 1`` workers should move about ``1/(N + 1)`` of the tenants and
leave every other tenant exactly where it was, so their per-tenant
WAL/snapshot directories stay with their owner.  A modulo hash fails
that test spectacularly (resizing remaps almost everything); a
ketama-style consistent-hash ring passes it by construction.

Each worker contributes ``vnodes`` *virtual nodes* — points on a 64-bit
ring at ``h("w<worker>:<v>")`` — and a tenant is owned by the first
virtual node clockwise from ``h(tenant)``.  Virtual nodes smooth the
load: with ``v`` vnodes per worker the per-worker share concentrates
around ``1/N`` with relative spread ``~1/sqrt(v)``.  Hashing is the
repository's own murmur3 (seeded), so routing is deterministic across
processes and Python versions — the property the cluster's differential
tests (1-worker vs 4-worker byte-identity) lean on.

>>> ring = HashRing(4, vnodes=32, seed=7)
>>> ring.owner("tenant-a") == ring.owner("tenant-a")
True
>>> 0 <= ring.owner("tenant-a") < 4
True
>>> grown = HashRing(5, vnodes=32, seed=7)
>>> names = [f"t{i}" for i in range(200)]
>>> moved = [n for n in names if ring.owner(n) != grown.owner(n)]
>>> all(grown.owner(n) == 4 for n in moved)  # moves only onto the new worker
True
"""

from __future__ import annotations

from bisect import bisect_right

from repro.errors import InvalidParameterError
from repro.hashing.murmur import murmur3_x64_128

#: Domain separation between vnode placement and tenant lookup: both go
#: through the same murmur3, so fold distinct salts into the seed.
_VNODE_SALT = 0x56AD_0DE5
_KEY_SALT = 0x7E4A_4A57


def _hash_key(key: str, seed: int) -> int:
    """The 64-bit ring coordinate of an arbitrary string key."""
    return murmur3_x64_128(key.encode("utf-8"), seed=seed & 0xFFFFFFFF)[0]


class HashRing:
    """A ketama-style consistent-hash ring over integer worker ids.

    Parameters
    ----------
    workers : int
        Number of workers; ids are ``0..workers - 1``.
    vnodes : int, optional
        Virtual nodes per worker.  More vnodes = smoother balance at
        slightly larger lookup tables; 64 keeps the per-worker share
        within ~±15% of uniform for typical pool sizes.
    seed : int, optional
        Hash seed; rings with equal ``(workers, vnodes, seed)`` agree on
        every owner, which is what lets the acceptor and the tests
        recompute routing independently.
    """

    def __init__(self, workers: int, *, vnodes: int = 64, seed: int = 0) -> None:
        if workers < 1:
            raise InvalidParameterError(
                f"a ring needs at least one worker, got {workers}"
            )
        if vnodes < 1:
            raise InvalidParameterError(
                f"vnodes must be positive, got {vnodes}"
            )
        self._vnodes = vnodes
        self._seed = seed
        self._points: list[int] = []
        self._owners: list[int] = []
        self._workers: set[int] = set()
        for worker in range(workers):
            self.add_worker(worker)

    # -- membership ------------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    @property
    def vnodes(self) -> int:
        return self._vnodes

    @property
    def seed(self) -> int:
        return self._seed

    def workers(self) -> list[int]:
        """The member worker ids, ascending."""
        return sorted(self._workers)

    def add_worker(self, worker: int) -> None:
        """Insert ``worker``'s virtual nodes (idempotent per worker id)."""
        if worker in self._workers:
            return
        self._workers.add(worker)
        for vnode in range(self._vnodes):
            point = _hash_key(
                f"w{worker}:{vnode}", self._seed ^ _VNODE_SALT
            )
            index = bisect_right(self._points, point)
            # Collisions on a 64-bit ring are vanishingly rare; resolve
            # deterministically by worker id so equal rings stay equal.
            while (
                index < len(self._points)
                and self._points[index] == point
                and self._owners[index] < worker
            ):
                index += 1
            self._points.insert(index, point)
            self._owners.insert(index, worker)

    def remove_worker(self, worker: int) -> None:
        """Remove ``worker``'s virtual nodes; its keys redistribute to
        the clockwise successors (about ``1/N`` of the keyspace)."""
        if worker not in self._workers:
            return
        self._workers.discard(worker)
        kept = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != worker
        ]
        self._points = [point for point, _owner in kept]
        self._owners = [owner for _point, owner in kept]

    # -- lookup ----------------------------------------------------------------

    def owner(self, key: str) -> int:
        """The worker owning ``key``: first vnode clockwise of its hash."""
        if not self._points:
            raise InvalidParameterError("the ring has no workers")
        point = _hash_key(key, self._seed ^ _KEY_SALT)
        index = bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._owners[index]

    def distribution(self, keys) -> dict[int, int]:
        """Keys per worker — balance diagnostics for tests and STATS."""
        counts: dict[int, int] = {worker: 0 for worker in self._workers}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HashRing(workers={self.num_workers}, vnodes={self._vnodes}, "
            f"seed={self._seed})"
        )
