"""Multi-process tenant-sharded ingest: a worker pool behind one acceptor.

One process cannot outrun its interpreter: the single-loop service tops
out at one core no matter how fast the kernels underneath are.  The
paper's summaries are mergeable (§2.3 — merging preserves the §2.3.1
error guarantees), which licenses the classic scale-out shape:

* a :class:`WorkerPool` forks ``N`` worker processes, each running its
  own :class:`~repro.service.pipeline.IngestPipeline` +
  :class:`~repro.service.snapshot.SnapshotManager` per tenant stream it
  owns, over per-tenant WAL/snapshot directories;
* the asyncio acceptor becomes a thin router: a **tenant registry**
  names the streams, a ketama-style :class:`~repro.service.ring.
  HashRing` maps each tenant substream to its owning worker (growing the
  pool moves ~1/N of tenants), and ingest batches cross the process
  boundary as zero-copy :class:`~repro.service.frames.SharedFrameRing`
  frames (pipe-pickled frames when shared memory is unavailable);
* per-tenant queries route to the owning worker; **global views**
  (``QEST``/``QHH`` over everything, or a sharded tenant's merged view)
  decode worker snapshot blobs and fold them with the existing
  ``merge`` machinery, under a cache invalidated by per-worker
  applied-sequence watermarks.

Determinism is load-bearing, not incidental: the acceptor chunks every
submission at a fixed ``slot_capacity`` *before* routing, each frame is
applied by its worker as exactly one micro-batch (one WAL record), and
sharded tenants split with the same seeded partition the in-process
sharded sketch uses.  A tenant's byte-for-byte state — wire blob and
xoroshiro PRNG words — therefore depends only on the submitted op
sequence, never on how many workers the pool happens to run.  The
differential tests hold a 4-worker cluster to bit-identity with a
1-worker one.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import shutil
import traceback
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro import native
from repro.core.frequent_items import FrequentItemsSketch
from repro.core.merge import merge_linear
from repro.core.row import HeavyHitterRow
from repro.errors import ClusterError, InvalidParameterError
from repro.service import protocol
from repro.service.frames import SharedFrameRing, shared_memory_available
from repro.service.pipeline import IngestPipeline, PipelineConfig
from repro.service.ring import HashRing
from repro.service.snapshot import SnapshotManager, decode_snapshot, encode_snapshot
from repro.sharded.partition import shard_ids, shard_of
from repro.sharded.sketch import _shard_seed
from repro.streams.model import as_batch

#: Sleep between shared-memory ring polls when the peer has nothing for
#: us; at any real throughput the ring is never empty and neither side
#: ever reaches the sleep.
_POLL_INTERVAL = 0.0005

#: How long pool shutdown waits for a worker to exit before killing it.
_JOIN_TIMEOUT = 5.0

_REGISTRY_NAME = "tenants.json"
_REGISTRY_VERSION = 1


def tenant_directory(data_dir: str, substream: str) -> str:
    """Where one tenant substream keeps its WAL/snapshot files.

    Per-*tenant* (not per-worker) directories are what make pool
    resizing safe: when the ring moves a substream to another worker,
    the new owner recovers from the same directory.
    """
    return os.path.join(data_dir, "tenants", substream)


@dataclass(frozen=True)
class TenantSpec:
    """One registered tenant stream: its sketch shape and seeding.

    A tenant with ``shards == 0`` is a single flat sketch (one
    substream, named like the tenant).  With ``shards == M`` the tenant
    is ``M`` substreams ``name#0 .. name#M-1``: items split with the
    seeded partition of :mod:`repro.sharded.partition` and each
    substream seeds its sketch with the same derived per-shard seed the
    in-process :class:`~repro.sharded.sketch.ShardedFrequentItemsSketch`
    would use — so a sharded tenant's substreams can land on different
    workers and still match the single-machine sharded sketch state
    for state.
    """

    name: str
    k: int = 4096
    backend: str = "columnar"
    seed: int = 0
    shards: int = 0

    def __post_init__(self) -> None:
        if not protocol.valid_tenant_name(self.name):
            raise InvalidParameterError(
                f"invalid tenant name {self.name!r}; names match "
                f"{protocol.TENANT_NAME_PATTERN}"
            )
        if self.k < 2:
            raise InvalidParameterError(
                f"tenant {self.name!r}: k must be at least 2, got {self.k}"
            )
        if self.shards < 0:
            raise InvalidParameterError(
                f"tenant {self.name!r}: shards must be >= 0, got {self.shards}"
            )

    def substreams(self) -> list[str]:
        """The substream names, in shard order (one for a flat tenant)."""
        if self.shards <= 0:
            return [self.name]
        return [f"{self.name}#{index}" for index in range(self.shards)]

    def substream_seed(self, index: int) -> int:
        """The sketch seed of substream ``index``."""
        if self.shards <= 0:
            return self.seed
        return _shard_seed(self.seed, index)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "k": self.k,
            "backend": self.backend,
            "seed": self.seed,
            "shards": self.shards,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TenantSpec":
        return cls(
            name=payload["name"],
            k=int(payload["k"]),
            backend=payload["backend"],
            seed=int(payload["seed"]),
            shards=int(payload["shards"]),
        )


@dataclass
class ClusterConfig:
    """Shape of one :class:`WorkerPool`.

    Attributes
    ----------
    num_workers:
        Worker processes to fork.  ``1`` is the degenerate (but valid)
        cluster the differential tests compare against.
    data_dir:
        Root of durability: the tenant registry plus one WAL/snapshot
        directory per tenant substream live under it.  ``None`` disables
        durability entirely (benchmarks).
    frame_transport:
        ``"auto"`` (shared memory when available, else pipes),
        ``"shm"``, or ``"pipe"``.  Both transports ship the exact same
        frames; results are bit-identical.
    ring_slots / slot_capacity:
        Geometry of each worker's frame ring: ``ring_slots`` in-flight
        frames of up to ``slot_capacity`` updates.  The capacity is also
        the acceptor's fixed chunk size — frame boundaries must not
        depend on worker count.  The same bound caps pipe-mode frames
        in flight.
    vnodes / ring_seed:
        Consistent-hash ring shape (see :class:`~repro.service.ring.
        HashRing`).
    snapshot_every_batches:
        Per-tenant checkpoint cadence, in applied frames.
    native:
        Force the compiled ingest kernels on (``True``) or off
        (``False``) in every worker; ``None`` inherits this process's
        effective setting.  Workers get the flag explicitly because a
        spawned child re-reads ``REPRO_NATIVE`` at import and could
        otherwise diverge from the acceptor.
    default_k / default_backend / default_seed / default_shards:
        The spec used for tenants created without explicit parameters
        (including the implicit ``default`` tenant behind the legacy
        single-tenant protocol verbs).
    """

    num_workers: int = 1
    data_dir: Optional[str] = None
    frame_transport: str = "auto"
    ring_slots: int = 64
    slot_capacity: int = 16_384
    vnodes: int = 64
    ring_seed: int = 0
    snapshot_every_batches: int = 256
    native: Optional[bool] = None
    default_k: int = 4096
    default_backend: str = "columnar"
    default_seed: int = 0
    default_shards: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise InvalidParameterError(
                f"num_workers must be positive, got {self.num_workers}"
            )
        if self.frame_transport not in ("auto", "shm", "pipe"):
            raise InvalidParameterError(
                f"frame_transport must be auto, shm, or pipe; "
                f"got {self.frame_transport!r}"
            )
        if self.ring_slots < 1 or self.slot_capacity < 1:
            raise InvalidParameterError(
                f"ring geometry must be positive, got ring_slots="
                f"{self.ring_slots}, slot_capacity={self.slot_capacity}"
            )
        if self.slot_capacity > protocol.MAX_BIN_ITEMS:
            raise InvalidParameterError(
                f"slot_capacity {self.slot_capacity} exceeds the protocol "
                f"frame cap {protocol.MAX_BIN_ITEMS}"
            )


# ---------------------------------------------------------------------------
# The worker process
# ---------------------------------------------------------------------------


class _WorkerRuntime:
    """Everything a worker process does, on its own asyncio loop.

    Frames arrive either on the worker's shared-memory ring or as
    pickled pipe messages; control RPCs always arrive on the pipe.
    Every frame is applied as exactly one pipeline micro-batch
    (``max_batch_items=1`` makes each submit a WAL record of its own),
    and the ring slot is released — or the pipe watermark sent — only
    after the apply, so the acceptor's watermark is an *applied*
    watermark.  Query handlers consume all published frames first:
    anything the acceptor shipped before asking is visible in the
    answer (read-your-writes).
    """

    def __init__(
        self,
        worker_id: int,
        conn,
        ring_name: Optional[str],
        data_dir: Optional[str],
        snapshot_every: int,
    ) -> None:
        self._worker_id = worker_id
        self._conn = conn
        self._ring = (
            SharedFrameRing.attach(ring_name) if ring_name is not None else None
        )
        self._data_dir = data_dir
        self._snapshot_every = snapshot_every
        self._pipelines: dict[int, IngestPipeline] = {}
        self._running = True
        self._final_snapshot = True
        self._wake: Optional[asyncio.Event] = None

    async def run(self) -> None:
        loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        loop.add_reader(self._conn.fileno(), self._wake.set)
        try:
            while self._running:
                progressed = False
                while self._running and self._conn.poll():
                    progressed = True
                    await self._handle_message(self._conn.recv())
                if not self._running:
                    break
                if await self._consume_frames():
                    progressed = True
                if progressed:
                    continue
                self._wake.clear()
                if self._conn.poll():
                    continue
                if self._ring is None:
                    await self._wake.wait()
                else:
                    # Ring writes carry no wakeup; poll at a cadence that
                    # is invisible under load (the ring is never empty
                    # then) and cheap when idle.
                    try:
                        await asyncio.wait_for(self._wake.wait(), _POLL_INTERVAL)
                    except asyncio.TimeoutError:
                        pass
        finally:
            loop.remove_reader(self._conn.fileno())
            for pipeline in self._pipelines.values():
                await pipeline.stop(final_snapshot=self._final_snapshot)
            self._pipelines.clear()
            if self._ring is not None:
                self._ring.close()

    # -- ingest ----------------------------------------------------------------

    async def _consume_frames(self) -> bool:
        """Apply every published ring frame; True when any was applied."""
        if self._ring is None:
            return False
        progressed = False
        while True:
            frame = self._ring.peek()
            if frame is None:
                return progressed
            seq, tid, items, weights = frame
            await self._apply_frame(tid, items, weights)
            self._ring.commit(seq)
            progressed = True

    async def _apply_frame(self, tid: int, items, weights) -> None:
        pipeline = self._pipelines.get(tid)
        if pipeline is None:
            raise ClusterError(
                f"worker {self._worker_id} got a frame for unknown "
                f"tenant id {tid}"
            )
        # One frame = one micro-batch = one WAL record; awaiting the
        # apply before releasing the slot is what keeps the zero-copy
        # views valid and the consumed watermark honest.
        await pipeline.submit(items, weights, wait_applied=True)

    # -- control plane ---------------------------------------------------------

    async def _handle_message(self, message) -> None:
        kind = message[0]
        if kind == "f":  # pipe-transport frame
            _kind, frame_seq, tid, items, weights = message
            await self._apply_frame(tid, items, weights)
            self._conn.send(("w", frame_seq))
            return
        if kind != "c":
            raise ClusterError(
                f"worker {self._worker_id} got unknown message {kind!r}"
            )
        _kind, req_id, op, payload = message
        try:
            result = await self._handle_rpc(op, payload)
        except Exception as exc:  # reply, don't die: the acceptor decides
            self._conn.send(("e", req_id, type(exc).__name__, str(exc)))
            return
        self._conn.send(("r", req_id, result))

    async def _handle_rpc(self, op: str, payload) -> Any:
        if op == "tcreate":
            return await self._tcreate(payload)
        if op == "tdrop":
            return await self._tdrop(payload["tid"])
        if op == "drain":
            await self._consume_frames()
            return {
                tid: pipeline.applied_seq
                for tid, pipeline in self._pipelines.items()
            }
        if op == "query":
            await self._consume_frames()
            return self._query(payload)
        if op == "blobs":
            await self._consume_frames()
            blobs = {}
            for tid in payload["tids"]:
                pipeline = self._required(tid)
                blobs[tid] = encode_snapshot(
                    pipeline.sketch, pipeline.applied_seq
                )
            return blobs
        if op == "snapshot":
            await self._consume_frames()
            for pipeline in self._pipelines.values():
                pipeline.snapshot_now()
            return {
                tid: pipeline.applied_seq
                for tid, pipeline in self._pipelines.items()
            }
        if op == "stop":
            await self._consume_frames()
            self._final_snapshot = bool(payload["final_snapshot"])
            self._running = False
            return None
        raise ClusterError(f"unknown cluster RPC {op!r}")

    def _required(self, tid: int) -> IngestPipeline:
        pipeline = self._pipelines.get(tid)
        if pipeline is None:
            raise ClusterError(
                f"worker {self._worker_id} does not own tenant id {tid}"
            )
        return pipeline

    async def _tcreate(self, payload: dict) -> int:
        tid = payload["tid"]
        existing = self._pipelines.get(tid)
        if existing is not None:
            return existing.applied_seq
        config = PipelineConfig(
            # One submitted frame per micro-batch: batch boundaries are
            # the acceptor's fixed-size chunks, never a timing accident.
            max_batch_items=1,
            flush_interval=3600.0,
            max_pending_items=1 << 62,
            snapshot_every_batches=payload["snapshot_every"],
        )
        snapshots = None
        if self._data_dir is not None:
            directory = tenant_directory(self._data_dir, payload["name"])
            snapshots = SnapshotManager(directory)
            if snapshots.latest_snapshot_seq() is not None:
                pipeline = IngestPipeline.recover(snapshots, config=config)
                await pipeline.start()
                self._pipelines[tid] = pipeline
                return pipeline.applied_seq
        sketch = FrequentItemsSketch(
            payload["k"], backend=payload["backend"], seed=payload["seed"]
        )
        pipeline = IngestPipeline(sketch, config=config, snapshots=snapshots)
        await pipeline.start()
        self._pipelines[tid] = pipeline
        return pipeline.applied_seq

    async def _tdrop(self, tid: int) -> None:
        pipeline = self._pipelines.pop(tid, None)
        if pipeline is not None:
            # No farewell checkpoint: the pool deletes the directory.
            await pipeline.stop(final_snapshot=False)

    def _query(self, payload: dict):
        pipeline = self._required(payload["tid"])
        kind = payload["kind"]
        if kind == "est":
            return pipeline.estimate(payload["item"])
        if kind == "bounds":
            item = payload["item"]
            return (
                pipeline.lower_bound(item),
                pipeline.estimate(item),
                pipeline.upper_bound(item),
            )
        if kind == "hh":
            return [tuple(row) for row in pipeline.heavy_hitters(payload["phi"])]
        if kind == "seq":
            return pipeline.applied_seq
        if kind == "stats":
            sketch = pipeline.sketch
            return {
                "applied_seq": pipeline.applied_seq,
                "stream_weight": sketch.stream_weight,
                "num_active": getattr(sketch, "num_active", None),
                "maximum_error": sketch.maximum_error,
                **pipeline.stats.as_dict(),
            }
        raise ClusterError(f"unknown query kind {kind!r}")


def _worker_process_main(
    worker_id: int,
    conn,
    ring_name: Optional[str],
    data_dir: Optional[str],
    native_flag: bool,
    snapshot_every: int,
) -> None:
    """Entry point of one worker process (fork or spawn)."""
    try:
        # A forked child inherits the parent thread's "a loop is running"
        # marker; clear it or asyncio.run refuses to start.
        asyncio.events._set_running_loop(None)
    except AttributeError:  # pragma: no cover - future-python guard
        pass
    runtime = _WorkerRuntime(worker_id, conn, ring_name, data_dir, snapshot_every)
    try:
        # The explicit flag (not the env var) decides the ingest path, so
        # acceptor and workers agree even across a spawn boundary.
        with native.use_native(native_flag):
            asyncio.run(runtime.run())
    except (KeyboardInterrupt, BrokenPipeError):  # pragma: no cover
        pass
    except Exception:  # pragma: no cover - surfaced via the dead pipe
        traceback.print_exc()
        raise
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# The acceptor side
# ---------------------------------------------------------------------------


@dataclass
class _WorkerHandle:
    """Acceptor-side state for one worker process."""

    worker_id: int
    process: multiprocessing.process.BaseProcess
    conn: Any
    ring: Optional[SharedFrameRing]
    alive: bool = True
    next_req: int = 0
    pending: dict = field(default_factory=dict)
    sent_frames: int = 0
    acked_frames: int = 0
    space_event: asyncio.Event = field(default_factory=asyncio.Event)
    send_lock: asyncio.Lock = field(default_factory=asyncio.Lock)


class WorkerPool:
    """N worker processes, one consistent-hash ring, one tenant registry.

    The pool is the cluster's whole control plane: it forks the workers,
    owns the shared-memory rings, persists the registry, routes frames
    and queries, and assembles merged global views.  It must be driven
    from a single asyncio loop (the acceptor's).

    Examples
    --------
    >>> import asyncio, numpy as np
    >>> async def demo():
    ...     async with WorkerPool(ClusterConfig(num_workers=2)) as pool:
    ...         await pool.create_tenant("clicks")
    ...         await pool.submit("clicks", np.array([7, 7, 8], dtype=np.uint64))
    ...         await pool.drain()
    ...         return await pool.estimate("clicks", 7)
    >>> asyncio.run(demo())
    2.0
    """

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self._config = config if config is not None else ClusterConfig()
        self._ring = HashRing(
            self._config.num_workers,
            vnodes=self._config.vnodes,
            seed=self._config.ring_seed,
        )
        self._workers: list[_WorkerHandle] = []
        self._specs: dict[str, TenantSpec] = {}
        self._tids: dict[str, int] = {}
        self._owners: dict[str, int] = {}
        self._next_tid = 0
        self._transport = "unresolved"
        self._started = False
        self._view_cache: dict[str, tuple[tuple, FrequentItemsSketch]] = {}

    # -- introspection ---------------------------------------------------------

    @property
    def config(self) -> ClusterConfig:
        return self._config

    @property
    def num_workers(self) -> int:
        return self._config.num_workers

    @property
    def frame_transport(self) -> str:
        """The resolved transport (``shm`` or ``pipe``) after start."""
        return self._transport

    @property
    def ring(self) -> HashRing:
        return self._ring

    def list_tenants(self) -> list[TenantSpec]:
        """Registered tenants, in creation order."""
        return list(self._specs.values())

    def owner_of(self, substream: str) -> int:
        """The worker id owning one substream (routing diagnostics)."""
        return self._ring.owner(substream)

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "WorkerPool":
        """Fork the workers, then re-register any persisted tenants."""
        if self._started:
            return self
        config = self._config
        if config.frame_transport == "shm" and not shared_memory_available():
            raise ClusterError(
                "frame_transport='shm' requested but multiprocessing shared "
                "memory is unavailable; use 'pipe' or 'auto'"
            )
        self._transport = (
            "pipe"
            if config.frame_transport == "pipe" or not shared_memory_available()
            else "shm"
        )
        native_flag = (
            config.native if config.native is not None else native.enabled()
        )
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        loop = asyncio.get_running_loop()
        for worker_id in range(config.num_workers):
            ring = (
                SharedFrameRing.create(config.ring_slots, config.slot_capacity)
                if self._transport == "shm"
                else None
            )
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_process_main,
                args=(
                    worker_id,
                    child_conn,
                    ring.name if ring is not None else None,
                    config.data_dir,
                    native_flag,
                    config.snapshot_every_batches,
                ),
                name=f"repro-cluster-worker-{worker_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            handle = _WorkerHandle(worker_id, process, parent_conn, ring)
            loop.add_reader(
                parent_conn.fileno(), self._on_readable, handle
            )
            self._workers.append(handle)
        self._started = True
        for spec in self._load_registry():
            await self._register(spec, persist=False)
        return self

    async def stop(self, *, final_snapshot: bool = True) -> None:
        """Checkpoint (optionally), stop every worker, release the rings."""
        if not self._started:
            return
        for handle in self._workers:
            if not handle.alive:
                continue
            try:
                await self._rpc(handle, "stop", {"final_snapshot": final_snapshot})
            except ClusterError:
                pass  # a worker that died mid-stop is already stopped
        loop = asyncio.get_running_loop()
        for handle in self._workers:
            handle.process.join(timeout=_JOIN_TIMEOUT)
            if handle.process.is_alive():  # pragma: no cover - wedged worker
                handle.process.kill()
                handle.process.join(timeout=_JOIN_TIMEOUT)
            if handle.alive:
                loop.remove_reader(handle.conn.fileno())
                handle.alive = False
            handle.conn.close()
            if handle.ring is not None:
                handle.ring.close()
        self._workers.clear()
        self._started = False
        self._view_cache.clear()

    async def __aenter__(self) -> "WorkerPool":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL one worker (fault-injection hook for the tests)."""
        handle = self._workers[worker_id]
        handle.process.kill()
        handle.process.join(timeout=_JOIN_TIMEOUT)

    # -- plumbing --------------------------------------------------------------

    def _on_readable(self, handle: _WorkerHandle) -> None:
        try:
            while handle.conn.poll():
                self._on_message(handle, handle.conn.recv())
        except (EOFError, OSError):
            self._mark_dead(handle)

    def _on_message(self, handle: _WorkerHandle, message) -> None:
        kind = message[0]
        if kind == "w":  # pipe-transport applied watermark
            handle.acked_frames = message[1]
            handle.space_event.set()
            return
        if kind == "r":
            future = handle.pending.pop(message[1], None)
            if future is not None and not future.done():
                future.set_result(message[2])
            return
        if kind == "e":
            future = handle.pending.pop(message[1], None)
            if future is not None and not future.done():
                future.set_exception(
                    ClusterError(
                        f"worker {handle.worker_id} {message[2]}: {message[3]}"
                    )
                )
            return

    def _mark_dead(self, handle: _WorkerHandle) -> None:
        if not handle.alive:
            return
        handle.alive = False
        asyncio.get_running_loop().remove_reader(handle.conn.fileno())
        failure = ClusterError(
            f"worker {handle.worker_id} died; restart the pool over the same "
            "data_dir to recover its tenants"
        )
        for future in handle.pending.values():
            if not future.done():
                future.set_exception(failure)
        handle.pending.clear()
        handle.space_event.set()  # wake frame writers so they can fail

    def _check_alive(self, handle: _WorkerHandle) -> None:
        if not self._started:
            raise ClusterError("the worker pool is not running")
        if not handle.alive:
            raise ClusterError(
                f"worker {handle.worker_id} died; restart the pool over the "
                "same data_dir to recover its tenants"
            )

    async def _send(self, handle: _WorkerHandle, message) -> None:
        """Pickle one message to a worker without blocking the loop.

        ``Connection.send`` blocks when the pipe buffer is full; pushing
        it onto a thread keeps the acceptor responsive (its reader keeps
        draining worker replies, which is what guarantees the worker's
        own blocking sends always make progress — no deadlock).
        """
        async with handle.send_lock:
            self._check_alive(handle)
            try:
                await asyncio.get_running_loop().run_in_executor(
                    None, handle.conn.send, message
                )
            except (BrokenPipeError, OSError) as exc:
                self._mark_dead(handle)
                raise ClusterError(
                    f"worker {handle.worker_id} pipe closed mid-send"
                ) from exc

    async def _rpc(self, handle: _WorkerHandle, op: str, payload=None):
        self._check_alive(handle)
        req_id = handle.next_req
        handle.next_req += 1
        future = asyncio.get_running_loop().create_future()
        handle.pending[req_id] = future
        await self._send(handle, ("c", req_id, op, payload))
        return await future

    # -- tenant registry -------------------------------------------------------

    def _registry_path(self) -> Optional[str]:
        if self._config.data_dir is None:
            return None
        return os.path.join(self._config.data_dir, _REGISTRY_NAME)

    def _load_registry(self) -> list[TenantSpec]:
        path = self._registry_path()
        if path is None or not os.path.exists(path):
            return []
        with open(path, "r", encoding="ascii") as fh:
            payload = json.load(fh)
        if payload.get("version") != _REGISTRY_VERSION:
            raise ClusterError(
                f"unsupported tenant registry version in {path!r}"
            )
        return [TenantSpec.from_dict(entry) for entry in payload["tenants"]]

    def _save_registry(self) -> None:
        path = self._registry_path()
        if path is None:
            return
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        payload = {
            "version": _REGISTRY_VERSION,
            "tenants": [spec.as_dict() for spec in self._specs.values()],
        }
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="ascii") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    def _spec_of(self, tenant: str) -> TenantSpec:
        spec = self._specs.get(tenant)
        if spec is None:
            raise ClusterError(f"unknown tenant {tenant!r}; TCREATE it first")
        return spec

    async def _register(self, spec: TenantSpec, *, persist: bool) -> None:
        for index, substream in enumerate(spec.substreams()):
            tid = self._next_tid
            self._next_tid += 1
            owner = self._ring.owner(substream)
            self._tids[substream] = tid
            self._owners[substream] = owner
            await self._rpc(
                self._workers[owner],
                "tcreate",
                {
                    "tid": tid,
                    "name": substream,
                    "k": spec.k,
                    "backend": spec.backend,
                    "seed": spec.substream_seed(index),
                    "snapshot_every": self._config.snapshot_every_batches,
                },
            )
        self._specs[spec.name] = spec
        self._view_cache.clear()
        if persist:
            self._save_registry()

    async def create_tenant(
        self,
        name: str,
        *,
        k: Optional[int] = None,
        backend: Optional[str] = None,
        seed: Optional[int] = None,
        shards: Optional[int] = None,
    ) -> TenantSpec:
        """Register one tenant and create its sketches on the owners.

        Re-creating an existing tenant with the identical spec is a
        no-op returning the registered spec; a conflicting spec raises.
        """
        config = self._config
        spec = TenantSpec(
            name=name,
            k=config.default_k if k is None else k,
            backend=config.default_backend if backend is None else backend,
            seed=config.default_seed if seed is None else seed,
            shards=config.default_shards if shards is None else shards,
        )
        existing = self._specs.get(name)
        if existing is not None:
            if existing != spec:
                raise InvalidParameterError(
                    f"tenant {name!r} already exists with a different spec; "
                    "TDROP it first"
                )
            return existing
        await self._register(spec, persist=True)
        return spec

    async def ensure_tenant(self, name: str) -> TenantSpec:
        """The spec of ``name``, creating it with defaults when missing."""
        existing = self._specs.get(name)
        if existing is not None:
            return existing
        return await self.create_tenant(name)

    async def drop_tenant(self, name: str) -> None:
        """Unregister a tenant, stop its sketches, delete its directories."""
        spec = self._spec_of(name)
        for substream in spec.substreams():
            tid = self._tids.pop(substream)
            owner = self._owners.pop(substream)
            handle = self._workers[owner]
            if handle.alive:
                await self._rpc(handle, "tdrop", {"tid": tid})
            if self._config.data_dir is not None:
                shutil.rmtree(
                    tenant_directory(self._config.data_dir, substream),
                    ignore_errors=True,
                )
        del self._specs[name]
        self._view_cache.clear()
        self._save_registry()

    # -- ingest ----------------------------------------------------------------

    async def submit(self, tenant: str, items, weights=None) -> int:
        """Route one batch of weighted updates to the owning workers.

        The batch is validated once (exactly like ``update_batch``),
        split by the tenant's seeded partition when sharded, and shipped
        in fixed ``slot_capacity`` chunks — the chunking, and therefore
        every micro-batch boundary, is independent of worker count.
        Returns the number of updates shipped.
        """
        spec = self._spec_of(tenant)
        items, weights = as_batch(items, weights)
        if items.shape[0] == 0:
            return 0
        if spec.shards > 0:
            owners = shard_ids(items, spec.shards, spec.seed)
            for index, substream in enumerate(spec.substreams()):
                mask = owners == index
                if mask.any():
                    await self._ship(substream, items[mask], weights[mask])
        else:
            await self._ship(spec.name, items, weights)
        return int(items.shape[0])

    async def update(self, tenant: str, item: int, weight: float = 1.0) -> None:
        """Scalar convenience wrapper over :meth:`submit`."""
        await self.submit(
            tenant,
            np.array([item], dtype=np.uint64),
            np.array([weight], dtype=np.float64),
        )

    async def _ship(self, substream: str, items, weights) -> None:
        tid = self._tids[substream]
        handle = self._workers[self._owners[substream]]
        capacity = self._config.slot_capacity
        for lo in range(0, items.shape[0], capacity):
            part_items = items[lo : lo + capacity]
            part_weights = weights[lo : lo + capacity]
            if handle.ring is not None:
                while not handle.ring.has_space():
                    # The wait for a released slot IS the cross-process
                    # backpressure; a dead worker never releases one, so
                    # check liveness each turn instead of spinning forever.
                    self._check_alive(handle)
                    await asyncio.sleep(_POLL_INTERVAL)
                self._check_alive(handle)
                handle.ring.write(tid, part_items, part_weights)
            else:
                while (
                    handle.sent_frames - handle.acked_frames
                    >= self._config.ring_slots
                ):
                    self._check_alive(handle)
                    handle.space_event.clear()
                    if (
                        handle.sent_frames - handle.acked_frames
                        < self._config.ring_slots
                    ):
                        break  # the ack landed between check and clear
                    try:
                        await asyncio.wait_for(
                            handle.space_event.wait(), timeout=0.1
                        )
                    except asyncio.TimeoutError:
                        pass
                handle.sent_frames += 1
                await self._send(
                    handle,
                    ("f", handle.sent_frames, tid, part_items, part_weights),
                )

    async def drain(self) -> dict[str, int]:
        """Await until every shipped frame is applied on its worker.

        Returns the per-substream applied sequence (frames applied since
        the substream was created) — the watermark vector the merged-view
        cache is keyed by.
        """
        by_tid = {tid: substream for substream, tid in self._tids.items()}
        seqs: dict[str, int] = {}
        for handle in self._workers:
            if not handle.alive:
                continue
            if handle.ring is not None:
                while handle.ring.consumed_seq() < handle.ring.produced_seq():
                    self._check_alive(handle)
                    await asyncio.sleep(_POLL_INTERVAL)
            for tid, seq in (await self._rpc(handle, "drain")).items():
                seqs[by_tid[tid]] = seq
        return seqs

    # -- per-tenant queries ----------------------------------------------------

    def _route_item(self, spec: TenantSpec, item: int) -> str:
        """The substream owning ``item`` — disjoint partition means one
        substream holds every occurrence, so point queries never merge."""
        if spec.shards <= 0:
            return spec.name
        return f"{spec.name}#{shard_of(int(item), spec.shards, spec.seed)}"

    async def _query(self, substream: str, kind: str, **payload):
        handle = self._workers[self._owners[substream]]
        return await self._rpc(
            handle, "query", {"tid": self._tids[substream], "kind": kind, **payload}
        )

    async def estimate(self, tenant: str, item: int) -> float:
        spec = self._spec_of(tenant)
        return await self._query(
            self._route_item(spec, item), "est", item=int(item)
        )

    async def bounds(self, tenant: str, item: int) -> tuple[float, float, float]:
        """``(lower, estimate, upper)`` for one item of one tenant."""
        spec = self._spec_of(tenant)
        result = await self._query(
            self._route_item(spec, item), "bounds", item=int(item)
        )
        return tuple(result)

    async def heavy_hitters(
        self, tenant: str, phi: float
    ) -> tuple[int, list[HeavyHitterRow]]:
        """``(watermark, rows)`` — the tenant's merged heavy hitters.

        For a sharded tenant this folds the owning workers' snapshot
        blobs through the merged-view cache; a flat tenant is the
        single-blob special case of the same path.
        """
        merged, stamp = await self._merged_view(tenant)
        assert merged is not None  # a registered tenant has >= 1 substream
        return sum(stamp), merged.heavy_hitters(phi)

    async def tenant_stats(self, tenant: str) -> dict[str, dict]:
        """Per-substream pipeline/sketch counters of one tenant."""
        spec = self._spec_of(tenant)
        stats = {}
        for substream in spec.substreams():
            stats[substream] = await self._query(substream, "stats")
        return stats

    async def tenant_blobs(self, tenant: str) -> dict[str, bytes]:
        """Per-substream RSNP checkpoint blobs (sketch + PRNG states).

        This is the byte-exact comparison format the differential tests
        use: two clusters agree on a tenant iff these blobs agree.
        """
        spec = self._spec_of(tenant)
        by_worker: dict[int, list[int]] = {}
        for substream in spec.substreams():
            by_worker.setdefault(self._owners[substream], []).append(
                self._tids[substream]
            )
        by_tid = {self._tids[sub]: sub for sub in spec.substreams()}
        blobs: dict[str, bytes] = {}
        for worker_id, tids in by_worker.items():
            result = await self._rpc(
                self._workers[worker_id], "blobs", {"tids": tids}
            )
            for tid, blob in result.items():
                blobs[by_tid[tid]] = blob
        return blobs

    # -- global views ----------------------------------------------------------

    async def _merged_view(
        self, tenant: Optional[str]
    ) -> tuple[Optional[FrequentItemsSketch], tuple]:
        """The merged sketch over one tenant (or all of them) + stamp.

        The merge itself is the paper's Algorithm 5 fold; the cache is
        keyed by the substreams' applied-sequence watermark vector, so a
        quiet cluster answers repeated global queries without moving a
        single blob.  Merge order is sorted substream name — stable
        under any worker count, which the differential tests rely on.
        """
        if tenant is None:
            substreams = [
                sub for spec in self._specs.values() for sub in spec.substreams()
            ]
            key = "\x00*"  # NUL is not a valid tenant-name character
        else:
            substreams = self._spec_of(tenant).substreams()
            key = tenant
        if not substreams:
            return None, ()
        seqs = await self.drain()
        ordered = sorted(substreams)
        stamp = tuple(seqs[sub] for sub in ordered)
        cached = self._view_cache.get(key)
        if cached is not None and cached[0] == stamp:
            return cached[1], stamp
        by_worker: dict[int, list[int]] = {}
        for sub in ordered:
            by_worker.setdefault(self._owners[sub], []).append(self._tids[sub])
        blob_by_tid: dict[int, bytes] = {}
        for worker_id, tids in by_worker.items():
            blob_by_tid.update(
                await self._rpc(self._workers[worker_id], "blobs", {"tids": tids})
            )
        sketches = [
            decode_snapshot(blob_by_tid[self._tids[sub]])[0] for sub in ordered
        ]
        merged = merge_linear(sketches)
        self._view_cache[key] = (stamp, merged)
        return merged, stamp

    async def global_estimate(self, item: int) -> tuple[int, float]:
        """``(watermark, estimate)`` of one item across every tenant."""
        merged, stamp = await self._merged_view(None)
        if merged is None:
            return 0, 0.0
        return sum(stamp), merged.estimate(int(item))

    async def global_heavy_hitters(
        self, phi: float
    ) -> tuple[int, list[HeavyHitterRow]]:
        """``(watermark, rows)`` of the all-tenants merged summary."""
        merged, stamp = await self._merged_view(None)
        if merged is None:
            return 0, []
        return sum(stamp), merged.heavy_hitters(phi)

    # -- maintenance -----------------------------------------------------------

    async def snapshot_all(self) -> dict[str, int]:
        """Force a checkpoint of every tenant; returns applied seqs."""
        by_tid = {tid: substream for substream, tid in self._tids.items()}
        seqs: dict[str, int] = {}
        for handle in self._workers:
            if not handle.alive:
                continue
            for tid, seq in (await self._rpc(handle, "snapshot")).items():
                seqs[by_tid[tid]] = seq
        return seqs

    def stats(self) -> dict:
        """Cluster topology + per-worker watermarks, without any RPC."""
        workers = []
        for handle in self._workers:
            entry: dict[str, Any] = {
                "worker": handle.worker_id,
                "alive": handle.alive,
                "pid": handle.process.pid,
            }
            if handle.ring is not None:
                entry["produced_seq"] = handle.ring.produced_seq()
                entry["applied_seq"] = handle.ring.consumed_seq()
            else:
                entry["produced_seq"] = handle.sent_frames
                entry["applied_seq"] = handle.acked_frames
            workers.append(entry)
        return {
            "num_workers": self._config.num_workers,
            "frame_transport": self._transport,
            "routing": "ketama",
            "vnodes": self._config.vnodes,
            "slot_capacity": self._config.slot_capacity,
            "tenants": [spec.as_dict() for spec in self._specs.values()],
            "substream_owners": dict(sorted(self._owners.items())),
            "workers": workers,
        }


# ---------------------------------------------------------------------------
# The TCP front end
# ---------------------------------------------------------------------------


class ClusterServer:
    """Serve a :class:`WorkerPool` over the tenant-aware line protocol.

    Speaks every ``T``-prefixed tenant verb plus the global views (see
    the :mod:`repro.service.protocol` table); the legacy single-tenant
    verbs (``UPDATE``/``BATCH``/``BIN``/``EST``/``BOUNDS``/``HH``) keep
    working against an implicitly created ``default`` tenant, so any
    existing client can point at a cluster unchanged.  Start the pool
    *before* the server: worker processes must not inherit the listening
    socket.
    """

    def __init__(
        self, pool: WorkerPool, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._pool = pool
        self._host = host
        self._requested_port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set[asyncio.StreamWriter] = set()

    @property
    def pool(self) -> WorkerPool:
        return self._pool

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "ClusterServer":
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle, self._host, self._requested_port,
                limit=protocol.MAX_LINE_BYTES,
            )
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            for writer in list(self._connections):
                writer.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "ClusterServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(b"ERR request line too long\n")
                    break
                if not line:
                    break
                reply, close = await self._dispatch(line, reader)
                writer.write(reply)
                await writer.drain()
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            pass  # loop teardown; the connection is going away regardless
        finally:
            self._connections.discard(writer)
            try:
                await writer.drain()
            except (
                ConnectionResetError, BrokenPipeError, asyncio.CancelledError
            ):  # pragma: no cover
                pass
            writer.close()

    @staticmethod
    def _hh_reply(seq: int, rows: list) -> bytes:
        body = " ".join(f"{row[0]}:{row[1]:.17g}" for row in rows)
        sep = " " if body else ""
        return f"OK {seq} {len(rows)}{sep}{body}\n".encode("ascii")

    async def _read_bin(
        self, reader: asyncio.StreamReader, count_text: str
    ) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """Read one BIN payload; ``None`` means an unrecoverable count."""
        try:
            count = int(count_text)
        except ValueError:
            return None
        if not 0 < count <= protocol.MAX_BIN_ITEMS:
            return None
        payload = await reader.readexactly(16 * count)
        return protocol.decode_bin_payload(payload, count)

    async def _dispatch(
        self, line: bytes, reader: asyncio.StreamReader
    ) -> tuple[bytes, bool]:
        pool = self._pool
        try:
            text = line.decode("ascii").strip()
        except UnicodeDecodeError:
            return b"ERR request is not ASCII\n", False
        if not text:
            return b"ERR empty request\n", False
        command, *args = text.split()
        command = command.upper()
        try:
            if command == "PING":
                return b"PONG\n", False
            if command == "QUIT":
                return b"BYE\n", True
            if command == "TCREATE":
                if not 1 <= len(args) <= 5:
                    return (
                        b"ERR usage: TCREATE <name> [k] [backend] [seed] "
                        b"[shards] (- = server default)\n",
                        False,
                    )

                def _opt(index: int) -> Optional[str]:
                    if index >= len(args) or args[index] == "-":
                        return None
                    return args[index]

                k_text, backend, seed_text, shards_text = (
                    _opt(1), _opt(2), _opt(3), _opt(4)
                )
                spec = await pool.create_tenant(
                    args[0],
                    k=int(k_text) if k_text is not None else None,
                    backend=backend,
                    seed=int(seed_text) if seed_text is not None else None,
                    shards=int(shards_text) if shards_text is not None else None,
                )
                return f"OK {json.dumps(spec.as_dict())}\n".encode("ascii"), False
            if command == "TDROP":
                if len(args) != 1:
                    return b"ERR usage: TDROP <name>\n", False
                await pool.drop_tenant(args[0])
                return b"OK\n", False
            if command == "TLIST":
                specs = [spec.as_dict() for spec in pool.list_tenants()]
                return f"OK {json.dumps(specs)}\n".encode("ascii"), False
            if command == "TBIN":
                if len(args) != 2:
                    return b"ERR usage: TBIN <name> <count>; closing\n", True
                decoded = await self._read_bin(reader, args[1])
                if decoded is None:
                    # The count is untrusted, the payload may be in
                    # flight: resynchronizing is impossible, close.
                    return (
                        f"ERR TBIN count must be in "
                        f"[1, {protocol.MAX_BIN_ITEMS}]; closing\n"
                        .encode("ascii"),
                        True,
                    )
                try:
                    count = await pool.submit(args[0], *decoded)
                except (ClusterError, ValueError) as exc:
                    # Payload fully consumed: the stream is in sync.
                    return f"ERR {exc}\n".encode("ascii", "replace"), False
                return f"OK {count}\n".encode("ascii"), False
            if command == "TUPDATE":
                if len(args) not in (2, 3):
                    return b"ERR usage: TUPDATE <name> <item> [weight]\n", False
                weight = float(args[2]) if len(args) == 3 else 1.0
                await pool.update(args[0], int(args[1]), weight)
                return b"OK\n", False
            if command == "TEST":
                if len(args) != 2:
                    return b"ERR usage: TEST <name> <item>\n", False
                estimate = await pool.estimate(args[0], int(args[1]))
                return f"OK {estimate:.17g}\n".encode("ascii"), False
            if command == "TBOUNDS":
                if len(args) != 2:
                    return b"ERR usage: TBOUNDS <name> <item>\n", False
                lower, estimate, upper = await pool.bounds(args[0], int(args[1]))
                return (
                    f"OK {lower:.17g} {estimate:.17g} {upper:.17g}\n"
                    .encode("ascii"),
                    False,
                )
            if command == "THH":
                if len(args) != 2:
                    return b"ERR usage: THH <name> <phi>\n", False
                seq, rows = await pool.heavy_hitters(args[0], float(args[1]))
                return self._hh_reply(seq, rows), False
            if command == "QEST":
                if len(args) != 1:
                    return b"ERR usage: QEST <item>\n", False
                seq, estimate = await pool.global_estimate(int(args[0]))
                return f"OK {seq} {estimate:.17g}\n".encode("ascii"), False
            if command == "QHH":
                if len(args) != 1:
                    return b"ERR usage: QHH <phi>\n", False
                seq, rows = await pool.global_heavy_hitters(float(args[0]))
                return self._hh_reply(seq, rows), False
            if command == "UPDATE":
                if len(args) not in (1, 2):
                    return b"ERR usage: UPDATE <item> [weight]\n", False
                await pool.ensure_tenant("default")
                weight = float(args[1]) if len(args) == 2 else 1.0
                await pool.update("default", int(args[0]), weight)
                return b"OK\n", False
            if command == "BATCH":
                if not args:
                    return b"ERR usage: BATCH <item>:<weight> ...\n", False
                items, weights = protocol.parse_batch_args(args)
                await pool.ensure_tenant("default")
                count = await pool.submit("default", items, weights)
                return f"OK {count}\n".encode("ascii"), False
            if command == "BIN":
                if len(args) != 1:
                    return b"ERR usage: BIN <count>; closing\n", True
                decoded = await self._read_bin(reader, args[0])
                if decoded is None:
                    return (
                        f"ERR BIN count must be in "
                        f"[1, {protocol.MAX_BIN_ITEMS}]; closing\n"
                        .encode("ascii"),
                        True,
                    )
                await pool.ensure_tenant("default")
                try:
                    count = await pool.submit("default", *decoded)
                except (ClusterError, ValueError) as exc:
                    return f"ERR {exc}\n".encode("ascii", "replace"), False
                return f"OK {count}\n".encode("ascii"), False
            if command == "EST":
                if len(args) != 1:
                    return b"ERR usage: EST <item>\n", False
                await pool.ensure_tenant("default")
                estimate = await pool.estimate("default", int(args[0]))
                return f"OK {estimate:.17g}\n".encode("ascii"), False
            if command == "BOUNDS":
                if len(args) != 1:
                    return b"ERR usage: BOUNDS <item>\n", False
                await pool.ensure_tenant("default")
                lower, estimate, upper = await pool.bounds(
                    "default", int(args[0])
                )
                return (
                    f"OK {lower:.17g} {estimate:.17g} {upper:.17g}\n"
                    .encode("ascii"),
                    False,
                )
            if command == "HH":
                if len(args) != 1:
                    return b"ERR usage: HH <phi>\n", False
                await pool.ensure_tenant("default")
                _seq, rows = await pool.heavy_hitters("default", float(args[0]))
                body = " ".join(f"{row[0]}:{row[1]:.17g}" for row in rows)
                sep = " " if body else ""
                return f"OK {len(rows)}{sep}{body}\n".encode("ascii"), False
            if command == "DRAIN":
                seqs = await pool.drain()
                return f"OK {sum(seqs.values())}\n".encode("ascii"), False
            if command == "SNAPSHOT":
                seqs = await pool.snapshot_all()
                return f"OK {sum(seqs.values())}\n".encode("ascii"), False
            if command == "STATS":
                return f"OK {json.dumps(pool.stats())}\n".encode("ascii"), False
            return f"ERR unknown command {command}\n".encode("ascii"), False
        except asyncio.IncompleteReadError:
            raise ConnectionResetError("client vanished mid BIN frame")
        except (ClusterError, ValueError, OverflowError) as exc:
            return f"ERR {exc}\n".encode("ascii", errors="replace"), False
