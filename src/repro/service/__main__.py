"""Run a streaming ingest server: ``python -m repro.service``.

Builds the sketch (flat or sharded), wires an
:class:`~repro.service.pipeline.IngestPipeline` — recovering from the
data directory's newest checkpoint when one exists — and serves the
line protocol until interrupted.  A clean shutdown takes a final
checkpoint, so restarting resumes bit-identically.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys

from repro.core.frequent_items import FrequentItemsSketch
from repro.service.pipeline import IngestPipeline, PipelineConfig
from repro.service.server import StreamServer
from repro.service.snapshot import SnapshotManager
from repro.sharded.sketch import ShardedFrequentItemsSketch
from repro.table import BACKEND_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve a frequent-items sketch over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9471)
    parser.add_argument("--k", type=int, default=4096, help="counters per sketch")
    parser.add_argument("--backend", choices=sorted(BACKEND_NAMES), default="columnar")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--shards", type=int, default=0,
        help="shard the sketch this many ways (0 = flat sketch)",
    )
    parser.add_argument(
        "--data-dir", default=None,
        help="snapshot/WAL directory; omitting it disables durability",
    )
    parser.add_argument("--snapshot-every", type=int, default=256,
                        help="checkpoint every N applied micro-batches")
    parser.add_argument("--max-batch", type=int, default=8192,
                        help="micro-batch size trigger (updates)")
    parser.add_argument("--flush-interval", type=float, default=0.01,
                        help="micro-batch time trigger (seconds)")
    return parser


def build_pipeline(args: argparse.Namespace) -> IngestPipeline:
    config = PipelineConfig(
        max_batch_items=args.max_batch,
        flush_interval=args.flush_interval,
        snapshot_every_batches=args.snapshot_every,
    )
    if args.data_dir is not None:
        snapshots = SnapshotManager(args.data_dir)
        if snapshots.latest_snapshot_seq() is not None:
            # The checkpoint defines the sketch: flags that only shape a
            # *fresh* sketch are ignored, and silently honoring them
            # would corrupt the recovered state — say so.
            print(
                f"recovering sketch from {args.data_dir!r}; "
                "--k/--backend/--shards/--seed describe a fresh sketch "
                "and are ignored on recovery",
                flush=True,
            )
            return IngestPipeline.recover(snapshots, config=config)
    else:
        snapshots = None
    if args.shards > 0:
        sketch = ShardedFrequentItemsSketch(
            args.k, num_shards=args.shards, backend=args.backend, seed=args.seed
        )
    else:
        sketch = FrequentItemsSketch(args.k, backend=args.backend, seed=args.seed)
    return IngestPipeline(sketch, config=config, snapshots=snapshots)


async def run(args: argparse.Namespace) -> int:
    pipeline = build_pipeline(args)
    async with pipeline:
        server = StreamServer(pipeline, host=args.host, port=args.port)
        async with server:
            print(
                f"serving {type(pipeline.sketch).__name__} "
                f"on {args.host}:{server.port} "
                f"(seq={pipeline.applied_seq}, durability="
                f"{'on' if args.data_dir else 'off'})",
                flush=True,
            )
            with contextlib.suppress(asyncio.CancelledError):
                await asyncio.Event().wait()  # until cancelled (Ctrl-C)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(run(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
