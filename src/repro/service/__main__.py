"""Run a streaming ingest server: ``python -m repro.service``.

Builds the sketch (flat or sharded), wires an
:class:`~repro.service.pipeline.IngestPipeline` — recovering from the
data directory's newest checkpoint when one exists — and serves the
line protocol until interrupted.  A clean shutdown takes a final
checkpoint, so restarting resumes bit-identically.

Every server is replication-capable: followers subscribe with
``REPL HELLO`` on the normal port.  ``--follow host:port`` starts this
server as a read replica of that leader instead; ``--promote`` is a
one-shot admin command that tells a running follower (``--host`` /
``--port``) to detach and start accepting writes.

``--peers id=host:port,...`` (with ``--replica-id``) arms automatic
failover: the node runs a :class:`~repro.service.failover.
FailoverCoordinator` that detects a dead leader by heartbeat silence
(``--miss-window`` seconds) and elects the most-caught-up replica via
epoch-fenced voting — no operator ``--promote`` needed.  Combine with
``--follow`` on followers; leave ``--follow`` off on the initial
leader.

``--workers N`` (N >= 1) serves the multi-process tenant cluster
instead: a :class:`~repro.service.cluster.WorkerPool` behind a
:class:`~repro.service.cluster.ClusterServer`.  ``--follow`` and
``--workers`` are mutually exclusive — a read replica applies the
leader's frame stream in one process, so multi-worker mode cannot apply
to it; combining them exits with status 2 (:class:`~repro.errors.
UsageError`) rather than silently running one worker.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys

from repro.core.frequent_items import FrequentItemsSketch
from repro.errors import UsageError
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.cluster import ClusterConfig, ClusterServer, WorkerPool
from repro.service.failover import (
    EpochStore,
    FailoverConfig,
    FailoverCoordinator,
)
from repro.service.pipeline import IngestPipeline, PipelineConfig
from repro.service.replication import FollowerService, ReplicationManager
from repro.service.server import StreamServer
from repro.service.snapshot import SnapshotManager
from repro.sharded.sketch import ShardedFrequentItemsSketch
from repro.table import BACKEND_NAMES


def parse_addr(text: str) -> tuple[str, int]:
    """Split ``host:port`` (the only --follow form) into its parts."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"expected host:port, got {text!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected host:port with a numeric port, got {text!r}"
        ) from None
    return host, port


def parse_peers(text: str) -> dict[str, str]:
    """Split ``id=host:port,id=host:port`` into ``{id: "host:port"}``."""
    peers: dict[str, str] = {}
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        replica_id, sep, addr = entry.partition("=")
        if not sep or not protocol.valid_replica_id(replica_id):
            raise argparse.ArgumentTypeError(
                f"expected id=host:port entries, got {entry!r}"
            )
        host, _hsep, port_text = addr.rpartition(":")
        if not host or not port_text.isdigit():
            raise argparse.ArgumentTypeError(
                f"peer {replica_id!r} has a bad address {addr!r}"
            )
        peers[replica_id] = addr
    if not peers:
        raise argparse.ArgumentTypeError("--peers is empty")
    return peers


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve a frequent-items sketch over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9471)
    parser.add_argument(
        "--follow", type=parse_addr, default=None, metavar="HOST:PORT",
        help="run as a read replica of the leader at HOST:PORT",
    )
    parser.add_argument(
        "--promote", action="store_true",
        help="admin one-shot: promote the follower at --host/--port, "
        "print its promotion sequence, and exit",
    )
    parser.add_argument(
        "--replica-id", default=None, metavar="ID",
        help="this node's id in the replica set (required with --peers)",
    )
    parser.add_argument(
        "--peers", type=parse_peers, default=None,
        metavar="ID=HOST:PORT,...",
        help="the other replicas, by id; arms automatic failover",
    )
    parser.add_argument(
        "--miss-window", type=float, default=2.0,
        help="seconds of leader silence before followers call an "
        "election (failover detection latency)",
    )
    parser.add_argument(
        "--election-timeout", type=float, default=2.0,
        help="per-round vote collection budget (seconds)",
    )
    parser.add_argument(
        "--no-elect", action="store_true",
        help="observe and report but never stand for election "
        "(a DR / observer replica)",
    )
    parser.add_argument("--k", type=int, default=4096, help="counters per sketch")
    parser.add_argument("--backend", choices=sorted(BACKEND_NAMES), default="columnar")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--shards", type=int, default=0,
        help="shard the sketch this many ways (0 = flat sketch)",
    )
    parser.add_argument(
        "--data-dir", default=None,
        help="snapshot/WAL directory; omitting it disables durability",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="serve the multi-process tenant cluster with N worker "
        "processes (incompatible with --follow)",
    )
    parser.add_argument(
        "--frame-transport", choices=("auto", "shm", "pipe"), default="auto",
        help="how cluster ingest frames cross the acceptor-worker "
        "boundary (auto = shared memory when available)",
    )
    parser.add_argument("--snapshot-every", type=int, default=256,
                        help="checkpoint every N applied micro-batches")
    parser.add_argument("--max-batch", type=int, default=8192,
                        help="micro-batch size trigger (updates)")
    parser.add_argument("--flush-interval", type=float, default=0.01,
                        help="micro-batch time trigger (seconds)")
    return parser


def build_pipeline(args: argparse.Namespace) -> IngestPipeline:
    replication = ReplicationManager()
    replica = args.follow is not None
    config = PipelineConfig(
        max_batch_items=args.max_batch,
        flush_interval=args.flush_interval,
        snapshot_every_batches=args.snapshot_every,
    )
    if args.data_dir is not None:
        snapshots = SnapshotManager(args.data_dir)
        if snapshots.latest_snapshot_seq() is not None:
            # The checkpoint defines the sketch: flags that only shape a
            # *fresh* sketch are ignored, and silently honoring them
            # would corrupt the recovered state — say so.
            print(
                f"recovering sketch from {args.data_dir!r}; "
                "--k/--backend/--shards/--seed describe a fresh sketch "
                "and are ignored on recovery",
                flush=True,
            )
            return IngestPipeline.recover(
                snapshots, config=config,
                replication=replication, replica=replica,
            )
    else:
        snapshots = None
    if args.shards > 0:
        sketch = ShardedFrequentItemsSketch(
            args.k, num_shards=args.shards, backend=args.backend, seed=args.seed
        )
    else:
        sketch = FrequentItemsSketch(args.k, backend=args.backend, seed=args.seed)
    return IngestPipeline(
        sketch, config=config, snapshots=snapshots,
        replication=replication, replica=replica,
    )


async def promote(args: argparse.Namespace) -> int:
    """The ``--promote`` one-shot: tell a follower to become a leader."""
    async with await ServiceClient.connect(args.host, args.port) as client:
        seq = await client.promote()
    print(f"promoted {args.host}:{args.port} at seq={seq}", flush=True)
    return 0


async def run_cluster(args: argparse.Namespace) -> int:
    """Serve a multi-process tenant cluster (the ``--workers`` path)."""
    config = ClusterConfig(
        num_workers=args.workers,
        data_dir=args.data_dir,
        frame_transport=args.frame_transport,
        snapshot_every_batches=args.snapshot_every,
        default_k=args.k,
        default_backend=args.backend,
        default_seed=args.seed,
        default_shards=args.shards,
    )
    # Pool first, server second: worker processes must not inherit the
    # listening socket.
    async with WorkerPool(config) as pool:
        async with ClusterServer(pool, host=args.host, port=args.port) as server:
            print(
                f"serving tenant cluster on {args.host}:{server.port} "
                f"(workers={pool.num_workers}, "
                f"transport={pool.frame_transport}, "
                f"tenants={len(pool.list_tenants())}, "
                f"durability={'on' if args.data_dir else 'off'})",
                flush=True,
            )
            with contextlib.suppress(asyncio.CancelledError):
                await asyncio.Event().wait()  # until cancelled (Ctrl-C)
    return 0


def check_args(args: argparse.Namespace) -> None:
    """Reject flag combinations that have no meaning."""
    if args.workers is not None and args.follow is not None:
        raise UsageError(
            "--follow and --workers are mutually exclusive: a read "
            "replica applies the leader's frame stream in a single "
            "process, so multi-worker mode cannot apply to it; run the "
            "replica without --workers (or the cluster without --follow)"
        )
    if args.workers is not None and args.workers < 1:
        raise UsageError(f"--workers must be at least 1, got {args.workers}")
    if args.peers is not None:
        if args.replica_id is None:
            raise UsageError("--peers requires --replica-id")
        if not protocol.valid_replica_id(args.replica_id):
            raise UsageError(f"invalid --replica-id {args.replica_id!r}")
        if args.replica_id in args.peers:
            raise UsageError(
                f"--peers must list the *other* replicas; "
                f"{args.replica_id!r} is this node"
            )
        if args.workers is not None:
            raise UsageError(
                "--peers and --workers are mutually exclusive: failover "
                "replicates a single-process pipeline"
            )


async def run(args: argparse.Namespace) -> int:
    if args.promote:
        return await promote(args)
    if args.workers is not None:
        return await run_cluster(args)
    pipeline = build_pipeline(args)
    follower = None
    if args.follow is not None and args.peers is None:
        # With failover armed the coordinator owns the follower
        # subscription (it retargets on leadership changes).
        leader_host, leader_port = args.follow
        follower = FollowerService(pipeline, leader_host, leader_port)
    coordinator = None
    async with pipeline:
        server = StreamServer(
            pipeline, host=args.host, port=args.port, follower=follower
        )
        async with server:
            if args.peers is not None:
                coordinator = FailoverCoordinator(
                    args.replica_id,
                    pipeline,
                    self_addr=f"{args.host}:{server.port}",
                    peers=args.peers,
                    leader_addr=(
                        f"{args.follow[0]}:{args.follow[1]}"
                        if args.follow is not None else None
                    ),
                    epoch_store=EpochStore(args.data_dir),
                    config=FailoverConfig(
                        heartbeat_miss_window=args.miss_window,
                        election_timeout=args.election_timeout,
                    ),
                    elect=not args.no_elect,
                )
                server.coordinator = coordinator
                await coordinator.start()
            if follower is not None:
                await follower.start()
            print(
                f"serving {type(pipeline.sketch).__name__} "
                f"on {args.host}:{server.port} "
                f"(role={pipeline.role}, seq={pipeline.applied_seq}, "
                f"failover={'on' if coordinator is not None else 'off'}, "
                f"durability={'on' if args.data_dir else 'off'})",
                flush=True,
            )
            try:
                with contextlib.suppress(asyncio.CancelledError):
                    await asyncio.Event().wait()  # until cancelled (Ctrl-C)
            finally:
                if coordinator is not None:
                    await coordinator.stop()
                if follower is not None:
                    await follower.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        check_args(args)
    except UsageError as exc:
        print(f"error: {exc}", file=sys.stderr, flush=True)
        return 2
    try:
        return asyncio.run(run(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
