"""A pluggable fault-injection plane for the service's chaos tests.

Two families of faults, both injectable from a test without touching the
code under test:

**Network faults** — :class:`NetworkFaultProxy` is a TCP proxy one
endpoint dials instead of its real peer.  It forwards bytes verbatim
until a fault is armed: cut the link after a byte budget lands mid-frame
(the original ``FlakyProxy`` behaviour, which this class absorbs),
partition an endpoint entirely (``block``/``unblock``), delay delivery,
or drop/duplicate whole chunks.  Dropped and duplicated chunks violate
TCP's in-order-exactly-once contract on purpose: the replication layer
must treat the resulting CRC failures and desyncs as a dead link and
resubscribe, never apply a suspect frame.

**Disk faults** — :class:`DiskFaultPlane` sits between
:class:`~repro.service.snapshot.SnapshotManager` and the filesystem.
Rules injected per operation (``write``, ``fsync``, ``replace``) raise a
real ``OSError`` (``ENOSPC`` by default) after optionally writing a torn
prefix, driving the failure modes a full disk or dying device produces:
a WAL append that half-lands, an fsync that reports failure, a
checkpoint rename that never happens.  The durability layer's contract
under these faults is *no torn-but-accepted record*: a failed write
poisons the segment and surfaces cleanly; recovery replays exactly the
acknowledged prefix.

Production code never imports the network half; the disk half is a
``None`` default argument with zero overhead when absent.
"""

from __future__ import annotations

import asyncio
import contextlib
import errno
import math
import os
from dataclasses import dataclass, field
from typing import BinaryIO, Optional

__all__ = ["DiskFaultPlane", "NetworkFaultProxy"]


# --------------------------------------------------------------------------
# Disk faults


@dataclass
class _DiskRule:
    """One armed disk fault: which op it bites, when, and how."""

    op: str                    # "write" | "fsync" | "replace"
    path_contains: str         # substring filter on the target path
    errno_code: int            # errno of the raised OSError
    torn_bytes: Optional[int]  # write this many bytes before failing
    skip: int                  # let this many matching calls through first
    count: float               # how many matching calls to fail (inf = all)
    fired: int = field(default=0)


class DiskFaultPlane:
    """Injectable write/fsync/replace faults for the durability layer.

    A :class:`~repro.service.snapshot.SnapshotManager` built with
    ``faults=plane`` routes every filesystem mutation through this
    object; with no rules armed each call is a plain passthrough.

    >>> plane = DiskFaultPlane()
    >>> plane.inject("fsync", path_contains=".rwal")   # doctest: +SKIP
    """

    _OPS = ("write", "fsync", "replace")

    def __init__(self) -> None:
        self._rules: list[_DiskRule] = []
        self.fired = 0

    def inject(
        self,
        op: str,
        *,
        path_contains: str = "",
        errno_code: int = errno.ENOSPC,
        torn_bytes: Optional[int] = None,
        skip: int = 0,
        count: float = 1,
    ) -> _DiskRule:
        """Arm one fault rule and return it (its ``fired`` count is live).

        ``skip`` matching calls pass through first, then ``count``
        matching calls fail (``math.inf`` keeps the disk broken until
        :meth:`clear`).  ``torn_bytes`` only applies to ``write`` rules:
        that prefix of the payload reaches the file before the error —
        the torn-write case a real ``ENOSPC`` produces.
        """
        if op not in self._OPS:
            raise ValueError(f"unknown disk fault op {op!r}; one of {self._OPS}")
        if torn_bytes is not None and op != "write":
            raise ValueError("torn_bytes only applies to write faults")
        rule = _DiskRule(op, path_contains, errno_code, torn_bytes, skip, count)
        self._rules.append(rule)
        return rule

    def clear(self) -> None:
        """Disarm every rule (the disk works again)."""
        self._rules.clear()

    def _match(self, op: str, path: str) -> Optional[_DiskRule]:
        for rule in self._rules:
            if rule.op != op or rule.path_contains not in path:
                continue
            if rule.skip > 0:
                rule.skip -= 1
                continue
            if rule.fired >= rule.count:
                continue
            rule.fired += 1
            self.fired += 1
            return rule
        return None

    def _raise(self, rule: _DiskRule, path: str) -> None:
        raise OSError(rule.errno_code, os.strerror(rule.errno_code), path)

    # -- the three hooked operations ---------------------------------------

    def write(self, fh: BinaryIO, data: bytes, path: str) -> int:
        """``fh.write(data)``, or a (possibly torn) injected failure."""
        rule = self._match("write", path)
        if rule is None:
            return fh.write(data)
        if rule.torn_bytes:
            fh.write(data[: rule.torn_bytes])
            with contextlib.suppress(OSError):
                fh.flush()  # land the torn prefix like a real short write
        self._raise(rule, path)
        raise AssertionError("unreachable")

    def fsync(self, fh: BinaryIO, path: str) -> None:
        """``os.fsync(fh.fileno())``, or an injected failure."""
        rule = self._match("fsync", path)
        if rule is None:
            os.fsync(fh.fileno())
            return
        self._raise(rule, path)

    def replace(self, src: str, dst: str) -> None:
        """``os.replace(src, dst)``, or an injected failure."""
        rule = self._match("replace", dst)
        if rule is None:
            os.replace(src, dst)
            return
        self._raise(rule, dst)


# --------------------------------------------------------------------------
# Network faults


class NetworkFaultProxy:
    """A TCP proxy with armable link faults (absorbs ``FlakyProxy``).

    One endpoint dials :attr:`port` instead of its real peer; bytes flow
    verbatim in both directions until a fault is armed:

    - :meth:`cut_after` — forward ``budget`` more downstream
      (upstream→client) bytes, then tear down the current connection,
      mid-frame if the budget lands inside one.  New connections pass
      through again.
    - :meth:`block` / :meth:`unblock` — a partition: existing
      connections are torn down and new ones are refused until
      unblocked.  Blocking every proxy touching a node isolates it.
    - :attr:`delay` — seconds to hold each downstream chunk before
      forwarding (link latency).
    - :meth:`drop_chunks` / :meth:`duplicate_chunks` — silently discard
      or double the next ``n`` downstream chunks.  Either desyncs the
      byte stream; the consumer must detect (CRC, framing) and drop the
      link.
    """

    def __init__(self, upstream_host: str, upstream_port: int) -> None:
        self._upstream = (upstream_host, upstream_port)
        self._server: Optional[asyncio.base_events.Server] = None
        self._budget: Optional[int] = None
        self._conns: set[asyncio.StreamWriter] = set()
        self._blocked = False
        self._drop = 0
        self._dup = 0
        self.delay = 0.0
        self.cuts = 0
        self.blocked_dials = 0

    async def start(self) -> "NetworkFaultProxy":
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        return self

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    # -- fault arming -------------------------------------------------------

    def cut_after(self, budget: int) -> None:
        """Arm a cut: forward ``budget`` more downstream bytes, then drop."""
        self._budget = budget

    def block(self) -> None:
        """Partition the link: drop live connections, refuse new ones."""
        self._blocked = True
        for writer in list(self._conns):
            writer.close()

    def unblock(self) -> None:
        """Heal the partition; new connections pass through again."""
        self._blocked = False

    @property
    def blocked(self) -> bool:
        return self._blocked

    def drop_chunks(self, n: int) -> None:
        """Silently discard the next ``n`` downstream chunks."""
        self._drop = n

    def duplicate_chunks(self, n: int) -> None:
        """Forward the next ``n`` downstream chunks twice."""
        self._dup = n

    # -- lifecycle ----------------------------------------------------------

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            for writer in list(self._conns):
                writer.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, client_reader, client_writer):
        if self._blocked:
            self.blocked_dials += 1
            client_writer.close()
            return
        self._conns.add(client_writer)
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                *self._upstream
            )
        except OSError:
            client_writer.close()
            self._conns.discard(client_writer)
            return
        self._conns.add(upstream_writer)
        done = asyncio.Event()

        async def pump_down():  # upstream -> client: faults apply here
            try:
                while True:
                    chunk = await upstream_reader.read(4096)
                    if not chunk:
                        break
                    if self._blocked:
                        break
                    if self.delay:
                        await asyncio.sleep(self.delay)
                    if self._drop > 0:
                        self._drop -= 1
                        continue
                    if self._budget is not None:
                        if self._budget <= 0:
                            break
                        chunk = chunk[: self._budget]
                        self._budget -= len(chunk)
                    if self._dup > 0:
                        self._dup -= 1
                        client_writer.write(chunk)
                    client_writer.write(chunk)
                    await client_writer.drain()
                    if self._budget is not None and self._budget <= 0:
                        self._budget = None
                        self.cuts += 1
                        break
            except (ConnectionError, OSError):
                pass
            finally:
                done.set()

        async def pump_up():  # client -> upstream (e.g. follower acks)
            try:
                while True:
                    chunk = await client_reader.read(4096)
                    if not chunk:
                        break
                    if self._blocked:
                        break
                    upstream_writer.write(chunk)
                    await upstream_writer.drain()
            except (ConnectionError, OSError):
                pass
            finally:
                done.set()

        tasks = [
            asyncio.ensure_future(pump_down()),
            asyncio.ensure_future(pump_up()),
        ]
        await done.wait()
        for task in tasks:
            task.cancel()
        for task in tasks:
            with contextlib.suppress(
                asyncio.CancelledError, ConnectionError, OSError
            ):
                await task
        for writer in (client_writer, upstream_writer):
            self._conns.discard(writer)
            writer.close()


# ``count=math.inf`` reads better at call sites than a magic float.
PERSISTENT = math.inf
