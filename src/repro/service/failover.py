"""Automatic failure detection and epoch-fenced leader election.

PR 7's replication made any caught-up follower a *bit-identical*
substitute for the leader — serialized sketch bytes and xoroshiro state
words included — because replicas replay the leader's exact
``update_batch`` calls.  That determinism (the paper's Section 2.3.1
error guarantee holds exactly for the applied prefix) makes failover
unusually simple: there is no reconciliation step, election only has to
(a) pick the most-caught-up replica and (b) fence the old epoch so a
deposed leader can never sneak a write in.  This module is those two
jobs.

**The state machine** (per node)::

    follower ──leader silent > miss window──▶ candidate
    candidate ──majority of GRANTs at epoch e──▶ leader(e)
    candidate ──DENY reveals epoch/leader──▶ follower (adopts)
    leader(e) ──sees epoch e' > e──▶ follower (fenced, rewinds)

**Election rule.**  A candidate bumps its persisted epoch and asks every
peer for a vote (``REPL ELECT <epoch> <last_seq> <id>``).  A voter
grants iff all of:

1. it has not voted in this epoch (the *vote-once* rule, persisted to
   ``election.json`` **before** the reply is sent — a crashed-and-
   restarted voter cannot vote twice);
2. it does not currently hear a live leader (a healthy cluster refuses
   disruption — a rejoining node cannot depose a working leader);
3. the candidate is at least as caught up: ``(last_seq, candidate_id) >=
   (voter.applied_seq, voter.id)`` lexicographically, so the
   most-caught-up replica wins and ties break deterministically.

A candidate needs a strict majority of the *configured* replica set
(itself included).  Two leaders in one epoch would need two disjoint
majorities of granted votes — impossible by the vote-once rule and the
pigeonhole principle — so **at most one leader can exist per epoch, by
construction**.  Liveness comes from jittered retries at higher epochs.

**Fencing.**  Every replicated frame carries the leader's epoch
(protocol tag ``F``); a follower refuses frames below its own epoch.  A
deposed leader that rejoins learns the higher epoch (vote denial,
``REPL LEADER`` announcement, or its own peer polls), demotes itself to
follower, and — because its unreplicated WAL suffix may have diverged —
adopts the new leader's snapshot with a full local timeline reset
(:meth:`~repro.service.pipeline.IngestPipeline.reset_to_snapshot`),
restoring byte-identity.

Operational guidance (miss-window tuning, runbooks for crash, partition
and rejoin) lives in ``docs/service.md``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import InvalidParameterError, ReplicationError
from repro.service import protocol
from repro.service.pipeline import IngestPipeline
from repro.service.replication import FollowerService, ReplicationConfig

logger = logging.getLogger(__name__)

ELECTION_STATE_FILE = "election.json"


@dataclass
class FailoverConfig:
    """Tuning for one node's failure detector and elections.

    Attributes
    ----------
    heartbeat_miss_window:
        Seconds of leader silence after which a follower declares the
        leader dead and stands for election.  Must comfortably exceed
        the leader's heartbeat interval (a few multiples); the MTTR
        bench gates recovery at five times this window.
    check_interval:
        The failure detector's polling cadence.
    election_timeout:
        Per-round budget for collecting votes before giving up.
    election_backoff:
        Base sleep between failed election rounds (jittered, so two
        equally-ranked candidates do not collide forever).
    rpc_timeout:
        Per-peer timeout for one ELECT/PEERS/LEADER exchange.
    peer_poll_interval:
        How often a *leader* polls one peer for a higher epoch — the
        stale-leader self-check that catches a healed partition even if
        every announcement was lost.
    jitter:
        Random fraction added to every sleep (``1 + jitter * random()``).
    """

    heartbeat_miss_window: float = 2.0
    check_interval: float = 0.25
    election_timeout: float = 2.0
    election_backoff: float = 0.3
    rpc_timeout: float = 1.0
    peer_poll_interval: float = 1.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        for name in (
            "heartbeat_miss_window", "check_interval", "election_timeout",
            "election_backoff", "rpc_timeout", "peer_poll_interval",
        ):
            if getattr(self, name) <= 0:
                raise InvalidParameterError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        if self.jitter < 0:
            raise InvalidParameterError(
                f"jitter must be >= 0, got {self.jitter}"
            )


class EpochStore:
    """The persisted election state: ``{epoch, voted_for}``.

    Lives as ``election.json`` beside the WAL (pass the snapshot
    manager's directory), written atomically (tmp + fsync + rename)
    **before** any vote reply leaves the node — the vote-once rule must
    survive a crash between granting and replying.  With no directory
    the store is memory-only (tests, ephemeral replicas): safe against
    logic races in one process, not against restarts.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self._path: Optional[str] = None
        self._epoch = 0
        self._voted_for: Optional[str] = None
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._path = os.path.join(directory, ELECTION_STATE_FILE)
            self._load()

    def _load(self) -> None:
        assert self._path is not None
        try:
            with open(self._path, "r", encoding="ascii") as fh:
                doc = json.load(fh)
            epoch = doc["epoch"]
            voted = doc.get("voted_for")
            if not isinstance(epoch, int) or epoch < 0:
                raise ValueError(f"bad epoch {epoch!r}")
            if voted is not None and not isinstance(voted, str):
                raise ValueError(f"bad voted_for {voted!r}")
        except FileNotFoundError:
            return
        except (ValueError, KeyError, TypeError, OSError) as exc:
            # A corrupt election file weakens the vote-once guarantee for
            # the epoch it covered; surface that loudly but keep serving.
            logger.warning(
                "ignoring corrupt election state %s (%s); restarting at "
                "epoch 0 — this node may double-vote in an old epoch",
                self._path, exc,
            )
            return
        self._epoch = epoch
        self._voted_for = voted

    def _persist(self) -> None:
        if self._path is None:
            return
        tmp = self._path + ".tmp"
        with open(tmp, "w", encoding="ascii") as fh:
            json.dump({"epoch": self._epoch, "voted_for": self._voted_for}, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._path)

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def voted_for(self) -> Optional[str]:
        return self._voted_for

    def record_vote(self, epoch: int, candidate: str) -> bool:
        """Try to vote for ``candidate`` at ``epoch``; persist, then
        return whether the vote is granted.

        Grants exactly once per epoch: a higher epoch always gets the
        vote (and resets it), the same epoch re-grants only to the same
        candidate (idempotent against a retried request), anything else
        is refused.
        """
        if epoch > self._epoch:
            self._epoch = epoch
            self._voted_for = candidate
            self._persist()
            return True
        return epoch == self._epoch and self._voted_for == candidate

    def observe(self, epoch: int, leader: Optional[str] = None) -> bool:
        """Adopt a higher epoch learned from a peer; True if it advanced.

        When the observation names the epoch's leader, the vote slot is
        burned on it — a majority already granted that epoch, so this
        node's vote could never matter and withholding it hardens the
        at-most-one-leader invariant further.
        """
        if epoch > self._epoch:
            self._epoch = epoch
            self._voted_for = leader
            self._persist()
            return True
        if epoch == self._epoch and leader is not None and self._voted_for is None:
            self._voted_for = leader
            self._persist()
        return False


class FailoverCoordinator:
    """One node's half of automatic failover.

    Owns the failure detector, elections, leadership announcements and
    the node's :class:`~repro.service.replication.FollowerService`
    lifecycle (the subscription target changes when leadership does).
    The :class:`~repro.service.server.StreamServer` routes the ``REPL
    ELECT`` / ``REPL LEADER`` / ``REPL PEERS`` verbs here.

    Parameters
    ----------
    node_id:
        This replica's id (``protocol.valid_replica_id``); the election
        tiebreaker, so ids should be distinct across the replica set.
    pipeline:
        The node's pipeline (leader or replica mode).
    self_addr:
        ``host:port`` this node's server listens on, as peers reach it.
    peers:
        ``{replica_id: "host:port"}`` for every *other* replica.  The
        quorum is a strict majority of ``len(peers) + 1``.
    leader_id / leader_addr:
        The currently known leader, if any (bootstrap hint for a node
        started as a follower).
    epoch_store:
        An :class:`EpochStore`; defaults to memory-only.
    repl_config:
        The :class:`~repro.service.replication.ReplicationConfig` used
        for follower subscriptions this coordinator creates.
    config:
        A :class:`FailoverConfig`.
    elect:
        Set False to detect and report but never stand for election
        (an observer/DR replica).
    """

    def __init__(
        self,
        node_id: str,
        pipeline: IngestPipeline,
        *,
        self_addr: str,
        peers: Optional[dict] = None,
        leader_id: Optional[str] = None,
        leader_addr: Optional[str] = None,
        epoch_store: Optional[EpochStore] = None,
        repl_config: Optional[ReplicationConfig] = None,
        config: Optional[FailoverConfig] = None,
        elect: bool = True,
    ) -> None:
        if not protocol.valid_replica_id(node_id):
            raise InvalidParameterError(f"invalid replica id {node_id!r}")
        self._node_id = node_id
        self._pipeline = pipeline
        self._self_addr = self_addr
        self._peers = dict(peers or {})
        self._store = epoch_store if epoch_store is not None else EpochStore()
        self._repl_config = (
            repl_config if repl_config is not None else ReplicationConfig()
        )
        self._config = config if config is not None else FailoverConfig()
        self._elect = elect
        self._leader_id = leader_id
        self._leader_addr = leader_addr
        if not pipeline.is_replica:
            self._leader_id = node_id
            self._leader_addr = self_addr
        # The pipeline fences at its last *established* epoch; the store
        # may run ahead of it by unresolved votes.
        if self._store.epoch > pipeline.epoch and not pipeline.is_replica:
            pipeline.epoch = self._store.epoch
        self.follower: Optional[FollowerService] = None
        self._monitor_task: Optional[asyncio.Task] = None
        self._candidate = False
        self._leadership = asyncio.Event()
        if not pipeline.is_replica:
            self._leadership.set()
        self._next_election_at = 0.0
        self._poll_rotation = 0
        # Counters + instrumentation (the MTTR bench reads these).
        self.elections_started = 0
        self.elections_won = 0
        self.votes_granted = 0
        self.demotions = 0
        self.announcements_rejected = 0
        self.last_detection_at: Optional[float] = None
        self.promoted_at: Optional[float] = None

    # -- introspection ---------------------------------------------------------

    @property
    def node_id(self) -> str:
        return self._node_id

    @property
    def epoch(self) -> int:
        return self._store.epoch

    @property
    def role(self) -> str:
        if not self._pipeline.is_replica:
            return "leader"
        return "candidate" if self._candidate else "follower"

    @property
    def leader_id(self) -> Optional[str]:
        return self._leader_id

    @property
    def leader_addr(self) -> Optional[str]:
        return self._leader_addr

    def peers_payload(self) -> dict:
        """The ``REPL PEERS`` reply body: the replica set as this node
        knows it.  Clients use it to find the leader; a leader's polls
        use it to discover they have been deposed."""
        return {
            "self": self._node_id,
            "role": self.role,
            "epoch": self._store.epoch,
            "applied_seq": self._pipeline.applied_seq,
            "leader_id": self._leader_id,
            "leader_addr": self._leader_addr,
            "peers": {**self._peers, self._node_id: self._self_addr},
        }

    def status(self) -> dict:
        return {
            "node_id": self._node_id,
            "role": self.role,
            "epoch": self._store.epoch,
            "voted_for": self._store.voted_for,
            "leader_id": self._leader_id,
            "leader_addr": self._leader_addr,
            "elections_started": self.elections_started,
            "elections_won": self.elections_won,
            "votes_granted": self.votes_granted,
            "demotions": self.demotions,
        }

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "FailoverCoordinator":
        """Start the failure detector (idempotent); returns self.

        A follower with a known leader address subscribes immediately.
        """
        if self._monitor_task is not None and not self._monitor_task.done():
            return self
        if self._pipeline.is_replica and self._leader_addr is not None:
            await self._start_follower(self._leader_addr, allow_rewind=False)
        self._monitor_task = asyncio.get_running_loop().create_task(
            self._monitor(), name=f"repro-failover-{self._node_id}"
        )
        return self

    async def stop(self) -> None:
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._monitor_task
            self._monitor_task = None
        if self.follower is not None:
            await self.follower.stop()

    async def wait_for_leadership(self, timeout: float = 30.0) -> None:
        """Await this node winning an election (tests and tooling)."""
        await asyncio.wait_for(self._leadership.wait(), timeout)

    # -- vote handling (server dispatch calls these) ----------------------------

    def handle_vote_request(
        self, epoch: int, last_seq: int, candidate: str
    ) -> tuple[bool, int, Optional[str]]:
        """Decide one ``REPL ELECT`` request; returns
        ``(granted, our_epoch, leader_hint)``.

        The three-clause grant rule from the module docstring.  The
        persisted epoch/vote is written before this returns, so the
        reply the server sends is backed by durable state.
        """
        if epoch <= self._store.epoch:
            return False, self._store.epoch, self._leader_id
        if self._hears_live_leader():
            # Clause 2: a healthy cluster refuses disruption.  The hint
            # teaches a confused candidate who actually leads.
            return False, self._store.epoch, self._leader_id
        if (last_seq, candidate) < (self._pipeline.applied_seq, self._node_id):
            # Clause 3: we out-rank the candidate.  Remember the higher
            # epoch (our own next stand must clear it) but keep the vote.
            self._store.observe(epoch)
            return False, self._store.epoch, None
        if self._store.record_vote(epoch, candidate):
            self.votes_granted += 1
            return True, epoch, None
        return False, self._store.epoch, self._leader_id

    def _hears_live_leader(self) -> bool:
        if not self._pipeline.is_replica:
            # We *are* a leader — and an alive one, since we're answering
            # — unless our durability path already died underneath us.
            return self._pipeline.fault is None
        if self.follower is None:
            return False
        silence = self.follower.silence()
        return (
            self.follower.connected
            and silence is not None
            and silence < self._config.heartbeat_miss_window
        )

    async def handle_leader_announcement(
        self, epoch: int, leader_id: str, advertised_addr: str
    ) -> tuple[bool, int]:
        """Apply one ``REPL LEADER`` announcement; ``(accepted, epoch)``.

        A stale announcement is rejected (fencing the announcer: the
        ``ERR`` reply carries our higher epoch).  Accepting one while
        *we* lead means we have been deposed — demote and re-follow.
        """
        if epoch < self._store.epoch or (
            epoch == self._store.epoch
            and not self._pipeline.is_replica
            and leader_id != self._node_id
        ):
            self.announcements_rejected += 1
            return False, self._store.epoch
        if leader_id == self._node_id:
            return True, self._store.epoch
        self._store.observe(epoch, leader=leader_id)
        # Prefer our configured address for the peer (the advertised one
        # may not be routable from here — NAT, test proxies).
        addr = self._peers.get(leader_id, advertised_addr)
        changed = (
            self._leader_id != leader_id or self._leader_addr != addr
        )
        self._leader_id = leader_id
        self._leader_addr = addr
        if not self._pipeline.is_replica:
            logger.warning(
                "%s: fenced by leader %s at epoch %d; demoting",
                self._node_id, leader_id, epoch,
            )
            await self._demote_and_follow()
        elif changed or self.follower is None:
            await self._start_follower(addr, allow_rewind=True)
        return True, self._store.epoch

    # -- elections -------------------------------------------------------------

    async def run_election(self) -> bool:
        """Stand for election once; True if this node became the leader.

        Callable directly (tests, tooling) as well as from the monitor.
        """
        if not self._pipeline.is_replica:
            return True
        if self._candidate:
            return False
        self._candidate = True
        try:
            epoch = self._store.epoch + 1
            if not self._store.record_vote(epoch, self._node_id):
                return False
            self.elections_started += 1
            my_seq = self._pipeline.applied_seq
            quorum = (len(self._peers) + 1) // 2 + 1
            votes = 1  # our own, just persisted
            logger.info(
                "%s: standing for election at epoch %d (seq %d, quorum %d)",
                self._node_id, epoch, my_seq, quorum,
            )
            replies = await asyncio.gather(*(
                self._request_vote(addr, epoch, my_seq)
                for addr in self._peers.values()
            ))
            best_deny_epoch = 0
            leader_hint: Optional[str] = None
            for reply in replies:
                if reply is None:
                    continue  # peer unreachable
                granted, peer_epoch, hint = reply
                if granted:
                    votes += 1
                elif peer_epoch >= best_deny_epoch:
                    best_deny_epoch = peer_epoch
                    leader_hint = hint or leader_hint
            if votes >= quorum:
                await self._become_leader(epoch)
                return True
            # Lost.  Adopt whatever the denials taught us so the next
            # stand clears the real epoch — or so we re-follow a leader
            # we had merely lost sight of.
            self._store.observe(best_deny_epoch, leader=leader_hint)
            if leader_hint is not None and leader_hint != self._node_id:
                addr = self._peers.get(leader_hint)
                if addr is not None:
                    self._leader_id = leader_hint
                    self._leader_addr = addr
                    await self._start_follower(addr, allow_rewind=True)
            return False
        finally:
            self._candidate = False

    async def _request_vote(
        self, addr: str, epoch: int, my_seq: int
    ) -> Optional[tuple[bool, int, Optional[str]]]:
        line = protocol.encode_elect_line(epoch, my_seq, self._node_id)
        reply = await self._ask(addr, line)
        if reply is None:
            return None
        parts = reply.split()
        if len(parts) < 2 or parts[0] != "OK":
            return None
        try:
            return protocol.parse_vote_reply(parts[1:])
        except ReplicationError:
            return None

    async def _ask(self, addr: str, line: bytes) -> Optional[str]:
        """One request/one reply against a peer; None on any failure."""
        host, _sep, port_text = addr.rpartition(":")
        writer = None
        try:
            async with asyncio.timeout(self._config.rpc_timeout):
                reader, writer = await asyncio.open_connection(
                    host, int(port_text), limit=protocol.MAX_LINE_BYTES
                )
                writer.write(line)
                await writer.drain()
                reply = await reader.readline()
            return reply.decode("ascii", "replace").strip() or None
        except (OSError, asyncio.TimeoutError, ValueError):
            return None
        finally:
            if writer is not None:
                writer.close()

    async def _become_leader(self, epoch: int) -> None:
        if self.follower is not None:
            await self.follower.stop()
            self.follower = None
        self._pipeline.promote()
        self._pipeline.epoch = epoch
        self._leader_id = self._node_id
        self._leader_addr = self._self_addr
        self.elections_won += 1
        self.promoted_at = asyncio.get_running_loop().time()
        self._leadership.set()
        logger.warning(
            "%s: won election at epoch %d (seq %d); announcing to %d peers",
            self._node_id, epoch, self._pipeline.applied_seq, len(self._peers),
        )
        await self.announce()

    async def announce(self) -> None:
        """Broadcast ``REPL LEADER`` to every peer (best-effort)."""
        line = protocol.encode_leader_line(
            self._store.epoch, self._node_id, self._self_addr
        )
        await asyncio.gather(*(
            self._ask(addr, line) for addr in self._peers.values()
        ))

    async def force_promote(self) -> int:
        """Operator-driven promotion (the ``REPL PROMOTE`` verb).

        Bypasses the election: bumps the epoch unilaterally and
        announces.  Safe only when the operator knows the old leader is
        gone — exactly the pre-failover contract, kept for tooling and
        as the escape hatch when a quorum cannot form.  Idempotent on a
        node that already leads.
        """
        if not self._pipeline.is_replica:
            return self._pipeline.applied_seq
        self._store.observe(self._store.epoch + 1, leader=self._node_id)
        await self._become_leader(self._store.epoch)
        return self._pipeline.applied_seq

    # -- demotion --------------------------------------------------------------

    async def _demote_and_follow(self) -> None:
        self._pipeline.demote()
        self.demotions += 1
        self._leadership.clear()
        # Let any already-queued (pre-demotion) submissions settle before
        # the new subscription can reset the timeline underneath them.
        with contextlib.suppress(Exception):
            await self._pipeline.drain()
        if self._leader_addr is not None:
            await self._start_follower(self._leader_addr, allow_rewind=True)

    async def _start_follower(self, addr: str, *, allow_rewind: bool) -> None:
        if self.follower is not None:
            await self.follower.stop()
        host, _sep, port_text = addr.rpartition(":")
        self.follower = FollowerService(
            self._pipeline, host, int(port_text),
            config=self._repl_config,
            on_epoch=lambda epoch: self._store.observe(epoch),
            allow_rewind=allow_rewind,
        )
        await self.follower.start()

    # -- the failure detector ---------------------------------------------------

    def _jittered(self, base: float) -> float:
        return base * (1.0 + self._config.jitter * random.random())

    async def _monitor(self) -> None:
        config = self._config
        loop = asyncio.get_running_loop()
        last_poll = loop.time()
        while True:
            await asyncio.sleep(self._jittered(config.check_interval))
            try:
                if not self._pipeline.is_replica:
                    if loop.time() - last_poll >= config.peer_poll_interval:
                        last_poll = loop.time()
                        await self._poll_one_peer()
                    continue
                if not self._elect or self._candidate:
                    continue
                if not self._leader_presumed_dead():
                    continue
                now = loop.time()
                if now < self._next_election_at:
                    continue
                if self.last_detection_at is None:
                    self.last_detection_at = now
                self._next_election_at = now + self._jittered(
                    config.election_backoff
                )
                async with asyncio.timeout(config.election_timeout):
                    await self.run_election()
            except asyncio.CancelledError:
                raise
            except asyncio.TimeoutError:
                continue
            except Exception:  # pragma: no cover - defensive
                logger.exception(
                    "%s: failure detector iteration failed", self._node_id
                )

    def _leader_presumed_dead(self) -> bool:
        if self.follower is None:
            # No subscription at all: a follower with nothing to follow
            # (bootstrap raced, or the leader address never worked).
            return self._leader_addr is None or self.follower is None
        if self.follower.exhausted:
            return True
        silence = self.follower.silence()
        if silence is None:
            # Never connected; rely on the follower's own retry budget
            # plus our miss window from coordinator start.
            return self.follower.reconnects > 0
        return silence > self._config.heartbeat_miss_window

    async def _poll_one_peer(self) -> None:
        """Leader-side stale-epoch self-check: ask one peer (round robin)
        for its view; a higher epoch *with an elected leader* means we
        were deposed while unreachable — demote and re-follow."""
        if not self._peers:
            return
        ids = sorted(self._peers)
        peer_id = ids[self._poll_rotation % len(ids)]
        self._poll_rotation += 1
        reply = await self._ask(self._peers[peer_id], b"REPL PEERS\n")
        if reply is None or not reply.startswith("OK "):
            return
        try:
            doc = protocol.parse_peers_reply(reply[3:])
        except ReplicationError:
            return
        epoch = doc["epoch"]
        if epoch <= self._store.epoch:
            return
        leader_id = doc.get("leader_id")
        leader_addr = doc.get("leader_addr")
        if (
            isinstance(leader_id, str)
            and leader_id != self._node_id
            and protocol.valid_replica_id(leader_id)
        ):
            await self.handle_leader_announcement(
                epoch, leader_id, leader_addr or ""
            )
        # A higher epoch with no elected leader fences nothing: a
        # partitioned minority inflates its persisted epoch with futile
        # candidacies it can never win, and adopting that number here
        # would demote a leader that still holds quorum — after which
        # *no one* could win (every follower still hears our heartbeats
        # and denies by the live-leader rule).  Only an actual election
        # winner deposes us, via the announcement branch above.
