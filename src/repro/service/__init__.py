"""Always-on streaming ingest service over the sketch engine.

The paper positions the sketch for continuously-running telemetry
pipelines; this package turns the in-process library into that
deployment shape:

- :class:`~repro.service.pipeline.IngestPipeline` — an asyncio ingest
  loop: concurrent producers submit array batches through a bounded
  queue with backpressure, the pipeline coalesces them into micro-
  batches (size- and time-triggered) and applies them through the
  vectorized ``update_batch`` engine, while queries read a consistent
  between-batches view without stalling ingest.
- :class:`~repro.service.snapshot.SnapshotManager` — durability:
  periodic atomic-rename checkpoints of the sketch (wire format plus
  PRNG state) and a write-ahead log of applied micro-batches, able to
  recover to a state *bit-identical* to an uninterrupted run.
- :class:`~repro.service.server.StreamServer` /
  :class:`~repro.service.client.ServiceClient` — a TCP line-protocol
  front end (``python -m repro.service`` runs one).
- :class:`~repro.service.cluster.WorkerPool` /
  :class:`~repro.service.cluster.ClusterServer` — the multi-process
  tenant cluster (``python -m repro.service --workers N``): named tenant
  streams consistent-hash routed onto worker processes, zero-copy
  shared-memory ingest frames, merged global views on query.

- :class:`~repro.service.failover.FailoverCoordinator` — automatic
  failover: epoch-fenced leader election over the replica set (``REPL
  ELECT`` / ``LEADER`` / ``PEERS``), heartbeat-driven failure detection,
  self-demoting fenced ex-leaders; with
  :mod:`repro.service.faults` as the pluggable fault-injection plane the
  chaos tests drive it through.

See ``docs/service.md`` for the lifecycle, backpressure, recovery, and
failover guarantees.
"""

from repro.service.pipeline import IngestPipeline, PipelineConfig, ServiceStats
from repro.service.snapshot import SnapshotManager
from repro.service.server import StreamServer
from repro.service.client import (
    ClusterClient,
    ReconnectingServiceClient,
    ServiceClient,
)
from repro.service.cluster import (
    ClusterConfig,
    ClusterServer,
    TenantSpec,
    WorkerPool,
)
from repro.service.failover import (
    EpochStore,
    FailoverConfig,
    FailoverCoordinator,
)
from repro.service.faults import DiskFaultPlane, NetworkFaultProxy
from repro.service.frames import SharedFrameRing
from repro.service.replication import (
    FollowerService,
    ReplicationConfig,
    ReplicationManager,
)
from repro.service.ring import HashRing

__all__ = [
    "EpochStore",
    "FailoverConfig",
    "FailoverCoordinator",
    "DiskFaultPlane",
    "NetworkFaultProxy",
    "IngestPipeline",
    "PipelineConfig",
    "ServiceStats",
    "SnapshotManager",
    "StreamServer",
    "ServiceClient",
    "ClusterClient",
    "ReconnectingServiceClient",
    "ClusterConfig",
    "ClusterServer",
    "TenantSpec",
    "WorkerPool",
    "SharedFrameRing",
    "HashRing",
    "ReplicationManager",
    "ReplicationConfig",
    "FollowerService",
]
