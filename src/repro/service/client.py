"""A small asyncio client for the streaming service's line protocol.

Mirrors :mod:`repro.service.protocol` command for command; every method
awaits the server's response line, so callers inherit the service's
backpressure (a full ingest queue delays the ``OK``).
"""

from __future__ import annotations

import asyncio
import json
import os
import random

import numpy as np

from repro.errors import (
    ReplicationError,
    ServiceClosedError,
    ServiceUnavailableError,
)
from repro.service import protocol


class ServiceError(ValueError):
    """The server answered ``ERR <reason>``."""


class ServiceClient:
    """One connection to a :class:`~repro.service.server.StreamServer`.

    Use :meth:`connect`::

        client = await ServiceClient.connect("127.0.0.1", port)
        await client.update(7, 2.0)
        estimate = await client.estimate(7)
        await client.close()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def close(self) -> None:
        """Send ``QUIT`` and close the connection."""
        if self._writer.is_closing():
            return
        try:
            await self._request(b"QUIT\n")
        except (ConnectionError, ServiceClosedError):  # pragma: no cover
            pass
        self._writer.close()

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- plumbing --------------------------------------------------------------

    async def _request(self, payload: bytes) -> str:
        self._writer.write(payload)
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServiceClosedError("server closed the connection")
        text = line.decode("ascii").rstrip("\n")
        if text.startswith("ERR"):
            raise ServiceError(text[4:] or "unspecified server error")
        return text

    @staticmethod
    def _ok_args(text: str) -> list[str]:
        parts = text.split()
        if not parts or parts[0] != "OK":
            raise ServiceError(f"unexpected response {text!r}")
        return parts[1:]

    # -- commands --------------------------------------------------------------

    async def ping(self) -> bool:
        return await self._request(b"PING\n") == "PONG"

    async def update(self, item: int, weight: float = 1.0) -> None:
        # repr() is the shortest round-trip form: '%g'-style formatting
        # would silently truncate weights to 6 significant digits.
        await self._request(f"UPDATE {int(item)} {weight!r}\n".encode("ascii"))

    async def send_batch(self, items, weights=None, *, binary: bool = True) -> int:
        """Ship one update batch; returns the server-acknowledged count.

        ``binary=True`` (default) uses the ``BIN`` frame — arrays travel
        verbatim; the text ``BATCH`` form exists for debugging by hand.
        Batches beyond the protocol's per-frame cap are chunked
        transparently; an empty batch is a no-op (matching
        ``IngestPipeline.submit``).
        """
        items = np.ascontiguousarray(items, dtype=np.uint64)
        if weights is None:
            weights = np.ones(len(items), dtype=np.float64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        acknowledged = 0
        # Text pairs are ~25 bytes each; keep BATCH lines far inside the
        # server's MAX_LINE_BYTES.
        chunk = protocol.MAX_BIN_ITEMS if binary else 10_000
        for lo in range(0, len(items), chunk):
            part_items = items[lo : lo + chunk]
            part_weights = weights[lo : lo + chunk]
            if binary:
                payload = protocol.encode_bin_frame(part_items, part_weights)
            else:
                payload = protocol.encode_batch_line(part_items, part_weights)
            reply = self._ok_args(await self._request(payload))
            acknowledged += int(reply[0])
        return acknowledged

    async def estimate(self, item: int) -> float:
        reply = self._ok_args(await self._request(f"EST {int(item)}\n".encode()))
        return float(reply[0])

    async def bounds(self, item: int) -> tuple[float, float, float]:
        """``(lower_bound, estimate, upper_bound)`` for one item."""
        reply = self._ok_args(await self._request(f"BOUNDS {int(item)}\n".encode()))
        return float(reply[0]), float(reply[1]), float(reply[2])

    async def heavy_hitters(self, phi: float) -> list[tuple[int, float]]:
        """``(item, estimate)`` pairs, sorted by estimate descending."""
        reply = self._ok_args(await self._request(f"HH {phi:g}\n".encode()))
        count = int(reply[0])
        pairs = []
        for token in reply[1 : 1 + count]:
            item_text, _sep, estimate_text = token.partition(":")
            pairs.append((int(item_text), float(estimate_text)))
        return pairs

    async def stats(self) -> dict:
        text = await self._request(b"STATS\n")
        return json.loads(text[3:])

    async def snapshot(self) -> int:
        """Force a checkpoint; returns the checkpointed sequence number."""
        reply = self._ok_args(await self._request(b"SNAPSHOT\n"))
        return int(reply[0])

    # -- staleness-stamped queries (read replicas) -----------------------------

    async def qest(self, item: int) -> tuple[int, float]:
        """``(applied_seq, estimate)`` — the answer plus the exact
        between-batches sequence it was read at (the staleness stamp)."""
        reply = self._ok_args(await self._request(f"QEST {int(item)}\n".encode()))
        return int(reply[0]), float(reply[1])

    async def qbounds(self, item: int) -> tuple[int, float, float, float]:
        """``(applied_seq, lower, estimate, upper)`` for one item."""
        reply = self._ok_args(
            await self._request(f"QBOUNDS {int(item)}\n".encode())
        )
        return int(reply[0]), float(reply[1]), float(reply[2]), float(reply[3])

    async def qhh(self, phi: float) -> tuple[int, list[tuple[int, float]]]:
        """``(applied_seq, [(item, estimate), ...])``, estimate-sorted."""
        reply = self._ok_args(await self._request(f"QHH {phi:g}\n".encode()))
        seq = int(reply[0])
        count = int(reply[1])
        pairs = []
        for token in reply[2 : 2 + count]:
            item_text, _sep, estimate_text = token.partition(":")
            pairs.append((int(item_text), float(estimate_text)))
        return seq, pairs

    # -- replication admin -----------------------------------------------------

    async def repl_status(self) -> dict:
        """Role, applied sequence, and follower/leader replication state."""
        text = await self._request(b"REPL STATUS\n")
        return json.loads(text[3:])

    async def promote(self) -> int:
        """Promote the connected follower; returns its sequence at
        promotion.  Idempotent: on a node that already leads this is a
        no-op reporting its applied sequence."""
        reply = self._ok_args(await self._request(b"REPL PROMOTE\n"))
        return int(reply[0])

    async def repl_peers(self) -> dict:
        """The node's view of the replica set (``REPL PEERS``)."""
        text = await self._request(b"REPL PEERS\n")
        return protocol.parse_peers_reply(text[3:])


class ClusterClient(ServiceClient):
    """A :class:`ServiceClient` extended with the tenant verbs.

    Connects to a :class:`~repro.service.cluster.ClusterServer`; the
    inherited single-tenant methods keep working (the cluster routes
    them to its implicit ``default`` tenant).
    """

    async def tcreate(
        self,
        name: str,
        *,
        k: int | None = None,
        backend: str | None = None,
        seed: int | None = None,
        shards: int | None = None,
    ) -> dict:
        """Register one tenant; returns its effective spec as a dict.

        Optional parameters fall back to the server's defaults; the
        protocol line is positional, so unspecified parameters before a
        specified one travel as ``-`` ("use the server default").
        """
        parts: list[str] = ["TCREATE", name]
        tail = [k, backend, seed, shards]
        last = max(
            (i for i, value in enumerate(tail) if value is not None),
            default=-1,
        )
        for value in tail[: last + 1]:
            parts.append("-" if value is None else str(value))
        text = await self._request((" ".join(parts) + "\n").encode("ascii"))
        return json.loads(text[3:])

    async def tdrop(self, name: str) -> None:
        await self._request(f"TDROP {name}\n".encode("ascii"))

    async def tlist(self) -> list[dict]:
        text = await self._request(b"TLIST\n")
        return json.loads(text[3:])

    async def tsend_batch(self, name: str, items, weights=None) -> int:
        """Ship one batch to a named tenant as ``TBIN`` frames."""
        items = np.ascontiguousarray(items, dtype=np.uint64)
        if weights is None:
            weights = np.ones(len(items), dtype=np.float64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        acknowledged = 0
        for lo in range(0, len(items), protocol.MAX_BIN_ITEMS):
            payload = protocol.encode_tbin_frame(
                name,
                items[lo : lo + protocol.MAX_BIN_ITEMS],
                weights[lo : lo + protocol.MAX_BIN_ITEMS],
            )
            reply = self._ok_args(await self._request(payload))
            acknowledged += int(reply[0])
        return acknowledged

    async def tupdate(self, name: str, item: int, weight: float = 1.0) -> None:
        await self._request(
            f"TUPDATE {name} {int(item)} {weight!r}\n".encode("ascii")
        )

    async def testimate(self, name: str, item: int) -> float:
        reply = self._ok_args(
            await self._request(f"TEST {name} {int(item)}\n".encode("ascii"))
        )
        return float(reply[0])

    async def tbounds(self, name: str, item: int) -> tuple[float, float, float]:
        reply = self._ok_args(
            await self._request(f"TBOUNDS {name} {int(item)}\n".encode("ascii"))
        )
        return float(reply[0]), float(reply[1]), float(reply[2])

    async def thh(
        self, name: str, phi: float
    ) -> tuple[int, list[tuple[int, float]]]:
        """``(watermark, [(item, estimate), ...])`` — the tenant's
        merged heavy hitters (folds a sharded tenant's substreams)."""
        reply = self._ok_args(
            await self._request(f"THH {name} {phi:g}\n".encode("ascii"))
        )
        seq = int(reply[0])
        count = int(reply[1])
        pairs = []
        for token in reply[2 : 2 + count]:
            item_text, _sep, estimate_text = token.partition(":")
            pairs.append((int(item_text), float(estimate_text)))
        return seq, pairs

    async def drain(self) -> int:
        """Await every in-flight frame applied; returns the watermark sum."""
        reply = self._ok_args(await self._request(b"DRAIN\n"))
        return int(reply[0])


class ReconnectingServiceClient:
    """A :class:`ServiceClient` that survives connection loss *and*
    leadership changes.

    Wraps the plain client with bounded, jittered exponential-backoff
    reconnects.  Queries are idempotent and simply retried.  Update
    batches travel as ``BINS`` frames — ``BIN`` stamped with a
    per-client session id and a monotonically increasing frame sequence
    — so a frame whose ``OK`` was lost in a crash can be resubmitted
    safely: the server's idempotency registry answers ``OK 0`` for an
    already-applied frame instead of ingesting it twice.  The stamps are
    replicated inside fenced frames, so the guarantee holds **across
    failover**: a follower promoted mid-request recognizes the resend.

    Failover handling: the client learns the replica set from ``REPL
    PEERS`` (seeded by the ``peers`` argument and refreshed whenever it
    reconnects somewhere new).  A dead connection rotates through known
    replicas; a node answering "read replica" redirects the client to
    the leader that node knows.  No configuration beyond one reachable
    replica is required.

    Retries are bounded twice over: ``max_retries`` consecutive failed
    attempts re-raise the underlying error, and an optional wall-clock
    ``deadline`` (seconds per request, across all retries) raises
    :class:`~repro.errors.ServiceUnavailableError` when no live leader
    was found in time — the knob latency-sensitive callers set.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        peers: list[str] | None = None,
        max_retries: int = 6,
        backoff_initial: float = 0.05,
        backoff_max: float = 1.0,
        backoff_jitter: float = 0.25,
        deadline: float | None = None,
        session: str | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._max_retries = max_retries
        self._backoff_initial = backoff_initial
        self._backoff_max = backoff_max
        self._backoff_jitter = backoff_jitter
        self._deadline = deadline
        self._session = session if session is not None else os.urandom(8).hex()
        self._frame_seq = 0
        self._client: ServiceClient | None = None
        # Known replica addresses ("host:port"), current target first.
        self._peer_addrs: list[str] = [f"{host}:{port}"]
        for addr in peers or []:
            if addr not in self._peer_addrs:
                self._peer_addrs.append(addr)
        self.reconnects = 0
        self.resubmits = 0
        self.redirects = 0

    @property
    def session(self) -> str:
        """The idempotency session id stamped onto every BINS frame."""
        return self._session

    @property
    def leader_addr(self) -> str:
        """The address this client currently believes leads."""
        return f"{self._host}:{self._port}"

    @property
    def known_peers(self) -> list[str]:
        """Every replica address this client has learned."""
        return list(self._peer_addrs)

    async def _ensure(self) -> ServiceClient:
        if self._client is None or self._client._writer.is_closing():
            self._client = await ServiceClient.connect(self._host, self._port)
        return self._client

    async def _drop(self) -> None:
        if self._client is not None:
            self._client._writer.close()
            self._client = None

    def _retarget(self, addr: str) -> None:
        host, _sep, port_text = addr.rpartition(":")
        if not host:
            return
        try:
            port = int(port_text)
        except ValueError:
            return
        self._host, self._port = host, port
        if addr not in self._peer_addrs:
            self._peer_addrs.append(addr)

    def _learn_peers(self, doc: dict) -> str | None:
        """Fold one ``REPL PEERS`` reply into the address book; returns
        the leader address it names, if any."""
        peers = doc.get("peers")
        if isinstance(peers, dict):
            for addr in peers.values():
                if isinstance(addr, str) and addr not in self._peer_addrs:
                    self._peer_addrs.append(addr)
        leader_addr = doc.get("leader_addr")
        leader_id = doc.get("leader_id")
        if isinstance(leader_addr, str) and leader_addr:
            return leader_addr
        if isinstance(peers, dict) and isinstance(leader_id, str):
            addr = peers.get(leader_id)
            if isinstance(addr, str):
                return addr
        return None

    async def _redirect_to_leader(self, exclude: str | None = None) -> bool:
        """Ask every known replica who leads; retarget on an answer.

        Returns True when a leader hint was found (even if it later
        turns out equally dead — the retry loop handles that).
        ``exclude`` names an address known *not* to lead (it just
        refused a write): never fall back to it.
        """
        standalone: str | None = None
        for addr in list(self._peer_addrs):
            host, _sep, port_text = addr.rpartition(":")
            probe: ServiceClient | None = None
            try:
                probe = await ServiceClient.connect(host, int(port_text))
                doc = await probe.repl_peers()
            except (ServiceError, ReplicationError):
                # The node answered but has no failover plane (or spoke
                # garbage): possibly a standalone leader.  Keep it as
                # the fallback, unless we know it refuses writes.
                if standalone is None and addr != exclude:
                    standalone = addr
                continue
            except (ConnectionError, ServiceClosedError, OSError, ValueError):
                continue
            finally:
                if probe is not None:
                    probe._writer.close()
            leader = self._learn_peers(doc)
            if leader is not None and leader != exclude:
                self._retarget(leader)
                self.redirects += 1
                return True
        if standalone is not None:
            self._retarget(standalone)
            return True
        return False

    async def _with_retry(self, payload: bytes, *, resubmittable: bool = False) -> str:
        """Send one request, reconnecting (bounded) on connection loss
        and following leadership changes.

        Safe only for idempotent payloads — queries, and BINS frames
        (their dedup stamp is what makes the resend idempotent).
        """
        loop = asyncio.get_running_loop()
        started = loop.time()
        backoff = self._backoff_initial
        failures = 0
        refusals = 0
        transmitted = False
        while True:
            try:
                client = await self._ensure()
                if transmitted and resubmittable:
                    self.resubmits += 1
                try:
                    transmitted = True
                    return await client._request(payload)
                except ServiceError as exc:
                    if "read replica" not in str(exc):
                        raise  # a real answer: no retry, nothing was lost
                    # We wrote to a follower: someone else leads now.
                    transmitted = False  # the frame was refused, not lost
                    refusals += 1
                    if refusals > self._max_retries or (
                        not await self._redirect_to_leader(
                            exclude=self.leader_addr
                        )
                    ):
                        raise
                    await self._drop()
                    continue
            except ServiceError:
                raise
            except (ConnectionError, ServiceClosedError, OSError) as exc:
                await self._drop()
                failures += 1
                give_up: Exception | None = None
                if failures > self._max_retries:
                    give_up = ServiceClosedError(
                        f"gave up after {failures - 1} reconnect attempts"
                    )
                delay = backoff * (
                    1.0 + self._backoff_jitter * random.random()
                )
                if self._deadline is not None and (
                    loop.time() + delay - started > self._deadline
                ):
                    give_up = ServiceUnavailableError(
                        f"no live leader within the {self._deadline:g}s "
                        f"deadline ({failures} attempts)"
                    )
                if give_up is not None:
                    raise give_up from exc
                self.reconnects += 1
                # The old leader may be gone for good: look for a new one
                # before burning another attempt on the same address.
                await self._redirect_to_leader()
                await asyncio.sleep(delay)
                backoff = min(backoff * 2.0, self._backoff_max)

    async def close(self) -> None:
        if self._client is not None:
            await self._client.close()
            self._client = None

    async def __aenter__(self) -> "ReconnectingServiceClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- commands --------------------------------------------------------------

    async def ping(self) -> bool:
        return (await self._with_retry(b"PING\n")) == "PONG"

    async def send_batch(self, items, weights=None) -> int:
        """Ship one update batch exactly once; returns the applied count.

        Chunked like :meth:`ServiceClient.send_batch`; each chunk is an
        idempotent BINS frame, resubmitted after a reconnect only when
        its acknowledgement never arrived.
        """
        items = np.ascontiguousarray(items, dtype=np.uint64)
        if weights is None:
            weights = np.ones(len(items), dtype=np.float64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        acknowledged = 0
        for lo in range(0, len(items), protocol.MAX_BIN_ITEMS):
            self._frame_seq += 1
            payload = protocol.encode_bins_frame(
                items[lo : lo + protocol.MAX_BIN_ITEMS],
                weights[lo : lo + protocol.MAX_BIN_ITEMS],
                self._session,
                self._frame_seq,
            )
            reply = await self._with_retry(payload, resubmittable=True)
            parts = reply.split()
            if not parts or parts[0] != "OK":
                raise ServiceError(f"unexpected response {reply!r}")
            acknowledged += int(parts[1])
        return acknowledged

    async def estimate(self, item: int) -> float:
        reply = await self._with_retry(f"EST {int(item)}\n".encode())
        return float(reply.split()[1])

    async def qest(self, item: int) -> tuple[int, float]:
        reply = await self._with_retry(f"QEST {int(item)}\n".encode())
        parts = reply.split()
        return int(parts[1]), float(parts[2])

    async def stats(self) -> dict:
        return json.loads((await self._with_retry(b"STATS\n"))[3:])

    async def repl_status(self) -> dict:
        return json.loads((await self._with_retry(b"REPL STATUS\n"))[3:])

    async def repl_peers(self) -> dict:
        """The replica set as the current target knows it (also folds
        the addresses into this client's own address book)."""
        text = await self._with_retry(b"REPL PEERS\n")
        doc = protocol.parse_peers_reply(text[3:])
        self._learn_peers(doc)
        return doc
