"""A small asyncio client for the streaming service's line protocol.

Mirrors :mod:`repro.service.protocol` command for command; every method
awaits the server's response line, so callers inherit the service's
backpressure (a full ingest queue delays the ``OK``).
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from repro.errors import ServiceClosedError
from repro.service import protocol


class ServiceError(ValueError):
    """The server answered ``ERR <reason>``."""


class ServiceClient:
    """One connection to a :class:`~repro.service.server.StreamServer`.

    Use :meth:`connect`::

        client = await ServiceClient.connect("127.0.0.1", port)
        await client.update(7, 2.0)
        estimate = await client.estimate(7)
        await client.close()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def close(self) -> None:
        """Send ``QUIT`` and close the connection."""
        if self._writer.is_closing():
            return
        try:
            await self._request(b"QUIT\n")
        except (ConnectionError, ServiceClosedError):  # pragma: no cover
            pass
        self._writer.close()

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- plumbing --------------------------------------------------------------

    async def _request(self, payload: bytes) -> str:
        self._writer.write(payload)
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServiceClosedError("server closed the connection")
        text = line.decode("ascii").rstrip("\n")
        if text.startswith("ERR"):
            raise ServiceError(text[4:] or "unspecified server error")
        return text

    @staticmethod
    def _ok_args(text: str) -> list[str]:
        parts = text.split()
        if not parts or parts[0] != "OK":
            raise ServiceError(f"unexpected response {text!r}")
        return parts[1:]

    # -- commands --------------------------------------------------------------

    async def ping(self) -> bool:
        return await self._request(b"PING\n") == "PONG"

    async def update(self, item: int, weight: float = 1.0) -> None:
        # repr() is the shortest round-trip form: '%g'-style formatting
        # would silently truncate weights to 6 significant digits.
        await self._request(f"UPDATE {int(item)} {weight!r}\n".encode("ascii"))

    async def send_batch(self, items, weights=None, *, binary: bool = True) -> int:
        """Ship one update batch; returns the server-acknowledged count.

        ``binary=True`` (default) uses the ``BIN`` frame — arrays travel
        verbatim; the text ``BATCH`` form exists for debugging by hand.
        Batches beyond the protocol's per-frame cap are chunked
        transparently; an empty batch is a no-op (matching
        ``IngestPipeline.submit``).
        """
        items = np.ascontiguousarray(items, dtype=np.uint64)
        if weights is None:
            weights = np.ones(len(items), dtype=np.float64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        acknowledged = 0
        # Text pairs are ~25 bytes each; keep BATCH lines far inside the
        # server's MAX_LINE_BYTES.
        chunk = protocol.MAX_BIN_ITEMS if binary else 10_000
        for lo in range(0, len(items), chunk):
            part_items = items[lo : lo + chunk]
            part_weights = weights[lo : lo + chunk]
            if binary:
                payload = protocol.encode_bin_frame(part_items, part_weights)
            else:
                payload = protocol.encode_batch_line(part_items, part_weights)
            reply = self._ok_args(await self._request(payload))
            acknowledged += int(reply[0])
        return acknowledged

    async def estimate(self, item: int) -> float:
        reply = self._ok_args(await self._request(f"EST {int(item)}\n".encode()))
        return float(reply[0])

    async def bounds(self, item: int) -> tuple[float, float, float]:
        """``(lower_bound, estimate, upper_bound)`` for one item."""
        reply = self._ok_args(await self._request(f"BOUNDS {int(item)}\n".encode()))
        return float(reply[0]), float(reply[1]), float(reply[2])

    async def heavy_hitters(self, phi: float) -> list[tuple[int, float]]:
        """``(item, estimate)`` pairs, sorted by estimate descending."""
        reply = self._ok_args(await self._request(f"HH {phi:g}\n".encode()))
        count = int(reply[0])
        pairs = []
        for token in reply[1 : 1 + count]:
            item_text, _sep, estimate_text = token.partition(":")
            pairs.append((int(item_text), float(estimate_text)))
        return pairs

    async def stats(self) -> dict:
        text = await self._request(b"STATS\n")
        return json.loads(text[3:])

    async def snapshot(self) -> int:
        """Force a checkpoint; returns the checkpointed sequence number."""
        reply = self._ok_args(await self._request(b"SNAPSHOT\n"))
        return int(reply[0])
