"""The line protocol the streaming service speaks over TCP.

Requests are single ASCII lines terminated by ``\\n``; responses are one
line starting with ``OK``, ``ERR``, ``PONG``, or ``BYE``.  Item ids are
decimal 64-bit unsigned integers, weights decimal floats.

=========================  =============================================
request                    response
=========================  =============================================
``PING``                   ``PONG``
``UPDATE <item> [w]``      ``OK`` (weight defaults to 1)
``BATCH <i>:<w> ...``      ``OK <n>`` — n pairs ingested as one batch
``BIN <n>``                ``OK <n>`` — the line is followed by exactly
                           ``16 * n`` bytes of payload: n little-endian
                           uint64 items, then n little-endian float64
                           weights (the high-throughput path)
``BINS <n> <sid> <fseq>``  ``OK <n>`` (or ``OK 0`` for a replayed
                           duplicate) — a ``BIN`` frame stamped with a
                           client session id and per-session frame
                           sequence, so a reconnecting client can
                           resubmit an unacknowledged frame without
                           risking double ingestion
``EST <item>``             ``OK <estimate>``
``BOUNDS <item>``          ``OK <lower> <estimate> <upper>``
``HH <phi>``               ``OK <n> <item>:<estimate> ...``
``QEST <item>``            ``OK <seq> <estimate>`` — the estimate plus
                           the applied sequence it was read at (the
                           staleness stamp; see ``docs/service.md``)
``QBOUNDS <item>``         ``OK <seq> <lower> <estimate> <upper>``
``QHH <phi>``              ``OK <seq> <n> <item>:<estimate> ...``
``STATS``                  ``OK <json>`` — pipeline + sketch counters
``SNAPSHOT``               ``OK <seq>`` — force a checkpoint now
``REPL STATUS``            ``OK <json>`` — role, seq, epoch, follower
                           lags
``REPL PROMOTE``           ``OK <seq>`` — detach from the leader and
                           start accepting writes; a no-op (still
                           ``OK``) when the node already leads
``REPL HELLO <seq> [e]``   ``OK <leader_seq> <epoch>`` — subscribe this
                           connection as a follower at epoch ``e``
                           (default 0); see below
``REPL PEERS``             ``OK <json>`` — the replica set: epoch,
                           leader id/address, this node's id and role
``REPL ELECT <e> <s>       ``OK GRANT <e>`` or ``OK DENY <e> <ldr|->``
``  <cand>``               — request this node's vote for candidate
                           ``cand`` at epoch ``e`` with last applied
                           sequence ``s`` (see ``docs/service.md``)
``REPL LEADER <e> <id>     ``OK <e>`` — leadership announcement; a
``  <host:port>``          stale epoch gets ``ERR`` carrying the
                           current one, fencing the announcer
``QUIT``                   ``BYE``, then the connection closes
=========================  =============================================

**Tenant verbs (cluster mode).**  A server started with ``--workers N``
serves many named tenant streams, each its own sketch, routed across
worker processes by a consistent-hash ring.  Tenant names match
:data:`TENANT_NAME_PATTERN`.  The legacy single-tenant verbs above keep
working: they operate on an implicitly created ``default`` tenant.

==============================  ========================================
request                         response
==============================  ========================================
``TCREATE <name> [k]``          ``OK <json spec>`` — register a tenant
``  [backend] [seed] [shards]``  (idempotent when the spec is identical;
                                a ``-`` parameter means "server default")
``TDROP <name>``                ``OK`` — drop the tenant and its state
``TLIST``                       ``OK <json list of specs>``
``TBIN <name> <n>``             ``OK <n>`` — a ``BIN`` frame addressed
                                to one tenant (16 × n payload bytes
                                follow the line, same layout as ``BIN``)
``TUPDATE <name> <item> [w]``   ``OK``
``TEST <name> <item>``          ``OK <estimate>``
``TBOUNDS <name> <item>``       ``OK <lower> <estimate> <upper>``
``THH <name> <phi>``            ``OK <seq> <n> <item>:<estimate> ...``
                                — the tenant's merged view (a sharded
                                tenant folds its substreams)
``QEST <item>``                 ``OK <seq> <estimate>`` — merged over
                                **all** tenants; ``<seq>`` is the sum of
                                per-substream applied watermarks
``QHH <phi>``                   ``OK <seq> <n> <item>:<estimate> ...``
``DRAIN``                       ``OK <seq>`` — await every in-flight
                                frame applied; returns the watermark sum
==============================  ========================================

Malformed requests get ``ERR <reason>`` and the connection stays open;
update batches are validated atomically (a rejected batch ingests
nothing).  The binary framing exists because parsing decimal text caps
throughput far below the sketch engine — ``BIN`` moves arrays verbatim.

**The replication stream.**  After ``REPL HELLO <last_applied_seq>`` is
acknowledged, the connection leaves the request/response protocol: the
leader pushes tagged binary frames and the follower sends back
``ACK <seq>\\n`` text lines on the same socket.  Each frame is one tag
byte followed by a tag-specific body:

- ``b"W"`` — one micro-batch, in exactly the RWAL on-disk record format
  (``uint64 seq, uint32 count, uint32 crc`` then the item and weight
  arrays; see ``docs/serialization.md``).  Appending the body verbatim
  to a follower WAL segment is valid by construction.
- ``b"F"`` — a fenced micro-batch: ``uint64 epoch``, then ``uint16``
  stamp count followed by that many ``(uint8 len, len ascii bytes,
  uint64 frame_seq)`` client idempotency stamps, then the RWAL record
  exactly as in ``W``.  The epoch fences stale leaders (a follower
  rejects any frame whose epoch is below its own) and the stamps
  replicate the ``BINS`` dedup registry so client resubmits stay
  exactly-once across a failover.
- ``b"S"`` — a ``uint64`` length followed by a complete RSNP snapshot
  blob.  Sent when the follower's next sequence has fallen out of the
  leader's replay window (seq-gap triggered bootstrap/catch-up).
- ``b"H"`` — a ``uint64`` leader applied sequence: a heartbeat, letting
  an idle follower measure its staleness.

A frame that fails its CRC, carries an unknown tag, or exceeds the size
caps raises :class:`~repro.errors.ReplicationError`; the follower's only
safe move is to drop the connection and re-subscribe from its last
applied sequence — frames at or below it are skipped on replay, so
duplicated delivery is harmless and nothing can be applied twice.
"""

from __future__ import annotations

import asyncio
import re
import struct

import numpy as np

from repro.errors import ReplicationError
from repro.service.snapshot import (
    WAL_RECORD_HEADER_SIZE,
    decode_wal_payload,
    encode_wal_record,
    parse_wal_record_header,
)

#: Hard cap on one BIN frame (1M updates = 16 MiB); oversized length
#: prefixes are rejected before any allocation happens.
MAX_BIN_ITEMS = 1_000_000

#: Hard cap on one request line (BATCH lines grow with their payload).
MAX_LINE_BYTES = 1 << 20

#: What a tenant name may look like: filesystem-safe (it names the
#: tenant's WAL/snapshot directory), protocol-safe (no whitespace), and
#: short.  ``#`` is reserved — the cluster uses it for shard substreams.
TENANT_NAME_PATTERN = r"^[A-Za-z0-9_.-]{1,64}$"

_TENANT_NAME_RE = re.compile(TENANT_NAME_PATTERN)


def valid_tenant_name(name: str) -> bool:
    """True when ``name`` is acceptable as a tenant stream name."""
    return bool(_TENANT_NAME_RE.match(name))

#: Replication frame tags (one byte on the wire).
REPL_FRAME_WAL = b"W"
REPL_FRAME_SNAPSHOT = b"S"
REPL_FRAME_HEARTBEAT = b"H"
REPL_FRAME_FENCED = b"F"

#: Hard cap on one shipped snapshot blob (256 MiB); a flipped length
#: prefix must never turn into an allocation bomb.
MAX_SNAPSHOT_BYTES = 1 << 28

#: Hard cap on idempotency stamps carried by one fenced frame.  A
#: micro-batch coalesces at most a few in-flight client frames; a count
#: beyond this is a corrupt prefix, not a big batch.
MAX_FRAME_STAMPS = 256

#: Session ids are client-chosen tokens; same shape as tenant names.
MAX_SESSION_ID_BYTES = 64

_SNAP_LEN = struct.Struct("<Q")
_HEARTBEAT = struct.Struct("<Q")
_EPOCH = struct.Struct("<Q")
_STAMP_COUNT = struct.Struct("<H")
_STAMP_SEQ = struct.Struct("<Q")

#: Replica/candidate ids share the tenant-name alphabet: protocol-safe
#: (single token on a line) and filesystem-safe (they name data dirs).
_REPLICA_ID_RE = re.compile(TENANT_NAME_PATTERN)
_SESSION_ID_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")

_UINT64_MAX = (1 << 64) - 1


def valid_replica_id(replica_id: str) -> bool:
    """True when ``replica_id`` may appear in election protocol lines."""
    return bool(_REPLICA_ID_RE.match(replica_id))


def valid_session_id(session: str) -> bool:
    """True when ``session`` may ride inside a fenced replication frame."""
    return bool(_SESSION_ID_RE.match(session))


def encode_repl_wal_frame(seq: int, items: np.ndarray,
                          weights: np.ndarray) -> bytes:
    """A ``W`` frame: tag byte + the RWAL record, byte for byte."""
    return REPL_FRAME_WAL + encode_wal_record(seq, items, weights)


def encode_repl_snapshot_frame(blob: bytes) -> bytes:
    """An ``S`` frame: tag byte + uint64 length + RSNP snapshot blob."""
    return REPL_FRAME_SNAPSHOT + _SNAP_LEN.pack(len(blob)) + blob


def encode_repl_heartbeat(seq: int) -> bytes:
    """An ``H`` frame: tag byte + uint64 leader applied sequence."""
    return REPL_FRAME_HEARTBEAT + _HEARTBEAT.pack(seq)


def encode_repl_fenced_frame(
    epoch: int,
    stamps,
    seq: int,
    items: np.ndarray,
    weights: np.ndarray,
) -> bytes:
    """An ``F`` frame: epoch + client idempotency stamps + RWAL record.

    ``stamps`` is a sequence of ``(session_id, frame_seq)`` pairs taken
    from the ``BINS`` frames coalesced into this micro-batch; followers
    replay them into their resume-session registry so a client resubmit
    after failover is recognized as a duplicate.
    """
    if len(stamps) > MAX_FRAME_STAMPS:
        raise ValueError(
            f"{len(stamps)} stamps on one frame (cap {MAX_FRAME_STAMPS})"
        )
    parts = [REPL_FRAME_FENCED, _EPOCH.pack(epoch),
             _STAMP_COUNT.pack(len(stamps))]
    for session, frame_seq in stamps:
        raw = session.encode("ascii")
        if not raw or len(raw) > MAX_SESSION_ID_BYTES:
            raise ValueError(f"session id {session!r} outside 1..64 bytes")
        parts.append(bytes((len(raw),)))
        parts.append(raw)
        parts.append(_STAMP_SEQ.pack(frame_seq))
    parts.append(encode_wal_record(seq, items, weights))
    return b"".join(parts)


async def read_repl_frame(reader: asyncio.StreamReader):
    """Read one replication frame from ``reader``.

    Returns ``("wal", seq, items, weights)``, ``("fenced", epoch,
    stamps, seq, items, weights)``, ``("snapshot", blob)``,
    ``("heartbeat", seq)``, or ``None`` on a clean EOF at a frame
    boundary.  Anything else — an unknown tag, a truncated frame, a
    length prefix beyond the caps, a failed record CRC — raises
    :class:`~repro.errors.ReplicationError`: a replication stream can
    never be resynchronized mid-frame, so the caller must close and
    re-subscribe from its last applied sequence.
    """
    tag = await reader.read(1)
    if not tag:
        return None
    try:
        if tag == REPL_FRAME_WAL:
            head = await reader.readexactly(WAL_RECORD_HEADER_SIZE)
            seq, count, stored_crc = parse_wal_record_header(head)
            if count > MAX_BIN_ITEMS:
                raise ReplicationError(
                    f"replication frame {seq} claims {count} updates "
                    f"(cap {MAX_BIN_ITEMS}); corrupt length prefix"
                )
            payload = await reader.readexactly(16 * count)
            try:
                items, weights = decode_wal_payload(
                    seq, count, stored_crc, payload
                )
            except ValueError as exc:  # SerializationError included
                raise ReplicationError(str(exc)) from exc
            return "wal", seq, items, weights
        if tag == REPL_FRAME_FENCED:
            (epoch,) = _EPOCH.unpack(await reader.readexactly(_EPOCH.size))
            (nstamps,) = _STAMP_COUNT.unpack(
                await reader.readexactly(_STAMP_COUNT.size)
            )
            if nstamps > MAX_FRAME_STAMPS:
                raise ReplicationError(
                    f"fenced frame claims {nstamps} stamps "
                    f"(cap {MAX_FRAME_STAMPS}); corrupt stamp count"
                )
            stamps = []
            for _ in range(nstamps):
                (slen,) = await reader.readexactly(1)
                if not 1 <= slen <= MAX_SESSION_ID_BYTES:
                    raise ReplicationError(
                        f"fenced frame stamp length {slen} outside "
                        f"1..{MAX_SESSION_ID_BYTES}"
                    )
                raw = await reader.readexactly(slen)
                try:
                    session = raw.decode("ascii")
                except UnicodeDecodeError as exc:
                    raise ReplicationError(
                        "fenced frame stamp session id is not ASCII"
                    ) from exc
                if not _SESSION_ID_RE.match(session):
                    raise ReplicationError(
                        f"fenced frame stamp session id {session!r} "
                        "outside the session alphabet"
                    )
                (frame_seq,) = _STAMP_SEQ.unpack(
                    await reader.readexactly(_STAMP_SEQ.size)
                )
                stamps.append((session, frame_seq))
            head = await reader.readexactly(WAL_RECORD_HEADER_SIZE)
            seq, count, stored_crc = parse_wal_record_header(head)
            if count > MAX_BIN_ITEMS:
                raise ReplicationError(
                    f"fenced frame {seq} claims {count} updates "
                    f"(cap {MAX_BIN_ITEMS}); corrupt length prefix"
                )
            payload = await reader.readexactly(16 * count)
            try:
                items, weights = decode_wal_payload(
                    seq, count, stored_crc, payload
                )
            except ValueError as exc:  # SerializationError included
                raise ReplicationError(str(exc)) from exc
            return "fenced", epoch, tuple(stamps), seq, items, weights
        if tag == REPL_FRAME_SNAPSHOT:
            (length,) = _SNAP_LEN.unpack(
                await reader.readexactly(_SNAP_LEN.size)
            )
            if length > MAX_SNAPSHOT_BYTES:
                raise ReplicationError(
                    f"shipped snapshot claims {length} bytes "
                    f"(cap {MAX_SNAPSHOT_BYTES}); corrupt length prefix"
                )
            return "snapshot", await reader.readexactly(length)
        if tag == REPL_FRAME_HEARTBEAT:
            (seq,) = _HEARTBEAT.unpack(
                await reader.readexactly(_HEARTBEAT.size)
            )
            return "heartbeat", seq
    except asyncio.IncompleteReadError as exc:
        raise ReplicationError(
            f"replication stream truncated mid-frame (tag {tag!r})"
        ) from exc
    raise ReplicationError(f"unknown replication frame tag {tag!r}")


def encode_bin_frame(items: np.ndarray, weights: np.ndarray) -> bytes:
    """The ``BIN`` command line plus its binary payload, ready to send."""
    n = len(items)
    return (
        f"BIN {n}\n".encode("ascii")
        + np.ascontiguousarray(items, dtype="<u8").tobytes()
        + np.ascontiguousarray(weights, dtype="<f8").tobytes()
    )


def encode_tbin_frame(
    tenant: str, items: np.ndarray, weights: np.ndarray
) -> bytes:
    """The ``TBIN`` command line plus payload: a ``BIN`` frame addressed
    to one named tenant stream (cluster mode's high-throughput path)."""
    n = len(items)
    return (
        f"TBIN {tenant} {n}\n".encode("ascii")
        + np.ascontiguousarray(items, dtype="<u8").tobytes()
        + np.ascontiguousarray(weights, dtype="<f8").tobytes()
    )


def decode_bin_payload(payload: bytes, count: int) -> tuple[np.ndarray, np.ndarray]:
    """Split a ``BIN`` payload back into writable (items, weights) arrays."""
    items = np.frombuffer(payload, dtype="<u8", count=count).astype(np.uint64)
    weights = np.frombuffer(
        payload, dtype="<f8", count=count, offset=8 * count
    ).astype(np.float64)
    return items, weights


def encode_bins_frame(
    items: np.ndarray, weights: np.ndarray, session: str, frame_seq: int
) -> bytes:
    """A ``BINS`` command line plus payload: a ``BIN`` frame stamped with
    a client session id and frame sequence so resends are idempotent."""
    n = len(items)
    return (
        f"BINS {n} {session} {frame_seq}\n".encode("ascii")
        + np.ascontiguousarray(items, dtype="<u8").tobytes()
        + np.ascontiguousarray(weights, dtype="<f8").tobytes()
    )


def encode_batch_line(items, weights) -> bytes:
    """The text ``BATCH`` form (debuggable, slow) of one update batch."""
    pairs = " ".join(
        # repr() round-trips exactly; '%g' would truncate to 6 digits.
        f"{int(item)}:{float(weight)!r}" for item, weight in zip(items, weights)
    )
    return f"BATCH {pairs}\n".encode("ascii")


def parse_batch_args(args: list[str]) -> tuple[np.ndarray, np.ndarray]:
    """Parse ``<item>:<weight>`` tokens into (items, weights) arrays."""
    items = np.empty(len(args), dtype=np.uint64)
    weights = np.empty(len(args), dtype=np.float64)
    for index, token in enumerate(args):
        item_text, _sep, weight_text = token.partition(":")
        value = int(item_text)
        if not 0 <= value < 1 << 64:
            raise ValueError(f"item id {value} outside the uint64 range")
        items[index] = value
        weights[index] = float(weight_text) if weight_text else 1.0
    return items, weights


# --------------------------------------------------------------------------
# Election protocol lines.  These parsers face the network (any peer can
# send any bytes), so like the binary frame reader they refuse everything
# malformed with ReplicationError — never ValueError, never an exception
# that could escape a dispatch loop with a stack trace.


def _parse_uint64(text: str, what: str) -> int:
    if not text.isdigit():
        raise ReplicationError(f"{what} {text!r} is not a decimal integer")
    value = int(text)
    if value > _UINT64_MAX:
        raise ReplicationError(f"{what} {value} outside the uint64 range")
    return value


def encode_elect_line(epoch: int, last_seq: int, candidate_id: str) -> bytes:
    """The ``REPL ELECT`` request a candidate sends to each peer."""
    if not valid_replica_id(candidate_id):
        raise ValueError(f"invalid candidate id {candidate_id!r}")
    return f"REPL ELECT {epoch} {last_seq} {candidate_id}\n".encode("ascii")


def parse_elect_args(args: list[str]) -> tuple[int, int, str]:
    """Parse the tokens after ``REPL ELECT`` into (epoch, last_seq, id)."""
    if len(args) != 3:
        raise ReplicationError(
            f"ELECT takes <epoch> <last_seq> <candidate>; got {len(args)} args"
        )
    epoch = _parse_uint64(args[0], "election epoch")
    last_seq = _parse_uint64(args[1], "candidate applied seq")
    candidate = args[2]
    if not valid_replica_id(candidate):
        raise ReplicationError(f"invalid candidate id {candidate!r}")
    return epoch, last_seq, candidate


def encode_vote_reply(granted: bool, epoch: int, leader: str | None) -> str:
    """The response line body to a ``REPL ELECT`` request (after ``OK``).

    ``OK GRANT <epoch>`` grants the vote; ``OK DENY <epoch> <leader|->``
    refuses it while teaching the candidate the voter's current epoch
    and (when known) leader id, so a stale candidate can adopt instead
    of retrying forever.
    """
    if granted:
        return f"GRANT {epoch}"
    return f"DENY {epoch} {leader if leader else '-'}"


def parse_vote_reply(args: list[str]) -> tuple[bool, int, str | None]:
    """Parse a vote reply's ``OK`` arguments into (granted, epoch, leader)."""
    if len(args) == 2 and args[0] == "GRANT":
        return True, _parse_uint64(args[1], "vote epoch"), None
    if len(args) == 3 and args[0] == "DENY":
        epoch = _parse_uint64(args[1], "vote epoch")
        leader = None if args[2] == "-" else args[2]
        if leader is not None and not valid_replica_id(leader):
            raise ReplicationError(f"invalid leader id {leader!r}")
        return False, epoch, leader
    raise ReplicationError(f"malformed vote reply {' '.join(args)!r}")


def encode_leader_line(epoch: int, leader_id: str, addr: str) -> bytes:
    """The ``REPL LEADER`` announcement a fresh leader sends to peers."""
    if not valid_replica_id(leader_id):
        raise ValueError(f"invalid leader id {leader_id!r}")
    return f"REPL LEADER {epoch} {leader_id} {addr}\n".encode("ascii")


def parse_leader_args(args: list[str]) -> tuple[int, str, str]:
    """Parse the tokens after ``REPL LEADER`` into (epoch, id, addr)."""
    if len(args) != 3:
        raise ReplicationError(
            f"LEADER takes <epoch> <id> <host:port>; got {len(args)} args"
        )
    epoch = _parse_uint64(args[0], "leader epoch")
    leader_id = args[1]
    if not valid_replica_id(leader_id):
        raise ReplicationError(f"invalid leader id {leader_id!r}")
    addr = args[2]
    host, sep, port_text = addr.rpartition(":")
    if not sep or not host or not port_text.isdigit():
        raise ReplicationError(f"invalid leader address {addr!r}")
    if not 0 < int(port_text) < 65536:
        raise ReplicationError(f"leader port {port_text} outside 1..65535")
    return epoch, leader_id, addr


def parse_peers_reply(payload: str) -> dict:
    """Parse the JSON body of a ``REPL PEERS`` reply, defensively.

    The reply crosses the network, so a malformed body raises
    :class:`~repro.errors.ReplicationError` rather than whatever
    ``json`` or a key lookup would throw.
    """
    import json

    try:
        doc = json.loads(payload)
    except (ValueError, TypeError) as exc:
        raise ReplicationError(f"malformed PEERS reply: {exc}") from exc
    if not isinstance(doc, dict):
        raise ReplicationError("PEERS reply is not a JSON object")
    epoch = doc.get("epoch", 0)
    if not isinstance(epoch, int) or not 0 <= epoch <= _UINT64_MAX:
        raise ReplicationError(f"PEERS reply epoch {epoch!r} is invalid")
    peers = doc.get("peers", {})
    if not isinstance(peers, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in peers.items()
    ):
        raise ReplicationError("PEERS reply peer map is invalid")
    leader = doc.get("leader_id")
    if leader is not None and not isinstance(leader, str):
        raise ReplicationError(f"PEERS reply leader id {leader!r} is invalid")
    return doc
