"""The line protocol the streaming service speaks over TCP.

Requests are single ASCII lines terminated by ``\\n``; responses are one
line starting with ``OK``, ``ERR``, ``PONG``, or ``BYE``.  Item ids are
decimal 64-bit unsigned integers, weights decimal floats.

=========================  =============================================
request                    response
=========================  =============================================
``PING``                   ``PONG``
``UPDATE <item> [w]``      ``OK`` (weight defaults to 1)
``BATCH <i>:<w> ...``      ``OK <n>`` — n pairs ingested as one batch
``BIN <n>``                ``OK <n>`` — the line is followed by exactly
                           ``16 * n`` bytes of payload: n little-endian
                           uint64 items, then n little-endian float64
                           weights (the high-throughput path)
``BINS <n> <sid> <fseq>``  ``OK <n>`` (or ``OK 0`` for a replayed
                           duplicate) — a ``BIN`` frame stamped with a
                           client session id and per-session frame
                           sequence, so a reconnecting client can
                           resubmit an unacknowledged frame without
                           risking double ingestion
``EST <item>``             ``OK <estimate>``
``BOUNDS <item>``          ``OK <lower> <estimate> <upper>``
``HH <phi>``               ``OK <n> <item>:<estimate> ...``
``QEST <item>``            ``OK <seq> <estimate>`` — the estimate plus
                           the applied sequence it was read at (the
                           staleness stamp; see ``docs/service.md``)
``QBOUNDS <item>``         ``OK <seq> <lower> <estimate> <upper>``
``QHH <phi>``              ``OK <seq> <n> <item>:<estimate> ...``
``STATS``                  ``OK <json>`` — pipeline + sketch counters
``SNAPSHOT``               ``OK <seq>`` — force a checkpoint now
``REPL STATUS``            ``OK <json>`` — role, seq, follower lags
``REPL PROMOTE``           ``OK <seq>`` — follower only: detach from
                           the leader and start accepting writes
``REPL HELLO <seq>``       ``OK <leader_seq>`` — subscribe this
                           connection as a follower; see below
``QUIT``                   ``BYE``, then the connection closes
=========================  =============================================

**Tenant verbs (cluster mode).**  A server started with ``--workers N``
serves many named tenant streams, each its own sketch, routed across
worker processes by a consistent-hash ring.  Tenant names match
:data:`TENANT_NAME_PATTERN`.  The legacy single-tenant verbs above keep
working: they operate on an implicitly created ``default`` tenant.

==============================  ========================================
request                         response
==============================  ========================================
``TCREATE <name> [k]``          ``OK <json spec>`` — register a tenant
``  [backend] [seed] [shards]``  (idempotent when the spec is identical;
                                a ``-`` parameter means "server default")
``TDROP <name>``                ``OK`` — drop the tenant and its state
``TLIST``                       ``OK <json list of specs>``
``TBIN <name> <n>``             ``OK <n>`` — a ``BIN`` frame addressed
                                to one tenant (16 × n payload bytes
                                follow the line, same layout as ``BIN``)
``TUPDATE <name> <item> [w]``   ``OK``
``TEST <name> <item>``          ``OK <estimate>``
``TBOUNDS <name> <item>``       ``OK <lower> <estimate> <upper>``
``THH <name> <phi>``            ``OK <seq> <n> <item>:<estimate> ...``
                                — the tenant's merged view (a sharded
                                tenant folds its substreams)
``QEST <item>``                 ``OK <seq> <estimate>`` — merged over
                                **all** tenants; ``<seq>`` is the sum of
                                per-substream applied watermarks
``QHH <phi>``                   ``OK <seq> <n> <item>:<estimate> ...``
``DRAIN``                       ``OK <seq>`` — await every in-flight
                                frame applied; returns the watermark sum
==============================  ========================================

Malformed requests get ``ERR <reason>`` and the connection stays open;
update batches are validated atomically (a rejected batch ingests
nothing).  The binary framing exists because parsing decimal text caps
throughput far below the sketch engine — ``BIN`` moves arrays verbatim.

**The replication stream.**  After ``REPL HELLO <last_applied_seq>`` is
acknowledged, the connection leaves the request/response protocol: the
leader pushes tagged binary frames and the follower sends back
``ACK <seq>\\n`` text lines on the same socket.  Each frame is one tag
byte followed by a tag-specific body:

- ``b"W"`` — one micro-batch, in exactly the RWAL on-disk record format
  (``uint64 seq, uint32 count, uint32 crc`` then the item and weight
  arrays; see ``docs/serialization.md``).  Appending the body verbatim
  to a follower WAL segment is valid by construction.
- ``b"S"`` — a ``uint64`` length followed by a complete RSNP snapshot
  blob.  Sent when the follower's next sequence has fallen out of the
  leader's replay window (seq-gap triggered bootstrap/catch-up).
- ``b"H"`` — a ``uint64`` leader applied sequence: a heartbeat, letting
  an idle follower measure its staleness.

A frame that fails its CRC, carries an unknown tag, or exceeds the size
caps raises :class:`~repro.errors.ReplicationError`; the follower's only
safe move is to drop the connection and re-subscribe from its last
applied sequence — frames at or below it are skipped on replay, so
duplicated delivery is harmless and nothing can be applied twice.
"""

from __future__ import annotations

import asyncio
import re
import struct

import numpy as np

from repro.errors import ReplicationError
from repro.service.snapshot import (
    WAL_RECORD_HEADER_SIZE,
    decode_wal_payload,
    encode_wal_record,
    parse_wal_record_header,
)

#: Hard cap on one BIN frame (1M updates = 16 MiB); oversized length
#: prefixes are rejected before any allocation happens.
MAX_BIN_ITEMS = 1_000_000

#: Hard cap on one request line (BATCH lines grow with their payload).
MAX_LINE_BYTES = 1 << 20

#: What a tenant name may look like: filesystem-safe (it names the
#: tenant's WAL/snapshot directory), protocol-safe (no whitespace), and
#: short.  ``#`` is reserved — the cluster uses it for shard substreams.
TENANT_NAME_PATTERN = r"^[A-Za-z0-9_.-]{1,64}$"

_TENANT_NAME_RE = re.compile(TENANT_NAME_PATTERN)


def valid_tenant_name(name: str) -> bool:
    """True when ``name`` is acceptable as a tenant stream name."""
    return bool(_TENANT_NAME_RE.match(name))

#: Replication frame tags (one byte on the wire).
REPL_FRAME_WAL = b"W"
REPL_FRAME_SNAPSHOT = b"S"
REPL_FRAME_HEARTBEAT = b"H"

#: Hard cap on one shipped snapshot blob (256 MiB); a flipped length
#: prefix must never turn into an allocation bomb.
MAX_SNAPSHOT_BYTES = 1 << 28

_SNAP_LEN = struct.Struct("<Q")
_HEARTBEAT = struct.Struct("<Q")


def encode_repl_wal_frame(seq: int, items: np.ndarray,
                          weights: np.ndarray) -> bytes:
    """A ``W`` frame: tag byte + the RWAL record, byte for byte."""
    return REPL_FRAME_WAL + encode_wal_record(seq, items, weights)


def encode_repl_snapshot_frame(blob: bytes) -> bytes:
    """An ``S`` frame: tag byte + uint64 length + RSNP snapshot blob."""
    return REPL_FRAME_SNAPSHOT + _SNAP_LEN.pack(len(blob)) + blob


def encode_repl_heartbeat(seq: int) -> bytes:
    """An ``H`` frame: tag byte + uint64 leader applied sequence."""
    return REPL_FRAME_HEARTBEAT + _HEARTBEAT.pack(seq)


async def read_repl_frame(reader: asyncio.StreamReader):
    """Read one replication frame from ``reader``.

    Returns ``("wal", seq, items, weights)``, ``("snapshot", blob)``,
    ``("heartbeat", seq)``, or ``None`` on a clean EOF at a frame
    boundary.  Anything else — an unknown tag, a truncated frame, a
    length prefix beyond the caps, a failed record CRC — raises
    :class:`~repro.errors.ReplicationError`: a replication stream can
    never be resynchronized mid-frame, so the caller must close and
    re-subscribe from its last applied sequence.
    """
    tag = await reader.read(1)
    if not tag:
        return None
    try:
        if tag == REPL_FRAME_WAL:
            head = await reader.readexactly(WAL_RECORD_HEADER_SIZE)
            seq, count, stored_crc = parse_wal_record_header(head)
            if count > MAX_BIN_ITEMS:
                raise ReplicationError(
                    f"replication frame {seq} claims {count} updates "
                    f"(cap {MAX_BIN_ITEMS}); corrupt length prefix"
                )
            payload = await reader.readexactly(16 * count)
            try:
                items, weights = decode_wal_payload(
                    seq, count, stored_crc, payload
                )
            except ValueError as exc:  # SerializationError included
                raise ReplicationError(str(exc)) from exc
            return "wal", seq, items, weights
        if tag == REPL_FRAME_SNAPSHOT:
            (length,) = _SNAP_LEN.unpack(
                await reader.readexactly(_SNAP_LEN.size)
            )
            if length > MAX_SNAPSHOT_BYTES:
                raise ReplicationError(
                    f"shipped snapshot claims {length} bytes "
                    f"(cap {MAX_SNAPSHOT_BYTES}); corrupt length prefix"
                )
            return "snapshot", await reader.readexactly(length)
        if tag == REPL_FRAME_HEARTBEAT:
            (seq,) = _HEARTBEAT.unpack(
                await reader.readexactly(_HEARTBEAT.size)
            )
            return "heartbeat", seq
    except asyncio.IncompleteReadError as exc:
        raise ReplicationError(
            f"replication stream truncated mid-frame (tag {tag!r})"
        ) from exc
    raise ReplicationError(f"unknown replication frame tag {tag!r}")


def encode_bin_frame(items: np.ndarray, weights: np.ndarray) -> bytes:
    """The ``BIN`` command line plus its binary payload, ready to send."""
    n = len(items)
    return (
        f"BIN {n}\n".encode("ascii")
        + np.ascontiguousarray(items, dtype="<u8").tobytes()
        + np.ascontiguousarray(weights, dtype="<f8").tobytes()
    )


def encode_tbin_frame(
    tenant: str, items: np.ndarray, weights: np.ndarray
) -> bytes:
    """The ``TBIN`` command line plus payload: a ``BIN`` frame addressed
    to one named tenant stream (cluster mode's high-throughput path)."""
    n = len(items)
    return (
        f"TBIN {tenant} {n}\n".encode("ascii")
        + np.ascontiguousarray(items, dtype="<u8").tobytes()
        + np.ascontiguousarray(weights, dtype="<f8").tobytes()
    )


def decode_bin_payload(payload: bytes, count: int) -> tuple[np.ndarray, np.ndarray]:
    """Split a ``BIN`` payload back into writable (items, weights) arrays."""
    items = np.frombuffer(payload, dtype="<u8", count=count).astype(np.uint64)
    weights = np.frombuffer(
        payload, dtype="<f8", count=count, offset=8 * count
    ).astype(np.float64)
    return items, weights


def encode_bins_frame(
    items: np.ndarray, weights: np.ndarray, session: str, frame_seq: int
) -> bytes:
    """A ``BINS`` command line plus payload: a ``BIN`` frame stamped with
    a client session id and frame sequence so resends are idempotent."""
    n = len(items)
    return (
        f"BINS {n} {session} {frame_seq}\n".encode("ascii")
        + np.ascontiguousarray(items, dtype="<u8").tobytes()
        + np.ascontiguousarray(weights, dtype="<f8").tobytes()
    )


def encode_batch_line(items, weights) -> bytes:
    """The text ``BATCH`` form (debuggable, slow) of one update batch."""
    pairs = " ".join(
        # repr() round-trips exactly; '%g' would truncate to 6 digits.
        f"{int(item)}:{float(weight)!r}" for item, weight in zip(items, weights)
    )
    return f"BATCH {pairs}\n".encode("ascii")


def parse_batch_args(args: list[str]) -> tuple[np.ndarray, np.ndarray]:
    """Parse ``<item>:<weight>`` tokens into (items, weights) arrays."""
    items = np.empty(len(args), dtype=np.uint64)
    weights = np.empty(len(args), dtype=np.float64)
    for index, token in enumerate(args):
        item_text, _sep, weight_text = token.partition(":")
        value = int(item_text)
        if not 0 <= value < 1 << 64:
            raise ValueError(f"item id {value} outside the uint64 range")
        items[index] = value
        weights[index] = float(weight_text) if weight_text else 1.0
    return items, weights
