"""The line protocol the streaming service speaks over TCP.

Requests are single ASCII lines terminated by ``\\n``; responses are one
line starting with ``OK``, ``ERR``, ``PONG``, or ``BYE``.  Item ids are
decimal 64-bit unsigned integers, weights decimal floats.

=========================  =============================================
request                    response
=========================  =============================================
``PING``                   ``PONG``
``UPDATE <item> [w]``      ``OK`` (weight defaults to 1)
``BATCH <i>:<w> ...``      ``OK <n>`` — n pairs ingested as one batch
``BIN <n>``                ``OK <n>`` — the line is followed by exactly
                           ``16 * n`` bytes of payload: n little-endian
                           uint64 items, then n little-endian float64
                           weights (the high-throughput path)
``EST <item>``             ``OK <estimate>``
``BOUNDS <item>``          ``OK <lower> <estimate> <upper>``
``HH <phi>``               ``OK <n> <item>:<estimate> ...``
``STATS``                  ``OK <json>`` — pipeline + sketch counters
``SNAPSHOT``               ``OK <seq>`` — force a checkpoint now
``QUIT``                   ``BYE``, then the connection closes
=========================  =============================================

Malformed requests get ``ERR <reason>`` and the connection stays open;
update batches are validated atomically (a rejected batch ingests
nothing).  The binary framing exists because parsing decimal text caps
throughput far below the sketch engine — ``BIN`` moves arrays verbatim.
"""

from __future__ import annotations

import numpy as np

#: Hard cap on one BIN frame (1M updates = 16 MiB); oversized length
#: prefixes are rejected before any allocation happens.
MAX_BIN_ITEMS = 1_000_000

#: Hard cap on one request line (BATCH lines grow with their payload).
MAX_LINE_BYTES = 1 << 20


def encode_bin_frame(items: np.ndarray, weights: np.ndarray) -> bytes:
    """The ``BIN`` command line plus its binary payload, ready to send."""
    n = len(items)
    return (
        f"BIN {n}\n".encode("ascii")
        + np.ascontiguousarray(items, dtype="<u8").tobytes()
        + np.ascontiguousarray(weights, dtype="<f8").tobytes()
    )


def decode_bin_payload(payload: bytes, count: int) -> tuple[np.ndarray, np.ndarray]:
    """Split a ``BIN`` payload back into writable (items, weights) arrays."""
    items = np.frombuffer(payload, dtype="<u8", count=count).astype(np.uint64)
    weights = np.frombuffer(
        payload, dtype="<f8", count=count, offset=8 * count
    ).astype(np.float64)
    return items, weights


def encode_batch_line(items, weights) -> bytes:
    """The text ``BATCH`` form (debuggable, slow) of one update batch."""
    pairs = " ".join(
        # repr() round-trips exactly; '%g' would truncate to 6 digits.
        f"{int(item)}:{float(weight)!r}" for item, weight in zip(items, weights)
    )
    return f"BATCH {pairs}\n".encode("ascii")


def parse_batch_args(args: list[str]) -> tuple[np.ndarray, np.ndarray]:
    """Parse ``<item>:<weight>`` tokens into (items, weights) arrays."""
    items = np.empty(len(args), dtype=np.uint64)
    weights = np.empty(len(args), dtype=np.float64)
    for index, token in enumerate(args):
        item_text, _sep, weight_text = token.partition(":")
        value = int(item_text)
        if not 0 <= value < 1 << 64:
            raise ValueError(f"item id {value} outside the uint64 range")
        items[index] = value
        weights[index] = float(weight_text) if weight_text else 1.0
    return items, weights
