"""Leader/follower replication for the streaming ingest service.

The durability layer (PR 5) proved that a snapshot plus a WAL replayed
with the same micro-batch boundaries reproduces a pipeline's state to
the serialized byte — PRNG words included.  Replication is that same
property stretched over a socket: the leader publishes every applied
micro-batch as a binary frame in the exact RWAL record format, a
follower applies the identical ``update_batch`` calls in the identical
order, and replica correctness reduces to blob equality.  Mergeable
summaries make the fan-out cheap (the FDCMSS line of work leans on the
same composability); deterministic replay is what makes it *testable*.

Two halves:

:class:`ReplicationManager` — leader side, one per pipeline, beside the
:class:`~repro.service.snapshot.SnapshotManager`.  Keeps a bounded
in-memory ring of recently applied frames, a registry of subscribed
followers with per-follower ack tracking, and streams frames to each
follower over the connection it subscribed on (``REPL HELLO``).  A
follower whose next sequence has fallen out of the ring — a fresh
bootstrap, a long disconnect, or a consumer slower than the ring is
long — is caught up with a full snapshot (seq-gap triggered), then
rejoins the frame stream.  Two backpressure mechanisms bound leader
memory: ``writer.drain()`` (TCP flow control) and an unacked-frame
window that pauses sending to a follower that stops acknowledging.

:class:`FollowerService` — follower side.  Connects to the leader with
bounded exponential-backoff retries, subscribes from its pipeline's
last applied sequence, and applies whatever arrives: ``W`` frames go
through :meth:`~repro.service.pipeline.IngestPipeline.
apply_replica_frame` (duplicate frames are skipped, gaps refuse),
``S`` frames install a shipped checkpoint.  Every applied frame is
acknowledged, and — with a local :class:`~repro.service.snapshot.
SnapshotManager` attached — written to the follower's own WAL, so a
killed follower recovers locally and re-subscribes from where it died.
:meth:`FollowerService.promote` detaches from the leader and lifts the
pipeline's read-only restriction: the follower becomes a leader.

Any corrupt or truncated frame raises
:class:`~repro.errors.ReplicationError`; the follower's response is
always the same — drop the connection and re-subscribe from its last
applied sequence.  Duplicated delivery after a reconnect is harmless by
construction (frames at or below the applied sequence are skipped), so
the stream needs no exactly-once transport, only exactly-once *apply*.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import (
    ReplicationError,
    ServiceClosedError,
    ServiceUnavailableError,
)
from repro.service import protocol
from repro.service.pipeline import IngestPipeline
from repro.service.snapshot import decode_snapshot, encode_snapshot


@dataclass
class ReplicationConfig:
    """Tuning for both halves of the replication stream.

    Attributes
    ----------
    ring_frames:
        How many applied frames the leader retains for replay.  A
        follower needing anything older is caught up with a snapshot.
    max_unacked_frames:
        Per-follower backpressure window: sending pauses once this many
        frames are in flight unacknowledged.
    heartbeat_interval:
        Seconds between ``H`` frames to an idle, caught-up follower.
    retry_initial / retry_max / max_retries:
        Follower-side reconnect policy: exponential backoff starting at
        ``retry_initial``, capped at ``retry_max``, giving up after
        ``max_retries`` consecutive failed attempts (a successful
        subscription resets the budget).
    retry_jitter:
        Random slack multiplied onto every backoff sleep (each delay is
        scaled by ``1 + retry_jitter * random()``), de-synchronizing the
        reconnect stampede of many followers after a leader crash.
    retry_deadline:
        Overall wall-clock budget, in seconds, for regaining a
        subscription.  ``None`` (the default) keeps only the per-attempt
        budget; with a deadline set, a follower that cannot resubscribe
        in time stops with :class:`~repro.errors.ServiceUnavailableError`
        as its last error instead of hanging forever against a cluster
        that is simply gone.  A successful subscription resets the
        clock.
    """

    ring_frames: int = 512
    max_unacked_frames: int = 256
    heartbeat_interval: float = 0.5
    retry_initial: float = 0.05
    retry_max: float = 2.0
    max_retries: int = 8
    retry_jitter: float = 0.25
    retry_deadline: Optional[float] = None


class _FollowerHandle:
    """Leader-side bookkeeping for one subscribed follower."""

    __slots__ = ("peer", "acked_seq", "sent_seq", "wake", "snapshots_sent")

    def __init__(self, peer: str, acked_seq: int) -> None:
        self.peer = peer
        self.acked_seq = acked_seq
        self.sent_seq = acked_seq
        self.snapshots_sent = 0
        self.wake = asyncio.Event()


class ReplicationManager:
    """Leader-side frame fan-out, follower registry, and ack tracking.

    Attach to an :class:`~repro.service.pipeline.IngestPipeline` via its
    ``replication=`` parameter; the pipeline calls :meth:`publish` for
    every applied micro-batch, and the server hands subscribed
    connections to :meth:`stream`.
    """

    def __init__(self, config: Optional[ReplicationConfig] = None) -> None:
        self._config = config if config is not None else ReplicationConfig()
        self._ring: deque[tuple[int, bytes]] = deque(
            maxlen=self._config.ring_frames
        )
        self._followers: dict[int, _FollowerHandle] = {}
        self._next_handle = 0
        #: The leadership epoch stamped onto every published frame.  The
        #: pipeline's epoch setter keeps this in sync; a coordinator
        #: bumps it on election.  Followers refuse frames below their
        #: own epoch, which is what fences a deposed leader.
        self.epoch = 0
        self.frames_published = 0
        self.bytes_published = 0
        self.snapshots_shipped = 0

    @property
    def config(self) -> ReplicationConfig:
        return self._config

    @property
    def num_followers(self) -> int:
        return len(self._followers)

    def min_acked_seq(self) -> Optional[int]:
        """The slowest connected follower's acknowledged sequence."""
        if not self._followers:
            return None
        return min(handle.acked_seq for handle in self._followers.values())

    def oldest_ring_seq(self) -> Optional[int]:
        return self._ring[0][0] if self._ring else None

    def status(self) -> dict:
        """The follower registry as JSON-ready rows (for ``REPL STATUS``)."""
        newest = self._ring[-1][0] if self._ring else None
        return {
            "followers": [
                {
                    "peer": handle.peer,
                    "acked_seq": handle.acked_seq,
                    "sent_seq": handle.sent_seq,
                    "lag": (newest - handle.acked_seq) if newest else 0,
                    "snapshots_sent": handle.snapshots_sent,
                }
                for handle in self._followers.values()
            ],
            "ring_oldest": self.oldest_ring_seq(),
            "ring_newest": newest,
            "frames_published": self.frames_published,
            "bytes_published": self.bytes_published,
            "snapshots_shipped": self.snapshots_shipped,
        }

    # -- publishing ------------------------------------------------------------

    def publish(self, seq: int, items, weights, stamps=()) -> None:
        """Record one applied micro-batch and wake every follower stream.

        Called synchronously from the pipeline's apply path, so the ring
        always reflects a between-batches state.  The frame is encoded
        once and shared by every follower.  Frames go out in the fenced
        ``F`` format: stamped with this manager's epoch plus any client
        ``(session, frame_seq)`` idempotency stamps the micro-batch
        coalesced (capped; overflow stamps are dropped from the frame —
        they only speed up duplicate detection, correctness comes from
        the seq-based skip).
        """
        if len(stamps) > protocol.MAX_FRAME_STAMPS:
            stamps = tuple(stamps)[-protocol.MAX_FRAME_STAMPS:]
        frame = protocol.encode_repl_fenced_frame(
            self.epoch, stamps, seq, items, weights
        )
        self._ring.append((seq, frame))
        self.frames_published += 1
        self.bytes_published += len(frame)
        for handle in self._followers.values():
            handle.wake.set()

    # -- per-connection streaming ----------------------------------------------

    async def stream(
        self,
        pipeline: IngestPipeline,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        last_seq: int,
        hello_epoch: int = 0,
    ) -> None:
        """Serve one subscribed follower until its connection drops.

        ``last_seq`` is the follower's last applied sequence from its
        ``REPL HELLO``; ``hello_epoch`` is the epoch it subscribed
        under.  Frames the ring still holds are replayed from there;
        anything older — or a follower arriving from a *stale epoch*,
        whose high sequences may cover diverged records — triggers a
        snapshot catch-up.  Runs on the server's connection handler;
        returning closes the connection.
        """
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        handle = _FollowerHandle(peer, last_seq)
        key = self._next_handle
        self._next_handle += 1
        self._followers[key] = handle
        ack_task = asyncio.get_running_loop().create_task(
            self._read_acks(reader, handle), name="repro-repl-acks"
        )
        try:
            await self._stream_frames(
                pipeline, writer, handle, ack_task,
                # A stale-epoch follower, or one claiming to be *ahead*
                # of this leader, may hold a diverged suffix — its
                # sequence number cannot index our timeline.
                force_bootstrap=(
                    hello_epoch < self.epoch
                    or last_seq > pipeline.applied_seq
                ),
            )
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass  # follower vanished; it will reconnect and re-subscribe
        finally:
            del self._followers[key]
            ack_task.cancel()
            with contextlib.suppress(
                asyncio.CancelledError, ConnectionError, OSError
            ):
                await ack_task

    async def _stream_frames(
        self, pipeline, writer, handle, ack_task, *,
        force_bootstrap: bool = False,
    ) -> None:
        config = self._config
        next_seq = handle.acked_seq + 1
        # A follower subscribing from sequence 0 has *some* fresh sketch,
        # not necessarily a twin of the leader's initial state (different
        # seed, k, backend...).  Replaying WAL frames onto it would
        # silently diverge, so bootstrap always starts from a shipped
        # checkpoint; only an already-synced follower may resume from the
        # frame ring.  A follower from a stale epoch is forced through
        # the same path: its applied sequence counts records this
        # timeline may never have shipped (a deposed leader's diverged
        # suffix), so its number cannot be trusted to index the ring.
        bootstrap = handle.acked_seq == 0 or force_bootstrap
        while True:
            if ack_task.done():
                return  # EOF or garbage on the ack channel: drop the link
            # Backpressure: a follower that stops acking stops receiving.
            while (
                handle.sent_seq - handle.acked_seq >= config.max_unacked_frames
            ):
                handle.wake.clear()
                if ack_task.done():
                    return
                await self._wait_wake(handle, config.heartbeat_interval)
                if ack_task.done():
                    return
            target = pipeline.applied_seq
            oldest = self.oldest_ring_seq()
            if bootstrap or (next_seq <= target and (
                oldest is None or next_seq < oldest
            )):
                # Bootstrap, or a seq gap: the ring no longer reaches
                # back far enough.  Ship a full checkpoint (always
                # between micro-batches here — applies are synchronous
                # on this loop).
                blob = encode_snapshot(pipeline.sketch, target)
                writer.write(protocol.encode_repl_snapshot_frame(blob))
                await writer.drain()
                bootstrap = False
                handle.snapshots_sent += 1
                self.snapshots_shipped += 1
                handle.sent_seq = target
                next_seq = target + 1
                continue
            if next_seq > target:
                # Caught up: heartbeat while idle so the follower can
                # measure staleness and detect a silent half-open link.
                handle.wake.clear()
                if pipeline.applied_seq >= next_seq:
                    continue  # published between the check and the clear
                if not await self._wait_wake(handle, config.heartbeat_interval):
                    writer.write(
                        protocol.encode_repl_heartbeat(pipeline.applied_seq)
                    )
                    await writer.drain()
                continue
            index = next_seq - oldest
            if index >= len(self._ring):  # pragma: no cover - defensive
                continue
            seq, frame = self._ring[index]
            writer.write(frame)
            await writer.drain()
            handle.sent_seq = seq
            next_seq = seq + 1

    @staticmethod
    async def _wait_wake(handle: _FollowerHandle, timeout: float) -> bool:
        """Await the handle's wake event; False on timeout."""
        try:
            await asyncio.wait_for(handle.wake.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def _read_acks(self, reader, handle: _FollowerHandle) -> None:
        """Consume ``ACK <seq>`` lines; return on EOF or a garbled line.

        Returning always wakes the stream loop — it checks this task's
        doneness before every wait, so a dropped or misbehaving follower
        is torn down promptly instead of lingering until the next
        heartbeat.
        """
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                parts = line.split()
                if len(parts) != 2 or parts[0] != b"ACK":
                    return  # protocol violation: returning drops the link
                try:
                    acked = int(parts[1])
                except ValueError:
                    return
                if acked > handle.acked_seq:
                    handle.acked_seq = acked
                handle.wake.set()
        finally:
            handle.wake.set()


class FollowerService:
    """Subscribe a replica pipeline to a leader and keep it in sync.

    Parameters
    ----------
    pipeline:
        A *replica-mode* pipeline (``IngestPipeline(..., replica=True)``)
        this service applies the leader's frames to.  It may carry its
        own :class:`~repro.service.snapshot.SnapshotManager`: replicated
        frames are then WAL-logged locally, so the follower itself
        recovers from a crash and re-subscribes from where it died.
    host, port:
        The leader's service address (the normal protocol port —
        replication shares it via ``REPL HELLO``).
    config:
        A :class:`ReplicationConfig`; only the follower-side fields
        (retry/backoff/jitter/deadline) are used here.
    on_epoch:
        Optional callback invoked with the new epoch whenever the leader
        teaches this follower a higher one (handshake or fenced frame).
        A :class:`~repro.service.failover.FailoverCoordinator` uses it
        to persist the observation.
    """

    def __init__(
        self,
        pipeline: IngestPipeline,
        host: str,
        port: int,
        *,
        config: Optional[ReplicationConfig] = None,
        on_epoch: Optional[Callable[[int], None]] = None,
        allow_rewind: bool = False,
    ) -> None:
        self._pipeline = pipeline
        self._host = host
        self._port = port
        self._config = config if config is not None else ReplicationConfig()
        self._on_epoch = on_epoch
        self._task: Optional[asyncio.Task] = None
        self._stopping = False
        self._connected = False
        self._exhausted = False
        # True once this follower may adopt a snapshot *below* its own
        # applied sequence: armed by crossing into a higher epoch, or at
        # construction by a coordinator demoting a deposed leader (whose
        # suffix is presumed diverged).
        self._allow_rewind = allow_rewind
        self._leader_seq: Optional[int] = None
        self._last_heard: Optional[float] = None
        self._last_error: Optional[BaseException] = None
        self._progress: Optional[asyncio.Event] = None
        self.frames_applied = 0
        self.frames_skipped = 0
        self.snapshots_installed = 0
        self.reconnects = 0

    # -- introspection ---------------------------------------------------------

    @property
    def pipeline(self) -> IngestPipeline:
        return self._pipeline

    @property
    def connected(self) -> bool:
        return self._connected

    @property
    def exhausted(self) -> bool:
        """True once the bounded retry budget ran out (reads still work)."""
        return self._exhausted

    @property
    def leader_seq(self) -> Optional[int]:
        """The leader's applied sequence as last observed (handshake or
        heartbeat); ``leader_seq - pipeline.applied_seq`` is staleness."""
        return self._leader_seq

    @property
    def last_error(self) -> Optional[BaseException]:
        return self._last_error

    @property
    def last_heard(self) -> Optional[float]:
        """Loop-clock time of the last frame (or handshake) from the
        leader; ``None`` before the first successful subscription."""
        return self._last_heard

    def silence(self) -> Optional[float]:
        """Seconds since the leader was last heard from, or ``None``.

        The failure detector's input: a silence beyond the configured
        miss window means the leader (or the path to it) is dead.
        """
        if self._last_heard is None:
            return None
        return asyncio.get_running_loop().time() - self._last_heard

    def status(self) -> dict:
        return {
            "leader": f"{self._host}:{self._port}",
            "connected": self._connected,
            "exhausted": self._exhausted,
            "epoch": self._pipeline.epoch,
            "leader_seq": self._leader_seq,
            "applied_seq": self._pipeline.applied_seq,
            "frames_applied": self.frames_applied,
            "frames_skipped": self.frames_skipped,
            "snapshots_installed": self.snapshots_installed,
            "reconnects": self.reconnects,
        }

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "FollowerService":
        """Launch the replication task (idempotent); returns self."""
        if self._task is not None and not self._task.done():
            return self
        self._stopping = False
        self._exhausted = False
        self._progress = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="repro-repl-follower"
        )
        return self

    async def stop(self) -> None:
        """Stop replicating (the pipeline and its reads are untouched)."""
        self._stopping = True
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None
        self._connected = False

    async def __aenter__(self) -> "FollowerService":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    async def promote(self) -> int:
        """Detach from the leader and make the pipeline writable.

        Returns the applied sequence at promotion.  The stream stops
        *before* the restriction lifts, so no leader frame can land on a
        pipeline that is also taking client writes.
        """
        await self.stop()
        return self._pipeline.promote()

    async def wait_for_seq(self, seq: int, timeout: float = 10.0) -> None:
        """Await until the pipeline has applied ``seq`` (deadline-based,
        no sleep-loop): raises ``TimeoutError`` with a diagnostic if the
        stream cannot get there in time."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while self._pipeline.applied_seq < seq:
            if self._progress is None:
                raise ServiceClosedError("follower service is not started")
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise TimeoutError(
                    f"follower stuck at seq {self._pipeline.applied_seq} "
                    f"waiting for {seq} (connected={self._connected}, "
                    f"last_error={self._last_error!r})"
                )
            self._progress.clear()
            if self._pipeline.applied_seq >= seq:
                break
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._progress.wait(), remaining)

    # -- the replication loop --------------------------------------------------

    async def _run(self) -> None:
        config = self._config
        loop = asyncio.get_running_loop()
        backoff = config.retry_initial
        failures = 0
        deadline_start = loop.time()
        while not self._stopping:
            writer = None
            try:
                reader, writer = await asyncio.open_connection(
                    self._host, self._port, limit=protocol.MAX_LINE_BYTES
                )
                await self._subscribe(reader, writer)
                # A successful subscription resets both retry budgets.
                failures = 0
                backoff = config.retry_initial
                deadline_start = loop.time()
                await self._consume(reader, writer)
            except asyncio.CancelledError:
                raise
            except (
                ReplicationError,
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                ValueError,  # SerializationError from a corrupt snapshot
            ) as exc:
                self._last_error = exc
            finally:
                self._connected = False
                if writer is not None:
                    writer.close()
            if self._stopping:
                return
            failures += 1
            if failures > config.max_retries:
                self._exhausted = True
                return
            # Jittered backoff: many followers losing the same leader must
            # not reconnect in lockstep.
            delay = backoff * (1.0 + config.retry_jitter * random.random())
            if (
                config.retry_deadline is not None
                and loop.time() + delay - deadline_start > config.retry_deadline
            ):
                self._exhausted = True
                self._last_error = ServiceUnavailableError(
                    f"no leader reachable at {self._host}:{self._port} within "
                    f"the {config.retry_deadline:.1f}s retry deadline"
                )
                return
            self.reconnects += 1
            await asyncio.sleep(delay)
            backoff = min(backoff * 2.0, config.retry_max)

    async def _subscribe(self, reader, writer) -> None:
        writer.write(
            f"REPL HELLO {self._pipeline.applied_seq} "
            f"{self._pipeline.epoch}\n".encode("ascii")
        )
        await writer.drain()
        line = await reader.readline()
        parts = line.split()
        if len(parts) not in (2, 3) or parts[0] != b"OK":
            raise ReplicationError(
                f"leader rejected subscription: {line!r}"
            )
        try:
            self._leader_seq = int(parts[1])
            leader_epoch = int(parts[2]) if len(parts) == 3 else 0
        except ValueError as exc:
            raise ReplicationError(
                f"malformed subscription reply: {line!r}"
            ) from exc
        self._observe_epoch(leader_epoch)
        self._connected = True
        self._last_heard = asyncio.get_running_loop().time()

    def _observe_epoch(self, epoch: int) -> None:
        """Adopt a higher leader epoch; reject would happen elsewhere.

        Crossing into a higher epoch arms exactly one rewind: the next
        shipped snapshot may land *below* our applied sequence (we might
        hold a diverged suffix the new leader never shipped) and is
        allowed to reset the local timeline.
        """
        if epoch > self._pipeline.epoch:
            self._pipeline.epoch = epoch
            self._allow_rewind = True
            if self._on_epoch is not None:
                self._on_epoch(epoch)

    async def _consume(self, reader, writer) -> None:
        pipeline = self._pipeline
        loop = asyncio.get_running_loop()
        while True:
            frame = await protocol.read_repl_frame(reader)
            if frame is None:
                raise ConnectionResetError("leader closed the stream")
            self._last_heard = loop.time()
            kind = frame[0]
            if kind == "wal":
                _kind, seq, items, weights = frame
                if pipeline.apply_replica_frame(seq, items, weights):
                    self.frames_applied += 1
                else:
                    self.frames_skipped += 1  # duplicate delivery
                self._leader_seq = max(self._leader_seq or 0, seq)
            elif kind == "fenced":
                _kind, epoch, stamps, seq, items, weights = frame
                if epoch < pipeline.epoch:
                    # The fence: a deposed leader (or a frame queued
                    # before its deposition) must never land.
                    raise ReplicationError(
                        f"fenced frame from stale epoch {epoch} "
                        f"(ours is {pipeline.epoch}); dropping the link"
                    )
                self._observe_epoch(epoch)
                if pipeline.apply_replica_frame(seq, items, weights, stamps):
                    self.frames_applied += 1
                else:
                    self.frames_skipped += 1  # duplicate delivery
                self._leader_seq = max(self._leader_seq or 0, seq)
            elif kind == "snapshot":
                sketch, seq = decode_snapshot(frame[1])
                if seq < pipeline.applied_seq and self._allow_rewind:
                    # Fenced rejoin: we crossed into a higher epoch, so
                    # our high sequences may be a diverged suffix.  Adopt
                    # the new leader's checkpoint and re-base the local
                    # durability timeline on it.
                    pipeline.reset_to_snapshot(sketch, seq)
                    self.snapshots_installed += 1
                elif seq >= pipeline.applied_seq:
                    # >=, not >: a bootstrap snapshot at the follower's
                    # own sequence still replaces its (arbitrary) fresh
                    # sketch with the leader's canonical state.
                    pipeline.install_snapshot(sketch, seq)
                    self.snapshots_installed += 1
                self._allow_rewind = False
                self._leader_seq = max(self._leader_seq or 0, seq)
            else:  # heartbeat
                self._leader_seq = frame[1]
                continue
            writer.write(f"ACK {pipeline.applied_seq}\n".encode("ascii"))
            await writer.drain()
            if self._progress is not None:
                self._progress.set()
